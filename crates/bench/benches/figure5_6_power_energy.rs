//! Figures 5 and 6 bench: power draw and energy for both kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use shmls_baselines::EvalContext;
use shmls_bench::{figure5, figure6};

fn bench_power_energy(c: &mut Criterion) {
    let eval = EvalContext::default();
    c.bench_function("figure5/pw_advection_power_energy", |b| {
        b.iter(|| std::hint::black_box(figure5(&eval)))
    });
    c.bench_function("figure6/tracer_advection_power_energy", |b| {
        b.iter(|| std::hint::black_box(figure6(&eval)))
    });
    println!("\n{}", figure5(&eval));
    println!("\n{}", figure6(&eval));
}

criterion_group!(benches, bench_power_energy);
criterion_main!(benches);
