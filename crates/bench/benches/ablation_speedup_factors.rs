//! Ablation bench: the §4 speed-up decomposition (CUs × II × split) and
//! single-factor sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use shmls_baselines::{EvalContext, FrameworkModel, StencilHmlsModel};
use shmls_bench::{ablation, profile, Kernel};
use shmls_kernels::pw_sizes;

fn bench_ablation(c: &mut Criterion) {
    let eval = EvalContext::default();
    c.bench_function("ablation/decomposition", |b| {
        b.iter(|| std::hint::black_box(ablation(&eval)))
    });

    // CU sweep as individual benches (model evaluation cost).
    let p = profile(Kernel::PwAdvection, &pw_sizes()[0]);
    let mut group = c.benchmark_group("ablation/cu_sweep");
    for cus in [1u32, 2, 4] {
        group.bench_function(format!("{cus}cu"), |b| {
            let model = StencilHmlsModel { cus: Some(cus) };
            b.iter(|| std::hint::black_box(model.evaluate(&p, &eval)))
        });
    }
    group.finish();
    println!("\n{}", ablation(&eval));
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
