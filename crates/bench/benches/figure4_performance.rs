//! Figure 4 bench: regenerates the performance comparison (MPt/s per
//! framework per size) and reports how long the full figure takes to
//! produce, plus per-cell evaluation benches.

use criterion::{criterion_group, criterion_main, Criterion};
use shmls_baselines::EvalContext;
use shmls_bench::{evaluate, figure4, Kernel};

fn bench_figure4(c: &mut Criterion) {
    let eval = EvalContext::default();

    c.bench_function("figure4/full", |b| {
        b.iter(|| std::hint::black_box(figure4(&eval)))
    });

    let mut group = c.benchmark_group("figure4/cells");
    for kernel in [Kernel::PwAdvection, Kernel::TracerAdvection] {
        for size in kernel.sizes() {
            group.bench_function(format!("{}/{}", kernel.title(), size.label), |b| {
                b.iter(|| std::hint::black_box(evaluate(kernel, &size, &eval)))
            });
        }
    }
    group.finish();

    // Print the regenerated figure once so `cargo bench` output contains
    // the paper-shaped data.
    println!("\n{}", figure4(&eval));
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
