//! Tables 1 and 2 bench: resource utilisation for both kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use shmls_baselines::EvalContext;
use shmls_bench::{table1, table2};

fn bench_resources(c: &mut Criterion) {
    let eval = EvalContext::default();
    c.bench_function("table1/pw_advection_resources", |b| {
        b.iter(|| std::hint::black_box(table1(&eval)))
    });
    c.bench_function("table2/tracer_advection_resources", |b| {
        b.iter(|| std::hint::black_box(table2(&eval)))
    });
    println!("\n{}", table1(&eval));
    println!("\n{}", table2(&eval));
}

criterion_group!(benches, bench_resources);
criterion_main!(benches);
