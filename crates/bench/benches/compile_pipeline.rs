//! Compiler benches: wall-time of the Stencil-HMLS pipeline itself
//! (parse → stencil IR → HLS dataflow → LLVM annotations → fpp) and of
//! the functional dataflow simulation on a small grid.

use criterion::{criterion_group, criterion_main, Criterion};
use shmls_kernels::{pw_advection, tracer_advection};
use stencil_hmls::runner::{run_hls, KernelData};
use stencil_hmls::{compile, CompileOptions, TargetPath};

fn bench_compile(c: &mut Criterion) {
    let pw = pw_advection::source(256, 256, 128);
    let tracer = tracer_advection::source(256, 256, 128);

    let mut group = c.benchmark_group("compile/full_pipeline");
    group.bench_function("pw_advection", |b| {
        b.iter(|| std::hint::black_box(compile(&pw, &CompileOptions::default()).unwrap()))
    });
    group.bench_function("tracer_advection", |b| {
        b.iter(|| std::hint::black_box(compile(&tracer, &CompileOptions::default()).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("compile/hls_only");
    let hls_only = CompileOptions {
        paths: TargetPath::HlsOnly,
        ..Default::default()
    };
    group.bench_function("pw_advection", |b| {
        b.iter(|| std::hint::black_box(compile(&pw, &hls_only).unwrap()))
    });
    group.finish();

    // Functional dataflow simulation at a tiny grid: the whole design
    // (load → shift buffers → dup → computes → write) executing on the
    // sequential Kahn engine.
    let n = [10, 8, 6];
    let compiled = compile(&pw_advection::source(n[0], n[1], n[2]), &hls_only).unwrap();
    let inputs = pw_advection::PwInputs::random(n[0], n[1], n[2], 3);
    let data = KernelData::default()
        .buffer("u", inputs.u.to_buffer())
        .buffer("v", inputs.v.to_buffer())
        .buffer("w", inputs.w.to_buffer())
        .buffer("tzc1", inputs.tzc1.to_buffer())
        .buffer("tzc2", inputs.tzc2.to_buffer())
        .buffer("tzd1", inputs.tzd1.to_buffer())
        .buffer("tzd2", inputs.tzd2.to_buffer())
        .scalar("tcx", inputs.tcx)
        .scalar("tcy", inputs.tcy);
    c.bench_function("simulate/pw_advection_10x8x6", |b| {
        b.iter(|| std::hint::black_box(run_hls(&compiled, &data).unwrap()))
    });
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
