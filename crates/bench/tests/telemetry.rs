//! Tests for the `repro bench` / `repro compare` telemetry harness:
//! compare classification, JSON round-tripping, and an end-to-end smoke
//! run of the quick benchmark.

use std::collections::BTreeMap;

use shmls_bench::telemetry::{
    compare, run_bench, BenchReport, Better, CompareOptions, HostInfo, Metric, Noise, RowStatus,
    SCHEMA_VERSION,
};

fn metric(value: f64, unit: &str, better: Better, noise: Noise) -> Metric {
    Metric {
        value,
        unit: unit.to_string(),
        better,
        noise,
    }
}

fn report(metrics: Vec<(&str, Metric)>) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        mode: "quick".to_string(),
        git_rev: "test".to_string(),
        host: HostInfo::current(),
        metrics: metrics
            .into_iter()
            .map(|(k, m)| (k.to_string(), m))
            .collect::<BTreeMap<_, _>>(),
    }
}

fn row_status(rep: &shmls_bench::telemetry::CompareReport, key: &str) -> RowStatus {
    rep.rows
        .iter()
        .find(|r| r.metric == key)
        .unwrap_or_else(|| panic!("row `{key}` missing"))
        .status
}

#[test]
fn deterministic_regression_detected() {
    let base = report(vec![(
        "sim/k/cycles",
        metric(1000.0, "cycles", Better::Lower, Noise::Deterministic),
    )]);
    let new = report(vec![(
        "sim/k/cycles",
        metric(1100.0, "cycles", Better::Lower, Noise::Deterministic),
    )]);
    let rep = compare(&base, &new, &CompareOptions::default()).unwrap();
    assert_eq!(row_status(&rep, "sim/k/cycles"), RowStatus::Regressed);
    assert_eq!(rep.regressions(), 1);
}

#[test]
fn within_tolerance_is_ok() {
    let base = report(vec![(
        "sim/k/cycles",
        metric(1000.0, "cycles", Better::Lower, Noise::Deterministic),
    )]);
    let new = report(vec![(
        "sim/k/cycles",
        metric(1010.0, "cycles", Better::Lower, Noise::Deterministic),
    )]);
    let rep = compare(&base, &new, &CompareOptions::default()).unwrap();
    assert_eq!(row_status(&rep, "sim/k/cycles"), RowStatus::Ok);
    assert_eq!(rep.regressions(), 0);
}

#[test]
fn higher_is_better_direction_respected() {
    // Throughput dropping is a regression; throughput rising is not.
    let base = report(vec![(
        "sim/k/elems_per_s",
        metric(1000.0, "elems/s", Better::Higher, Noise::Deterministic),
    )]);
    let worse = report(vec![(
        "sim/k/elems_per_s",
        metric(500.0, "elems/s", Better::Higher, Noise::Deterministic),
    )]);
    let better = report(vec![(
        "sim/k/elems_per_s",
        metric(2000.0, "elems/s", Better::Higher, Noise::Deterministic),
    )]);
    let opts = CompareOptions::default();
    let rep = compare(&base, &worse, &opts).unwrap();
    assert_eq!(row_status(&rep, "sim/k/elems_per_s"), RowStatus::Regressed);
    let rep = compare(&base, &better, &opts).unwrap();
    assert_eq!(row_status(&rep, "sim/k/elems_per_s"), RowStatus::Improved);
}

#[test]
fn throughput_collapse_clears_wallclock_tolerance() {
    // Higher-is-better metrics compare as a ratio: halving throughput is
    // a 100% degradation, which must clear even the loose 75% wall-clock
    // tolerance. (Negating the plain delta would cap it at 50%.)
    let base = report(vec![(
        "sim/k/threaded_elems_per_s",
        metric(1.0e6, "elems/s", Better::Higher, Noise::WallClock),
    )]);
    let halved = report(vec![(
        "sim/k/threaded_elems_per_s",
        metric(0.5e6, "elems/s", Better::Higher, Noise::WallClock),
    )]);
    let rep = compare(&base, &halved, &CompareOptions::default()).unwrap();
    assert_eq!(
        row_status(&rep, "sim/k/threaded_elems_per_s"),
        RowStatus::Regressed
    );
    // A throughput of zero is unboundedly worse and must also gate.
    let dead = report(vec![(
        "sim/k/threaded_elems_per_s",
        metric(0.0, "elems/s", Better::Higher, Noise::WallClock),
    )]);
    let rep = compare(&base, &dead, &CompareOptions::default()).unwrap();
    assert_eq!(
        row_status(&rep, "sim/k/threaded_elems_per_s"),
        RowStatus::Regressed
    );
    // Mild jitter stays inside the tolerance.
    let jitter = report(vec![(
        "sim/k/threaded_elems_per_s",
        metric(0.8e6, "elems/s", Better::Higher, Noise::WallClock),
    )]);
    let rep = compare(&base, &jitter, &CompareOptions::default()).unwrap();
    assert_eq!(
        row_status(&rep, "sim/k/threaded_elems_per_s"),
        RowStatus::Ok
    );
}

#[test]
fn missing_metric_gates() {
    let base = report(vec![(
        "sim/k/cycles",
        metric(1000.0, "cycles", Better::Lower, Noise::Deterministic),
    )]);
    let new = report(vec![]);
    let rep = compare(&base, &new, &CompareOptions::default()).unwrap();
    assert_eq!(row_status(&rep, "sim/k/cycles"), RowStatus::MissingInNew);
    assert_eq!(rep.regressions(), 1);
}

#[test]
fn new_metric_is_informational() {
    let base = report(vec![]);
    let new = report(vec![(
        "sim/k/cycles",
        metric(1000.0, "cycles", Better::Lower, Noise::Deterministic),
    )]);
    let rep = compare(&base, &new, &CompareOptions::default()).unwrap();
    assert_eq!(row_status(&rep, "sim/k/cycles"), RowStatus::New);
    assert_eq!(rep.regressions(), 0);
}

#[test]
fn schema_mismatch_is_an_error() {
    let base = report(vec![]);
    let mut new = report(vec![]);
    new.schema_version = SCHEMA_VERSION + 1;
    let err = compare(&base, &new, &CompareOptions::default()).unwrap_err();
    assert!(err.contains("schema version mismatch"), "{err}");
}

#[test]
fn mode_mismatch_is_an_error() {
    let base = report(vec![]);
    let mut new = report(vec![]);
    new.mode = "full".to_string();
    let err = compare(&base, &new, &CompareOptions::default()).unwrap_err();
    assert!(err.contains("mode mismatch"), "{err}");
}

#[test]
fn wallclock_tolerance_is_looser() {
    // +50% on a wall-clock ms metric (above the absolute floor) is inside
    // the 75% time tolerance but far outside the 2% deterministic one.
    let base = report(vec![(
        "compile/k/8M/total_ms",
        metric(100.0, "ms", Better::Lower, Noise::WallClock),
    )]);
    let new = report(vec![(
        "compile/k/8M/total_ms",
        metric(150.0, "ms", Better::Lower, Noise::WallClock),
    )]);
    let rep = compare(&base, &new, &CompareOptions::default()).unwrap();
    assert_eq!(row_status(&rep, "compile/k/8M/total_ms"), RowStatus::Ok);
}

#[test]
fn sub_millisecond_jitter_is_floored() {
    // A 0.005 ms pass "tripling" to 0.015 ms is +200%, but under the 5 ms
    // absolute floor it must not gate — that is pure scheduler noise.
    let base = report(vec![(
        "compile/k/8M/split_ms",
        metric(0.005, "ms", Better::Lower, Noise::WallClock),
    )]);
    let new = report(vec![(
        "compile/k/8M/split_ms",
        metric(0.015, "ms", Better::Lower, Noise::WallClock),
    )]);
    let rep = compare(&base, &new, &CompareOptions::default()).unwrap();
    assert_eq!(row_status(&rep, "compile/k/8M/split_ms"), RowStatus::Ok);
    // But a genuine blow-up clears the floor and still gates.
    let blown = report(vec![(
        "compile/k/8M/split_ms",
        metric(50.0, "ms", Better::Lower, Noise::WallClock),
    )]);
    let rep = compare(&base, &blown, &CompareOptions::default()).unwrap();
    assert_eq!(
        row_status(&rep, "compile/k/8M/split_ms"),
        RowStatus::Regressed
    );
}

#[test]
fn report_json_round_trips() {
    let rep = report(vec![
        (
            "sim/k/cycles",
            metric(964.0, "cycles", Better::Lower, Noise::Deterministic),
        ),
        (
            "compile/k/8M/total_ms",
            metric(10.25, "ms", Better::Lower, Noise::WallClock),
        ),
        (
            "sim/k/elems_per_s",
            metric(1.5e6, "elems/s", Better::Higher, Noise::WallClock),
        ),
    ]);
    let text = rep.to_json();
    let back = BenchReport::from_json(&text).unwrap();
    assert_eq!(back, rep);
}

#[test]
fn non_finite_metric_is_rejected_on_parse() {
    // A NaN metric serialises as `null`, and parsing the report back
    // fails loudly instead of recording a bogus value that might slip
    // through the gate.
    let rep = report(vec![(
        "sim/k/elems_per_s",
        metric(f64::NAN, "elems/s", Better::Higher, Noise::WallClock),
    )]);
    let text = rep.to_json();
    assert!(text.contains("null"), "{text}");
    let err = BenchReport::from_json(&text).unwrap_err();
    assert!(err.contains("missing numeric `value`"), "{err}");
}

#[test]
fn malformed_json_is_rejected() {
    assert!(BenchReport::from_json("{").is_err());
    assert!(BenchReport::from_json("{}").is_err()); // no schema_version
    assert!(BenchReport::from_json(r#"{"schema_version": 1}"#).is_err()); // no metrics
}

#[test]
fn quick_bench_round_trips_and_self_compares_clean() {
    // End-to-end smoke test: the quick benchmark runs, serialises,
    // parses back identically, and a self-compare reports zero deltas
    // and zero regressions. This is the exact contract the CI bench job
    // relies on.
    let rep = run_bench(true).expect("quick bench runs");
    assert_eq!(rep.schema_version, SCHEMA_VERSION);
    assert_eq!(rep.mode, "quick");
    assert!(
        rep.metrics.len() >= 30,
        "expected a rich metric set, got {}",
        rep.metrics.len()
    );
    // Key families all present.
    for prefix in ["compile/pw_advection/", "compile/tracer_advection/", "sim/"] {
        assert!(
            rep.metrics.keys().any(|k| k.starts_with(prefix)),
            "no metric under `{prefix}`"
        );
    }
    assert!(rep.metrics.contains_key("sim/pw_advection/cycles"));
    assert!(rep.metrics.contains_key("sim/tracer_advection/cycles"));

    let text = rep.to_json();
    let back = BenchReport::from_json(&text).unwrap();
    assert_eq!(back, rep);

    let cmp = compare(&rep, &back, &CompareOptions::default()).unwrap();
    assert_eq!(cmp.regressions(), 0);
    assert!(cmp
        .rows
        .iter()
        .all(|r| r.status == RowStatus::Ok && r.delta_pct == Some(0.0)));
}
