//! # shmls-bench — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§4):
//!
//! - Figure 4 — performance in MPt/s ([`figure4`]),
//! - Figures 5/6 — power draw and energy ([`figure5`], [`figure6`]),
//! - Tables 1/2 — resource utilisation ([`table1`], [`table2`]),
//! - the §4 speed-up decomposition `4 (CUs) × 9 (II) × 3 (split) ≈ 108`
//!   ([`ablation`]),
//! - the measured initiation intervals ([`ii_report`]).
//!
//! The `repro` binary prints them in paper-shaped text form and can dump
//! the raw data as JSON (mirroring the artifact's `results.json`).

#![warn(missing_docs)]

pub use shmls_ir::json;
pub mod telemetry;

use std::collections::BTreeMap;

use serde::Serialize;
use shmls_baselines::{
    all_frameworks, DaceModel, EvalContext, FrameworkModel, KernelProfile, Outcome,
    StencilHmlsModel,
};
use shmls_kernels::{pw_advection, pw_sizes, tracer_advection, tracer_sizes, ProblemSize};
use stencil_hmls::{compile, CompileOptions, TargetPath};

/// Which benchmark kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Piacsek–Williams advection (MONC).
    PwAdvection,
    /// NEMO tracer advection (PSycloneBench).
    TracerAdvection,
}

impl Kernel {
    /// Display name as in the paper.
    pub fn title(&self) -> &'static str {
        match self {
            Kernel::PwAdvection => "PW advection",
            Kernel::TracerAdvection => "tracer advection",
        }
    }

    /// DSL source at a grid size.
    pub fn source(&self, grid: [i64; 3]) -> String {
        match self {
            Kernel::PwAdvection => pw_advection::source(grid[0], grid[1], grid[2]),
            Kernel::TracerAdvection => tracer_advection::source(grid[0], grid[1], grid[2]),
        }
    }

    /// The paper's problem sizes for this kernel.
    pub fn sizes(&self) -> Vec<ProblemSize> {
        match self {
            Kernel::PwAdvection => pw_sizes(),
            Kernel::TracerAdvection => tracer_sizes(),
        }
    }
}

/// Compile a kernel at a size and profile it.
pub fn profile(kernel: Kernel, size: &ProblemSize) -> KernelProfile {
    let opts = CompileOptions {
        paths: TargetPath::HlsOnly,
        ..Default::default()
    };
    let compiled =
        compile(&kernel.source(size.grid), &opts).expect("benchmark kernel must compile");
    KernelProfile::from_compiled(&compiled).expect("benchmark kernel must profile")
}

/// All framework outcomes for one kernel/size, in the paper's order.
pub fn evaluate(kernel: Kernel, size: &ProblemSize, eval: &EvalContext) -> Vec<(String, Outcome)> {
    let p = profile(kernel, size);
    all_frameworks()
        .iter()
        .map(|f| (f.name().to_string(), f.evaluate(&p, eval)))
        .collect()
}

/// The complete result set (mirrors the artifact's `results.json`).
#[derive(Debug, Serialize)]
pub struct Results {
    /// kernel → size label → framework → outcome
    pub results: BTreeMap<String, BTreeMap<String, BTreeMap<String, Outcome>>>,
}

/// Evaluate everything.
pub fn evaluate_all(eval: &EvalContext) -> Results {
    let mut results = BTreeMap::new();
    for kernel in [Kernel::PwAdvection, Kernel::TracerAdvection] {
        let mut by_size = BTreeMap::new();
        for size in kernel.sizes() {
            let outcomes: BTreeMap<String, Outcome> =
                evaluate(kernel, &size, eval).into_iter().collect();
            by_size.insert(size.label.to_string(), outcomes);
        }
        results.insert(kernel.title().to_string(), by_size);
    }
    Results { results }
}

fn fmt_mpts(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Completed(m) => format!("{:>10.1}", m.mpts),
        Outcome::CompileError(_) => format!("{:>10}", "n/a*"),
        Outcome::RuntimeDeadlock { .. } => format!("{:>10}", "deadlock"),
        Outcome::Inexpressible(_) => format!("{:>10}", "n/a**"),
    }
}

fn perf_block(kernel: Kernel, eval: &EvalContext, out: &mut String) {
    use std::fmt::Write;
    writeln!(out, "{}:", kernel.title()).unwrap();
    writeln!(
        out,
        "  {:<6} {:>10} {:>10} {:>10} {:>10}",
        "size", "S-HMLS", "DaCe", "SODA-opt", "Vitis HLS"
    )
    .unwrap();
    for size in kernel.sizes() {
        let outcomes = evaluate(kernel, &size, eval);
        let get = |name: &str| {
            outcomes
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, o)| fmt_mpts(o))
                .unwrap_or_default()
        };
        writeln!(
            out,
            "  {:<6} {} {} {} {}",
            size.label,
            get("Stencil-HMLS"),
            get("DaCe"),
            get("SODA-opt"),
            get("Vitis HLS"),
        )
        .unwrap();
    }
}

/// Figure 4: performance comparison in MPt/s (higher is better).
pub fn figure4(eval: &EvalContext) -> String {
    let mut out = String::from(
        "Figure 4: Performance comparison (MPt/s, higher is better)\n\
         ==========================================================\n",
    );
    perf_block(Kernel::PwAdvection, eval, &mut out);
    perf_block(Kernel::TracerAdvection, eval, &mut out);
    out.push_str("  n/a*  = fails to compile (no automatic multi-bank assignment)\n");
    out.push_str("  n/a** = inexpressible (no subselection support)\n");
    out
}

fn power_figure(kernel: Kernel, number: u32, eval: &EvalContext) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "Figure {number}: Average power draw and energy of {} (lower is better)\n\
         ====================================================================\n",
        kernel.title()
    );
    writeln!(
        out,
        "  {:<14} {:<6} {:>10} {:>12}",
        "framework", "size", "power [W]", "energy [J]"
    )
    .unwrap();
    for size in kernel.sizes() {
        for (name, outcome) in evaluate(kernel, &size, eval) {
            if name == "StencilFlow" {
                continue; // no runtime numbers in the paper either
            }
            match outcome {
                Outcome::Completed(m) => {
                    writeln!(
                        out,
                        "  {:<14} {:<6} {:>10.1} {:>12.2}",
                        name, size.label, m.watts, m.joules
                    )
                    .unwrap();
                }
                _ => {
                    writeln!(
                        out,
                        "  {:<14} {:<6} {:>10} {:>12}",
                        name, size.label, "-", "-"
                    )
                    .unwrap();
                }
            }
        }
    }
    out
}

/// Figure 5: PW advection power & energy.
pub fn figure5(eval: &EvalContext) -> String {
    power_figure(Kernel::PwAdvection, 5, eval)
}

/// Figure 6: tracer advection power & energy.
pub fn figure6(eval: &EvalContext) -> String {
    power_figure(Kernel::TracerAdvection, 6, eval)
}

fn resource_table(kernel: Kernel, number: u32, eval: &EvalContext) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "Table {number}: Resource usage for the {} kernel\n\
         ================================================\n",
        kernel.title()
    );
    writeln!(
        out,
        "  {:<14} {:<6} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "FRAMEWORK", "SIZE", "%LUTs", "%FFs", "%BRAM", "%URAM", "%DSPs"
    )
    .unwrap();
    let per_size: Vec<(ProblemSize, Vec<(String, Outcome)>)> = kernel
        .sizes()
        .into_iter()
        .map(|size| {
            let outcomes = evaluate(kernel, &size, eval);
            (size, outcomes)
        })
        .collect();
    let names: Vec<String> = per_size[0].1.iter().map(|(n, _)| n.clone()).collect();
    for name in &names {
        for (size, outcomes) in &per_size {
            let outcome = &outcomes.iter().find(|(n, _)| n == name).unwrap().1;
            match (outcome.resource_pct(), outcome) {
                (Some([lut, ff, bram, dsp]), _) => {
                    let uram = match outcome {
                        Outcome::Completed(m) => m.resources.uram_pct(&eval.device),
                        Outcome::RuntimeDeadlock { resources, .. } => {
                            resources.uram_pct(&eval.device)
                        }
                        _ => 0.0,
                    };
                    writeln!(
                        out,
                        "  {:<14} {:<6} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
                        name, size.label, lut, ff, bram, uram, dsp
                    )
                    .unwrap();
                }
                (None, Outcome::CompileError(_)) => {
                    writeln!(
                        out,
                        "  {:<14} {:<6} {:>7} {:>7} {:>7} {:>7} {:>7}",
                        name, size.label, "-", "-", "-", "-", "-"
                    )
                    .unwrap();
                }
                (None, _) => {}
            }
        }
    }
    out
}

/// Table 1: PW advection resource usage.
pub fn table1(eval: &EvalContext) -> String {
    resource_table(Kernel::PwAdvection, 1, eval)
}

/// Table 2: tracer advection resource usage.
pub fn table2(eval: &EvalContext) -> String {
    resource_table(Kernel::TracerAdvection, 2, eval)
}

/// §4's speed-up decomposition: `4 (CUs) × 9 (1/9 of DaCe's II) × 3
/// (split) = 108 ≈ the observed advantage`.
pub fn ablation(eval: &EvalContext) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "Ablation: decomposition of the Stencil-HMLS advantage over DaCe (PW advection)\n\
         ===============================================================================\n",
    );
    let size = &pw_sizes()[0];
    let p = profile(Kernel::PwAdvection, size);
    let hmls_model = StencilHmlsModel::default();
    let cus = StencilHmlsModel::derive_cus(&p, &eval.device);
    let dace_serial = DaceModel::serial_factor(&p);
    let predicted = cus as f64 * shmls_baselines::DACE_II * dace_serial;
    let hmls = hmls_model
        .evaluate(&p, eval)
        .measurement()
        .cloned()
        .unwrap();
    let dace = DaceModel.evaluate(&p, eval).measurement().cloned().unwrap();
    let observed = hmls.mpts / dace.mpts;
    writeln!(out, "  CU replication factor     : {cus}").unwrap();
    writeln!(
        out,
        "  II ratio (DaCe II / ours) : {}",
        shmls_baselines::DACE_II
    )
    .unwrap();
    writeln!(out, "  per-field split factor    : {dace_serial}").unwrap();
    writeln!(
        out,
        "  predicted  {cus} x {} x {} = {predicted}",
        shmls_baselines::DACE_II,
        dace_serial
    )
    .unwrap();
    writeln!(out, "  observed  speed-up        : {observed:.1}").unwrap();
    writeln!(
        out,
        "  (paper: 4 x 9 x 3 = 108, 'which roughly approximates the advantage')"
    )
    .unwrap();

    // Single-factor sweeps: what each factor contributes on its own.
    writeln!(out, "\n  factor sweep (MPt/s at 8M):").unwrap();
    for cus_sweep in [1u32, 2, 4] {
        let m = StencilHmlsModel {
            cus: Some(cus_sweep),
        }
        .evaluate(&p, eval)
        .measurement()
        .cloned()
        .unwrap();
        writeln!(out, "    Stencil-HMLS @ {cus_sweep} CU(s): {:>8.1}", m.mpts).unwrap();
    }
    writeln!(out, "    DaCe          @ 1 CU   : {:>8.1}", dace.mpts).unwrap();

    // Unroll sweep (the §4 SODA-opt story): physically replicating the
    // compute body does not speed up a rate-1 streaming design — the load
    // and shift-buffer stages still advance one element per cycle — but
    // it multiplies the operator count, which is why SODA-opt's unrolled
    // pipelines became "too large to fit within the U280's resources".
    writeln!(out, "\n  unroll sweep (PW advection 8M, 1 CU):").unwrap();
    for unroll in [1i64, 2, 4, 8] {
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            hmls: stencil_hmls::HmlsOptions {
                unroll,
                ..Default::default()
            },
            ..Default::default()
        };
        let compiled = compile(&Kernel::PwAdvection.source(size.grid), &opts).expect("compiles");
        let profile = KernelProfile::from_compiled(&compiled).expect("profiles");
        let m = StencilHmlsModel { cus: Some(1) }.evaluate(&profile, eval);
        match m {
            shmls_baselines::Outcome::Completed(m) => {
                writeln!(
                    out,
                    "    unroll {unroll}: {:>8.1} MPt/s, {:>5.1}% LUT, {:>5.1}% DSP",
                    m.mpts, m.resource_pct[0], m.resource_pct[3]
                )
                .unwrap();
            }
            shmls_baselines::Outcome::CompileError(_) => {
                writeln!(out, "    unroll {unroll}: does not fit the device").unwrap();
            }
            other => {
                writeln!(out, "    unroll {unroll}: {other:?}").unwrap();
            }
        }
    }
    out
}

/// Port-bundling design-space exploration — the §4 future-work heuristic,
/// run for both kernels at the 8M size.
pub fn dse(eval: &EvalContext) -> String {
    let mut out = String::new();
    for kernel in [Kernel::PwAdvection, Kernel::TracerAdvection] {
        let size = &kernel.sizes()[0];
        let p = profile(kernel, size);
        let exploration =
            stencil_hmls::dse::explore_port_bundling(&p.design, &eval.device, &eval.costs);
        out.push_str(&stencil_hmls::dse::render(kernel.title(), &exploration));
        out.push('\n');
    }
    // Stream-depth sweep (cycle-stepped) at a small size: how deep do the
    // FIFOs actually need to be?
    out.push_str("Stream-depth sweep (cycle-stepped, PW advection 16x14x10):\n");
    let opts = CompileOptions {
        paths: TargetPath::HlsOnly,
        ..Default::default()
    };
    let compiled = compile(&pw_advection::source(16, 14, 10), &opts).expect("compiles");
    let design =
        shmls_fpga_sim::design::DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func)
            .expect("extracts");
    let sweep = stencil_hmls::dse::explore_stream_depths(&design, &[1, 2, 4, 8, 16], 0.02);
    for (i, c) in sweep.choices.iter().enumerate() {
        out.push_str(&format!(
            "  depth {:>2}: {:>8} cycles ({:>5.3}x) {}\n",
            c.depth,
            c.cycles,
            c.slowdown,
            if i == sweep.recommended {
                "<-- recommended"
            } else {
                ""
            }
        ));
    }
    out
}

/// Cycle-model validation: analytic makespan vs cycle-stepped Kahn
/// simulation on moderate grids (the agreement behind Figures 4–6).
pub fn cycles(_eval: &EvalContext) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "Cycle-model validation: analytic vs cycle-stepped Kahn simulation
         ==================================================================
",
    );
    writeln!(
        out,
        "  {:<18} {:>10} {:>12} {:>12} {:>7}",
        "kernel", "points", "analytic", "stepped", "ratio"
    )
    .unwrap();
    let device = shmls_fpga_sim::device::Device::u280();
    for (name, grid) in [
        ("laplace3d", [24i64, 24, 16]),
        ("pw_advection", [24, 20, 12]),
        ("tracer_advection", [16, 14, 10]),
    ] {
        let source = match name {
            "laplace3d" => shmls_kernels::laplace::source_3d(grid[0], grid[1], grid[2]),
            "pw_advection" => pw_advection::source(grid[0], grid[1], grid[2]),
            _ => tracer_advection::source(grid[0], grid[1], grid[2]),
        };
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            ..Default::default()
        };
        let compiled = compile(&source, &opts).expect("compiles");
        let design = shmls_fpga_sim::design::DesignDescriptor::from_hls_func(
            &compiled.ctx,
            compiled.hls_func,
        )
        .expect("extracts");
        let analytic = shmls_fpga_sim::perf::hmls_estimate(&design, &device, 1);
        let stepped = shmls_fpga_sim::cycle::simulate(&design, None)
            .expect("generated designs are deadlock-free at declared depths");
        writeln!(
            out,
            "  {:<18} {:>10} {:>12} {:>12} {:>7.3}",
            name,
            design.interior_points,
            analytic.cycles,
            stepped.cycles,
            stepped.cycles as f64 / analytic.cycles as f64
        )
        .unwrap();
    }
    out
}

/// Initiation intervals per framework (§4's measured IIs).
pub fn ii_report(eval: &EvalContext) -> String {
    use std::fmt::Write;
    let mut out = String::from(
        "Initiation intervals on the critical path (paper: HMLS 1, DaCe 9,\n\
         SODA-opt 164, Vitis HLS 163 on tracer advection)\n\
         ==================================================================\n",
    );
    for kernel in [Kernel::PwAdvection, Kernel::TracerAdvection] {
        let size = &kernel.sizes()[0];
        writeln!(out, "{} ({}):", kernel.title(), size.label).unwrap();
        for (name, outcome) in evaluate(kernel, size, eval) {
            if let Outcome::Completed(m) = outcome {
                writeln!(out, "  {:<14} II = {:>6.1}", name, m.ii).unwrap();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_has_all_rows() {
        let eval = EvalContext::default();
        let fig = figure4(&eval);
        for needle in [
            "PW advection",
            "tracer advection",
            "8M",
            "32M",
            "134M",
            "33M",
            "n/a*",
        ] {
            assert!(fig.contains(needle), "missing `{needle}` in:\n{fig}");
        }
    }

    #[test]
    fn tables_include_stencilflow_only_where_applicable() {
        let eval = EvalContext::default();
        let t1 = table1(&eval);
        assert!(t1.contains("StencilFlow"), "{t1}");
        let t2 = table2(&eval);
        // Inexpressible → no resource rows for StencilFlow in Table 2.
        let sf_rows = t2.lines().filter(|l| l.contains("StencilFlow")).count();
        assert_eq!(sf_rows, 0, "{t2}");
    }

    #[test]
    fn ablation_mentions_paper_identity() {
        let eval = EvalContext::default();
        let a = ablation(&eval);
        assert!(a.contains("108"), "{a}");
        assert!(a.contains("predicted"), "{a}");
    }

    #[test]
    fn results_serialize_to_json() {
        let eval = EvalContext::default();
        let r = evaluate_all(&eval);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("Stencil-HMLS"));
        assert!(json.contains("mpts"));
    }
}
