//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro figure4          # Figure 4: performance (MPt/s)
//! repro figure5          # Figure 5: PW advection power/energy
//! repro figure6          # Figure 6: tracer advection power/energy
//! repro table1           # Table 1: PW advection resources
//! repro table2           # Table 2: tracer advection resources
//! repro ablation         # §4 speed-up decomposition (4 × 9 × 3 ≈ 108)
//! repro dse              # port-bundling DSE (§4 future-work heuristic)
//! repro cycles           # analytic vs cycle-stepped model validation
//! repro ii               # measured initiation intervals
//! repro validate         # functional validation on the simulator
//! repro all              # everything above
//! repro json <path>      # dump raw results as JSON (artifact-style)
//! repro bench [--quick] [--out PATH]
//!                        # performance telemetry -> BENCH.json
//! repro compare <baseline.json> <new.json> [--tolerance PCT]
//!               [--time-tolerance PCT] [--time-floor MS] [--markdown]
//!                        # delta table; exit 1 on regressions
//! repro fuzz [--cases N] [--seed S] [--engine E]... [--ulp N]
//!            [--inject offset-flip|op-swap] [--corpus DIR]
//!            [--max-failures N] [--shrink-budget N] [--no-scale]
//!                        # cross-engine differential fuzzing; exit 1 on
//!                        # any disagreement (reproducers land in DIR)
//! repro run [--kernel pw_advection|tracer_advection] [--grid I,J,K]
//!           [--cus N] [--steps T] [--serial] [--check-parallel]
//!                        # scale-out execution: time-march over parallel
//!                        # CU slabs with halo exchange; per-CU report
//! repro serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR]
//!             [--capacity N]
//!                        # compile server: newline-delimited JSON over
//!                        # TCP, persistent cache, runs until killed
//! repro loadgen [--addr HOST:PORT] [--clients N] [--requests M]
//!               [--unique-keys K] [--min-warm-hit-rate F]
//!               [--min-cold-hit-rate F] [--out PATH]
//!                        # two-phase load test against a live server;
//!                        # exit 1 on any gate violation
//! ```

use std::time::Duration;

use shmls_baselines::EvalContext;
use shmls_bench::{
    ablation, cycles, dse, evaluate_all, figure4, figure5, figure6, ii_report, table1, table2,
};

fn validate() -> String {
    use shmls_kernels::{pw_advection, tracer_advection};
    use stencil_hmls::runner::{run_hls, run_hls_threaded, run_stencil, KernelData};
    use stencil_hmls::{compile, CompileOptions};

    let mut out = String::from(
        "Functional validation (tiny grids, full dataflow execution)\n\
         ============================================================\n",
    );
    // PW advection.
    {
        let n = [10, 8, 6];
        let compiled = compile(
            &pw_advection::source(n[0], n[1], n[2]),
            &CompileOptions::default(),
        )
        .unwrap();
        let inputs = pw_advection::PwInputs::random(n[0], n[1], n[2], 1);
        let (su, _, _) = pw_advection::golden(&inputs);
        let data = KernelData::default()
            .buffer("u", inputs.u.to_buffer())
            .buffer("v", inputs.v.to_buffer())
            .buffer("w", inputs.w.to_buffer())
            .buffer("tzc1", inputs.tzc1.to_buffer())
            .buffer("tzc2", inputs.tzc2.to_buffer())
            .buffer("tzd1", inputs.tzd1.to_buffer())
            .buffer("tzd2", inputs.tzd2.to_buffer())
            .scalar("tcx", inputs.tcx)
            .scalar("tcy", inputs.tcy);
        let stencil_out = run_stencil(&compiled, &data).unwrap();
        let (hls_out, (streams, pushed, beats)) = run_hls(&compiled, &data).unwrap();
        let threaded = run_hls_threaded(&compiled, &data, Duration::from_secs(30)).unwrap();
        let diff = shmls_kernels::Grid3::from_buffer(&hls_out["su"]).max_diff(&su);
        out.push_str(&format!(
            "  PW advection {n:?}: stencil==golden: {}, dataflow==golden: {} \
             (max |diff| = {diff:.2e})\n",
            check(shmls_kernels::Grid3::from_buffer(&stencil_out["su"]).max_diff(&su) < 1e-12),
            check(diff < 1e-12),
        ));
        out.push_str(&format!(
            "    sequential engine: {streams} streams, {pushed} elements, {beats} mem beats\n"
        ));
        match &threaded {
            Ok(_) => out.push_str("    threaded engine (bounded FIFOs): PASS\n"),
            Err(report) => out.push_str(&format!(
                "    threaded engine (bounded FIFOs): FAIL\n{report}"
            )),
        }
    }
    // Tracer advection.
    {
        let n = [8, 7, 6];
        let compiled = compile(
            &tracer_advection::source(n[0], n[1], n[2]),
            &CompileOptions::default(),
        )
        .unwrap();
        let inputs = tracer_advection::TracerInputs::random(n[0], n[1], n[2], 2);
        let golden = tracer_advection::golden(&inputs);
        let data = KernelData::default()
            .buffer("tsn", inputs.tsn.to_buffer())
            .buffer("pun", inputs.pun.to_buffer())
            .buffer("pvn", inputs.pvn.to_buffer())
            .buffer("pwn", inputs.pwn.to_buffer())
            .buffer("tmask", inputs.tmask.to_buffer())
            .buffer("umask", inputs.umask.to_buffer())
            .buffer("vmask", inputs.vmask.to_buffer())
            .buffer("rnfmsk", inputs.rnfmsk.to_buffer())
            .buffer("upsmsk", inputs.upsmsk.to_buffer())
            .buffer("ztfreez", inputs.ztfreez.to_buffer())
            .buffer("rnfmsk_z", inputs.rnfmsk_z.to_buffer())
            .buffer("e3t", inputs.e3t.to_buffer())
            .scalar("pdt", inputs.pdt);
        let (hls_out, _) = run_hls(&compiled, &data).unwrap();
        let diff =
            shmls_kernels::Grid3::from_buffer(&hls_out["mydomain"]).max_diff(&golden.mydomain);
        out.push_str(&format!(
            "  tracer advection {n:?}: dataflow==golden: {} (max |diff| = {diff:.2e})\n",
            check(diff < 1e-12)
        ));
    }
    out
}

fn check(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Flush both standard streams, then exit. `process::exit` skips `Drop`
/// handlers, so anything still buffered (stdout is block-buffered when
/// piped — exactly the CI case) would be lost right when the diagnostic
/// matters most.
fn exit_flushed(code: i32) -> ! {
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let _ = std::io::stderr().flush();
    std::process::exit(code);
}

/// `repro serve [--addr HOST:PORT] [--workers N] [--cache-dir DIR]
/// [--capacity N]`
fn serve_cmd(args: &[String]) {
    use shmls_serve::server::{serve, ServerConfig};
    let mut config = ServerConfig {
        addr: "127.0.0.1:7456".to_string(),
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => config.addr = a.clone(),
                None => {
                    eprintln!("repro serve: `--addr` needs host:port");
                    exit_flushed(2);
                }
            },
            "--cache-dir" => match it.next() {
                Some(d) => config.cache_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    eprintln!("repro serve: `--cache-dir` needs a directory");
                    exit_flushed(2);
                }
            },
            "--workers" | "--capacity" => {
                let which = arg.clone();
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => {
                        if which == "--workers" {
                            config.workers = n;
                        } else {
                            config.capacity = n;
                        }
                    }
                    _ => {
                        eprintln!("repro serve: `{which}` needs a positive integer");
                        exit_flushed(2);
                    }
                }
            }
            other => {
                eprintln!("repro serve: unknown flag `{other}`");
                exit_flushed(2);
            }
        }
    }
    let handle = match serve(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("repro serve: cannot bind `{}`: {e}", config.addr);
            exit_flushed(1);
        }
    };
    println!("shmls-serve listening on {}", handle.local_addr());
    match &config.cache_dir {
        Some(dir) => println!("  cache dir: {}", dir.display()),
        None => println!("  cache: in-memory only (cold on every start)"),
    }
    // The banner must reach a piped supervisor before this process
    // blocks forever (CI polls the log for the listening line).
    {
        use std::io::Write;
        let _ = std::io::stdout().flush();
    }
    loop {
        std::thread::park();
    }
}

/// `repro loadgen [--addr HOST:PORT] [--clients N] [--requests M]
/// [--unique-keys K] [--min-warm-hit-rate F] [--min-cold-hit-rate F]
/// [--out PATH]`
fn loadgen_cmd(args: &[String]) {
    use shmls_serve::loadgen::{run, LoadgenConfig};
    let mut config = LoadgenConfig::default();
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => config.addr = a.clone(),
                None => {
                    eprintln!("repro loadgen: `--addr` needs host:port");
                    exit_flushed(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("repro loadgen: `--out` needs a path");
                    exit_flushed(2);
                }
            },
            "--clients" | "--requests" | "--unique-keys" => {
                let which = arg.clone();
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => match which.as_str() {
                        "--clients" => config.clients = n,
                        "--requests" => config.requests = n,
                        _ => config.unique_keys = n,
                    },
                    _ => {
                        eprintln!("repro loadgen: `{which}` needs a positive integer");
                        exit_flushed(2);
                    }
                }
            }
            "--min-warm-hit-rate" | "--min-cold-hit-rate" => {
                let which = arg.clone();
                match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(f) if (0.0..=1.0).contains(&f) => {
                        if which == "--min-warm-hit-rate" {
                            config.min_warm_hit_rate = f;
                        } else {
                            config.min_cold_hit_rate = f;
                        }
                    }
                    _ => {
                        eprintln!("repro loadgen: `{which}` needs a rate in [0, 1]");
                        exit_flushed(2);
                    }
                }
            }
            other => {
                eprintln!("repro loadgen: unknown flag `{other}`");
                exit_flushed(2);
            }
        }
    }

    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro loadgen: cannot reach `{}`: {e}", config.addr);
            exit_flushed(1);
        }
    };
    println!(
        "loadgen against {}: {} clients, {} requests/phase, {} unique keys",
        config.addr, config.clients, config.requests, config.unique_keys
    );
    for (name, phase) in [("cold", &report.cold), ("warm", &report.warm)] {
        println!(
            "  {name}: {} ok / {} requests, {} miss {} hit {} disk-hit {} coalesced, \
             hit rate {:.3}, {:.1} req/s ({:.1} compiles/s), p50 {:.3} ms, p99 {:.3} ms",
            phase.requests - phase.errors,
            phase.requests,
            phase.misses,
            phase.memory_hits,
            phase.disk_hits,
            phase.coalesced,
            phase.hit_rate(),
            phase.requests_per_s(),
            phase.compiles_per_s(),
            phase.p50_us as f64 / 1e3,
            phase.p99_us as f64 / 1e3,
        );
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, report.to_json().pretty()) {
            eprintln!("repro loadgen: cannot write `{path}`: {e}");
            exit_flushed(1);
        }
        println!("wrote {path}");
    }
    if !report.passed() {
        for failure in &report.gate_failures {
            println!("  GATE FAIL: {failure}");
        }
        exit_flushed(1);
    }
    println!("loadgen gate: PASS");
}

/// `repro bench [--quick] [--out PATH]`
fn bench(args: &[String]) {
    use shmls_bench::telemetry::run_bench;
    let mut quick = false;
    let mut out_path = "BENCH.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("repro bench: `--out` needs a path");
                    exit_flushed(2);
                }
            },
            other => {
                eprintln!("repro bench: unknown flag `{other}`");
                exit_flushed(2);
            }
        }
    }
    let report = match run_bench(quick) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro bench: {e}");
            exit_flushed(1);
        }
    };
    let body = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &body) {
        eprintln!("repro bench: cannot write `{out_path}`: {e}");
        exit_flushed(1);
    }
    println!(
        "Benchmark ({} mode, rev {}, {} {}, {} cpus)",
        report.mode, report.git_rev, report.host.os, report.host.arch, report.host.cpus
    );
    let width = report.metrics.keys().map(String::len).max().unwrap_or(6);
    for (key, m) in &report.metrics {
        println!("  {key:<width$} {:>14.3} {}", m.value, m.unit);
    }
    println!("wrote {out_path} ({} metrics)", report.metrics.len());
}

/// `repro compare <baseline> <new> [--tolerance PCT] [--time-tolerance PCT]
/// [--time-floor MS] [--markdown]`
fn compare_cmd(args: &[String]) {
    use shmls_bench::telemetry::{compare, BenchReport, CompareOptions};
    let mut paths: Vec<&String> = Vec::new();
    let mut opts = CompareOptions::default();
    let mut markdown = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--markdown" => markdown = true,
            "--tolerance" | "--time-tolerance" | "--time-floor" => {
                let which = arg.clone();
                let value = it.next().and_then(|v| v.parse::<f64>().ok());
                match value {
                    Some(v) if v >= 0.0 => match which.as_str() {
                        "--tolerance" => opts.tolerance_pct = v,
                        "--time-tolerance" => opts.time_tolerance_pct = v,
                        _ => opts.time_floor_ms = v,
                    },
                    _ => {
                        eprintln!("repro compare: `{which}` needs a non-negative number");
                        exit_flushed(2);
                    }
                }
            }
            other if !other.starts_with("--") => paths.push(arg),
            other => {
                eprintln!("repro compare: unknown flag `{other}`");
                exit_flushed(2);
            }
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        eprintln!("usage: repro compare <baseline.json> <new.json> [--tolerance PCT] [--time-tolerance PCT] [--time-floor MS] [--markdown]");
        exit_flushed(2);
    };
    let load = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => match BenchReport::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("repro compare: `{path}`: {e}");
                exit_flushed(2);
            }
        },
        Err(e) => {
            eprintln!("repro compare: cannot read `{path}`: {e}");
            exit_flushed(2);
        }
    };
    let base = load(base_path);
    let new = load(new_path);
    let report = match compare(&base, &new, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro compare: {e}");
            exit_flushed(2);
        }
    };
    if markdown {
        print!("{}", report.render_markdown());
    } else {
        print!("{}", report.render_text());
    }
    if report.regressions() > 0 {
        exit_flushed(1);
    }
}

/// `repro fuzz [--cases N] [--seed S] [--engine E]... [--ulp N]
/// [--inject FAULT] [--corpus DIR] [--max-failures N] [--shrink-budget N]`
fn fuzz_cmd(args: &[String]) {
    use shmls_conformance::harness::Fault;
    use shmls_conformance::{run_fuzz, Engine, FuzzOptions};

    let mut opts = FuzzOptions::default();
    let mut engines: Vec<Engine> = Vec::new();
    let mut it = args.iter();
    let parse_u64 = |flag: &str, v: Option<&String>| -> u64 {
        match v.and_then(|v| v.parse::<u64>().ok()) {
            Some(n) => n,
            None => {
                eprintln!("repro fuzz: `{flag}` needs a non-negative integer");
                exit_flushed(2);
            }
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cases" => opts.cases = parse_u64(arg, it.next()),
            "--seed" => opts.seed = parse_u64(arg, it.next()),
            "--ulp" => opts.check.max_ulps = parse_u64(arg, it.next()),
            "--max-failures" => opts.max_failures = parse_u64(arg, it.next()) as usize,
            "--shrink-budget" => opts.shrink_budget = parse_u64(arg, it.next()) as usize,
            "--engine" => match it.next().and_then(|v| Engine::parse(v)) {
                Some(e) => engines.push(e),
                None => {
                    eprintln!("repro fuzz: `--engine` needs one of cpu|hls|threaded|cycle");
                    exit_flushed(2);
                }
            },
            "--inject" => match it.next().and_then(|v| Fault::parse(v)) {
                Some(f) => opts.check.inject = Some(f),
                None => {
                    eprintln!("repro fuzz: `--inject` needs offset-flip or op-swap");
                    exit_flushed(2);
                }
            },
            "--corpus" => match it.next() {
                Some(dir) => opts.corpus_dir = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("repro fuzz: `--corpus` needs a directory");
                    exit_flushed(2);
                }
            },
            "--no-scale" => opts.scale = false,
            other => {
                eprintln!("repro fuzz: unknown flag `{other}`");
                exit_flushed(2);
            }
        }
    }
    if !engines.is_empty() {
        opts.check.engines = engines;
    }

    println!(
        "fuzzing {} cases, seed {}, engines [{}]{}",
        opts.cases,
        opts.seed,
        opts.check
            .engines
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", "),
        match opts.check.inject {
            Some(f) => format!(", injecting {f}"),
            None => String::new(),
        }
    );
    let summary = run_fuzz(&opts, &mut |line| println!("  {line}"));
    println!(
        "checked {} cases (digest {:016x}): {} failure(s){}",
        summary.cases,
        summary.digest,
        summary.failures.len(),
        if opts.check.inject.is_some() {
            format!(", fault injected in {} case(s)", summary.injected)
        } else {
            String::new()
        }
    );
    if !summary.clean() {
        exit_flushed(1);
    }
}

/// `repro run [--kernel NAME] [--grid I,J,K] [--cus N] [--steps T]
/// [--serial] [--check-parallel]`
fn run_cmd(args: &[String]) {
    use shmls_bench::telemetry::{bench_kernel_names, kernel_data, source_for};
    use stencil_hmls::cache::CompileCache;
    use stencil_hmls::scale::{run_time_marched_with, MarchOptions, MultiCuReport};
    use stencil_hmls::CompileOptions;

    let mut kname = "pw_advection".to_string();
    let mut grid = [16i64, 14, 10];
    let mut cus = 4usize;
    let mut steps = 1usize;
    let mut serial = false;
    let mut check_parallel = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kernel" => match it.next() {
                Some(k) if bench_kernel_names().contains(&k.as_str()) => kname = k.clone(),
                _ => {
                    eprintln!(
                        "repro run: `--kernel` needs one of {}",
                        bench_kernel_names().join("|")
                    );
                    exit_flushed(2);
                }
            },
            "--grid" => {
                let parts: Option<Vec<i64>> = it
                    .next()
                    .map(|v| v.split(',').map(|p| p.trim().parse::<i64>().ok()).collect())
                    .unwrap_or(None);
                match parts.as_deref() {
                    Some([i, j, k]) if *i > 0 && *j > 0 && *k > 0 => grid = [*i, *j, *k],
                    _ => {
                        eprintln!("repro run: `--grid` needs three positive sizes, e.g. 16,14,10");
                        exit_flushed(2);
                    }
                }
            }
            "--cus" | "--steps" => {
                let which = arg.clone();
                match it.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => {
                        if which == "--cus" {
                            cus = n;
                        } else {
                            steps = n;
                        }
                    }
                    None => {
                        eprintln!("repro run: `{which}` needs a non-negative integer");
                        exit_flushed(2);
                    }
                }
            }
            "--serial" => serial = true,
            "--check-parallel" => check_parallel = true,
            other => {
                eprintln!("repro run: unknown flag `{other}`");
                exit_flushed(2);
            }
        }
    }

    let kernel = match shmls_frontend::parse_kernel(&source_for(&kname, grid)) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("repro run: parsing {kname}: {e}");
            exit_flushed(1);
        }
    };
    let data = kernel_data(&kname, grid);
    let opts = CompileOptions::default();
    let cache = CompileCache::new();
    let march = |serial: bool| MarchOptions {
        serial,
        cache: Some(&cache),
        ..Default::default()
    };
    let run = |serial: bool| -> MultiCuReport {
        match run_time_marched_with(&kernel, &data, steps, cus, &opts, &march(serial)) {
            Ok((_, report)) => report,
            Err(e) => {
                eprintln!("repro run: {e}");
                exit_flushed(1);
            }
        }
    };

    let report = run(serial);
    println!(
        "{kname} {grid:?}: {} step(s) over {} compute unit(s) ({})",
        report.steps,
        report.cus,
        if serial { "serial" } else { "parallel" }
    );
    println!(
        "  {:>3} {:>12} {:>10} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "cu", "rows", "elems", "streams", "stream-elems", "mem-beats", "model-cyc", "wall-ms"
    );
    for cu in &report.per_cu {
        println!(
            "  {:>3} {:>12} {:>10} {:>8} {:>12} {:>10} {:>12} {:>10.3}",
            cu.cu,
            format!("[{}, {})", cu.rows.0, cu.rows.1),
            cu.interior_elems,
            cu.streams,
            cu.stream_elements,
            cu.mem_beats,
            cu.model_cycles,
            cu.wall.as_secs_f64() * 1e3,
        );
    }
    println!(
        "  wall {:.3} ms, {:.3e} elems/s, load imbalance {:.3}, \
         model makespan {} cycles (imbalance {:.3})",
        report.wall.as_secs_f64() * 1e3,
        report.elems_per_s,
        report.load_imbalance,
        report.model.makespan_cycles,
        report.model.load_imbalance,
    );
    println!(
        "  compile cache: {} hit(s), {} miss(es) (hit rate {:.2})",
        report.cache_hits,
        report.cache_misses,
        report.cache_hit_rate()
    );

    if check_parallel {
        // Best-of-3 each way: the cache is warm after the first run, so
        // this measures execution, not compilation. On a multi-core host
        // parallel must be no slower than serial; on a single core a
        // speedup is physically impossible, so only bound the threading
        // overhead instead (1.5× serial).
        let best = |serial: bool| (0..3).map(|_| run(serial).wall).min().unwrap();
        let serial_wall = best(true);
        let parallel_wall = best(false);
        let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (limit, rule) = if cpus >= 2 {
            (serial_wall, "parallel <= serial")
        } else {
            (serial_wall * 3 / 2, "single core: parallel <= 1.5x serial")
        };
        println!(
            "  check-parallel: serial {:.3} ms, parallel {:.3} ms, speedup {:.2}x ({rule})",
            serial_wall.as_secs_f64() * 1e3,
            parallel_wall.as_secs_f64() * 1e3,
            speedup,
        );
        if parallel_wall > limit {
            eprintln!("repro run: parallel execution violated `{rule}`");
            exit_flushed(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let eval = EvalContext::default();
    let command = args.first().map(String::as_str).unwrap_or("all");
    match command {
        "figure4" => print!("{}", figure4(&eval)),
        "figure5" => print!("{}", figure5(&eval)),
        "figure6" => print!("{}", figure6(&eval)),
        "table1" => print!("{}", table1(&eval)),
        "table2" => print!("{}", table2(&eval)),
        "ablation" => print!("{}", ablation(&eval)),
        "dse" => print!("{}", dse(&eval)),
        "cycles" => print!("{}", cycles(&eval)),
        "ii" => print!("{}", ii_report(&eval)),
        "validate" => print!("{}", validate()),
        "bench" => bench(&args[1..]),
        "compare" => compare_cmd(&args[1..]),
        "fuzz" => fuzz_cmd(&args[1..]),
        "run" => run_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "loadgen" => loadgen_cmd(&args[1..]),
        "json" => {
            let path = args.get(1).map(String::as_str).unwrap_or("results.json");
            let results = evaluate_all(&eval);
            let body = serde_json::to_string_pretty(&results).expect("results serialise");
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("repro: cannot write `{path}`: {e}");
                exit_flushed(1);
            }
            println!("wrote {path}");
        }
        "all" => {
            for section in [
                figure4(&eval),
                figure5(&eval),
                figure6(&eval),
                table1(&eval),
                table2(&eval),
                ablation(&eval),
                dse(&eval),
                cycles(&eval),
                ii_report(&eval),
                validate(),
            ] {
                println!("{section}");
            }
        }
        other => {
            eprintln!(
                "unknown command `{other}`; expected figure4|figure5|figure6|table1|table2|\
                 ablation|dse|cycles|ii|validate|bench|compare|fuzz|run|serve|loadgen|json|all"
            );
            exit_flushed(2);
        }
    }
}
