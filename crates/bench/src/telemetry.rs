//! The `repro bench` / `repro compare` performance-telemetry harness.
//!
//! `run_bench` compiles both paper kernels at the paper's grid sizes with
//! full per-pass timing ([`stencil_hmls::CompiledKernel::timings`]), runs
//! the sequential and threaded dataflow engines plus the cycle-stepped
//! simulator on small grids, and flattens everything into a
//! schema-versioned metric map serialised as `BENCH.json`.
//!
//! `compare` diffs two such reports metric-by-metric and classifies each
//! delta against a tolerance, so CI can gate on regressions (see
//! `.github/workflows/ci.yml` and the committed `bench/baseline.json`).
//!
//! Two noise classes keep the gate honest: `deterministic` metrics
//! (simulated cycles, stage/stream counts, memory beats) regress only when
//! the compiler's output actually changes and get the tight tolerance;
//! `wallclock` metrics (per-pass ms, engine throughput) vary with the host
//! and get a separate, much looser tolerance.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::json::Json;
use shmls_ir::bytecode::ApplyMode;
use shmls_kernels::{laplace, pw_advection, tracer_advection};
use stencil_hmls::cache::CompileCache;
use stencil_hmls::runner::{
    run_hls, run_hls_threaded, run_stencil, run_stencil_bytecode_with, KernelData,
};
use stencil_hmls::scale::{run_time_marched_with, MarchOptions};
use stencil_hmls::{compile, CompileOptions, CompiledKernel};

/// Version of the `BENCH.json` schema. Bump on any breaking change to the
/// metric key space or file layout, and refresh `bench/baseline.json` in
/// the same commit — `compare` refuses to diff across versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Which direction is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Larger values are better (throughput).
    Higher,
    /// Smaller values are better (durations, cycles, resource counts).
    Lower,
}

/// How noisy a metric is across runs and hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Noise {
    /// Identical on every run of the same code (cycle counts, design
    /// structure). Compared with the tight tolerance.
    Deterministic,
    /// Wall-clock derived; varies with machine and load. Compared with
    /// the loose time tolerance.
    WallClock,
}

/// One measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// The measurement.
    pub value: f64,
    /// Display unit (`"ms"`, `"cycles"`, `"elems/s"`, `"count"`, …).
    pub unit: String,
    /// Improvement direction.
    pub better: Better,
    /// Noise class (selects which tolerance applies).
    pub noise: Noise,
}

/// Host fingerprint recorded alongside the numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism.
    pub cpus: usize,
}

impl HostInfo {
    /// Fingerprint the current host.
    pub fn current() -> Self {
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// A full benchmark report (the in-memory form of `BENCH.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// `git rev-parse --short HEAD` at measurement time (or `"unknown"`).
    pub git_rev: String,
    /// Where the numbers were taken.
    pub host: HostInfo,
    /// Flat metric map, keyed `area/kernel/…` (sorted for stable diffs).
    pub metrics: BTreeMap<String, Metric>,
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The benchmark kernels, with their engine-run grids per mode.
fn bench_kernels(quick: bool) -> Vec<(&'static str, [i64; 3])> {
    if quick {
        vec![
            ("pw_advection", [10, 8, 6]),
            ("tracer_advection", [8, 7, 6]),
        ]
    } else {
        vec![
            ("pw_advection", [16, 14, 10]),
            ("tracer_advection", [12, 10, 8]),
        ]
    }
}

/// The interpreter-tier kernels (tree-walker vs bytecode), with their
/// grids per mode. The ISSUE's ≥2× speedup target is measured on these.
/// Grids are sized so the apply loops dominate the per-run fixed costs
/// (argument binding, `stencil.load` copies) that all tiers share — at
/// toy sizes those costs dilute any tier-vs-tier ratio toward 1×. Inner
/// extents deliberately include a partial chunk so the vector tier's
/// tail path stays on the measured profile.
fn interp_kernels(quick: bool) -> Vec<(&'static str, [i64; 3])> {
    if quick {
        vec![("laplace", [16, 16, 28]), ("pw_advection", [10, 10, 20])]
    } else {
        vec![("laplace", [24, 24, 44]), ("pw_advection", [16, 14, 28])]
    }
}

/// DSL source for a named bench kernel at `grid`. Panics on an unknown
/// name — callers validate against [`bench_kernel_names`] first.
pub fn source_for(kernel: &str, grid: [i64; 3]) -> String {
    match kernel {
        "laplace" => laplace::source_3d(grid[0], grid[1], grid[2]),
        "pw_advection" => pw_advection::source(grid[0], grid[1], grid[2]),
        "tracer_advection" => tracer_advection::source(grid[0], grid[1], grid[2]),
        other => unreachable!("unknown bench kernel `{other}`"),
    }
}

/// The names [`source_for`] and [`kernel_data`] accept.
pub fn bench_kernel_names() -> &'static [&'static str] {
    &["laplace", "pw_advection", "tracer_advection"]
}

/// Deterministic random input data for a named bench kernel at `grid`
/// (same seeds as the telemetry runs use).
pub fn kernel_data(kernel: &str, grid: [i64; 3]) -> KernelData {
    let [nx, ny, nz] = grid;
    match kernel {
        "laplace" => {
            let mut a = shmls_kernels::Grid3::zeros([nx, ny, nz], 1);
            a.fill_random(5);
            KernelData::default()
                .buffer("a", a.to_buffer())
                .scalar("w", 0.15)
        }
        "pw_advection" => {
            let inputs = pw_advection::PwInputs::random(nx, ny, nz, 1);
            KernelData::default()
                .buffer("u", inputs.u.to_buffer())
                .buffer("v", inputs.v.to_buffer())
                .buffer("w", inputs.w.to_buffer())
                .buffer("tzc1", inputs.tzc1.to_buffer())
                .buffer("tzc2", inputs.tzc2.to_buffer())
                .buffer("tzd1", inputs.tzd1.to_buffer())
                .buffer("tzd2", inputs.tzd2.to_buffer())
                .scalar("tcx", inputs.tcx)
                .scalar("tcy", inputs.tcy)
        }
        "tracer_advection" => {
            let inputs = tracer_advection::TracerInputs::random(nx, ny, nz, 2);
            KernelData::default()
                .buffer("tsn", inputs.tsn.to_buffer())
                .buffer("pun", inputs.pun.to_buffer())
                .buffer("pvn", inputs.pvn.to_buffer())
                .buffer("pwn", inputs.pwn.to_buffer())
                .buffer("tmask", inputs.tmask.to_buffer())
                .buffer("umask", inputs.umask.to_buffer())
                .buffer("vmask", inputs.vmask.to_buffer())
                .buffer("rnfmsk", inputs.rnfmsk.to_buffer())
                .buffer("upsmsk", inputs.upsmsk.to_buffer())
                .buffer("ztfreez", inputs.ztfreez.to_buffer())
                .buffer("rnfmsk_z", inputs.rnfmsk_z.to_buffer())
                .buffer("e3t", inputs.e3t.to_buffer())
                .scalar("pdt", inputs.pdt)
        }
        other => unreachable!("unknown bench kernel `{other}`"),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn det(value: f64, unit: &str) -> Metric {
    Metric {
        value,
        unit: unit.to_string(),
        better: Better::Lower,
        noise: Noise::Deterministic,
    }
}

fn wall_ms(value: f64) -> Metric {
    Metric {
        value,
        unit: "ms".to_string(),
        better: Better::Lower,
        noise: Noise::WallClock,
    }
}

fn throughput(value: f64) -> Metric {
    Metric {
        value,
        unit: "elems/s".to_string(),
        better: Better::Higher,
        noise: Noise::WallClock,
    }
}

/// Best-of-N per-pass durations across repeated compiles: the minimum is
/// the standard noise-resistant estimator for short deterministic work.
fn best_pass_times(runs: &[&CompiledKernel]) -> Vec<(String, Duration)> {
    let mut names: Vec<String> = Vec::new();
    for r in runs[0].timings.records() {
        if !names.contains(&r.name) {
            names.push(r.name.clone());
        }
    }
    names
        .into_iter()
        .map(|name| {
            let best = runs
                .iter()
                .filter_map(|c| c.timings.get(&name))
                .min()
                .unwrap_or(Duration::ZERO);
            (name, best)
        })
        .collect()
}

fn compile_metrics(
    metrics: &mut BTreeMap<String, Metric>,
    kernel: &str,
    label: &str,
    runs: &[&CompiledKernel],
) {
    for (name, best) in best_pass_times(runs) {
        metrics.insert(
            format!("compile/{kernel}/{label}/{name}_ms"),
            wall_ms(ms(best)),
        );
    }
    let compiled = runs[0];
    // Design structure: deterministic fingerprints of the generated
    // dataflow — these move only when the compiler's output changes.
    let r = &compiled.report;
    metrics.insert(
        format!("design/{kernel}/{label}/streams"),
        det(r.streams as f64, "count"),
    );
    metrics.insert(
        format!("design/{kernel}/{label}/compute_stages"),
        det(r.compute_stages as f64, "count"),
    );
    metrics.insert(
        format!("design/{kernel}/{label}/dup_stages"),
        det(r.dup_stages as f64, "count"),
    );
    metrics.insert(
        format!("design/{kernel}/{label}/shift_buffers"),
        det(r.shift_buffers as f64, "count"),
    );
}

/// Run the benchmark suite. `quick` limits compile timing to the first
/// paper size per kernel and shrinks the engine grids — the CI
/// configuration; the full run covers every paper size.
pub fn run_bench(quick: bool) -> Result<BenchReport, String> {
    let mut metrics = BTreeMap::new();

    // --- compile timing at the paper's grid sizes ------------------------
    for kernel in [crate::Kernel::PwAdvection, crate::Kernel::TracerAdvection] {
        let kname = match kernel {
            crate::Kernel::PwAdvection => "pw_advection",
            crate::Kernel::TracerAdvection => "tracer_advection",
        };
        let sizes = kernel.sizes();
        let sizes = if quick { &sizes[..1] } else { &sizes[..] };
        for size in sizes {
            let mut runs = Vec::new();
            for _ in 0..3 {
                runs.push(
                    compile(&kernel.source(size.grid), &CompileOptions::default())
                        .map_err(|e| format!("compiling {kname} at {}: {e}", size.label))?,
                );
            }
            let refs: Vec<&CompiledKernel> = runs.iter().collect();
            compile_metrics(&mut metrics, kname, size.label, &refs);
        }
    }

    // --- engine runs on small grids --------------------------------------
    for (kname, grid) in bench_kernels(quick) {
        let compiled = compile(&source_for(kname, grid), &CompileOptions::default())
            .map_err(|e| format!("compiling {kname} for simulation: {e}"))?;
        let data = kernel_data(kname, grid);
        let points: i64 = grid.iter().product();

        // Sequential (Kahn) engine.
        let t0 = Instant::now();
        let (_, (_, pushed, beats)) =
            run_hls(&compiled, &data).map_err(|e| format!("{kname} sequential engine: {e}"))?;
        let seq_wall = t0.elapsed();
        metrics.insert(
            format!("sim/{kname}/seq_elems_per_s"),
            throughput(points as f64 / seq_wall.as_secs_f64().max(1e-9)),
        );
        metrics.insert(format!("sim/{kname}/mem_beats"), det(beats as f64, "beats"));
        metrics.insert(
            format!("sim/{kname}/stream_elements"),
            det(pushed as f64, "elems"),
        );

        // Threaded engine (bounded FIFOs, one thread per stage).
        let t0 = Instant::now();
        let threaded = run_hls_threaded(&compiled, &data, Duration::from_secs(120))
            .map_err(|e| format!("{kname} threaded engine: {e}"))?;
        let thr_wall = t0.elapsed();
        if let Err(report) = threaded {
            return Err(format!("{kname} threaded engine deadlocked:\n{report}"));
        }
        metrics.insert(
            format!("sim/{kname}/threaded_elems_per_s"),
            throughput(points as f64 / thr_wall.as_secs_f64().max(1e-9)),
        );

        // Cycle-stepped simulation: fully deterministic.
        let design = shmls_fpga_sim::design::DesignDescriptor::from_hls_func(
            &compiled.ctx,
            compiled.hls_func,
        )
        .map_err(|e| format!("{kname} design extraction: {e}"))?;
        let stepped = shmls_fpga_sim::cycle::simulate(&design, None)
            .map_err(|report| format!("{kname} cycle simulation deadlocked:\n{report}"))?;
        metrics.insert(
            format!("sim/{kname}/cycles"),
            det(stepped.cycles as f64, "cycles"),
        );
    }

    // --- interpreter tiers: tree-walker vs bytecode ------------------------
    // Both tiers execute the same stencil-dialect function on identical
    // data; the bytecode tier must be bitwise-identical (the conformance
    // suite enforces that) and substantially faster (the compare gate
    // enforces *that*: `bytecode_speedup` is higher-is-better, so a
    // silent fallback to the tree-walker reads as a large regression).
    for (kname, grid) in interp_kernels(quick) {
        let compiled = compile(&source_for(kname, grid), &CompileOptions::default())
            .map_err(|e| format!("compiling {kname} for the interp bench: {e}"))?;
        if compiled.apply_plans.is_empty() {
            return Err(format!("{kname}: no stencil.apply compiled to bytecode"));
        }
        let data = kernel_data(kname, grid);
        let points: i64 = grid.iter().product();

        // Best-of-3: all tiers are deterministic, so the minimum is the
        // noise-resistant estimate of the true cost. `bytecode` pins
        // scalar (per-point) dispatch — the PR 5 tier — and `simd` is the
        // chunked/threaded executor, so `simd_speedup` measures exactly
        // the vectorisation + threading win and a silent fallback to
        // scalar dispatch reads as a large higher-is-better regression.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut tree_best = Duration::MAX;
        let mut byte_best = Duration::MAX;
        let mut simd_best = Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            run_stencil(&compiled, &data).map_err(|e| format!("{kname} tree-walker: {e}"))?;
            tree_best = tree_best.min(t0.elapsed());
            let t0 = Instant::now();
            run_stencil_bytecode_with(&compiled, &data, ApplyMode::Scalar)
                .map_err(|e| format!("{kname} bytecode tier: {e}"))?;
            byte_best = byte_best.min(t0.elapsed());
            let t0 = Instant::now();
            run_stencil_bytecode_with(&compiled, &data, ApplyMode::Chunked { threads })
                .map_err(|e| format!("{kname} simd tier: {e}"))?;
            simd_best = simd_best.min(t0.elapsed());
        }
        metrics.insert(
            format!("interp/{kname}/tree_elems_per_s"),
            throughput(points as f64 / tree_best.as_secs_f64().max(1e-9)),
        );
        metrics.insert(
            format!("interp/{kname}/bytecode_elems_per_s"),
            throughput(points as f64 / byte_best.as_secs_f64().max(1e-9)),
        );
        metrics.insert(
            format!("interp/{kname}/bytecode_speedup"),
            Metric {
                value: tree_best.as_secs_f64() / byte_best.as_secs_f64().max(1e-9),
                unit: "x".to_string(),
                better: Better::Higher,
                noise: Noise::WallClock,
            },
        );
        metrics.insert(
            format!("interp/{kname}/simd_elems_per_s"),
            throughput(points as f64 / simd_best.as_secs_f64().max(1e-9)),
        );
        metrics.insert(
            format!("interp/{kname}/simd_speedup"),
            Metric {
                value: byte_best.as_secs_f64() / simd_best.as_secs_f64().max(1e-9),
                unit: "x".to_string(),
                better: Better::Higher,
                noise: Noise::WallClock,
            },
        );
    }

    // --- scale-out: parallel compute units + time-marching ----------------
    // One kernel is enough to gate the scale path: pw_advection over 4 CU
    // slabs, time-marched so the compile cache and halo exchange are both
    // on the measured path. The serial run populates a private cache; the
    // parallel run must then hit it on every CU (`cache_hit_rate` is a
    // deterministic 1.0 unless caching breaks).
    {
        let (kname, grid) = bench_kernels(quick)[0];
        let steps = if quick { 4 } else { 8 };
        let cus = 4;
        let kernel = shmls_frontend::parse_kernel(&source_for(kname, grid))
            .map_err(|e| format!("parsing {kname} for the scale bench: {e}"))?;
        let data = kernel_data(kname, grid);
        let opts = CompileOptions::default();
        let cache = CompileCache::new();

        let serial = MarchOptions {
            serial: true,
            cache: Some(&cache),
            ..Default::default()
        };
        let (_, serial_report) = run_time_marched_with(&kernel, &data, steps, cus, &opts, &serial)
            .map_err(|e| format!("{kname} serial scale run: {e}"))?;

        let parallel = MarchOptions {
            serial: false,
            cache: Some(&cache),
            ..Default::default()
        };
        let (_, report) = run_time_marched_with(&kernel, &data, steps, cus, &opts, &parallel)
            .map_err(|e| format!("{kname} parallel scale run: {e}"))?;

        metrics.insert(
            format!("scale/{kname}/multi_cu_elems_per_s"),
            throughput(report.elems_per_s),
        );
        metrics.insert(
            format!("scale/{kname}/parallel_speedup"),
            Metric {
                value: serial_report.wall.as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
                unit: "x".to_string(),
                better: Better::Higher,
                noise: Noise::WallClock,
            },
        );
        metrics.insert(
            format!("scale/{kname}/cache_hit_rate"),
            Metric {
                value: report.cache_hit_rate(),
                unit: "ratio".to_string(),
                better: Better::Higher,
                noise: Noise::Deterministic,
            },
        );
        metrics.insert(
            format!("scale/{kname}/model_makespan_cycles"),
            det(report.model.makespan_cycles as f64, "cycles"),
        );
        metrics.insert(
            format!("scale/{kname}/model_load_imbalance"),
            det(report.model.load_imbalance, "ratio"),
        );
    }

    // --- compile-as-a-service: a real server under real load --------------
    // An in-process `shmls-serve` instance (fresh disk-persistent cache in
    // a scratch directory) measured through actual TCP sockets by the
    // loadgen — the same path `repro loadgen` and the serve-loadtest CI
    // job exercise. `error_rate` and `warm_hit_rate` are deterministic
    // service invariants (any error or cache regression trips the tight
    // gate); throughput and latency ride the loose wall-clock tolerance.
    {
        let scratch = std::env::temp_dir().join(format!(
            "shmls-bench-serve-{}-{}",
            std::process::id(),
            if quick { "quick" } else { "full" }
        ));
        let _ = std::fs::remove_dir_all(&scratch);
        let handle = shmls_serve::server::serve(shmls_serve::server::ServerConfig {
            cache_dir: Some(scratch.clone()),
            ..Default::default()
        })
        .map_err(|e| format!("starting the compile server: {e}"))?;
        let config = shmls_serve::loadgen::LoadgenConfig {
            addr: handle.local_addr().to_string(),
            clients: 8,
            requests: if quick { 32 } else { 64 },
            unique_keys: if quick { 4 } else { 8 },
            ..Default::default()
        };
        let report = shmls_serve::loadgen::run(&config)
            .map_err(|e| format!("loadgen against the compile server: {e}"))?;
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&scratch);
        if !report.passed() {
            return Err(format!(
                "compile-server loadgen gate failed: {}",
                report.gate_failures.join("; ")
            ));
        }
        let total_requests = (report.cold.requests + report.warm.requests).max(1);
        let total_errors = report.cold.errors + report.warm.errors;
        metrics.insert(
            "serve/loadgen/cold_compiles_per_s".to_string(),
            Metric {
                value: report.cold.compiles_per_s(),
                unit: "compiles/s".to_string(),
                better: Better::Higher,
                noise: Noise::WallClock,
            },
        );
        metrics.insert(
            "serve/loadgen/warm_requests_per_s".to_string(),
            Metric {
                value: report.warm.requests_per_s(),
                unit: "req/s".to_string(),
                better: Better::Higher,
                noise: Noise::WallClock,
            },
        );
        metrics.insert(
            "serve/loadgen/warm_hit_rate".to_string(),
            Metric {
                value: report.warm.hit_rate(),
                unit: "ratio".to_string(),
                better: Better::Higher,
                noise: Noise::Deterministic,
            },
        );
        metrics.insert(
            "serve/loadgen/warm_p99_ms".to_string(),
            wall_ms(report.warm.p99_us as f64 / 1e3),
        );
        metrics.insert(
            "serve/loadgen/error_rate".to_string(),
            det(total_errors as f64 / total_requests as f64, "ratio"),
        );
    }

    Ok(BenchReport {
        schema_version: SCHEMA_VERSION,
        mode: if quick { "quick" } else { "full" }.to_string(),
        git_rev: git_rev(),
        host: HostInfo::current(),
        metrics,
    })
}

// ---- serialisation -------------------------------------------------------

impl Metric {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("value".into(), Json::Num(self.value)),
            ("unit".into(), Json::Str(self.unit.clone())),
            (
                "better".into(),
                Json::Str(
                    match self.better {
                        Better::Higher => "higher",
                        Better::Lower => "lower",
                    }
                    .into(),
                ),
            ),
            (
                "noise".into(),
                Json::Str(
                    match self.noise {
                        Noise::Deterministic => "deterministic",
                        Noise::WallClock => "wallclock",
                    }
                    .into(),
                ),
            ),
        ])
    }

    fn from_json(key: &str, v: &Json) -> Result<Metric, String> {
        let value = v
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("metric `{key}`: missing numeric `value`"))?;
        let unit = v
            .get("unit")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let better = match v.get("better").and_then(Json::as_str) {
            Some("higher") => Better::Higher,
            Some("lower") | None => Better::Lower,
            Some(other) => return Err(format!("metric `{key}`: bad `better` value `{other}`")),
        };
        let noise = match v.get("noise").and_then(Json::as_str) {
            Some("deterministic") => Noise::Deterministic,
            Some("wallclock") | None => Noise::WallClock,
            Some(other) => return Err(format!("metric `{key}`: bad `noise` value `{other}`")),
        };
        Ok(Metric {
            value,
            unit,
            better,
            noise,
        })
    }
}

impl BenchReport {
    /// Serialise to the `BENCH.json` text form.
    pub fn to_json(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|(k, m)| (k.clone(), m.to_json()))
            .collect();
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("mode".into(), Json::Str(self.mode.clone())),
            ("git_rev".into(), Json::Str(self.git_rev.clone())),
            (
                "host".into(),
                Json::Obj(vec![
                    ("os".into(), Json::Str(self.host.os.clone())),
                    ("arch".into(), Json::Str(self.host.arch.clone())),
                    ("cpus".into(), Json::Num(self.host.cpus as f64)),
                ]),
            ),
            ("metrics".into(), Json::Obj(metrics)),
        ])
        .pretty()
    }

    /// Parse the `BENCH.json` text form.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing `schema_version`")?;
        let mode = v
            .get("mode")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let git_rev = v
            .get("git_rev")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let host = HostInfo {
            os: v
                .get("host")
                .and_then(|h| h.get("os"))
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            arch: v
                .get("host")
                .and_then(|h| h.get("arch"))
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            cpus: v
                .get("host")
                .and_then(|h| h.get("cpus"))
                .and_then(Json::as_u64)
                .unwrap_or(0) as usize,
        };
        let mut metrics = BTreeMap::new();
        for (k, m) in v
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or("missing `metrics` object")?
        {
            metrics.insert(k.clone(), Metric::from_json(k, m)?);
        }
        Ok(BenchReport {
            schema_version,
            mode,
            git_rev,
            host,
            metrics,
        })
    }
}

// ---- comparison ----------------------------------------------------------

/// Tolerances for [`compare`], in percent.
#[derive(Debug, Clone, Copy)]
pub struct CompareOptions {
    /// Allowed degradation for deterministic metrics.
    pub tolerance_pct: f64,
    /// Allowed degradation for wall-clock metrics.
    pub time_tolerance_pct: f64,
    /// Absolute floor for millisecond metrics: a `ms` metric only gates
    /// when it is over `time_tolerance_pct` *and* more than this many ms
    /// slower. Sub-millisecond passes jitter by whole multiples between
    /// identical-code runs, so a purely relative gate would flap.
    pub time_floor_ms: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        Self {
            tolerance_pct: 2.0,
            time_tolerance_pct: 75.0,
            time_floor_ms: 5.0,
        }
    }
}

/// Classification of one metric's delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// Within tolerance.
    Ok,
    /// Better than baseline beyond tolerance.
    Improved,
    /// Worse than baseline beyond tolerance — gates CI.
    Regressed,
    /// Present in the baseline but not in the new report — gates CI.
    MissingInNew,
    /// Only in the new report (informational).
    New,
}

/// One row of the delta table.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Metric key.
    pub metric: String,
    /// Baseline value, if present.
    pub base: Option<f64>,
    /// New value, if present.
    pub new: Option<f64>,
    /// Signed delta in percent (positive = value went up).
    pub delta_pct: Option<f64>,
    /// The tolerance applied to this row.
    pub tolerance_pct: f64,
    /// Display unit.
    pub unit: String,
    /// Verdict.
    pub status: RowStatus,
}

/// The full delta table.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// One row per metric, baseline order then new-only metrics.
    pub rows: Vec<CompareRow>,
}

impl CompareReport {
    /// Gating failures: regressions plus metrics that vanished.
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.status, RowStatus::Regressed | RowStatus::MissingInNew))
            .count()
    }

    fn status_str(status: RowStatus) -> &'static str {
        match status {
            RowStatus::Ok => "ok",
            RowStatus::Improved => "improved",
            RowStatus::Regressed => "REGRESSED",
            RowStatus::MissingInNew => "MISSING",
            RowStatus::New => "new",
        }
    }

    fn fmt_value(v: Option<f64>) -> String {
        match v {
            None => "-".to_string(),
            Some(v) if v.abs() < f64::EPSILON => "0".to_string(),
            Some(v) if v.abs() >= 1e6 => format!("{v:.3e}"),
            Some(v) if v.abs() < 0.01 => format!("{v:.2e}"),
            Some(v) => format!("{v:.3}"),
        }
    }

    fn fmt_delta(d: Option<f64>) -> String {
        match d {
            None => "-".to_string(),
            Some(d) => format!("{d:+.1}%"),
        }
    }

    /// Plain-text delta table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        writeln!(
            out,
            "{:<width$} {:>12} {:>12} {:>9} {:>7} {:>10}",
            "metric", "baseline", "new", "delta", "tol", "status"
        )
        .unwrap();
        for r in &self.rows {
            writeln!(
                out,
                "{:<width$} {:>12} {:>12} {:>9} {:>6}% {:>10}",
                r.metric,
                Self::fmt_value(r.base),
                Self::fmt_value(r.new),
                Self::fmt_delta(r.delta_pct),
                r.tolerance_pct,
                Self::status_str(r.status),
            )
            .unwrap();
        }
        let n = self.regressions();
        writeln!(
            out,
            "\n{} metric(s) compared, {} regression(s)",
            self.rows.len(),
            n
        )
        .unwrap();
        out
    }

    /// GitHub-flavoured markdown delta table (for the CI job summary).
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "| metric | baseline | new | delta | tol | status |").unwrap();
        writeln!(out, "|---|---:|---:|---:|---:|---|").unwrap();
        for r in &self.rows {
            writeln!(
                out,
                "| `{}` | {} | {} | {} | {}% | {} |",
                r.metric,
                Self::fmt_value(r.base),
                Self::fmt_value(r.new),
                Self::fmt_delta(r.delta_pct),
                r.tolerance_pct,
                Self::status_str(r.status),
            )
            .unwrap();
        }
        let n = self.regressions();
        writeln!(
            out,
            "\n**{} metric(s) compared, {} regression(s)**",
            self.rows.len(),
            n
        )
        .unwrap();
        out
    }
}

/// Diff `new` against `base`. Errors (rather than producing a table) on
/// schema-version or mode mismatches — those comparisons are meaningless
/// and almost always mean the baseline needs refreshing.
pub fn compare(
    base: &BenchReport,
    new: &BenchReport,
    opts: &CompareOptions,
) -> Result<CompareReport, String> {
    if base.schema_version != new.schema_version {
        return Err(format!(
            "schema version mismatch: baseline v{} vs new v{} — refresh the baseline \
             (see DESIGN.md, `repro bench`)",
            base.schema_version, new.schema_version
        ));
    }
    if base.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema version v{} not supported by this tool (expects v{SCHEMA_VERSION})",
            base.schema_version
        ));
    }
    if base.mode != new.mode {
        return Err(format!(
            "bench mode mismatch: baseline `{}` vs new `{}`",
            base.mode, new.mode
        ));
    }

    let mut rows = Vec::new();
    for (key, b) in &base.metrics {
        let row = match new.metrics.get(key) {
            None => CompareRow {
                metric: key.clone(),
                base: Some(b.value),
                new: None,
                delta_pct: None,
                tolerance_pct: 0.0,
                unit: b.unit.clone(),
                status: RowStatus::MissingInNew,
            },
            Some(n) => {
                let tolerance_pct = match b.noise {
                    Noise::Deterministic => opts.tolerance_pct,
                    Noise::WallClock => opts.time_tolerance_pct,
                };
                let delta_pct = if b.value == 0.0 {
                    if n.value == 0.0 {
                        0.0
                    } else {
                        // From zero, any change is "infinitely" large;
                        // report ±1000% so the sign still reads.
                        1000.0 * n.value.signum()
                    }
                } else {
                    (n.value - b.value) / b.value.abs() * 100.0
                };
                // Positive "worseness" = degradation. Higher-is-better
                // metrics compare as a ratio: dropping to 1/k of the
                // baseline reads as a (k-1)·100% degradation, symmetric
                // with a lower-is-better metric growing k×. Negating the
                // plain delta would cap degradations at 100% (values are
                // non-negative) and the loose wall-clock tolerances could
                // never fire on a throughput collapse.
                let worse_pct = match b.better {
                    Better::Lower => delta_pct,
                    Better::Higher if b.value > 0.0 && n.value > 0.0 => {
                        (b.value / n.value - 1.0) * 100.0
                    }
                    // Throughput collapsed to zero: unboundedly worse.
                    Better::Higher if b.value > 0.0 => f64::INFINITY,
                    Better::Higher => -delta_pct,
                };
                // Millisecond metrics additionally need an absolute
                // movement beyond the floor before they count either way.
                let floored = b.unit == "ms"
                    && b.noise == Noise::WallClock
                    && (n.value - b.value).abs() < opts.time_floor_ms;
                let status = if floored {
                    RowStatus::Ok
                } else if worse_pct > tolerance_pct {
                    RowStatus::Regressed
                } else if worse_pct < -tolerance_pct {
                    RowStatus::Improved
                } else {
                    RowStatus::Ok
                };
                CompareRow {
                    metric: key.clone(),
                    base: Some(b.value),
                    new: Some(n.value),
                    delta_pct: Some(delta_pct),
                    tolerance_pct,
                    unit: b.unit.clone(),
                    status,
                }
            }
        };
        rows.push(row);
    }
    for (key, n) in &new.metrics {
        if !base.metrics.contains_key(key) {
            rows.push(CompareRow {
                metric: key.clone(),
                base: None,
                new: Some(n.value),
                delta_pct: None,
                tolerance_pct: 0.0,
                unit: n.unit.clone(),
                status: RowStatus::New,
            });
        }
    }
    Ok(CompareReport { rows })
}
