//! The tracer advection scheme — the paper's second benchmark kernel,
//! "from the NEMO ocean model which is part of the PSyclone benchmark
//! suite". A representative formulation of the MUSCL tracer-advection
//! step preserving the properties the evaluation depends on:
//!
//! - **24 stencil computations across 6 written fields** (the paper's
//!   complexity characterisation),
//! - a deep producer→consumer dependency chain (ice mask → upstream
//!   indicator → gradients → limited slopes → directional fluxes → tracer
//!   update) that *"do\[es\] not allow for a clean split across
//!   components"*, and
//! - **17 memory-mapped arguments** (16 field ports + 1 small-data port),
//!   which forces a single compute unit on the U280 exactly as in §4.
//!
//! Neighbour accesses of intermediate quantities are algebraically inlined
//! one level (reading the *input* fields at the neighbouring point) so all
//! cross-point reads touch external inputs — see DESIGN.md §8.

use crate::grid::{fsign, Grid3, Param1};

/// DSL source for the tracer advection kernel at the given grid size.
pub fn source(nx: i64, ny: i64, nz: i64) -> String {
    TEMPLATE
        .replace("@NX@", &nx.to_string())
        .replace("@NY@", &ny.to_string())
        .replace("@NZ@", &nz.to_string())
}

const TEMPLATE: &str = r#"
// NEMO-style MUSCL tracer advection, 24 stencil computations / 6 fields.
kernel tracer_advection {
  grid(@NX@, @NY@, @NZ@)
  halo 1

  field tsn     : input
  field pun     : input
  field pvn     : input
  field pwn     : input
  field tmask   : input
  field umask   : input
  field vmask   : input
  field rnfmsk  : input
  field upsmsk  : input
  field ztfreez : input

  field mydomain : output
  field zind     : output
  field zslpx    : output
  field zslpy    : output
  field zwx      : output
  field zwy      : output

  field zice   : temp
  field zgrx   : temp
  field zgry   : temp
  field zgrxm  : temp
  field zgrym  : temp
  field zslpx2 : temp
  field zslpy2 : temp
  field z0u    : temp
  field zalpha : temp
  field zu     : temp
  field zzwx   : temp
  field zzwy   : temp
  field z0v    : temp
  field zbeta  : temp
  field zv     : temp
  field zzwyx  : temp
  field zzwyy  : temp
  field zbtr   : temp

  param rnfmsk_z[k]
  param e3t[k]

  const pdt

  // 1. Freezing-point ice indicator.
  compute zice { zice = 0.5 - 0.5 * sign(1.0, tsn[0,0,0] - ztfreez[0,0,0]) }
  // 2. Upstream-scheme indicator (river mouths, polynyas, ice shelves).
  compute zind {
    zind = max(rnfmsk[0,0,0] * rnfmsk_z[k], max(upsmsk[0,0,0], zice[0,0,0])) * tmask[0,0,0]
  }
  // 3-6. Masked tracer gradients (x/y, forward/backward).
  compute zgrx  { zgrx  = umask[0,0,0]  * (tsn[1,0,0] - tsn[0,0,0])  }
  compute zgry  { zgry  = vmask[0,0,0]  * (tsn[0,1,0] - tsn[0,0,0])  }
  compute zgrxm { zgrxm = umask[-1,0,0] * (tsn[0,0,0] - tsn[-1,0,0]) }
  compute zgrym { zgrym = vmask[0,-1,0] * (tsn[0,0,0] - tsn[0,-1,0]) }
  // 7-8. Raw slopes (monotone where gradients agree).
  compute zslpx {
    zslpx = (zgrx[0,0,0] + zgrxm[0,0,0]) * (0.25 + sign(0.25, zgrx[0,0,0] * zgrxm[0,0,0]))
  }
  compute zslpy {
    zslpy = (zgry[0,0,0] + zgrym[0,0,0]) * (0.25 + sign(0.25, zgry[0,0,0] * zgrym[0,0,0]))
  }
  // 9-10. Slope limiting.
  compute zslpx2 {
    zslpx2 = sign(1.0, zslpx[0,0,0])
           * min(abs(zslpx[0,0,0]), min(2.0 * abs(zgrxm[0,0,0]), 2.0 * abs(zgrx[0,0,0])))
  }
  compute zslpy2 {
    zslpy2 = sign(1.0, zslpy[0,0,0])
           * min(abs(zslpy[0,0,0]), min(2.0 * abs(zgrym[0,0,0]), 2.0 * abs(zgry[0,0,0])))
  }
  // 11-16. x-direction flux.
  compute z0u    { z0u = sign(0.5, pun[0,0,0]) }
  compute zalpha { zalpha = 0.5 - z0u[0,0,0] }
  compute zu     { zu = z0u[0,0,0] - 0.5 * pun[0,0,0] * pdt }
  compute zzwx   { zzwx = tsn[1,0,0] + zind[0,0,0] * zu[0,0,0] * zslpx2[0,0,0] }
  compute zzwy   { zzwy = tsn[0,0,0] + zind[0,0,0] * zu[0,0,0] * zslpx2[0,0,0] }
  compute zwx {
    zwx = pun[0,0,0] * (zalpha[0,0,0] * zzwx[0,0,0] + (1.0 - zalpha[0,0,0]) * zzwy[0,0,0])
  }
  // 17-22. y-direction flux.
  compute z0v   { z0v = sign(0.5, pvn[0,0,0]) }
  compute zbeta { zbeta = 0.5 - z0v[0,0,0] }
  compute zv    { zv = z0v[0,0,0] - 0.5 * pvn[0,0,0] * pdt }
  compute zzwyx { zzwyx = tsn[0,1,0] + zind[0,0,0] * zv[0,0,0] * zslpy2[0,0,0] }
  compute zzwyy { zzwyy = tsn[0,0,0] + zind[0,0,0] * zv[0,0,0] * zslpy2[0,0,0] }
  compute zwy {
    zwy = pvn[0,0,0] * (zbeta[0,0,0] * zzwyx[0,0,0] + (1.0 - zbeta[0,0,0]) * zzwyy[0,0,0])
  }
  // 23. Inverse cell metric.
  compute zbtr { zbtr = e3t[k] * tmask[0,0,0] }
  // 24. Tracer update (horizontal flux divergence + vertical advection).
  compute mydomain {
    mydomain = tsn[0,0,0]
             - pdt * zbtr[0,0,0]
             * (zwx[0,0,0] + zwy[0,0,0] + pwn[0,0,0] * (tsn[0,0,1] - tsn[0,0,-1]))
  }
}
"#;

/// Inputs to the native golden implementation.
#[derive(Debug, Clone)]
pub struct TracerInputs {
    /// Tracer field ("now").
    pub tsn: Grid3,
    /// Velocities.
    pub pun: Grid3,
    /// Velocities.
    pub pvn: Grid3,
    /// Velocities.
    pub pwn: Grid3,
    /// Land/sea masks.
    pub tmask: Grid3,
    /// Land/sea masks.
    pub umask: Grid3,
    /// Land/sea masks.
    pub vmask: Grid3,
    /// River-mouth mask.
    pub rnfmsk: Grid3,
    /// Upstream-scheme mask.
    pub upsmsk: Grid3,
    /// Freezing temperature.
    pub ztfreez: Grid3,
    /// Vertical river-mouth coefficient.
    pub rnfmsk_z: Param1,
    /// Vertical cell metric.
    pub e3t: Param1,
    /// Timestep.
    pub pdt: f64,
}

impl TracerInputs {
    /// Deterministic test inputs at the given size.
    pub fn random(nx: i64, ny: i64, nz: i64, seed: u64) -> Self {
        let n = [nx, ny, nz];
        let mk = |s: u64| {
            let mut g = Grid3::zeros(n, 1);
            g.fill_random(seed + s);
            g
        };
        let tsn = mk(0);
        let pun = mk(1);
        let pvn = mk(2);
        let pwn = mk(3);
        // Masks are 0/1 patterns.
        let mut tmask = mk(4);
        let mut umask = mk(5);
        let mut vmask = mk(6);
        for g in [&mut tmask, &mut umask, &mut vmask] {
            for v in &mut g.data {
                *v = if *v > -0.8 { 1.0 } else { 0.0 };
            }
        }
        let mut rnfmsk = mk(7);
        let mut upsmsk = mk(8);
        for g in [&mut rnfmsk, &mut upsmsk] {
            for v in &mut g.data {
                *v = (*v * 0.5 + 0.5).clamp(0.0, 1.0);
            }
        }
        let mut ztfreez = mk(9);
        for v in &mut ztfreez.data {
            *v *= 0.1;
        }
        let mut rnfmsk_z = Param1::zeros(nz, 1);
        rnfmsk_z.fill_with(|k| if k < nz / 2 { 1.0 } else { 0.0 });
        let mut e3t = Param1::zeros(nz, 1);
        e3t.fill_with(|k| 1.0 / (1.0 + 0.05 * k as f64));
        Self {
            tsn,
            pun,
            pvn,
            pwn,
            tmask,
            umask,
            vmask,
            rnfmsk,
            upsmsk,
            ztfreez,
            rnfmsk_z,
            e3t,
            pdt: 0.5,
        }
    }
}

/// Outputs of the tracer advection kernel (the six written fields).
#[derive(Debug, Clone)]
pub struct TracerOutputs {
    /// Updated tracer.
    pub mydomain: Grid3,
    /// Upstream indicator.
    pub zind: Grid3,
    /// Raw slope, x.
    pub zslpx: Grid3,
    /// Raw slope, y.
    pub zslpy: Grid3,
    /// Flux, x.
    pub zwx: Grid3,
    /// Flux, y.
    pub zwy: Grid3,
}

/// Native golden implementation.
pub fn golden(inp: &TracerInputs) -> TracerOutputs {
    let n = inp.tsn.n;
    let mut out = TracerOutputs {
        mydomain: Grid3::zeros(n, 1),
        zind: Grid3::zeros(n, 1),
        zslpx: Grid3::zeros(n, 1),
        zslpy: Grid3::zeros(n, 1),
        zwx: Grid3::zeros(n, 1),
        zwy: Grid3::zeros(n, 1),
    };
    for (i, j, k) in out.mydomain.interior().collect::<Vec<_>>() {
        let tsn = |di: i64, dj: i64, dk: i64| inp.tsn.get(i + di, j + dj, k + dk);
        let zice = 0.5 - 0.5 * fsign(1.0, tsn(0, 0, 0) - inp.ztfreez.get(i, j, k));
        let zind = (inp.rnfmsk.get(i, j, k) * inp.rnfmsk_z.get(k))
            .max(inp.upsmsk.get(i, j, k).max(zice))
            * inp.tmask.get(i, j, k);
        out.zind.set(i, j, k, zind);

        let zgrx = inp.umask.get(i, j, k) * (tsn(1, 0, 0) - tsn(0, 0, 0));
        let zgry = inp.vmask.get(i, j, k) * (tsn(0, 1, 0) - tsn(0, 0, 0));
        let zgrxm = inp.umask.get(i - 1, j, k) * (tsn(0, 0, 0) - tsn(-1, 0, 0));
        let zgrym = inp.vmask.get(i, j - 1, k) * (tsn(0, 0, 0) - tsn(0, -1, 0));

        let zslpx = (zgrx + zgrxm) * (0.25 + fsign(0.25, zgrx * zgrxm));
        let zslpy = (zgry + zgrym) * (0.25 + fsign(0.25, zgry * zgrym));
        out.zslpx.set(i, j, k, zslpx);
        out.zslpy.set(i, j, k, zslpy);

        let zslpx2 = fsign(1.0, zslpx) * zslpx.abs().min((2.0 * zgrxm.abs()).min(2.0 * zgrx.abs()));
        let zslpy2 = fsign(1.0, zslpy) * zslpy.abs().min((2.0 * zgrym.abs()).min(2.0 * zgry.abs()));

        let pun = inp.pun.get(i, j, k);
        let z0u = fsign(0.5, pun);
        let zalpha = 0.5 - z0u;
        let zu = z0u - 0.5 * pun * inp.pdt;
        let zzwx = tsn(1, 0, 0) + zind * zu * zslpx2;
        let zzwy = tsn(0, 0, 0) + zind * zu * zslpx2;
        let zwx = pun * (zalpha * zzwx + (1.0 - zalpha) * zzwy);
        out.zwx.set(i, j, k, zwx);

        let pvn = inp.pvn.get(i, j, k);
        let z0v = fsign(0.5, pvn);
        let zbeta = 0.5 - z0v;
        let zv = z0v - 0.5 * pvn * inp.pdt;
        let zzwyx = tsn(0, 1, 0) + zind * zv * zslpy2;
        let zzwyy = tsn(0, 0, 0) + zind * zv * zslpy2;
        let zwy = pvn * (zbeta * zzwyx + (1.0 - zbeta) * zzwyy);
        out.zwy.set(i, j, k, zwy);

        let zbtr = inp.e3t.get(k) * inp.tmask.get(i, j, k);
        let mydomain = tsn(0, 0, 0)
            - inp.pdt * zbtr * (zwx + zwy + inp.pwn.get(i, j, k) * (tsn(0, 0, 1) - tsn(0, 0, -1)));
        out.mydomain.set(i, j, k, mydomain);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_frontend::{parse_kernel, FieldKind};

    #[test]
    fn source_parses_with_paper_shape() {
        let k = parse_kernel(&source(8, 8, 4)).unwrap();
        assert_eq!(k.name, "tracer_advection");
        assert_eq!(k.computes.len(), 24, "24 stencil computations (§4)");
        let written = k
            .fields
            .iter()
            .filter(|f| matches!(f.kind, FieldKind::Output | FieldKind::InOut))
            .count();
        assert_eq!(written, 6, "across six fields (§4)");
        // 17 memory-mapped args: 16 external fields + 1 small-data bundle.
        assert_eq!(k.external_fields().len() + 1, 17);
        assert_eq!(k.params.len(), 2);
    }

    #[test]
    fn golden_masked_cells_update_is_pure_tracer() {
        // Where tmask = 0 (land), zbtr = 0, so mydomain = tsn.
        let mut inp = TracerInputs::random(4, 4, 4, 1);
        inp.tmask.fill_with(|_, _, _| 0.0);
        let out = golden(&inp);
        for (i, j, k) in out.mydomain.interior().collect::<Vec<_>>() {
            assert_eq!(out.mydomain.get(i, j, k), inp.tsn.get(i, j, k));
            assert_eq!(out.zind.get(i, j, k), 0.0);
        }
    }

    #[test]
    fn golden_zero_velocity_keeps_tracer() {
        let mut inp = TracerInputs::random(4, 4, 4, 2);
        inp.pun.fill_with(|_, _, _| 0.0);
        inp.pvn.fill_with(|_, _, _| 0.0);
        inp.pwn.fill_with(|_, _, _| 0.0);
        let out = golden(&inp);
        for (i, j, k) in out.mydomain.interior().collect::<Vec<_>>() {
            assert!(
                (out.mydomain.get(i, j, k) - inp.tsn.get(i, j, k)).abs() < 1e-12,
                "zero flow must not change the tracer"
            );
        }
    }

    #[test]
    fn golden_ice_indicator_behaviour() {
        let mut inp = TracerInputs::random(3, 3, 2, 3);
        // Tracer far below freezing everywhere → zice = 1 → zind = tmask.
        inp.tsn.fill_with(|_, _, _| -100.0);
        inp.ztfreez.fill_with(|_, _, _| 0.0);
        let out = golden(&inp);
        for (i, j, k) in out.zind.interior().collect::<Vec<_>>() {
            assert_eq!(out.zind.get(i, j, k), inp.tmask.get(i, j, k));
        }
    }
}
