//! Simple Laplace/Jacobi smoother kernels — quickstart-sized examples and
//! cross-checking workloads (not part of the paper's evaluation).

use crate::grid::Grid3;

/// DSL source for a 3D 7-point Jacobi smoother.
pub fn source_3d(nx: i64, ny: i64, nz: i64) -> String {
    format!(
        r#"
// 3D 7-point Jacobi smoother.
kernel laplace3d {{
  grid({nx}, {ny}, {nz})
  halo 1
  field a : input
  field b : output
  const w
  compute b {{
    b = w * (a[-1,0,0] + a[1,0,0] + a[0,-1,0] + a[0,1,0] + a[0,0,-1] + a[0,0,1]
        - 6.0 * a[0,0,0]) + a[0,0,0]
  }}
}}
"#
    )
}

/// DSL source for a 1D 3-point stencil — the paper's Listing 1.
pub fn source_1d(n: i64) -> String {
    format!(
        r#"
// The paper's Listing 1: out[i] = in[i-1] + in[i+1].
kernel listing1 {{
  grid({n})
  halo 1
  field in  : input
  field out : output
  compute out {{ out = in[-1] + in[1] }}
}}
"#
    )
}

/// Native golden for the 3D smoother.
pub fn golden_3d(a: &Grid3, w: f64) -> Grid3 {
    let mut b = Grid3::zeros(a.n, a.halo);
    for (i, j, k) in b.interior().collect::<Vec<_>>() {
        let v = w
            * (a.get(i - 1, j, k)
                + a.get(i + 1, j, k)
                + a.get(i, j - 1, k)
                + a.get(i, j + 1, k)
                + a.get(i, j, k - 1)
                + a.get(i, j, k + 1)
                - 6.0 * a.get(i, j, k))
            + a.get(i, j, k);
        b.set(i, j, k, v);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_frontend::parse_kernel;

    #[test]
    fn sources_parse() {
        let k3 = parse_kernel(&source_3d(8, 8, 8)).unwrap();
        assert_eq!(k3.computes.len(), 1);
        let k1 = parse_kernel(&source_1d(64)).unwrap();
        assert_eq!(k1.grid, vec![64]);
    }

    #[test]
    fn golden_constant_field_is_fixed_point() {
        let mut a = Grid3::zeros([4, 4, 4], 1);
        a.fill_with(|_, _, _| 3.5);
        let b = golden_3d(&a, 0.1);
        for (i, j, k) in b.interior().collect::<Vec<_>>() {
            assert!((b.get(i, j, k) - 3.5).abs() < 1e-12);
        }
    }
}
