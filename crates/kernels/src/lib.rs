//! # shmls-kernels — the paper's benchmark kernels
//!
//! The two real-world 3D stencil kernels of the evaluation (§4), written
//! in the frontend DSL with hand-written native Rust golden references:
//!
//! - [`pw_advection`] — the Piacsek–Williams advection scheme (MONC
//!   atmospheric model): 3 stencil computations over 3 fields, 7 AXI
//!   ports per compute unit.
//! - [`tracer_advection`] — the NEMO tracer advection scheme
//!   (PSycloneBench): 24 stencil computations across 6 written fields, 17
//!   memory-mapped arguments.
//! - [`laplace`] — small demo kernels (quickstart, Listing 1).
//! - [`workload`] — the paper's problem sizes (8M/32M/134M, 8M/33M).
//! - [`grid`] — halo-padded grid storage for the golden paths.

#![warn(missing_docs)]

pub mod grid;
pub mod laplace;
pub mod pw_advection;
pub mod tracer_advection;
pub mod workload;

pub use grid::{fsign, Grid3, Param1};
pub use workload::{pw_sizes, tracer_sizes, validation_size, ProblemSize};
