//! Problem sizes of the paper's evaluation (§4 / artifact appendix).
//!
//! PW advection is measured at 8M, 32M and 134M points, tracer advection
//! at 8M and 33M; all sizes keep 128 vertical levels and fit the U280's
//! 8 GB of HBM.

/// One evaluation problem size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblemSize {
    /// Paper label ("8M", "32M", "134M", "33M").
    pub label: &'static str,
    /// Grid extents (nx, ny, nz).
    pub grid: [i64; 3],
}

impl ProblemSize {
    /// Interior points.
    pub fn points(&self) -> i64 {
        self.grid.iter().product()
    }

    /// Bytes of one f64 field including a halo of 1.
    pub fn field_bytes(&self) -> u64 {
        self.grid.iter().map(|&e| (e + 2) as u64).product::<u64>() * 8
    }
}

/// PW advection problem sizes (Figure 4 left, Figure 5, Table 1).
pub fn pw_sizes() -> Vec<ProblemSize> {
    vec![
        ProblemSize {
            label: "8M",
            grid: [256, 256, 128],
        },
        ProblemSize {
            label: "32M",
            grid: [512, 512, 128],
        },
        ProblemSize {
            label: "134M",
            grid: [1024, 1024, 128],
        },
    ]
}

/// Tracer advection problem sizes (Figure 4 right, Figure 6, Table 2).
pub fn tracer_sizes() -> Vec<ProblemSize> {
    vec![
        ProblemSize {
            label: "8M",
            grid: [256, 256, 128],
        },
        ProblemSize {
            label: "33M",
            grid: [512, 512, 128],
        },
    ]
}

/// Small sizes used for functional validation (full dataflow execution on
/// the simulator's functional engine).
pub fn validation_size() -> ProblemSize {
    ProblemSize {
        label: "tiny",
        grid: [12, 10, 8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_point_counts() {
        let pw = pw_sizes();
        assert!((pw[0].points() as f64 / 1e6 - 8.4).abs() < 0.1);
        assert!((pw[1].points() as f64 / 1e6 - 33.6).abs() < 0.1);
        assert!((pw[2].points() as f64 / 1e6 - 134.2).abs() < 0.3);
        let tr = tracer_sizes();
        assert_eq!(tr[0].grid, pw[0].grid);
        assert_eq!(tr[1].grid, pw[1].grid);
    }

    #[test]
    fn pw_134m_fits_u280_hbm() {
        // 6 fields of the largest PW size + small data must fit 8 GB.
        let s = &pw_sizes()[2];
        let total = 6 * s.field_bytes();
        assert!(total < 8 * (1 << 30), "{} bytes exceeds HBM", total);
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn tracer_33m_fits_u280_hbm() {
        // 16 external fields of the largest tracer size must fit 8 GB.
        let s = &tracer_sizes()[1];
        let total = 16 * s.field_bytes();
        assert!(total < 8 * (1 << 30), "{total} bytes exceeds HBM");
    }

    #[test]
    fn validation_size_is_small() {
        assert!(validation_size().points() < 10_000);
    }
}
