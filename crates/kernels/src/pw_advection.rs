//! The Piacsek–Williams (PW) advection scheme — the paper's first
//! benchmark kernel, "commonly found in weather simulation codes, such as
//! the Met Office's MONC high-resolution atmospheric model".
//!
//! Three stencil computations (`su`, `sv`, `sw`) over three momentum
//! fields (`u`, `v`, `w`), with per-level small data (`tzc1`, `tzc2`,
//! `tzd1`, `tzd2`) and horizontal scalars (`tcx`, `tcy`). Each compute
//! unit needs 7 AXI ports: one per field (3 in + 3 out) plus one for the
//! small data — exactly the paper's port budget that caps PW advection at
//! 4 CUs on the U280.

use crate::grid::{Grid3, Param1};

/// DSL source for the PW advection kernel at the given grid size.
pub fn source(nx: i64, ny: i64, nz: i64) -> String {
    format!(
        r#"
// Piacsek-Williams advection (MONC), 3 stencil computations / 3 fields.
kernel pw_advection {{
  grid({nx}, {ny}, {nz})
  halo 1

  field u  : input
  field v  : input
  field w  : input
  field su : output
  field sv : output
  field sw : output

  param tzc1[k]
  param tzc2[k]
  param tzd1[k]
  param tzd2[k]

  const tcx
  const tcy

  compute su {{
    su = tcx * (u[-1,0,0] * (u[0,0,0] + u[-1,0,0]) - u[1,0,0] * (u[0,0,0] + u[1,0,0]))
       + tcy * (u[0,-1,0] * (v[0,-1,0] + v[1,-1,0]) - u[0,1,0] * (v[0,0,0] + v[1,0,0]))
       + tzc1[k] * u[0,0,-1] * (w[0,0,-1] + w[1,0,-1])
       - tzc2[k] * u[0,0,1] * (w[0,0,0] + w[1,0,0])
  }}

  compute sv {{
    sv = tcx * (v[-1,0,0] * (u[-1,0,0] + u[-1,1,0]) - v[1,0,0] * (u[0,0,0] + u[0,1,0]))
       + tcy * (v[0,-1,0] * (v[0,0,0] + v[0,-1,0]) - v[0,1,0] * (v[0,0,0] + v[0,1,0]))
       + tzc1[k] * v[0,0,-1] * (w[0,0,-1] + w[0,1,-1])
       - tzc2[k] * v[0,0,1] * (w[0,0,0] + w[0,1,0])
  }}

  compute sw {{
    sw = tcx * (w[-1,0,0] * (u[-1,0,0] + u[-1,0,1]) - w[1,0,0] * (u[0,0,0] + u[0,0,1]))
       + tcy * (w[0,-1,0] * (v[0,-1,0] + v[0,-1,1]) - w[0,1,0] * (v[0,0,0] + v[0,0,1]))
       + tzd1[k] * w[0,0,-1] * (w[0,0,0] + w[0,0,-1])
       - tzd2[k] * w[0,0,1] * (w[0,0,0] + w[0,0,1])
  }}
}}
"#
    )
}

/// Inputs to the native golden implementation.
#[derive(Debug, Clone)]
pub struct PwInputs {
    /// Zonal velocity.
    pub u: Grid3,
    /// Meridional velocity.
    pub v: Grid3,
    /// Vertical velocity.
    pub w: Grid3,
    /// Vertical coefficient 1.
    pub tzc1: Param1,
    /// Vertical coefficient 2.
    pub tzc2: Param1,
    /// Vertical coefficient (w equation) 1.
    pub tzd1: Param1,
    /// Vertical coefficient (w equation) 2.
    pub tzd2: Param1,
    /// Horizontal coefficient x.
    pub tcx: f64,
    /// Horizontal coefficient y.
    pub tcy: f64,
}

impl PwInputs {
    /// Deterministic test inputs at the given size.
    pub fn random(nx: i64, ny: i64, nz: i64, seed: u64) -> Self {
        let mut u = Grid3::zeros([nx, ny, nz], 1);
        let mut v = Grid3::zeros([nx, ny, nz], 1);
        let mut w = Grid3::zeros([nx, ny, nz], 1);
        u.fill_random(seed);
        v.fill_random(seed + 1);
        w.fill_random(seed + 2);
        let mut tzc1 = Param1::zeros(nz, 1);
        let mut tzc2 = Param1::zeros(nz, 1);
        let mut tzd1 = Param1::zeros(nz, 1);
        let mut tzd2 = Param1::zeros(nz, 1);
        tzc1.fill_with(|k| 0.25 + 0.001 * k as f64);
        tzc2.fill_with(|k| 0.25 - 0.001 * k as f64);
        tzd1.fill_with(|k| 0.2 + 0.002 * k as f64);
        tzd2.fill_with(|k| 0.2 - 0.002 * k as f64);
        Self {
            u,
            v,
            w,
            tzc1,
            tzc2,
            tzd1,
            tzd2,
            tcx: 0.25,
            tcy: 0.25,
        }
    }
}

/// Native golden implementation: computes `(su, sv, sw)`.
pub fn golden(inp: &PwInputs) -> (Grid3, Grid3, Grid3) {
    let n = inp.u.n;
    let mut su = Grid3::zeros(n, 1);
    let mut sv = Grid3::zeros(n, 1);
    let mut sw = Grid3::zeros(n, 1);
    let (u, v, w) = (&inp.u, &inp.v, &inp.w);
    let (tcx, tcy) = (inp.tcx, inp.tcy);
    for (i, j, k) in su.interior().collect::<Vec<_>>() {
        let su_v = tcx
            * (u.get(i - 1, j, k) * (u.get(i, j, k) + u.get(i - 1, j, k))
                - u.get(i + 1, j, k) * (u.get(i, j, k) + u.get(i + 1, j, k)))
            + tcy
                * (u.get(i, j - 1, k) * (v.get(i, j - 1, k) + v.get(i + 1, j - 1, k))
                    - u.get(i, j + 1, k) * (v.get(i, j, k) + v.get(i + 1, j, k)))
            + inp.tzc1.get(k) * u.get(i, j, k - 1) * (w.get(i, j, k - 1) + w.get(i + 1, j, k - 1))
            - inp.tzc2.get(k) * u.get(i, j, k + 1) * (w.get(i, j, k) + w.get(i + 1, j, k));
        su.set(i, j, k, su_v);

        let sv_v = tcx
            * (v.get(i - 1, j, k) * (u.get(i - 1, j, k) + u.get(i - 1, j + 1, k))
                - v.get(i + 1, j, k) * (u.get(i, j, k) + u.get(i, j + 1, k)))
            + tcy
                * (v.get(i, j - 1, k) * (v.get(i, j, k) + v.get(i, j - 1, k))
                    - v.get(i, j + 1, k) * (v.get(i, j, k) + v.get(i, j + 1, k)))
            + inp.tzc1.get(k) * v.get(i, j, k - 1) * (w.get(i, j, k - 1) + w.get(i, j + 1, k - 1))
            - inp.tzc2.get(k) * v.get(i, j, k + 1) * (w.get(i, j, k) + w.get(i, j + 1, k));
        sv.set(i, j, k, sv_v);

        let sw_v = tcx
            * (w.get(i - 1, j, k) * (u.get(i - 1, j, k) + u.get(i - 1, j, k + 1))
                - w.get(i + 1, j, k) * (u.get(i, j, k) + u.get(i, j, k + 1)))
            + tcy
                * (w.get(i, j - 1, k) * (v.get(i, j - 1, k) + v.get(i, j - 1, k + 1))
                    - w.get(i, j + 1, k) * (v.get(i, j, k) + v.get(i, j, k + 1)))
            + inp.tzd1.get(k) * w.get(i, j, k - 1) * (w.get(i, j, k) + w.get(i, j, k - 1))
            - inp.tzd2.get(k) * w.get(i, j, k + 1) * (w.get(i, j, k) + w.get(i, j, k + 1));
        sw.set(i, j, k, sw_v);
    }
    (su, sv, sw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_frontend::parse_kernel;

    #[test]
    fn source_parses_with_expected_shape() {
        let k = parse_kernel(&source(16, 16, 8)).unwrap();
        assert_eq!(k.name, "pw_advection");
        assert_eq!(k.grid, vec![16, 16, 8]);
        assert_eq!(k.fields.len(), 6);
        assert_eq!(k.params.len(), 4);
        assert_eq!(k.consts.len(), 2);
        assert_eq!(
            k.computes.len(),
            3,
            "PW advection has 3 stencil computations"
        );
        // 7 ports per CU: 6 fields + 1 small-data bundle.
        assert_eq!(k.external_fields().len(), 6);
    }

    #[test]
    fn golden_is_deterministic() {
        let inp = PwInputs::random(6, 5, 4, 7);
        let (a1, _, _) = golden(&inp);
        let (a2, _, _) = golden(&inp);
        assert_eq!(a1.max_diff(&a2), 0.0);
    }

    #[test]
    fn golden_uniform_flow_gives_zero_horizontal_terms() {
        // With u = v = w = const, all advection differences cancel except
        // the vertical coefficient asymmetry.
        let mut inp = PwInputs::random(4, 4, 4, 0);
        inp.u.fill_with(|_, _, _| 1.0);
        inp.v.fill_with(|_, _, _| 1.0);
        inp.w.fill_with(|_, _, _| 1.0);
        let (su, _, _) = golden(&inp);
        for (i, j, k) in su.interior().collect::<Vec<_>>() {
            let expect = inp.tzc1.get(k) * 2.0 - inp.tzc2.get(k) * 2.0;
            assert!((su.get(i, j, k) - expect).abs() < 1e-12);
        }
    }
}
