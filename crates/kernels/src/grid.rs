//! Halo-padded 3D grid storage shared by the native golden
//! implementations and the test harnesses.

/// A dense 3D field with a halo, indexed by logical coordinates where the
/// interior is `[0, n)` per axis and the halo extends `[-halo, n+halo)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Interior extents.
    pub n: [i64; 3],
    /// Halo width.
    pub halo: i64,
    /// Row-major storage over the padded box.
    pub data: Vec<f64>,
}

impl Grid3 {
    /// A zero-filled grid.
    pub fn zeros(n: [i64; 3], halo: i64) -> Self {
        let len = (0..3).map(|d| (n[d] + 2 * halo) as usize).product();
        Self {
            n,
            halo,
            data: vec![0.0; len],
        }
    }

    /// Padded extents.
    pub fn padded(&self) -> [i64; 3] {
        [
            self.n[0] + 2 * self.halo,
            self.n[1] + 2 * self.halo,
            self.n[2] + 2 * self.halo,
        ]
    }

    fn index(&self, i: i64, j: i64, k: i64) -> usize {
        let p = self.padded();
        debug_assert!(
            i >= -self.halo && i < self.n[0] + self.halo,
            "i = {i} outside [-{}, {})",
            self.halo,
            self.n[0] + self.halo
        );
        debug_assert!(j >= -self.halo && j < self.n[1] + self.halo);
        debug_assert!(k >= -self.halo && k < self.n[2] + self.halo);
        (((i + self.halo) * p[1] + (j + self.halo)) * p[2] + (k + self.halo)) as usize
    }

    /// Read at logical `(i, j, k)` (halo included).
    pub fn get(&self, i: i64, j: i64, k: i64) -> f64 {
        self.data[self.index(i, j, k)]
    }

    /// Write at logical `(i, j, k)`.
    pub fn set(&mut self, i: i64, j: i64, k: i64, v: f64) {
        let idx = self.index(i, j, k);
        self.data[idx] = v;
    }

    /// Fill every padded element from `f(i, j, k)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(i64, i64, i64) -> f64) {
        let h = self.halo;
        for i in -h..self.n[0] + h {
            for j in -h..self.n[1] + h {
                for k in -h..self.n[2] + h {
                    self.set(i, j, k, f(i, j, k));
                }
            }
        }
    }

    /// Deterministic pseudo-random fill in `[-1, 1)`, seeded per grid.
    pub fn fill_random(&mut self, seed: u64) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for v in &mut self.data {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            *v = (r >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        }
    }

    /// Iterate the interior coordinates in row-major order.
    pub fn interior(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        let n = self.n;
        (0..n[0]).flat_map(move |i| (0..n[1]).flat_map(move |j| (0..n[2]).map(move |k| (i, j, k))))
    }

    /// Maximum absolute interior difference against another grid.
    pub fn max_diff(&self, other: &Grid3) -> f64 {
        assert_eq!(self.n, other.n);
        self.interior()
            .map(|(i, j, k)| (self.get(i, j, k) - other.get(i, j, k)).abs())
            .fold(0.0, f64::max)
    }
}

impl Grid3 {
    /// Convert to an interpreter [`shmls_ir::interp::Buffer`] with the
    /// halo-padded shape and `origin = -halo` — the layout the compiled
    /// kernels expect for field arguments.
    pub fn to_buffer(&self) -> shmls_ir::interp::Buffer {
        shmls_ir::interp::Buffer {
            shape: self.padded().to_vec(),
            origin: vec![-self.halo; 3],
            data: self.data.clone(),
        }
    }

    /// Rebuild a grid from an interpreter buffer produced by
    /// [`Grid3::to_buffer`]-compatible allocation.
    pub fn from_buffer(buffer: &shmls_ir::interp::Buffer) -> Self {
        assert_eq!(buffer.shape.len(), 3, "expected a 3D buffer");
        let halo = -buffer.origin[0];
        assert!(
            buffer.origin.iter().all(|&o| o == -halo),
            "asymmetric origin"
        );
        let n = [
            buffer.shape[0] - 2 * halo,
            buffer.shape[1] - 2 * halo,
            buffer.shape[2] - 2 * halo,
        ];
        Self {
            n,
            halo,
            data: buffer.data.clone(),
        }
    }
}

/// A 1D parameter array over one axis, covering the halo
/// (`[-halo, n+halo)`), as the frontend's small-data convention requires.
#[derive(Debug, Clone, PartialEq)]
pub struct Param1 {
    /// Axis extent (interior).
    pub n: i64,
    /// Halo width.
    pub halo: i64,
    /// Storage over `n + 2·halo` entries.
    pub data: Vec<f64>,
}

impl Param1 {
    /// Convert to an interpreter buffer (origin 0, padded extent) — the
    /// layout the compiled kernels expect for small-data arguments.
    pub fn to_buffer(&self) -> shmls_ir::interp::Buffer {
        shmls_ir::interp::Buffer {
            shape: vec![self.n + 2 * self.halo],
            origin: vec![0],
            data: self.data.clone(),
        }
    }

    /// Zero-filled parameter array.
    pub fn zeros(n: i64, halo: i64) -> Self {
        Self {
            n,
            halo,
            data: vec![0.0; (n + 2 * halo) as usize],
        }
    }

    /// Read at logical index (halo included).
    pub fn get(&self, k: i64) -> f64 {
        self.data[(k + self.halo) as usize]
    }

    /// Write at logical index.
    pub fn set(&mut self, k: i64, v: f64) {
        self.data[(k + self.halo) as usize] = v;
    }

    /// Fill from `f(k)` over the padded range.
    pub fn fill_with(&mut self, mut f: impl FnMut(i64) -> f64) {
        for k in -self.halo..self.n + self.halo {
            self.set(k, f(k));
        }
    }
}

/// Fortran `SIGN(a, b)`: `|a|` with the sign of `b` (positive for `b = 0`).
pub fn fsign(a: f64, b: f64) -> f64 {
    a.abs().copysign(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut g = Grid3::zeros([4, 5, 6], 1);
        g.set(-1, -1, -1, 7.0);
        g.set(4, 5, 6, 8.0);
        g.set(2, 3, 4, 9.0);
        assert_eq!(g.get(-1, -1, -1), 7.0);
        assert_eq!(g.get(4, 5, 6), 8.0);
        assert_eq!(g.get(2, 3, 4), 9.0);
    }

    #[test]
    fn fill_and_interior_iteration() {
        let mut g = Grid3::zeros([2, 2, 2], 1);
        g.fill_with(|i, j, k| (i * 100 + j * 10 + k) as f64);
        assert_eq!(g.get(1, 1, 1), 111.0);
        assert_eq!(g.get(-1, 0, 0), -100.0);
        assert_eq!(g.interior().count(), 8);
    }

    #[test]
    fn random_fill_is_deterministic_and_bounded() {
        let mut a = Grid3::zeros([3, 3, 3], 1);
        let mut b = Grid3::zeros([3, 3, 3], 1);
        a.fill_random(42);
        b.fill_random(42);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|v| (-1.0..1.0).contains(v)));
        let mut c = Grid3::zeros([3, 3, 3], 1);
        c.fill_random(43);
        assert_ne!(a, c);
    }

    #[test]
    fn max_diff_detects_changes() {
        let mut a = Grid3::zeros([2, 2, 2], 1);
        let mut b = a.clone();
        assert_eq!(a.max_diff(&b), 0.0);
        b.set(1, 1, 1, 0.5);
        assert_eq!(a.max_diff(&b), 0.5);
        // Halo differences are ignored.
        b.set(1, 1, 1, 0.0);
        a.set(-1, 0, 0, 9.0);
        assert_eq!(a.max_diff(&b), 0.0);
    }

    #[test]
    fn param_indexing() {
        let mut p = Param1::zeros(4, 1);
        p.fill_with(|k| k as f64);
        assert_eq!(p.get(-1), -1.0);
        assert_eq!(p.get(4), 4.0);
        assert_eq!(p.data.len(), 6);
    }

    #[test]
    fn fortran_sign() {
        assert_eq!(fsign(2.0, -3.0), -2.0);
        assert_eq!(fsign(-2.0, 3.0), 2.0);
        assert_eq!(fsign(2.0, 0.0), 2.0);
        assert_eq!(fsign(0.25, -0.0), -0.25);
    }
}
