use shmls_ir::interp::Buffer;
use shmls_ir::types::StencilBounds;
use std::time::Duration;
use stencil_hmls::driver::{compile, CompileOptions, TargetPath};
use stencil_hmls::runner::{run_hls_threaded, KernelData};

fn main() {
    let src = r#"
kernel unused {
  grid(64)
  halo 1
  field a : input
  field t : temp
  field b : output
  compute t { t = 2.0 * a[0] }
  compute b { b = a[1] + a[-1] }
}
"#;
    let opts = CompileOptions {
        paths: TargetPath::HlsOnly,
        ..Default::default()
    };
    let compiled = compile(src, &opts).expect("compile");
    println!("compiled ok: stages={}", compiled.report.compute_stages);
    let bounded =
        StencilBounds::from_extents(&compiled.signature.grid).grown(compiled.signature.halo);
    let mut a = Buffer::zeroed(bounded.extents(), bounded.lb.clone());
    for (i, v) in a.data.iter_mut().enumerate() {
        *v = i as f64;
    }
    let data = KernelData::default().buffer("a", a);
    match run_hls_threaded(&compiled, &data, Duration::from_secs(3)) {
        Ok(Some(_)) => println!("threaded: completed"),
        Ok(None) => println!("threaded: DEADLOCK"),
        Err(e) => println!("threaded: error {e}"),
    }
    // Also sequential engine
    match stencil_hmls::runner::run_hls(&compiled, &data) {
        Ok(_) => println!("sequential: completed"),
        Err(e) => println!("sequential: error {e}"),
    }
}
