//! Design-space exploration: the port-bundling heuristic the paper calls
//! for in §4.
//!
//!> *"Whilst some ports could have been bundled together for the tracer
//! > advection benchmark to reduce the number of ports of each CU … this
//! > bundling would affect performance and heuristics would likely be
//! > required by our transformation to identify when to combine bundles."*
//!
//! This module implements exactly that heuristic: it sweeps the number of
//! field ports folded into one shared AXI bundle, models the effect on both
//! sides of the trade —
//!
//! - fewer ports per CU ⇒ more compute units fit the shell's 32-port
//!   budget ⇒ domain-decomposed speed-up, versus
//! - the shared bundle serialising its members' traffic ⇒ the load/write
//!   stages slow down once the bundle carries more beats per point than
//!   the pipeline consumes —
//!
//! and returns every evaluated configuration with the best one marked.

use serde::Serialize;
use shmls_fpga_sim::design::{DesignDescriptor, Stage};
use shmls_fpga_sim::device::{CostTable, Device};
use shmls_fpga_sim::perf::{hmls_estimate, STAGE_FILL_CYCLES};
use shmls_fpga_sim::resources::{self, ResourceUsage};

/// One evaluated bundling configuration.
#[derive(Debug, Clone, Serialize)]
pub struct BundlingChoice {
    /// Field ports folded into the shared bundle (0 = the paper's default:
    /// every field on its own port).
    pub bundled_fields: usize,
    /// AXI master ports each CU needs under this configuration.
    pub ports_per_cu: usize,
    /// Compute units the 32-port shell budget then allows.
    pub cus: u32,
    /// Modelled throughput.
    pub mpts: f64,
    /// Modelled kernel cycles.
    pub cycles: u64,
    /// Whether the replicated design fits the device.
    pub fits: bool,
    /// Resources of the full deployment.
    pub resources: ResourceUsage,
}

/// The exploration result: all configurations plus the index of the best
/// *feasible* one.
#[derive(Debug, Clone, Serialize)]
pub struct BundlingExploration {
    /// Every swept configuration, in increasing `bundled_fields` order.
    pub choices: Vec<BundlingChoice>,
    /// Index of the feasible configuration with the highest throughput.
    pub best: usize,
}

impl BundlingExploration {
    /// The winning configuration.
    pub fn best_choice(&self) -> &BundlingChoice {
        &self.choices[self.best]
    }
}

/// Sweep shared-bundle sizes for `design` on `device`.
///
/// `bundled_fields = b` means `b` of the design's field ports share one
/// physical bundle (the small-data bundle stays separate, as in step 9).
pub fn explore_port_bundling(
    design: &DesignDescriptor,
    device: &Device,
    costs: &CostTable,
) -> BundlingExploration {
    let total_field_ports = design
        .interfaces
        .iter()
        .filter(|(p, b)| p == "m_axi" && !b.ends_with("_small"))
        .count();
    let has_small = design.interfaces.iter().any(|(_, b)| b.ends_with("_small"));

    let mut choices = Vec::new();
    for bundled in 0..=total_field_ports.saturating_sub(1) {
        let private_ports = total_field_ports - bundled;
        let shared_ports = usize::from(bundled > 0) + usize::from(has_small);
        let ports_per_cu = private_ports + shared_ports;
        let cus = ((device.max_axi_ports as usize) / ports_per_cu.max(1)).max(1) as u32;
        let (cycles, mpts) = estimate_bundled(design, device, cus, bundled);
        let resources = resources_with_ports(design, costs, cus, ports_per_cu);
        choices.push(BundlingChoice {
            bundled_fields: bundled,
            ports_per_cu,
            cus,
            mpts,
            cycles,
            fits: resources.fits(device),
            resources,
        });
    }
    let best = choices
        .iter()
        .enumerate()
        .filter(|(_, c)| c.fits)
        .max_by(|(_, a), (_, b)| a.mpts.total_cmp(&b.mpts))
        .map(|(i, _)| i)
        .unwrap_or(0);
    BundlingExploration { choices, best }
}

/// Performance with `bundled` field ports sharing one physical port: the
/// shared port serialises its members' beats, which adds a potential
/// bottleneck stage on top of the normal estimate.
fn estimate_bundled(
    design: &DesignDescriptor,
    device: &Device,
    cus: u32,
    bundled: usize,
) -> (u64, f64) {
    let base = hmls_estimate(design, device, cus);
    if bundled <= 1 {
        return (base.cycles, base.mpts);
    }
    // Beats per field through the load/write stages, per CU. A shared
    // port additionally pays a burst-interleaving penalty: its members'
    // bursts alternate, so the effective bank rate degrades with the
    // member count (this is the performance effect the paper anticipated
    // when it chose not to bundle without a heuristic).
    let bank_rate = device.beats_per_cycle_per_bank();
    let arbitration_efficiency = 1.0 / (1.0 + 0.15 * (bundled as f64 - 1.0));
    let shared_rate = bank_rate * arbitration_efficiency;
    let mut shared_cycles: u64 = 0;
    for stage in &design.stages {
        if let Stage::Load {
            beats_per_field, ..
        }
        | Stage::Write {
            beats_per_field, ..
        } = stage
        {
            // Up to `bundled` of this stage's fields ride the shared port.
            let shared_beats = *beats_per_field as f64 * bundled as f64 / cus as f64;
            shared_cycles = shared_cycles.max((shared_beats / shared_rate).ceil() as u64);
        }
    }
    let steady = base.steady_cycles.max(shared_cycles);
    let cycles = steady + base.fill_cycles + STAGE_FILL_CYCLES * bundled as u64;
    let seconds = device.cycles_to_seconds(cycles);
    let mpts = design.interior_points as f64 / seconds / 1.0e6;
    (cycles, mpts)
}

/// Resource estimate with the AXI port count overridden (bundling removes
/// physical protocol engines).
fn resources_with_ports(
    design: &DesignDescriptor,
    costs: &CostTable,
    cus: u32,
    ports_per_cu: usize,
) -> ResourceUsage {
    let mut per_cu = resources::estimate_cu(design, costs, cus as u64);
    let original_ports = design.axi_ports() as u64;
    let new_ports = ports_per_cu as u64;
    // Swap the port engines priced by estimate_cu.
    per_cu.luts =
        per_cu.luts - original_ports * costs.axi_port.luts + new_ports * costs.axi_port.luts;
    per_cu.ffs = per_cu.ffs - original_ports * costs.axi_port.ffs + new_ports * costs.axi_port.ffs;
    per_cu.scaled(cus as u64)
}

/// Render the exploration as a table (for the `repro dse` command).
pub fn render(kernel_name: &str, exploration: &BundlingExploration) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "Port-bundling DSE for {kernel_name} (the §4 future-work heuristic)\n\
         ================================================================\n\
         {:<9} {:>9} {:>5} {:>10} {:>7} {:>6}\n",
        "bundled", "ports/CU", "CUs", "MPt/s", "fits", "best"
    );
    for (i, c) in exploration.choices.iter().enumerate() {
        writeln!(
            out,
            "{:<9} {:>9} {:>5} {:>10.1} {:>7} {:>6}",
            c.bundled_fields,
            c.ports_per_cu,
            c.cus,
            c.mpts,
            if c.fits { "yes" } else { "NO" },
            if i == exploration.best { "<--" } else { "" },
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile, CompileOptions, TargetPath};

    fn design_for(source: &str) -> DesignDescriptor {
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            ..Default::default()
        };
        let compiled = compile(source, &opts).unwrap();
        DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func).unwrap()
    }

    #[test]
    fn tracer_bundling_unlocks_more_cus() {
        // The paper's own example: "reducing to 12 ports for the input and
        // output fields plus one bundled port for the rest of the
        // arguments would allow for 2 CUs".
        let design = design_for(&shmls_kernels::tracer_advection::source(256, 256, 128));
        let device = Device::u280();
        let costs = CostTable::default_f64();
        let exploration = explore_port_bundling(&design, &device, &costs);
        // Default: 17 ports, 1 CU.
        assert_eq!(exploration.choices[0].ports_per_cu, 17);
        assert_eq!(exploration.choices[0].cus, 1);
        // Bundling 5 field ports: 11 private + shared + small = 13 → 2 CUs.
        let c5 = &exploration.choices[5];
        assert_eq!(c5.cus, 2, "{c5:?}");
        // The heuristic finds a configuration at least as fast as the
        // paper's 1-CU deployment.
        let best = exploration.best_choice();
        assert!(
            best.mpts >= exploration.choices[0].mpts,
            "best {best:?} vs default {:?}",
            exploration.choices[0]
        );
        assert!(
            best.cus >= 2,
            "bundling should unlock CU replication: {best:?}"
        );
    }

    #[test]
    fn heavy_bundling_hits_the_shared_port() {
        let design = design_for(&shmls_kernels::tracer_advection::source(256, 256, 128));
        let device = Device::u280();
        let costs = CostTable::default_f64();
        let exploration = explore_port_bundling(&design, &device, &costs);
        // Folding *everything* into one bundle serialises all traffic: the
        // most aggressive bundling must not be the best choice.
        let last = exploration.choices.last().unwrap();
        let best = exploration.best_choice();
        assert!(best.bundled_fields < last.bundled_fields, "best {best:?}");
        // And the shared-port penalty is visible: max bundling is slower
        // per CU-normalised throughput than moderate bundling.
        let per_cu = |c: &BundlingChoice| c.mpts / c.cus as f64;
        assert!(
            per_cu(last) < per_cu(&exploration.choices[0]) * 1.01,
            "{last:?}"
        );
    }

    #[test]
    fn pw_advection_keeps_the_paper_deployment_competitive() {
        let design = design_for(&shmls_kernels::pw_advection::source(256, 256, 128));
        let device = Device::u280();
        let costs = CostTable::default_f64();
        let exploration = explore_port_bundling(&design, &device, &costs);
        // Paper default: 7 ports → 4 CUs.
        assert_eq!(exploration.choices[0].ports_per_cu, 7);
        assert_eq!(exploration.choices[0].cus, 4);
        // The best configuration is at least as fast.
        assert!(exploration.best_choice().mpts >= exploration.choices[0].mpts * 0.99);
    }

    #[test]
    fn render_lists_every_choice() {
        let design = design_for(&shmls_kernels::pw_advection::source(64, 64, 32));
        let device = Device::u280();
        let costs = CostTable::default_f64();
        let exploration = explore_port_bundling(&design, &device, &costs);
        let table = render("pw_advection", &exploration);
        assert_eq!(table.lines().count(), 3 + exploration.choices.len());
        assert!(table.contains("<--"));
    }
}

// ---------------------------------------------------------------------
// Stream-depth exploration (driven by the cycle-stepped simulator)
// ---------------------------------------------------------------------

/// One evaluated uniform FIFO depth.
#[derive(Debug, Clone, Serialize)]
pub struct DepthChoice {
    /// FIFO depth applied to every stream.
    pub depth: usize,
    /// Cycle-stepped makespan at this depth.
    pub cycles: u64,
    /// Slowdown versus the deepest depth swept.
    pub slowdown: f64,
    /// BRAM36 blocks the FIFOs of one CU would occupy at this depth.
    pub fifo_bram: u64,
}

/// Result of the depth sweep: all choices plus the recommended depth (the
/// smallest whose slowdown stays within `tolerance`).
#[derive(Debug, Clone, Serialize)]
pub struct DepthExploration {
    /// Evaluated depths in increasing order.
    pub choices: Vec<DepthChoice>,
    /// Index of the recommendation.
    pub recommended: usize,
}

/// Sweep uniform FIFO depths through the cycle-stepped simulator and
/// recommend the shallowest depth within `tolerance` (e.g. `0.02` = 2%)
/// of the deepest configuration's makespan.
///
/// This answers the question the paper's runtime answers with a fixed
/// constant (`@llvm.fpga.set.stream.depth`): how deep do the FIFOs
/// actually need to be? The generated designs are rate-matched Kahn
/// networks, so the expected answer — and the asserted one — is "barely
/// deeper than a handshake".
pub fn explore_stream_depths(
    design: &DesignDescriptor,
    depths: &[usize],
    tolerance: f64,
) -> DepthExploration {
    assert!(!depths.is_empty());
    let mut choices: Vec<DepthChoice> = depths
        .iter()
        .map(|&depth| {
            // A depth that deadlocks is unusable: rank it infinitely slow
            // so it can never be recommended.
            let cycles = match shmls_fpga_sim::cycle::simulate(design, Some(depth)) {
                Ok(report) => report.cycles,
                Err(_) => u64::MAX,
            };
            let fifo_bram: u64 = design
                .streams
                .iter()
                .map(|s| shmls_fpga_sim::resources::bram_blocks(depth as u64 * s.elem_bytes))
                .sum();
            DepthChoice {
                depth,
                cycles,
                slowdown: 0.0,
                fifo_bram,
            }
        })
        .collect();
    let best_cycles = choices.iter().map(|c| c.cycles).min().unwrap_or(1).max(1);
    for c in &mut choices {
        c.slowdown = c.cycles as f64 / best_cycles as f64;
    }
    let recommended = choices
        .iter()
        .position(|c| c.slowdown <= 1.0 + tolerance)
        .unwrap_or(choices.len() - 1);
    DepthExploration {
        choices,
        recommended,
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;
    use crate::driver::{compile, CompileOptions, TargetPath};

    fn design_for(source: &str) -> DesignDescriptor {
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            ..Default::default()
        };
        let compiled = compile(source, &opts).unwrap();
        DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func).unwrap()
    }

    #[test]
    fn rate_matched_designs_need_shallow_fifos() {
        let design = design_for(&shmls_kernels::pw_advection::source(16, 14, 10));
        let e = explore_stream_depths(&design, &[1, 2, 4, 8, 16], 0.02);
        let rec = &e.choices[e.recommended];
        // A handshake-depth FIFO suffices on a rate-matched network.
        assert!(rec.depth <= 4, "recommended {rec:?}");
        // Depths are swept in order and cycles never increase with depth.
        for pair in e.choices.windows(2) {
            assert!(pair[0].depth < pair[1].depth);
            assert!(pair[0].cycles >= pair[1].cycles);
        }
        // FIFO storage grows with depth.
        assert!(e.choices.last().unwrap().fifo_bram >= e.choices[0].fifo_bram);
    }

    #[test]
    fn tracer_chain_also_tolerates_shallow_fifos() {
        let design = design_for(&shmls_kernels::tracer_advection::source(10, 8, 6));
        let e = explore_stream_depths(&design, &[1, 2, 8], 0.05);
        assert!(e.choices[e.recommended].depth <= 8);
        // Even depth 1 completes (deadlock-freedom at minimal buffering).
        assert!(e.choices[0].cycles > 0);
    }
}
