//! The Stencil-HMLS transformation: stencil dialect → HLS dialect (§3.3).
//!
//! Implements the paper's nine steps, producing the dataflow structure of
//! Figure 3 — `load_data → shift_buffer(s) → stream duplication → one
//! compute stage per stencil field → write_data`, all connected by HLS
//! streams so every stage makes progress each cycle:
//!
//! 1. **Classification of kernel arguments** — [`crate::classify`].
//! 2. **512-bit packed interface types** — field pointers become
//!    `!llvm.ptr<!llvm.struct<(!llvm.array<8 x f64>)>>` so each external
//!    beat moves 8 doubles.
//! 3. **Streams replace direct memory access** — one `dummy_load_data`
//!    placeholder dataflow stage per input field feeding an element stream
//!    (Listing 4).
//! 4. **Per-field compute stages** — one pipelined loop per
//!    `stencil.apply` result (multi-result applies must be split first,
//!    [`crate::split`]).
//! 5. **`stencil.access` → window extraction** — the shift buffer streams
//!    all `(2h+1)^rank` neighbour values; accesses become
//!    `llvm.extractvalue` at the flattened window position.
//! 6. **Result storage** — a single `write_data` stage drains the result
//!    streams into external memory in 512-bit chunks.
//! 7. **Placeholder replacement** — the first `dummy_load_data` becomes the
//!    single `load_data` call covering every input field; the rest are
//!    removed (one data-loading stage, many shift buffers — Figure 3).
//! 8. **Small data to local memory** — each `memref` argument is copied
//!    into a `memref.alloca` (BRAM) at kernel start, duplicated per
//!    consuming compute stage to respect the one-accessor dataflow rule.
//! 9. **AXI bundle assignment** — every field argument gets its own
//!    `m_axi` bundle (own HBM port); all small data shares one bundle;
//!    scalars ride the `s_axilite` control bundle.

use std::collections::BTreeMap;

use shmls_dialects::{arith, func, hls, llvm, memref, scf, stencil};
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_ensure, ir_error};

use crate::classify::{classify_args, ArgClass};
use crate::shift_buffer::{offset_to_window_pos, shift_register_len, window_size};

/// Runtime function: read all input fields from external memory in 512-bit
/// beats and feed the per-field element streams.
pub const RT_LOAD_DATA: &str = "load_data";
/// Placeholder inserted by step 3, replaced by step 7.
pub const RT_DUMMY_LOAD_DATA: &str = "dummy_load_data";
/// Runtime function: the shift buffer (element stream → window stream).
pub const RT_SHIFT_BUFFER: &str = "shift_buffer";
/// Runtime function: drain result streams to external memory (512-bit).
pub const RT_WRITE_DATA: &str = "write_data";
/// Runtime function: kernel-init copy of small data into BRAM.
pub const RT_COPY_SMALL_DATA: &str = "copy_small_data";

/// Number of f64 lanes in a 512-bit beat.
pub const PACK_LANES: u64 = 8;

/// Options controlling the generated design.
#[derive(Debug, Clone)]
pub struct HmlsOptions {
    /// FIFO depth for element/result streams.
    pub stream_depth: i64,
    /// FIFO depth for window streams (deepened to decouple stages).
    pub window_stream_depth: i64,
    /// Target initiation interval for compute loops.
    pub ii: i64,
    /// Unroll factor for compute loops (1 = none). Each iteration then
    /// processes `unroll` points — the body is physically replicated, so
    /// resources scale with the factor (the §4 SODA-opt observation:
    /// unrolled pipelines can become "too large to fit within the U280").
    /// Factors that do not divide the interior point count fall back to 1.
    pub unroll: i64,
}

impl Default for HmlsOptions {
    fn default() -> Self {
        Self {
            stream_depth: 8,
            window_stream_depth: 8,
            ii: 1,
            unroll: 1,
        }
    }
}

/// Summary of the generated design, used by tests and fed (via the IR) to
/// the simulator's resource and performance models.
#[derive(Debug, Clone, Default)]
pub struct HmlsReport {
    /// Input (read) field count.
    pub inputs: usize,
    /// Output (written) field count.
    pub outputs: usize,
    /// Compute stages generated (one per stencil field — step 4).
    pub compute_stages: usize,
    /// Stream-duplication stages generated.
    pub dup_stages: usize,
    /// Total streams created.
    pub streams: usize,
    /// Shift buffers (one per read field).
    pub shift_buffers: usize,
    /// Shift-register length per shift buffer (elements).
    pub shift_register_lens: Vec<i64>,
    /// Window size (elements per window).
    pub window_elems: usize,
    /// Local BRAM copies of small data (step 8), as (param-arg-index,
    /// elements) pairs — one per consuming stage.
    pub local_copies: Vec<(usize, i64)>,
    /// AXI bundle per function argument (step 9).
    pub bundles: Vec<String>,
    /// Dead compute stages pruned before construction: applies whose
    /// result is never stored and never feeds a live apply. Left in, each
    /// would push to a consumer-less stream and deadlock the design.
    pub pruned_stages: usize,
}

/// Result of the transformation.
#[derive(Debug)]
pub struct HmlsOutput {
    /// The generated `func.func` (named `<kernel>_hls`).
    pub func: OpId,
    /// Design summary.
    pub report: HmlsReport,
    /// Wall-clock telemetry: `"stencil-to-hls"` (analysis + dataflow
    /// construction) and `"connectivity"` (stream-graph verification).
    /// Empty when `shmls-ir` is built without the `timing` feature.
    pub timings: Timings,
}

/// The 512-bit packed pointer type used for field interfaces (step 2).
pub fn packed_field_type() -> Type {
    Type::llvm_ptr(Type::LlvmStruct(vec![Type::llvm_array(
        PACK_LANES,
        Type::F64,
    )]))
}

/// Where an apply operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// Window stream of the field bound to function argument `arg`.
    FieldWindow { arg: usize },
    /// Result stream of an earlier apply (index into the apply list).
    Producer { apply: usize },
    /// Small-data argument `arg` (read from the stage-local BRAM copy).
    Param { arg: usize },
    /// Scalar constant argument `arg`.
    Const { arg: usize },
}

/// Per-apply analysis results.
struct ApplyInfo {
    op: OpId,
    /// Source of each operand.
    sources: Vec<Source>,
    /// Function-arg index this apply's result is stored to, if any.
    stored_to: Option<usize>,
    /// Interior bounds of the result.
    interior: StencilBounds,
}

/// Apply the full Stencil-HMLS transformation to `stencil_func`, emitting
/// the HLS-dialect kernel next to it in the same module.
pub fn stencil_to_hls(
    ctx: &mut Context,
    stencil_func: OpId,
    opts: &HmlsOptions,
) -> IrResult<HmlsOutput> {
    let mut timings = Timings::new();
    let mut stopwatch = Stopwatch::start();
    let classification = classify_args(ctx, stencil_func)?;
    let entry = ctx
        .entry_block(stencil_func)
        .expect("classified func has a body");
    let old_args = ctx.block_args(entry).to_vec();
    let name = func::func_name(ctx, stencil_func)
        .ok_or_else(|| ir_error!("stencil function has no name"))?
        .to_string();
    let module_body = ctx
        .parent_block(stencil_func)
        .ok_or_else(|| ir_error!("stencil function is detached"))?;

    // ---- analysis --------------------------------------------------------
    let applies: Vec<OpId> = ctx
        .block_ops(entry)
        .iter()
        .copied()
        .filter(|&o| ctx.op_name(o) == stencil::APPLY)
        .collect();
    ir_ensure!(
        !applies.is_empty(),
        "stencil_to_hls: no stencil.apply in `{name}`"
    );
    for &a in &applies {
        ir_ensure!(
            ctx.results(a).len() == 1,
            "stencil_to_hls: multi-result stencil.apply found; run split_applies first"
        );
    }

    // stencil.load result -> field arg index
    let mut load_of: BTreeMap<ValueId, usize> = BTreeMap::new();
    for l in ctx.find_ops(stencil_func, stencil::LOAD) {
        let src = ctx.operands(l)[0];
        if let Some(arg) = old_args.iter().position(|&a| a == src) {
            load_of.insert(ctx.result(l, 0), arg);
        }
    }
    // apply result -> apply index
    let result_of: BTreeMap<ValueId, usize> = applies
        .iter()
        .enumerate()
        .map(|(i, &a)| (ctx.result(a, 0), i))
        .collect();
    // apply result -> stored field arg
    let mut stored_to: BTreeMap<usize, usize> = BTreeMap::new();
    for s in ctx.find_ops(stencil_func, stencil::STORE) {
        let temp = ctx.operands(s)[0];
        let field = ctx.operands(s)[1];
        if let (Some(&apply_idx), Some(arg)) = (
            result_of.get(&temp),
            old_args.iter().position(|&a| a == field),
        ) {
            stored_to.insert(apply_idx, arg);
        }
    }

    let mut infos: Vec<ApplyInfo> = Vec::with_capacity(applies.len());
    for (i, &a) in applies.iter().enumerate() {
        let mut sources = Vec::new();
        for &operand in ctx.operands(a) {
            let src = if let Some(&arg) = load_of.get(&operand) {
                Source::FieldWindow { arg }
            } else if let Some(&apply) = result_of.get(&operand) {
                ir_ensure!(apply < i, "apply operand from a later apply");
                Source::Producer { apply }
            } else if let Some(arg) = old_args.iter().position(|&x| x == operand) {
                match classification.classes[arg] {
                    ArgClass::SmallData => Source::Param { arg },
                    ArgClass::Scalar => Source::Const { arg },
                    other => ir_bail!("direct apply operand of class {other:?}"),
                }
            } else {
                ir_bail!("cannot trace apply operand to a source")
            };
            sources.push(src);
        }
        let interior = ctx
            .value_type(ctx.result(a, 0))
            .stencil_bounds()
            .ok_or_else(|| ir_error!("apply result is not a stencil temp"))?
            .clone();
        infos.push(ApplyInfo {
            op: a,
            sources,
            stored_to: stored_to.get(&i).copied(),
            interior,
        });
    }

    // ---- dead-stage pruning ----------------------------------------------
    // An apply is live iff its result is stored or feeds a live apply.
    // Dead applies must not become compute stages: each would push to a
    // result stream with no consumer, fill it, block, and back-pressure
    // its window dup — deadlocking the whole design under bounded FIFOs.
    // Walking in reverse works because producers precede their consumers.
    let mut live = vec![false; infos.len()];
    for i in (0..infos.len()).rev() {
        if live[i] || infos[i].stored_to.is_some() {
            live[i] = true;
            for src in &infos[i].sources {
                if let Source::Producer { apply } = *src {
                    live[apply] = true;
                }
            }
        }
    }
    let pruned_stages = live.iter().filter(|&&l| !l).count();
    ir_ensure!(
        live.iter().any(|&l| l),
        "stencil_to_hls: kernel stores no results — every compute stage is dead"
    );
    if pruned_stages > 0 {
        // Remap Producer indices to the compacted live-apply list. A live
        // apply's producers are themselves live, so the lookup never misses.
        let remap: BTreeMap<usize, usize> = live
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(old, _)| old)
            .enumerate()
            .map(|(new, old)| (old, new))
            .collect();
        infos = infos
            .into_iter()
            .zip(&live)
            .filter(|(_, &l)| l)
            .map(|(mut info, _)| {
                for src in &mut info.sources {
                    if let Source::Producer { apply } = src {
                        *apply = remap[apply];
                    }
                }
                info
            })
            .collect();
    }

    let interior = infos[0].interior.clone();
    let rank = interior.rank();
    let first_field = classification
        .fields()
        .first()
        .copied()
        .ok_or_else(|| ir_error!("kernel has no fields"))?;
    let bounded = ctx
        .value_type(old_args[first_field])
        .stencil_bounds()
        .ok_or_else(|| ir_error!("field arg without bounds"))?
        .clone();
    // Halo derivation below assumes a single uniform field geometry (the
    // frontend guarantees it; hand-written IR through compile_stencil_ir
    // must satisfy it too).
    for &f in &classification.fields() {
        let b = ctx
            .value_type(old_args[f])
            .stencil_bounds()
            .ok_or_else(|| ir_error!("field arg without bounds"))?;
        ir_ensure!(
            *b == bounded,
            "field arguments have differing bounds ({b} vs {bounded});              uniform field geometry is required"
        );
    }
    let halo = interior.lb[0] - bounded.lb[0];
    let n_points = interior.num_points();
    let w = window_size(rank, halo);

    // Consumer counts for duplication decisions. Streams, shift buffers
    // and the load stage are demand-driven: only fields some apply
    // actually reads get them (a declared-but-unused input would otherwise
    // feed a window stream nobody drains — a guaranteed deadlock under
    // bounded FIFOs).
    let mut consumed: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for info in &infos {
        for src in &info.sources {
            if let Source::FieldWindow { arg } = *src {
                consumed.insert(arg);
            }
        }
    }
    // A kernel whose computations read no external field (constant
    // generators) legitimately has no load/shift stages at all.
    let read_fields: Vec<usize> = classification
        .read_fields()
        .into_iter()
        .filter(|f| consumed.contains(f))
        .collect();
    let mut window_consumers: BTreeMap<usize, usize> =
        read_fields.iter().map(|&f| (f, 0)).collect();
    let mut producer_consumers: BTreeMap<usize, usize> = BTreeMap::new();
    for info in &infos {
        for src in &info.sources {
            match *src {
                Source::FieldWindow { arg } => *window_consumers.entry(arg).or_default() += 1,
                Source::Producer { apply } => *producer_consumers.entry(apply).or_default() += 1,
                _ => {}
            }
        }
    }
    for (i, info) in infos.iter().enumerate() {
        if info.stored_to.is_some() {
            *producer_consumers.entry(i).or_default() += 1;
        }
    }
    let mut report = HmlsReport {
        inputs: read_fields.len(),
        outputs: classification.written_fields().len(),
        window_elems: w,
        pruned_stages,
        ..HmlsReport::default()
    };

    // ---- construction -----------------------------------------------------

    // New function signature (step 2: packed field pointers).
    let mut new_input_types = Vec::with_capacity(old_args.len());
    for (idx, &arg) in old_args.iter().enumerate() {
        let ty = match classification.classes[idx] {
            c if c.is_field() => packed_field_type(),
            _ => ctx.value_type(arg).clone(),
        };
        new_input_types.push(ty);
    }
    let hls_name = format!("{name}_hls");
    let (hls_func, hls_entry) =
        func::create_func(ctx, module_body, &hls_name, new_input_types, vec![]);
    let new_args = ctx.block_args(hls_entry).to_vec();

    // Step 9: AXI bundle assignment.
    {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        let mut gmem = 0usize;
        for (idx, &arg) in new_args.iter().enumerate() {
            let bundle = match classification.classes[idx] {
                c if c.is_field() => {
                    let bd = format!("gmem{gmem}");
                    gmem += 1;
                    hls::interface(&mut b, arg, hls::AXI4, &bd);
                    bd
                }
                ArgClass::SmallData => {
                    hls::interface(&mut b, arg, hls::AXI4, "gmem_small");
                    "gmem_small".to_string()
                }
                _ => {
                    hls::interface(&mut b, arg, "s_axilite", "control");
                    "control".to_string()
                }
            };
            report.bundles.push(bundle);
        }
    }

    // Step 8: local BRAM copies of small data, one per consuming stage.
    // local_for[(param_arg, apply_idx)] -> alloca value
    let mut local_for: BTreeMap<(usize, usize), ValueId> = BTreeMap::new();
    for (i, info) in infos.iter().enumerate() {
        for src in &info.sources {
            if let Source::Param { arg } = *src {
                if local_for.contains_key(&(arg, i)) {
                    continue;
                }
                let Type::MemRef { shape, elem } = ctx.value_type(new_args[arg]).clone() else {
                    ir_bail!("small data argument is not a memref");
                };
                let mut b = OpBuilder::at_block_end(ctx, hls_entry);
                let local = memref::alloca(&mut b, shape.clone(), (*elem).clone());
                let call = func::call(
                    &mut b,
                    RT_COPY_SMALL_DATA,
                    vec![new_args[arg], local],
                    vec![],
                );
                let elems: i64 = shape.iter().product();
                ctx.set_attr(call, "elements", Attribute::int(elems));
                local_for.insert((arg, i), local);
                report.local_copies.push((arg, elems));
            }
        }
    }

    // Streams. Element streams per read field, then window streams.
    let bounded_extents = bounded.extents();
    let mut elem_stream: BTreeMap<usize, ValueId> = BTreeMap::new();
    let mut window_stream: BTreeMap<usize, ValueId> = BTreeMap::new();
    let window_ty = Type::LlvmStruct(vec![Type::llvm_array(w as u64, Type::F64)]);
    {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        for &f in &read_fields {
            let es = hls::create_stream(&mut b, Type::F64, opts.stream_depth);
            elem_stream.insert(f, es);
            report.streams += 1;
        }
        for &f in &read_fields {
            let ws = hls::create_stream(&mut b, window_ty.clone(), opts.window_stream_depth);
            window_stream.insert(f, ws);
            report.streams += 1;
        }
    }

    // Step 3: placeholder load stages (one per read field) + shift buffers.
    let mut dummy_calls: Vec<OpId> = Vec::new();
    for &f in &read_fields {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        let (_df, body) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(ctx, body);
        let call = func::call(
            &mut ib,
            RT_DUMMY_LOAD_DATA,
            vec![new_args[f], elem_stream[&f]],
            vec![],
        );
        ctx.set_attr(
            call,
            "extents",
            Attribute::IndexArray(bounded_extents.clone()),
        );
        ctx.set_attr(call, "halo", Attribute::int(halo));
        dummy_calls.push(call);
    }
    for &f in &read_fields {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        let (_df, body) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(ctx, body);
        let call = func::call(
            &mut ib,
            RT_SHIFT_BUFFER,
            vec![elem_stream[&f], window_stream[&f]],
            vec![],
        );
        ctx.set_attr(
            call,
            "extents",
            Attribute::IndexArray(bounded_extents.clone()),
        );
        ctx.set_attr(call, "halo", Attribute::int(halo));
        report.shift_buffers += 1;
        report
            .shift_register_lens
            .push(shift_register_len(&bounded_extents, halo));
    }

    // Result streams, one per apply.
    let mut result_stream: Vec<ValueId> = Vec::with_capacity(infos.len());
    {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        for _ in &infos {
            let rs = hls::create_stream(&mut b, Type::F64, opts.stream_depth);
            result_stream.push(rs);
            report.streams += 1;
        }
    }

    // Duplication (Listing 4's stream-copy region): one copy of each
    // window/result stream per consumer. Copies (streams) are created up
    // front; the dup *stages* are placed so they follow their producer in
    // program order — window dups right here (after the shift buffers),
    // result dups interleaved after each compute stage below.
    let mut window_copies: BTreeMap<usize, Vec<ValueId>> = BTreeMap::new();
    for (&f, &source) in &window_stream {
        let n = window_consumers.get(&f).copied().unwrap_or(0);
        let copies = create_stream_copies(ctx, hls_entry, source, n, &mut report)?;
        if copies.len() > 1 {
            build_dup_stage(ctx, hls_entry, source, &copies, n_points, opts)?;
            report.dup_stages += 1;
        }
        window_copies.insert(f, copies);
    }
    let mut result_copies: BTreeMap<usize, Vec<ValueId>> = BTreeMap::new();
    for (i, &source) in result_stream.iter().enumerate() {
        let n = producer_consumers.get(&i).copied().unwrap_or(0);
        let copies = create_stream_copies(ctx, hls_entry, source, n, &mut report)?;
        result_copies.insert(i, copies);
    }
    let mut window_next: BTreeMap<usize, usize> = BTreeMap::new();
    let mut result_next: BTreeMap<usize, usize> = BTreeMap::new();

    // Step 4 + 5: one compute stage per apply, each immediately followed by
    // the duplication stage for its result stream when it has several
    // consumers.
    for (i, info) in infos.iter().enumerate() {
        build_compute_stage(
            ctx,
            hls_entry,
            info,
            i,
            result_stream[i],
            &window_copies,
            &result_copies,
            &mut window_next,
            &mut result_next,
            &local_for,
            &new_args,
            &interior,
            halo,
            opts,
        )?;
        report.compute_stages += 1;
        let copies = &result_copies[&i];
        if copies.len() > 1 {
            let copies = copies.clone();
            build_dup_stage(ctx, hls_entry, result_stream[i], &copies, n_points, opts)?;
            report.dup_stages += 1;
        }
    }

    // Step 6: a single write_data stage for all stored results.
    {
        let mut stored: Vec<(usize, usize)> = infos
            .iter()
            .enumerate()
            .filter_map(|(i, info)| info.stored_to.map(|arg| (i, arg)))
            .collect();
        stored.sort_by_key(|&(_, arg)| arg);
        ir_ensure!(!stored.is_empty(), "kernel stores no results");
        let mut operands = Vec::new();
        for &(apply_idx, _) in &stored {
            let copy = take_copy(&result_copies, &mut result_next, apply_idx)?;
            operands.push(copy);
        }
        for &(_, arg) in &stored {
            operands.push(new_args[arg]);
        }
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        let (_df, body) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(ctx, body);
        let call = func::call(&mut ib, RT_WRITE_DATA, operands, vec![]);
        ctx.set_attr(call, "extents", Attribute::IndexArray(interior.extents()));
        ctx.set_attr(call, "halo", Attribute::int(halo));
        ctx.set_attr(call, "fields", Attribute::int(stored.len() as i64));
    }

    {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        func::ret(&mut b, vec![]);
    }

    // Step 7: replace the first placeholder with the real load_data over all
    // fields, delete the rest (single loading stage, Figure 3).
    replace_load_placeholders(ctx, &dummy_calls, &read_fields, &elem_stream, &new_args)?;

    // The generated design must be a well-formed Kahn network: every
    // stream fed and drained. Anything else would deadlock at runtime.
    stopwatch.lap(&mut timings, "stencil-to-hls");
    crate::connectivity::verify_connectivity(ctx, hls_func)?;
    stopwatch.lap(&mut timings, "connectivity");

    Ok(HmlsOutput {
        func: hls_func,
        report,
        timings,
    })
}

/// Create `consumers` copy streams of `source` (when more than one consumer
/// needs it); with zero or one consumer the source itself is the single
/// "copy". Stream creation happens at the current end of the entry block so
/// the values dominate every later stage.
fn create_stream_copies(
    ctx: &mut Context,
    hls_entry: BlockId,
    source: ValueId,
    consumers: usize,
    report: &mut HmlsReport,
) -> IrResult<Vec<ValueId>> {
    if consumers <= 1 {
        return Ok(vec![source]);
    }
    let elem_ty = ctx
        .value_type(source)
        .element_type()
        .ok_or_else(|| ir_error!("dup source is not a stream"))?
        .clone();
    let depth = shmls_dialects::hls::stream_depth(
        ctx,
        ctx.defining_op(source)
            .ok_or_else(|| ir_error!("stream without creator"))?,
    );
    let mut copies = Vec::with_capacity(consumers);
    let mut b = OpBuilder::at_block_end(ctx, hls_entry);
    for _ in 0..consumers {
        copies.push(hls::create_stream(&mut b, elem_ty.clone(), depth));
        report.streams += 1;
    }
    Ok(copies)
}

/// Build the dataflow stage that fans `source` out into `copies`
/// (Listing 4's stream-duplication region). Must be placed after the stage
/// producing `source` in program order.
fn build_dup_stage(
    ctx: &mut Context,
    hls_entry: BlockId,
    source: ValueId,
    copies: &[ValueId],
    n_points: i64,
    opts: &HmlsOptions,
) -> IrResult<()> {
    let loop_body = {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        let (_df, body) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(ctx, body);
        let lb = arith::constant_index(&mut ib, 0);
        let ub = arith::constant_index(&mut ib, n_points);
        let step = arith::constant_index(&mut ib, 1);
        let (_for_op, loop_body) = scf::for_loop(&mut ib, lb, ub, step, vec![]);
        loop_body
    };
    let mut lb_builder = OpBuilder::at_block_end(ctx, loop_body);
    hls::pipeline(&mut lb_builder, opts.ii);
    let v = hls::read(&mut lb_builder, source);
    for &c in copies {
        hls::write(&mut lb_builder, v, c);
    }
    scf::yield_op(&mut lb_builder, vec![]);
    Ok(())
}

/// Take the next unused copy of stream `key`.
fn take_copy(
    copies: &BTreeMap<usize, Vec<ValueId>>,
    next: &mut BTreeMap<usize, usize>,
    key: usize,
) -> IrResult<ValueId> {
    let list = copies
        .get(&key)
        .ok_or_else(|| ir_error!("no stream copies for key {key}"))?;
    let idx = next.entry(key).or_insert(0);
    let v = *list
        .get(*idx)
        .ok_or_else(|| ir_error!("stream copies for key {key} exhausted"))?;
    *idx += 1;
    Ok(v)
}

/// Build one compute stage: a pipelined loop over the interior that reads
/// its input streams, evaluates the cloned stencil body, and writes the
/// result stream.
#[allow(clippy::too_many_arguments)]
fn build_compute_stage(
    ctx: &mut Context,
    hls_entry: BlockId,
    info: &ApplyInfo,
    apply_idx: usize,
    my_stream: ValueId,
    window_copies: &BTreeMap<usize, Vec<ValueId>>,
    result_copies: &BTreeMap<usize, Vec<ValueId>>,
    window_next: &mut BTreeMap<usize, usize>,
    result_next: &mut BTreeMap<usize, usize>,
    local_for: &BTreeMap<(usize, usize), ValueId>,
    new_args: &[ValueId],
    interior: &StencilBounds,
    halo: i64,
    opts: &HmlsOptions,
) -> IrResult<()> {
    // The stream feeding each operand (window or producer element).
    let mut operand_stream: Vec<Option<ValueId>> = Vec::with_capacity(info.sources.len());
    for src in &info.sources {
        let s = match *src {
            Source::FieldWindow { arg } => Some(take_copy(window_copies, window_next, arg)?),
            Source::Producer { apply } => Some(take_copy(result_copies, result_next, apply)?),
            Source::Param { .. } | Source::Const { .. } => None,
        };
        operand_stream.push(s);
    }
    let n_points = interior.num_points();
    let extents = interior.extents();
    let rank = interior.rank();
    let unroll = if opts.unroll > 1 && n_points % opts.unroll == 0 {
        opts.unroll
    } else {
        1
    };

    let (for_op, loop_body) = {
        let mut b = OpBuilder::at_block_end(ctx, hls_entry);
        let (_df, body) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(ctx, body);
        let lb = arith::constant_index(&mut ib, 0);
        let ub = arith::constant_index(&mut ib, n_points / unroll);
        let step = arith::constant_index(&mut ib, 1);
        scf::for_loop(&mut ib, lb, ub, step, vec![])
    };
    let lin = scf::induction_var(ctx, for_op);
    {
        let mut lbld = OpBuilder::at_block_end(ctx, loop_body);
        hls::pipeline(&mut lbld, opts.ii);
        if unroll > 1 {
            hls::unroll(&mut lbld, unroll);
        }
    }

    let src_block = ctx.entry_block(info.op).expect("apply body");
    let src_args = ctx.block_args(src_block).to_vec();
    let needs_index = !ctx.find_ops(info.op, stencil::INDEX).is_empty();

    // One physically replicated point-computation per unroll step.
    for u in 0..unroll {
        // Per-step stream reads: window packs / producer elements.
        let mut window_value: BTreeMap<ValueId, ValueId> = BTreeMap::new();
        let mut scalar_value: BTreeMap<ValueId, ValueId> = BTreeMap::new();
        let mut param_local: BTreeMap<ValueId, ValueId> = BTreeMap::new();
        {
            let mut lbld = OpBuilder::at_block_end(ctx, loop_body);
            for ((src, &stream), &src_arg) in
                info.sources.iter().zip(&operand_stream).zip(&src_args)
            {
                match *src {
                    Source::FieldWindow { .. } => {
                        let w = hls::read(&mut lbld, stream.expect("window stream"));
                        window_value.insert(src_arg, w);
                    }
                    Source::Producer { .. } => {
                        let v = hls::read(&mut lbld, stream.expect("producer stream"));
                        scalar_value.insert(src_arg, v);
                    }
                    Source::Param { arg } => {
                        param_local.insert(src_arg, local_for[&(arg, apply_idx)]);
                    }
                    Source::Const { arg } => {
                        scalar_value.insert(src_arg, new_args[arg]);
                    }
                }
            }
        }

        // Reconstruct the multi-dimensional index of this point from the
        // linear induction variable (point = lin * unroll + u), lazily.
        let mut axis_index: Vec<ValueId> = Vec::new();
        if needs_index {
            let mut lbld = OpBuilder::at_block_end(ctx, loop_body);
            let point = if unroll == 1 {
                lin
            } else {
                let factor = arith::constant_index(&mut lbld, unroll);
                let scaled = arith::muli(&mut lbld, lin, factor);
                let off = arith::constant_index(&mut lbld, u);
                arith::addi(&mut lbld, scaled, off)
            };
            // Row-major: last dim fastest.
            let mut divisors = vec![1i64; rank];
            for d in (0..rank.saturating_sub(1)).rev() {
                divisors[d] = divisors[d + 1] * extents[d + 1];
            }
            for d in 0..rank {
                let div = arith::constant_index(&mut lbld, divisors[d]);
                let q = arith::divsi(&mut lbld, point, div);
                let idx = if d == 0 {
                    q
                } else {
                    let ext = arith::constant_index(&mut lbld, extents[d]);
                    arith::remsi(&mut lbld, q, ext)
                };
                axis_index.push(idx);
            }
        }

        // Clone the apply body with substitutions (step 5).
        let mut vmap: BTreeMap<ValueId, ValueId> = BTreeMap::new();
        let src_ops = ctx.block_ops(src_block).to_vec();
        for op in src_ops {
            let op_name = ctx.op_name(op).to_string();
            match op_name.as_str() {
                stencil::ACCESS => {
                    let operand = ctx.operands(op)[0];
                    let offset = stencil::access_offset(ctx, op)
                        .ok_or_else(|| ir_error!("access without offset"))?
                        .to_vec();
                    let result = ctx.result(op, 0);
                    if let Some(&wv) = window_value.get(&operand) {
                        let pos = offset_to_window_pos(&offset, halo);
                        let mut lbld = OpBuilder::at_block_end(ctx, loop_body);
                        let e = llvm::extractvalue(&mut lbld, wv, &[0, pos as i64], Type::F64);
                        vmap.insert(result, e);
                    } else if let Some(&sv) = scalar_value.get(&operand) {
                        ir_ensure!(
                            offset.iter().all(|&o| o == 0),
                            "producer-temp access at non-zero offset {offset:?}"
                        );
                        vmap.insert(result, sv);
                    } else {
                        ir_bail!("stencil.access on unmapped operand");
                    }
                }
                stencil::INDEX => {
                    let dim = ctx
                        .attr(op, "dim")
                        .and_then(Attribute::as_int)
                        .ok_or_else(|| ir_error!("stencil.index without dim"))?
                        as usize;
                    vmap.insert(ctx.result(op, 0), axis_index[dim]);
                }
                stencil::RETURN => {
                    let v = ctx.operands(op)[0];
                    // The returned value may be a cloned body value, a
                    // scalar block argument (const operand / producer
                    // element), or — for constant kernels — nothing local.
                    let mapped = vmap
                        .get(&v)
                        .or_else(|| scalar_value.get(&v))
                        .copied()
                        .unwrap_or(v);
                    let mut lbld = OpBuilder::at_block_end(ctx, loop_body);
                    hls::write(&mut lbld, mapped, my_stream);
                }
                _ => {
                    // Substitute param memrefs with the stage-local copies.
                    let mut m: std::collections::HashMap<ValueId, ValueId> = vmap
                        .iter()
                        .map(|(&k, &v)| (k, v))
                        .chain(param_local.iter().map(|(&k, &v)| (k, v)))
                        .chain(scalar_value.iter().map(|(&k, &v)| (k, v)))
                        .collect();
                    let cloned = ctx.clone_op(op, &mut m);
                    ctx.append_op(loop_body, cloned);
                    for (&old_r, &new_r) in ctx
                        .results(op)
                        .to_vec()
                        .iter()
                        .zip(ctx.results(cloned).to_vec().iter())
                    {
                        vmap.insert(old_r, new_r);
                    }
                }
            }
        }
    }
    let mut endb = OpBuilder::at_block_end(ctx, loop_body);
    scf::yield_op(&mut endb, vec![]);
    Ok(())
}

/// Step 7: replace the first `dummy_load_data` with the single `load_data`
/// call covering every read field and erase the remaining placeholders
/// (including their now-empty dataflow regions).
fn replace_load_placeholders(
    ctx: &mut Context,
    dummy_calls: &[OpId],
    read_fields: &[usize],
    elem_stream: &BTreeMap<usize, ValueId>,
    new_args: &[ValueId],
) -> IrResult<()> {
    if dummy_calls.is_empty() {
        // Generator-only kernel: nothing to load.
        return Ok(());
    }
    let first = dummy_calls[0];
    let extents = ctx
        .attr(first, "extents")
        .and_then(Attribute::as_index_array)
        .ok_or_else(|| ir_error!("placeholder without extents"))?
        .to_vec();
    let halo = ctx
        .attr(first, "halo")
        .and_then(Attribute::as_int)
        .ok_or_else(|| ir_error!("placeholder without halo"))?;

    let mut operands: Vec<ValueId> = read_fields.iter().map(|&f| new_args[f]).collect();
    operands.extend(read_fields.iter().map(|&f| elem_stream[&f]));

    let mut b = OpBuilder::before(ctx, first);
    let call = func::call(&mut b, RT_LOAD_DATA, operands, vec![]);
    ctx.set_attr(call, "extents", Attribute::IndexArray(extents));
    ctx.set_attr(call, "halo", Attribute::int(halo));
    ctx.set_attr(call, "fields", Attribute::int(read_fields.len() as i64));

    // Erase placeholders; all but the first live in their own dataflow
    // region, which we erase wholesale.
    ctx.erase_op(first);
    for &dummy in &dummy_calls[1..] {
        let dataflow_op = ctx
            .parent_op(dummy)
            .ok_or_else(|| ir_error!("placeholder outside a dataflow region"))?;
        ir_ensure!(
            ctx.op_name(dataflow_op) == hls::DATAFLOW,
            "placeholder not directly inside hls.dataflow"
        );
        ctx.erase_op(dataflow_op);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};
    use shmls_ir::interp::{Buffer, Machine, NoExtern, RtValue};
    use shmls_ir::verifier::verify_with;

    const LAPLACE: &str = r#"
kernel laplace {
  grid(8, 6)
  halo 1
  field a : input
  field b : output
  const w
  compute b {
    b = w * (a[-1,0] + a[1,0] + a[0,-1] + a[0,1] - 4.0 * a[0,0])
  }
}
"#;

    const MULTI: &str = r#"
kernel multi {
  grid(6, 5, 4)
  halo 1
  field u : input
  field v : input
  field su : output
  field sv : output
  param tz[k]
  const c
  compute su { su = c * (u[1,0,0] - u[-1,0,0]) + tz[k] * v[0,0,0] }
  compute sv { sv = v[0,1,0] + v[0,-1,0] + u[0,0,1] }
}
"#;

    const CHAIN: &str = r#"
kernel chain {
  grid(6)
  halo 1
  field a : input
  field t : temp
  field b : output
  field c : output
  compute t { t = 2.0 * a[0] }
  compute b { b = t[0] + a[1] }
  compute c { c = t[0] - a[-1] }
}
"#;

    fn build(src: &str) -> (Context, OpId, HmlsOutput, shmls_frontend::KernelSignature) {
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let out = stencil_to_hls(&mut ctx, lowered.func, &HmlsOptions::default()).unwrap();
        (ctx, module, out, lowered.signature)
    }

    #[test]
    fn laplace_structure() {
        let (ctx, module, out, _sig) = build(LAPLACE);
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        let r = &out.report;
        assert_eq!(r.inputs, 1);
        assert_eq!(r.outputs, 1);
        assert_eq!(r.compute_stages, 1);
        assert_eq!(r.dup_stages, 0);
        assert_eq!(r.window_elems, 9);
        assert_eq!(r.shift_buffers, 1);
        // Streams: 1 elem + 1 window + 1 result.
        assert_eq!(r.streams, 3);
        // Exactly one load_data, no placeholders left.
        let calls: Vec<_> = ctx
            .find_ops(module, "func.call")
            .into_iter()
            .filter(|&c| ctx.attr(c, "callee").and_then(Attribute::as_str) == Some(RT_LOAD_DATA))
            .collect();
        assert_eq!(calls.len(), 1);
        assert!(
            ctx.find_ops(module, "func.call")
                .into_iter()
                .all(|c| ctx.attr(c, "callee").and_then(Attribute::as_str)
                    != Some(RT_DUMMY_LOAD_DATA))
        );
        // Bundles: one gmem per field, control for the scalar.
        assert_eq!(
            r.bundles,
            vec!["gmem0".to_string(), "gmem1".into(), "control".into()]
        );
        // Pipeline directives request II = 1.
        for p in ctx.find_ops(module, shmls_dialects::hls::PIPELINE) {
            assert_eq!(shmls_dialects::hls::pipeline_ii(&ctx, p), Some(1));
        }
    }

    #[test]
    fn multi_field_structure() {
        let (ctx, module, out, _sig) = build(MULTI);
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        let r = &out.report;
        assert_eq!(r.inputs, 2);
        assert_eq!(r.outputs, 2);
        assert_eq!(r.compute_stages, 2);
        assert_eq!(r.window_elems, 27);
        assert_eq!(r.shift_buffers, 2);
        // Both u's and v's windows feed both compute stages -> two dup
        // stages.
        assert_eq!(r.dup_stages, 2);
        // Small data local copy for the one consuming stage.
        assert_eq!(r.local_copies.len(), 1);
        // Bundles: 4 fields + small data + control.
        assert_eq!(
            r.bundles,
            vec![
                "gmem0".to_string(),
                "gmem1".into(),
                "gmem2".into(),
                "gmem3".into(),
                "gmem_small".into(),
                "control".into()
            ]
        );
    }

    #[test]
    fn chain_uses_producer_streams() {
        let (ctx, module, out, _sig) = build(CHAIN);
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        let r = &out.report;
        assert_eq!(r.compute_stages, 3);
        // t feeds b and c -> result dup stage; a's window feeds all three
        // stages -> window dup stage.
        assert_eq!(r.dup_stages, 2);
        // t is consumed downstream: it must NOT be pruned as dead.
        assert_eq!(r.pruned_stages, 0);
        let _ = module;
    }

    const DEAD_TEMP: &str = r#"
kernel unused {
  grid(8)
  halo 1
  field a : input
  field t : temp
  field b : output
  compute t { t = 2.0 * a[0] }
  compute b { b = a[1] + a[-1] }
}
"#;

    #[test]
    fn dead_temp_stage_is_pruned() {
        // t is never stored and feeds nothing: left in, its result stream
        // would have no consumer and the design would deadlock.
        let (ctx, module, out, _sig) = build(DEAD_TEMP);
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        let r = &out.report;
        assert_eq!(r.pruned_stages, 1);
        assert_eq!(r.compute_stages, 1);
        // With t gone, a's window feeds only b: no dup stage, and the
        // stream count matches a single-compute design (elem + window +
        // result).
        assert_eq!(r.dup_stages, 0);
        assert_eq!(r.streams, 3);
        // The generated design passes the connectivity verifier (checked
        // inside stencil_to_hls) and computes the right values.
        crate::connectivity::verify_connectivity(&ctx, out.func).unwrap();
    }

    #[test]
    fn dead_temp_semantics_match() {
        check_equivalence(DEAD_TEMP, 424242);
    }

    #[test]
    fn all_dead_kernel_is_rejected() {
        // Every compute dead (nothing stored): the transform must refuse
        // rather than emit an empty design. The frontend cannot express
        // this (outputs are always stored), so drive the IR directly.
        let src = r#"
kernel nothing {
  grid(8)
  halo 1
  field a : input
  field t : temp
  field b : output
  compute t { t = 2.0 * a[0] }
  compute b { b = a[1] + a[-1] }
}
"#;
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        // Delete the stencil.store ops so nothing is live.
        for s in ctx.find_ops(lowered.func, stencil::STORE) {
            ctx.erase_op(s);
        }
        let e = stencil_to_hls(&mut ctx, lowered.func, &HmlsOptions::default()).unwrap_err();
        assert!(e.to_string().contains("every compute stage is dead"), "{e}");
    }

    /// Execute both paths and compare outputs exactly.
    fn check_equivalence(src: &str, seed: u64) {
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let _out = stencil_to_hls(&mut ctx, lowered.func, &HmlsOptions::default()).unwrap();
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();

        let sig = &lowered.signature;
        let bounded = StencilBounds::from_extents(&sig.grid).grown(sig.halo);
        let mut next = seed;
        let mut rnd = move || {
            // xorshift-ish deterministic filler.
            next ^= next << 13;
            next ^= next >> 7;
            next ^= next << 17;
            (next % 1000) as f64 / 100.0 - 5.0
        };

        // Reference (pure stencil interpretation).
        let mut no = NoExtern;
        let mut ref_machine = Machine::new(&ctx, module, &mut no);
        // HLS path.
        let mut seed_values: Vec<Vec<f64>> = Vec::new();
        let mut ref_args = Vec::new();
        for arg in &sig.args {
            match arg {
                shmls_frontend::KernelArg::Field(_, _) => {
                    let mut buf = Buffer::zeroed(bounded.extents(), bounded.lb.clone());
                    let vals: Vec<f64> = (0..buf.data.len()).map(|_| rnd()).collect();
                    buf.data.copy_from_slice(&vals);
                    seed_values.push(vals);
                    ref_args.push(RtValue::MemRef(ref_machine.store.alloc(buf)));
                }
                shmls_frontend::KernelArg::Param(_, _, extent) => {
                    let mut buf = Buffer::zeroed(vec![*extent], vec![0]);
                    let vals: Vec<f64> = (0..buf.data.len()).map(|_| rnd()).collect();
                    buf.data.copy_from_slice(&vals);
                    seed_values.push(vals);
                    ref_args.push(RtValue::MemRef(ref_machine.store.alloc(buf)));
                }
                shmls_frontend::KernelArg::Const(_) => {
                    let v = rnd();
                    seed_values.push(vec![v]);
                    ref_args.push(RtValue::F64(v));
                }
            }
        }
        ref_machine.call(&sig.name, &ref_args).unwrap();
        let ref_store = std::mem::take(&mut ref_machine.store);
        drop(ref_machine);

        let hls_name = format!("{}_hls", sig.name);
        let (hls_store, runtime) =
            shmls_fpga_sim::executor::execute_hls_kernel(&ctx, module, &hls_name, |store| {
                let mut args = Vec::new();
                let mut seeds = seed_values.iter();
                for arg in &sig.args {
                    match arg {
                        shmls_frontend::KernelArg::Field(_, _) => {
                            let mut buf = Buffer::zeroed(bounded.extents(), bounded.lb.clone());
                            buf.data.copy_from_slice(seeds.next().unwrap());
                            args.push(RtValue::MemRef(store.alloc(buf)));
                        }
                        shmls_frontend::KernelArg::Param(_, _, extent) => {
                            let mut buf = Buffer::zeroed(vec![*extent], vec![0]);
                            buf.data.copy_from_slice(seeds.next().unwrap());
                            args.push(RtValue::MemRef(store.alloc(buf)));
                        }
                        shmls_frontend::KernelArg::Const(_) => {
                            args.push(RtValue::F64(seeds.next().unwrap()[0]));
                        }
                    }
                }
                args
            })
            .unwrap();

        // Compare every output field buffer over the interior.
        let interior = StencilBounds::from_extents(&sig.grid);
        for (i, arg) in sig.args.iter().enumerate() {
            if let shmls_frontend::KernelArg::Field(name, kind) = arg {
                if matches!(
                    kind,
                    shmls_frontend::FieldKind::Output | shmls_frontend::FieldKind::InOut
                ) {
                    let r = ref_store.get(i).unwrap();
                    let h = hls_store.get(i).unwrap();
                    for p in shmls_ir::interp::iter_box(&interior.lb, &interior.ub) {
                        let rv = r.load(&p).unwrap();
                        let hv = h.load(&p).unwrap();
                        assert!(
                            (rv - hv).abs() < 1e-12,
                            "field `{name}` at {p:?}: stencil={rv} hls={hv}"
                        );
                    }
                }
            }
        }
        // Sanity: the HLS path actually moved data through streams.
        let (n_streams, pushed, _) = runtime.streams.stats();
        assert!(n_streams >= 3, "expected streams, got {n_streams}");
        assert!(pushed > 0);
        assert!(runtime.mem_beats > 0);
    }

    #[test]
    fn laplace_hls_matches_stencil_semantics() {
        check_equivalence(LAPLACE, 0xDEADBEEF);
    }

    #[test]
    fn multi_field_hls_matches_stencil_semantics() {
        check_equivalence(MULTI, 12345);
    }

    #[test]
    fn chain_hls_matches_stencil_semantics() {
        check_equivalence(CHAIN, 999);
    }

    #[test]
    fn unrolled_compute_matches_semantics() {
        // unroll = 4 divides the 8x6 interior; values must be identical.
        let k = parse_kernel(LAPLACE).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let opts = HmlsOptions {
            unroll: 4,
            ..Default::default()
        };
        let out = stencil_to_hls(&mut ctx, lowered.func, &opts).unwrap();
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        // Structure: 4 window reads and 4 result writes per iteration,
        // plus the hls.unroll directive.
        let hls_func = out.func;
        assert_eq!(ctx.find_ops(hls_func, shmls_dialects::hls::UNROLL).len(), 1);
        let compute_reads = ctx.find_ops(hls_func, shmls_dialects::hls::READ).len();
        assert_eq!(compute_reads, 4, "4 unrolled window reads");

        // Functional equivalence against the plain design.
        let mut ref_ctx = Context::new();
        let (ref_module, ref_body) = create_module(&mut ref_ctx);
        let ref_lowered = lower_kernel(&mut ref_ctx, ref_body, &k).unwrap();
        let _ = stencil_to_hls(&mut ref_ctx, ref_lowered.func, &HmlsOptions::default()).unwrap();

        let bounded = StencilBounds::from_extents(&k.grid).grown(k.halo);
        let fill = |store: &mut shmls_ir::interp::Store| -> Vec<RtValue> {
            let mut a = Buffer::zeroed(bounded.extents(), bounded.lb.clone());
            for (i, v) in a.data.iter_mut().enumerate() {
                *v = (i % 97) as f64 / 9.0;
            }
            let b = Buffer::zeroed(bounded.extents(), bounded.lb.clone());
            vec![
                RtValue::MemRef(store.alloc(a)),
                RtValue::MemRef(store.alloc(b)),
                RtValue::F64(0.2),
            ]
        };
        let (unrolled_store, _) =
            shmls_fpga_sim::executor::execute_hls_kernel(&ctx, module, "laplace_hls", fill)
                .unwrap();
        let (ref_store, _) =
            shmls_fpga_sim::executor::execute_hls_kernel(&ref_ctx, ref_module, "laplace_hls", fill)
                .unwrap();
        let a = unrolled_store.get(1).unwrap();
        let b = ref_store.get(1).unwrap();
        assert_eq!(
            a.data, b.data,
            "unrolled design must compute identical values"
        );
    }

    #[test]
    fn non_dividing_unroll_falls_back() {
        let k = parse_kernel(LAPLACE).unwrap(); // 8*6 = 48 points
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let opts = HmlsOptions {
            unroll: 7,
            ..Default::default()
        };
        let out = stencil_to_hls(&mut ctx, lowered.func, &opts).unwrap();
        assert!(ctx
            .find_ops(out.func, shmls_dialects::hls::UNROLL)
            .is_empty());
    }

    #[test]
    fn multi_result_apply_rejected() {
        let k = parse_kernel(CHAIN).unwrap();
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        crate::fuse::fuse_applies(&mut ctx, lowered.func).unwrap();
        let e = stencil_to_hls(&mut ctx, lowered.func, &HmlsOptions::default()).unwrap_err();
        assert!(e.to_string().contains("split_applies"), "{e}");
    }
}
