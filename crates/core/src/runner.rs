//! Convenience runners: execute a [`CompiledKernel`] through any of the
//! four paths (stencil interpretation, CPU loops, HLS sequential engine,
//! HLS threaded engine) from the same named buffers.

use std::collections::BTreeMap;
use std::time::Duration;

use shmls_fpga_sim::deadlock::DeadlockReport;
use shmls_fpga_sim::executor::execute_hls_kernel;
use shmls_fpga_sim::threaded::{execute_threaded, ThreadedOutcome};
use shmls_frontend::{FieldKind, KernelArg};
use shmls_ir::error::IrResult;
use shmls_ir::interp::{Buffer, Machine, NoExtern, RtValue, Store};
use shmls_ir::{ir_bail, ir_error};

use crate::driver::CompiledKernel;

/// Named input data for a kernel run.
#[derive(Debug, Clone, Default)]
pub struct KernelData {
    /// Field and parameter buffers by name. Field buffers must be
    /// halo-padded (`origin = -halo`); parameter buffers span
    /// `n + 2·halo` with origin 0.
    pub buffers: BTreeMap<String, Buffer>,
    /// Scalar constants by name.
    pub scalars: BTreeMap<String, f64>,
}

impl KernelData {
    /// Insert a buffer.
    pub fn buffer(mut self, name: &str, buffer: Buffer) -> Self {
        self.buffers.insert(name.to_string(), buffer);
        self
    }

    /// Insert a scalar.
    pub fn scalar(mut self, name: &str, value: f64) -> Self {
        self.scalars.insert(name.to_string(), value);
        self
    }
}

/// Allocate the kernel arguments in `store` and return
/// `(args, name → handle)` in signature order.
fn bind_args(
    compiled: &CompiledKernel,
    data: &KernelData,
    store: &mut Store,
) -> IrResult<(Vec<RtValue>, BTreeMap<String, usize>)> {
    let bounded = shmls_ir::types::StencilBounds::from_extents(&compiled.signature.grid)
        .grown(compiled.signature.halo);
    let mut args = Vec::new();
    let mut handles = BTreeMap::new();
    for arg in &compiled.signature.args {
        match arg {
            KernelArg::Field(name, _) => {
                let buffer = match data.buffers.get(name) {
                    Some(b) => b.clone(),
                    None => Buffer::zeroed(bounded.extents(), bounded.lb.clone()),
                };
                if buffer.shape != bounded.extents() {
                    ir_bail!(
                        "field `{name}`: buffer shape {:?} does not match padded grid {:?}",
                        buffer.shape,
                        bounded.extents()
                    );
                }
                let h = store.alloc(buffer);
                handles.insert(name.clone(), h);
                args.push(RtValue::MemRef(h));
            }
            KernelArg::Param(name, _, extent) => {
                let buffer = match data.buffers.get(name) {
                    Some(b) => b.clone(),
                    None => Buffer::zeroed(vec![*extent], vec![0]),
                };
                let h = store.alloc(buffer);
                handles.insert(name.clone(), h);
                args.push(RtValue::MemRef(h));
            }
            KernelArg::Const(name) => {
                let v = *data
                    .scalars
                    .get(name)
                    .ok_or_else(|| ir_error!("missing scalar constant `{name}`"))?;
                args.push(RtValue::F64(v));
            }
        }
    }
    Ok((args, handles))
}

/// Collect the externally written fields from a final store.
fn collect_outputs(
    compiled: &CompiledKernel,
    store: &Store,
    handles: &BTreeMap<String, usize>,
) -> IrResult<BTreeMap<String, Buffer>> {
    let mut out = BTreeMap::new();
    for arg in &compiled.signature.args {
        if let KernelArg::Field(name, kind) = arg {
            if matches!(kind, FieldKind::Output | FieldKind::InOut) {
                out.insert(name.clone(), store.get(handles[name])?.clone());
            }
        }
    }
    Ok(out)
}

/// Run the frontend's stencil-dialect function directly (reference
/// semantics).
pub fn run_stencil(
    compiled: &CompiledKernel,
    data: &KernelData,
) -> IrResult<BTreeMap<String, Buffer>> {
    let mut no = NoExtern;
    let mut machine = Machine::new(&compiled.ctx, compiled.module, &mut no);
    let (args, handles) = bind_args(compiled, data, &mut machine.store)?;
    machine.call(&compiled.kernel.name, &args)?;
    collect_outputs(compiled, &machine.store, &handles)
}

/// Run the stencil-dialect function through the bytecode tier: each
/// `stencil.apply` with a compiled plan executes as a flat register
/// program instead of a per-point tree walk. Everything outside the
/// applies (loads, stores, calls) still interprets normally, and applies
/// without a plan fall back to the tree-walker — so this always produces
/// results bitwise-identical to [`run_stencil`], just faster.
pub fn run_stencil_bytecode(
    compiled: &CompiledKernel,
    data: &KernelData,
) -> IrResult<BTreeMap<String, Buffer>> {
    run_stencil_bytecode_with(compiled, data, shmls_ir::bytecode::ApplyMode::default())
}

/// [`run_stencil_bytecode`] with an explicit
/// [`ApplyMode`](shmls_ir::bytecode::ApplyMode): `Scalar` is the
/// per-point dispatch the bench harness measures speedups against;
/// `Chunked` is the vector tier (optionally threaded over the axis-0
/// slab partition). Results are bitwise-identical in every mode.
pub fn run_stencil_bytecode_with(
    compiled: &CompiledKernel,
    data: &KernelData,
    mode: shmls_ir::bytecode::ApplyMode,
) -> IrResult<BTreeMap<String, Buffer>> {
    let mut no = NoExtern;
    let mut machine = Machine::new(&compiled.ctx, compiled.module, &mut no);
    machine.apply_plans = compiled.apply_plans.clone();
    machine.apply_mode = mode;
    let (args, handles) = bind_args(compiled, data, &mut machine.store)?;
    machine.call(&compiled.kernel.name, &args)?;
    collect_outputs(compiled, &machine.store, &handles)
}

/// Run the CPU (Von-Neumann loop nest) lowering.
pub fn run_cpu(compiled: &CompiledKernel, data: &KernelData) -> IrResult<BTreeMap<String, Buffer>> {
    if compiled.cpu_func.is_none() {
        ir_bail!("kernel was compiled without the CPU path");
    }
    let mut no = NoExtern;
    let mut machine = Machine::new(&compiled.ctx, compiled.module, &mut no);
    let (args, handles) = bind_args(compiled, data, &mut machine.store)?;
    machine.call(&compiled.cpu_name(), &args)?;
    collect_outputs(compiled, &machine.store, &handles)
}

/// Stream statistics from a sequential-engine run:
/// `(streams created, elements pushed, 512-bit memory beats)`.
pub type StreamStats = (usize, u64, u64);

/// Run the Stencil-HMLS dataflow design on the sequential (Kahn) engine,
/// returning the written fields and the run's [`StreamStats`].
pub fn run_hls(
    compiled: &CompiledKernel,
    data: &KernelData,
) -> IrResult<(BTreeMap<String, Buffer>, StreamStats)> {
    let mut handles_out = BTreeMap::new();
    let (store, runtime) = execute_hls_kernel(
        &compiled.ctx,
        compiled.module,
        &compiled.hls_name(),
        |store| {
            let (args, handles) =
                bind_args(compiled, data, store).expect("argument binding failed");
            handles_out = handles;
            args
        },
    )?;
    let outputs = collect_outputs(compiled, &store, &handles_out)?;
    let (n_streams, pushed, _) = runtime.streams.stats();
    Ok((outputs, (n_streams, pushed, runtime.mem_beats)))
}

/// Run the Stencil-HMLS design on the threaded engine (bounded FIFOs, one
/// thread per stage).
///
/// The outer `IrResult` is for execution *errors* (bad IR, failed calls);
/// the inner `Result` distinguishes a completed run (the written fields)
/// from a deadlocked one. A deadlock is never reported silently: the
/// [`DeadlockReport`] names every blocked stage and the stream (with
/// occupancy vs. declared depth) it was blocked on.
pub fn run_hls_threaded(
    compiled: &CompiledKernel,
    data: &KernelData,
    watchdog: Duration,
) -> IrResult<Result<BTreeMap<String, Buffer>, Box<DeadlockReport>>> {
    let mut handles_out = BTreeMap::new();
    let outcome = execute_threaded(
        &compiled.ctx,
        compiled.module,
        &compiled.hls_name(),
        |store| {
            let (args, handles) =
                bind_args(compiled, data, store).expect("argument binding failed");
            handles_out = handles;
            args
        },
        watchdog,
    )?;
    match outcome {
        ThreadedOutcome::Completed { store, .. } => {
            Ok(Ok(collect_outputs(compiled, &store, &handles_out)?))
        }
        ThreadedOutcome::Deadlock { report } => Ok(Err(report)),
    }
}

/// Maximum absolute difference between two output maps over the interior.
pub fn max_output_diff(
    a: &BTreeMap<String, Buffer>,
    b: &BTreeMap<String, Buffer>,
    interior_lb: &[i64],
    interior_ub: &[i64],
) -> f64 {
    let mut worst: f64 = 0.0;
    for (name, ba) in a {
        let bb = &b[name];
        for p in shmls_ir::interp::iter_box(interior_lb, interior_ub) {
            let va = ba.load(&p).unwrap_or(f64::NAN);
            let vb = bb.load(&p).unwrap_or(f64::NAN);
            worst = worst.max((va - vb).abs());
        }
    }
    worst
}

// ---- compute-unit replication (domain decomposition) --------------------

/// Execute a kernel over `cus` compute units by domain decomposition along
/// the first axis, mirroring §4's CU replication (4 CUs for PW advection).
///
/// Each CU owns a contiguous slab `[start, end)` of axis 0 and receives a
/// halo-padded copy of its inputs; every distinct slab height is compiled
/// to its own design — the static-shape property the paper's future work
/// calls out ("the current implementation with static shape needs … a new
/// bitstream per problem size") — shared through the process-wide compile
/// cache. The slabs execute concurrently on a worker pool; see
/// [`crate::scale`] for the execution machinery, the per-CU report, and
/// the time-marching driver.
///
/// Returns the merged outputs, exactly as a single-CU run would produce.
pub fn run_hls_multi_cu(
    kernel: &shmls_frontend::KernelDef,
    data: &KernelData,
    cus: usize,
    opts: &crate::driver::CompileOptions,
) -> IrResult<BTreeMap<String, Buffer>> {
    let (outputs, _) = crate::scale::run_hls_multi_cu_report(kernel, data, cus, opts)?;
    Ok(outputs)
}
