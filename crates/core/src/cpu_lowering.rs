//! Reference lowering: stencil dialect → structured loops (`scf` +
//! `memref`).
//!
//! This is the *Von-Neumann* code structure the paper contrasts against
//! (§3.3: "although the code will execute correctly on the FPGA because it
//! is still structured following the imperative Von Neumann model
//! performance is poor"). It serves three roles here:
//!
//! 1. the CPU execution path of the stencil dialect (golden reference),
//! 2. the structural basis of the naive Vitis-HLS baseline model
//!    (per-element external memory access, no dataflow),
//! 3. a second, independently-derived executable semantics against which
//!    the direct `stencil.apply` interpretation and the HLS dataflow path
//!    are cross-checked.

use std::collections::HashMap;

use shmls_dialects::{arith, func, memref, scf, stencil};
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_ensure, ir_error};

/// Cast op reinterpreting a stencil field as a raw buffer (interpreted as
/// identity at runtime).
pub const BUFFER_CAST: &str = "stencil.buffer_cast";

/// Lower `stencil_func` into a new function `<name>_cpu` with explicit
/// loop nests, appended to the same module. Returns the new function.
pub fn stencil_to_cpu(ctx: &mut Context, stencil_func: OpId) -> IrResult<OpId> {
    let entry = ctx
        .entry_block(stencil_func)
        .ok_or_else(|| ir_error!("function has no body"))?;
    let old_args = ctx.block_args(entry).to_vec();
    let name = func::func_name(ctx, stencil_func)
        .ok_or_else(|| ir_error!("stencil function has no name"))?
        .to_string();
    let module_body = ctx
        .parent_block(stencil_func)
        .ok_or_else(|| ir_error!("stencil function is detached"))?;

    let arg_types: Vec<Type> = old_args
        .iter()
        .map(|&a| ctx.value_type(a).clone())
        .collect();
    let cpu_name = format!("{name}_cpu");
    let (cpu_func, cpu_entry) = func::create_func(ctx, module_body, &cpu_name, arg_types, vec![]);
    let new_args = ctx.block_args(cpu_entry).to_vec();

    // Old value -> new value (args, casts, temp buffers).
    let mut vmap: HashMap<ValueId, ValueId> = HashMap::new();
    for (&o, &n) in old_args.iter().zip(&new_args) {
        vmap.insert(o, n);
    }

    // Cast each field argument to a buffer view.
    let mut buffer_of_field: HashMap<ValueId, ValueId> = HashMap::new();
    for (&old_arg, &new_arg) in old_args.iter().zip(&new_args) {
        if let Type::StencilField { bounds, elem } = ctx.value_type(old_arg).clone() {
            let mut b = OpBuilder::at_block_end(ctx, cpu_entry);
            let view = b.build_value(
                BUFFER_CAST,
                vec![new_arg],
                Type::memref(bounds.extents(), *elem),
            );
            buffer_of_field.insert(old_arg, view);
        }
    }

    // Buffers backing each temp (stencil.load results share the field's
    // buffer; apply results get fresh interior-sized allocations).
    let mut buffer_of_temp: HashMap<ValueId, ValueId> = HashMap::new();

    for op in ctx.block_ops(entry).to_vec() {
        let op_name = ctx.op_name(op).to_string();
        match op_name.as_str() {
            stencil::LOAD => {
                let field = ctx.operands(op)[0];
                let view = *buffer_of_field
                    .get(&field)
                    .ok_or_else(|| ir_error!("load from unknown field"))?;
                buffer_of_temp.insert(ctx.result(op, 0), view);
            }
            stencil::APPLY => {
                lower_apply(ctx, cpu_entry, op, &mut buffer_of_temp, &vmap)?;
            }
            stencil::STORE => {
                let temp = ctx.operands(op)[0];
                let field = ctx.operands(op)[1];
                let (lb, ub) = stencil::store_bounds(ctx, op)
                    .ok_or_else(|| ir_error!("stencil.store without bounds"))?;
                let src = *buffer_of_temp
                    .get(&temp)
                    .ok_or_else(|| ir_error!("store of unknown temp"))?;
                let dst = *buffer_of_field
                    .get(&field)
                    .ok_or_else(|| ir_error!("store to unknown field"))?;
                build_copy_loops(ctx, cpu_entry, src, dst, &lb, &ub)?;
            }
            func::RETURN => {
                let mut b = OpBuilder::at_block_end(ctx, cpu_entry);
                func::ret(&mut b, vec![]);
            }
            other => ir_bail!("cpu lowering: unexpected top-level op `{other}`"),
        }
    }
    Ok(cpu_func)
}

/// Lower one `stencil.apply` into a loop nest writing a fresh buffer.
fn lower_apply(
    ctx: &mut Context,
    cpu_entry: BlockId,
    apply: OpId,
    buffer_of_temp: &mut HashMap<ValueId, ValueId>,
    arg_map: &HashMap<ValueId, ValueId>,
) -> IrResult<()> {
    ir_ensure!(
        ctx.results(apply).len() == 1,
        "cpu lowering expects single-result applies (run split first)"
    );
    let result = ctx.result(apply, 0);
    let bounds = ctx
        .value_type(result)
        .stencil_bounds()
        .ok_or_else(|| ir_error!("apply result is not a temp"))?
        .clone();
    let rank = bounds.rank();

    let out_buf = {
        let mut b = OpBuilder::at_block_end(ctx, cpu_entry);
        memref::alloc(&mut b, bounds.extents(), Type::F64)
    };
    buffer_of_temp.insert(result, out_buf);

    // Nested loops over the interior.
    let mut ivs: Vec<ValueId> = Vec::with_capacity(rank);
    let mut current_block = cpu_entry;
    for d in 0..rank {
        let mut b = OpBuilder::at_block_end(ctx, current_block);
        let lb = arith::constant_index(&mut b, bounds.lb[d]);
        let ub = arith::constant_index(&mut b, bounds.ub[d]);
        let step = arith::constant_index(&mut b, 1);
        let (for_op, body) = scf::for_loop(&mut b, lb, ub, step, vec![]);
        ivs.push(scf::induction_var(ctx, for_op));
        current_block = body;
    }

    // Map apply block args to the caller-side values backing them.
    let src_block = ctx.entry_block(apply).expect("apply body");
    let src_args = ctx.block_args(src_block).to_vec();
    let operands = ctx.operands(apply).to_vec();
    let mut vmap: HashMap<ValueId, ValueId> = HashMap::new();
    let mut temp_operand: HashMap<ValueId, ValueId> = HashMap::new();
    for (&src_arg, &operand) in src_args.iter().zip(&operands) {
        if let Some(&buf) = buffer_of_temp.get(&operand) {
            temp_operand.insert(src_arg, buf);
        } else if let Some(&mapped) = arg_map.get(&operand) {
            vmap.insert(src_arg, mapped);
        } else {
            ir_bail!("apply operand not traceable during cpu lowering");
        }
    }

    for op in ctx.block_ops(src_block).to_vec() {
        let op_name = ctx.op_name(op).to_string();
        match op_name.as_str() {
            stencil::ACCESS => {
                let operand = ctx.operands(op)[0];
                let offset = stencil::access_offset(ctx, op)
                    .ok_or_else(|| ir_error!("access without offset"))?
                    .to_vec();
                let buf = *temp_operand
                    .get(&operand)
                    .ok_or_else(|| ir_error!("access to unmapped temp"))?;
                let mut b = OpBuilder::at_block_end(ctx, current_block);
                let mut indices = Vec::with_capacity(rank);
                for d in 0..rank {
                    let idx = if offset[d] == 0 {
                        ivs[d]
                    } else {
                        let c = arith::constant_index(&mut b, offset[d]);
                        arith::addi(&mut b, ivs[d], c)
                    };
                    indices.push(idx);
                }
                let v = memref::load(&mut b, buf, indices);
                vmap.insert(ctx.result(op, 0), v);
            }
            stencil::INDEX => {
                let dim = ctx
                    .attr(op, "dim")
                    .and_then(Attribute::as_int)
                    .ok_or_else(|| ir_error!("stencil.index without dim"))?
                    as usize;
                vmap.insert(ctx.result(op, 0), ivs[dim]);
            }
            stencil::RETURN => {
                let v = ctx.operands(op)[0];
                let mapped = vmap.get(&v).copied().unwrap_or(v);
                let mut b = OpBuilder::at_block_end(ctx, current_block);
                memref::store(&mut b, mapped, out_buf, ivs.clone());
            }
            _ => {
                let mut m: HashMap<ValueId, ValueId> = vmap.clone();
                let cloned = ctx.clone_op(op, &mut m);
                ctx.append_op(current_block, cloned);
                for (&old_r, &new_r) in ctx
                    .results(op)
                    .to_vec()
                    .iter()
                    .zip(ctx.results(cloned).to_vec().iter())
                {
                    vmap.insert(old_r, new_r);
                }
            }
        }
    }

    // Close the loop nest with yields, innermost outwards.
    let mut block = current_block;
    for _ in 0..rank {
        let mut b = OpBuilder::at_block_end(ctx, block);
        scf::yield_op(&mut b, vec![]);
        let terminator = ctx.terminator(block).expect("just built");
        let for_op = ctx.parent_op(terminator).expect("loop body has parent");
        block = ctx.parent_block(for_op).expect("loop has parent block");
    }
    Ok(())
}

/// `dst[p] = src[p]` for every `p` in `[lb, ub)`.
fn build_copy_loops(
    ctx: &mut Context,
    entry: BlockId,
    src: ValueId,
    dst: ValueId,
    lb: &[i64],
    ub: &[i64],
) -> IrResult<()> {
    let rank = lb.len();
    let mut ivs = Vec::with_capacity(rank);
    let mut current = entry;
    for d in 0..rank {
        let mut b = OpBuilder::at_block_end(ctx, current);
        let l = arith::constant_index(&mut b, lb[d]);
        let u = arith::constant_index(&mut b, ub[d]);
        let s = arith::constant_index(&mut b, 1);
        let (for_op, body) = scf::for_loop(&mut b, l, u, s, vec![]);
        ivs.push(scf::induction_var(ctx, for_op));
        current = body;
    }
    let mut b = OpBuilder::at_block_end(ctx, current);
    let v = memref::load(&mut b, src, ivs.clone());
    memref::store(&mut b, v, dst, ivs.clone());
    let mut block = current;
    for _ in 0..rank {
        let mut b = OpBuilder::at_block_end(ctx, block);
        scf::yield_op(&mut b, vec![]);
        let terminator = ctx.terminator(block).expect("just built");
        let for_op = ctx.parent_op(terminator).expect("loop body has parent");
        block = ctx.parent_block(for_op).expect("loop has parent block");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};
    use shmls_ir::interp::{Buffer, Machine, NoExtern, RtValue};
    use shmls_ir::verifier::verify_with;

    const LAPLACE: &str = r#"
kernel laplace {
  grid(8, 6)
  halo 1
  field a : input
  field b : output
  const w
  compute b {
    b = w * (a[-1,0] + a[1,0] + a[0,-1] + a[0,1] - 4.0 * a[0,0])
  }
}
"#;

    const CHAIN: &str = r#"
kernel chain {
  grid(6)
  halo 1
  field a : input
  field t : temp
  field b : output
  compute t { t = 2.0 * a[0] }
  compute b { b = t[0] + a[1] }
}
"#;

    fn cross_check(src: &str) {
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        stencil_to_cpu(&mut ctx, lowered.func).unwrap();
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();

        let sig = &lowered.signature;
        let bounded = StencilBounds::from_extents(&sig.grid).grown(sig.halo);
        let interior = StencilBounds::from_extents(&sig.grid);

        let run = |fname: &str| -> Vec<Buffer> {
            let mut no = NoExtern;
            let mut m = Machine::new(&ctx, module, &mut no);
            let mut args = Vec::new();
            let mut field_handles = Vec::new();
            let mut x = 1.0f64;
            for arg in &sig.args {
                match arg {
                    shmls_frontend::KernelArg::Field(_, _) => {
                        let mut buf = Buffer::zeroed(bounded.extents(), bounded.lb.clone());
                        for v in &mut buf.data {
                            x = (x * 1.3 + 0.7) % 10.0;
                            *v = x;
                        }
                        let h = m.store.alloc(buf);
                        field_handles.push(h);
                        args.push(RtValue::MemRef(h));
                    }
                    shmls_frontend::KernelArg::Param(_, _, extent) => {
                        let buf = Buffer::zeroed(vec![*extent], vec![0]);
                        args.push(RtValue::MemRef(m.store.alloc(buf)));
                    }
                    shmls_frontend::KernelArg::Const(_) => args.push(RtValue::F64(0.25)),
                }
            }
            m.call(fname, &args).unwrap();
            field_handles
                .iter()
                .map(|&h| m.store.get(h).unwrap().clone())
                .collect()
        };

        let reference = run(&sig.name);
        let cpu = run(&format!("{}_cpu", sig.name));
        for (f, (r, c)) in reference.iter().zip(&cpu).enumerate() {
            for p in shmls_ir::interp::iter_box(&interior.lb, &interior.ub) {
                let rv = r.load(&p).unwrap();
                let cv = c.load(&p).unwrap();
                assert!((rv - cv).abs() < 1e-12, "field {f} at {p:?}: {rv} vs {cv}");
            }
        }
    }

    #[test]
    fn laplace_cpu_matches_reference() {
        cross_check(LAPLACE);
    }

    #[test]
    fn chain_cpu_matches_reference() {
        cross_check(CHAIN);
    }

    #[test]
    fn cpu_structure_is_loops() {
        let k = parse_kernel(LAPLACE).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let cpu = stencil_to_cpu(&mut ctx, lowered.func).unwrap();
        // The CPU function contains no stencil.apply, only loops.
        assert!(ctx.find_ops(cpu, stencil::APPLY).is_empty());
        // rank-2 apply nest + rank-2 store-copy nest.
        assert_eq!(ctx.find_ops(cpu, scf::FOR).len(), 4);
        assert!(!ctx.find_ops(cpu, memref::LOAD).is_empty());
        let _ = module;
    }
}
