//! Scale-out execution: parallel compute units and time-marching with
//! halo exchange.
//!
//! The paper's headline numbers replicate the dataflow design across
//! compute units (4 CUs for PW advection, one HBM bank per field per CU)
//! and run iterative stencils over many timesteps. This module supplies
//! both dimensions for the simulated system:
//!
//! - **Spatial**: the domain is decomposed along axis 0 into contiguous
//!   slabs, one per CU, and the slabs execute *concurrently* on a worker
//!   pool. Each CU owns a disjoint row range of every output buffer, so
//!   parallel execution is race-free by construction — workers share only
//!   the immutable compiled designs and write only their own slab
//!   buffers; the merge into global buffers happens after the workers
//!   join (see DESIGN.md §12 for the full ownership argument).
//! - **Temporal**: [`run_time_marched`] iterates the compiled designs
//!   over `steps` timesteps. Between steps, neighbouring CUs exchange
//!   halo rows (each CU's received halo is the neighbour's just-computed
//!   interior boundary) instead of re-splitting the global domain, and
//!   nothing is recompiled inside the loop: every distinct slab height is
//!   compiled exactly once, through the content-addressed
//!   [`CompileCache`].
//!
//! Feedback between steps follows a declaration-order pairing rule
//! ([`feedback_pairs`]): an `inout` field feeds itself, and the *k*-th
//! pure `output` field feeds the *k*-th pure `input` field. Unpaired
//! inputs stay constant across steps. [`time_march_reference`] applies
//! the same rule to a monolithic (single-domain) runner and is the oracle
//! the slab path is differentially tested against.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shmls_fpga_sim::device::Device;
use shmls_fpga_sim::perf::{hmls_estimate, scale_estimate, PerfEstimate, ScaleEstimate};
use shmls_frontend::{FieldKind, KernelDef};
use shmls_ir::error::IrResult;
use shmls_ir::interp::{iter_box, Buffer};
use shmls_ir::{ir_bail, ir_error};

use crate::cache::{global_cache, CompileCache};
use crate::driver::{CompileOptions, CompiledKernel, TargetPath};
use crate::runner::{run_hls, KernelData, StreamStats};

/// Split `n0` rows into `cus` contiguous `[start, end)` slabs; the
/// remainder rows go one each to the first CUs, so heights differ by at
/// most one. Delegates to [`shmls_ir::bytecode::slab_partition`] so the
/// CU decomposition and the bytecode tier's thread decomposition are the
/// same function — a threaded interpreter run and a multi-CU run agree on
/// slab ownership by construction.
pub fn partition(n0: i64, cus: usize) -> Vec<(i64, i64)> {
    shmls_ir::bytecode::slab_partition(n0, cus)
}

/// The `(output field, input field)` feedback pairs for time-marching:
/// every `inout` field feeds itself, and the *k*-th pure `output` feeds
/// the *k*-th pure `input`, both in declaration order (pairing stops at
/// the shorter list). Unpaired inputs are held constant.
pub fn feedback_pairs(kernel: &KernelDef) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = kernel
        .fields
        .iter()
        .filter(|f| matches!(f.kind, FieldKind::InOut))
        .map(|f| (f.name.clone(), f.name.clone()))
        .collect();
    let outs = kernel
        .fields
        .iter()
        .filter(|f| matches!(f.kind, FieldKind::Output));
    let ins = kernel
        .fields
        .iter()
        .filter(|f| matches!(f.kind, FieldKind::Input));
    pairs.extend(outs.zip(ins).map(|(o, i)| (o.name.clone(), i.name.clone())));
    pairs
}

/// A fault injected into the halo exchange: after step `step`
/// (0-indexed), the first halo row CU `cu` would receive is dropped —
/// the copy is skipped, leaving the stale value — simulating a lost
/// exchange message. Used to self-test that the differential harness
/// detects exchange bugs; a run with `cus == 1`, `halo == 0`, or
/// `step >= steps - 1` is unaffected (there is no exchange to corrupt,
/// or no later step to observe it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloFault {
    /// The receiving compute unit.
    pub cu: usize,
    /// The step after which the exchange is corrupted (0-indexed).
    pub step: usize,
}

/// Execution policy for the scale-out runners.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarchOptions<'a> {
    /// Run the CU slabs serially instead of on the worker pool (for
    /// byte-identity checks and speedup measurements).
    pub serial: bool,
    /// Compile through this cache instead of the process-wide
    /// [`global_cache`] — tests use a private cache so hit/miss counts
    /// are deterministic.
    pub cache: Option<&'a CompileCache>,
    /// Corrupt one halo-exchange row (self-test hook).
    pub fault: Option<HaloFault>,
    /// Panic inside this CU's worker (self-test hook): verifies a worker
    /// panic surfaces as a structured error naming the CU instead of
    /// tearing down the whole process. The march aborts on the first
    /// step's error, so the panic fires exactly once.
    pub panic_cu: Option<usize>,
}

/// Per-compute-unit execution record.
#[derive(Debug, Clone)]
pub struct CuReport {
    /// Compute unit index.
    pub cu: usize,
    /// Owned global row range `[start, end)` on axis 0.
    pub rows: (i64, i64),
    /// Interior points this CU produces per step.
    pub interior_elems: u64,
    /// Streams instantiated by one step's dataflow execution.
    pub streams: usize,
    /// Stream elements pushed, summed over all steps.
    pub stream_elements: u64,
    /// 512-bit memory beats, summed over all steps.
    pub mem_beats: u64,
    /// Modelled cycles per step for this CU's slab design
    /// (analytic model, U280 clock).
    pub model_cycles: u64,
    /// Wall-clock time this CU spent executing, summed over all steps.
    pub wall: Duration,
}

/// Aggregated report for a multi-CU (optionally time-marched) run.
#[derive(Debug, Clone)]
pub struct MultiCuReport {
    /// Compute units used.
    pub cus: usize,
    /// Timesteps executed.
    pub steps: usize,
    /// Per-CU records, in CU order.
    pub per_cu: Vec<CuReport>,
    /// End-to-end wall-clock time (compile excluded, merge included).
    pub wall: Duration,
    /// Aggregate interior elements produced per second of wall-clock
    /// (all CUs, all steps).
    pub elems_per_s: f64,
    /// Measured load imbalance: slowest CU's total execution time over
    /// the mean (`1.0` = perfectly even; wall-clock, so noisy).
    pub load_imbalance: f64,
    /// Compile-cache hits among this run's design lookups.
    pub cache_hits: u64,
    /// Compile-cache misses (each one compiled a slab design).
    pub cache_misses: u64,
    /// Analytic per-step estimate for the CU ensemble.
    pub model: ScaleEstimate,
}

impl MultiCuReport {
    /// Cache hit fraction for this run's design lookups; `0.0` when the
    /// run performed no lookups (same convention as
    /// [`crate::cache::CacheStats::hit_rate`] — an idle cache must not
    /// read as a perfect one).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One CU's standing state: its compiled design and current slab inputs.
struct CuState {
    rows: (i64, i64),
    compiled: Arc<CompiledKernel>,
    data: KernelData,
}

/// Run `kernel` over `cus` compute units for one application of the
/// stencil, returning the merged outputs and the execution report.
/// Identical results to [`crate::runner::run_hls_multi_cu`] (which is
/// now a thin wrapper over this).
pub fn run_hls_multi_cu_report(
    kernel: &KernelDef,
    data: &KernelData,
    cus: usize,
    opts: &CompileOptions,
) -> IrResult<(BTreeMap<String, Buffer>, MultiCuReport)> {
    run_time_marched_with(kernel, data, 1, cus, opts, &MarchOptions::default())
}

/// Time-march `kernel` for `steps` timesteps over `cus` parallel compute
/// units, exchanging halo rows between neighbouring slabs after each
/// step. Compiles each distinct slab height exactly once (through the
/// process-wide compile cache), regardless of `steps`.
pub fn run_time_marched(
    kernel: &KernelDef,
    data: &KernelData,
    steps: usize,
    cus: usize,
    opts: &CompileOptions,
) -> IrResult<(BTreeMap<String, Buffer>, MultiCuReport)> {
    run_time_marched_with(kernel, data, steps, cus, opts, &MarchOptions::default())
}

/// [`run_time_marched`] with an explicit execution policy.
pub fn run_time_marched_with(
    kernel: &KernelDef,
    data: &KernelData,
    steps: usize,
    cus: usize,
    opts: &CompileOptions,
    march: &MarchOptions<'_>,
) -> IrResult<(BTreeMap<String, Buffer>, MultiCuReport)> {
    if steps == 0 {
        ir_bail!("at least one timestep required");
    }
    if cus == 0 {
        ir_bail!("at least one compute unit required");
    }
    let n0 = kernel.grid[0];
    if (cus as i64) > n0 {
        ir_bail!("cannot split {n0} rows over {cus} compute units");
    }
    let halo = kernel.halo;
    if steps > 1 && cus > 1 && n0 / (cus as i64) < halo {
        ir_bail!(
            "slab height {} is smaller than the halo {halo}: \
             halo exchange cannot supply a full halo (use fewer compute \
             units or a taller grid)",
            n0 / (cus as i64)
        );
    }
    let cache: &CompileCache = match march.cache {
        Some(c) => c,
        None => global_cache(),
    };
    let bounded = shmls_ir::types::StencilBounds::from_extents(&kernel.grid).grown(halo);
    let pairs = feedback_pairs(kernel);

    // --- compile: once per distinct slab height, never inside the loop --
    let slab_opts = CompileOptions {
        paths: TargetPath::HlsOnly,
        ..opts.clone()
    };
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut states: Vec<CuState> = Vec::with_capacity(cus);
    for &(start, end) in &partition(n0, cus) {
        let mut slab_kernel = kernel.clone();
        slab_kernel.grid[0] = end - start;
        let (compiled, hit) = cache.get_or_compile(&slab_kernel, &slab_opts)?;
        if hit {
            cache_hits += 1;
        } else {
            cache_misses += 1;
        }
        let data = slice_slab_data(kernel, data, start, end, &bounded)?;
        states.push(CuState {
            rows: (start, end),
            compiled,
            data,
        });
    }

    // Per-step analytic model, one estimate per CU's slab design.
    let device = Device::u280();
    let estimates: Vec<PerfEstimate> = states
        .iter()
        .map(|s| {
            let design = shmls_fpga_sim::design::DesignDescriptor::from_hls_func(
                &s.compiled.ctx,
                s.compiled.hls_func,
            )?;
            Ok(hmls_estimate(&design, &device, 1))
        })
        .collect::<IrResult<_>>()?;

    // --- the step loop ---------------------------------------------------
    let run_start = Instant::now();
    let mut walls = vec![Duration::ZERO; cus];
    let mut stream_elements = vec![0u64; cus];
    let mut mem_beats = vec![0u64; cus];
    let mut streams = vec![0usize; cus];
    let mut last_outputs: Vec<BTreeMap<String, Buffer>> = Vec::new();
    for step in 0..steps {
        let step_out = run_all_cus(&states, march.serial, march.panic_cu)?;
        for (cu, (_, (n_streams, pushed, beats), wall)) in step_out.iter().enumerate() {
            streams[cu] = *n_streams;
            stream_elements[cu] += pushed;
            mem_beats[cu] += beats;
            walls[cu] += *wall;
        }
        let outputs: Vec<BTreeMap<String, Buffer>> =
            step_out.into_iter().map(|(out, _, _)| out).collect();
        if step + 1 < steps {
            exchange_and_feed(&mut states, &outputs, &pairs, halo, march.fault, step)?;
        }
        last_outputs = outputs;
    }

    // --- merge the final step's interiors into global buffers -----------
    let mut merged: BTreeMap<String, Buffer> = kernel
        .fields
        .iter()
        .filter(|f| matches!(f.kind, FieldKind::Output | FieldKind::InOut))
        .map(|f| {
            (
                f.name.clone(),
                Buffer::zeroed(bounded.extents(), bounded.lb.clone()),
            )
        })
        .collect();
    for (state, slab_out) in states.iter().zip(&last_outputs) {
        let (start, end) = state.rows;
        for (name, slab_buffer) in slab_out {
            let global = merged
                .get_mut(name)
                .ok_or_else(|| ir_error!("unexpected output `{name}`"))?;
            let mut lo = vec![0i64; kernel.rank()];
            let mut hi = kernel.grid.clone();
            lo[0] = 0;
            hi[0] = end - start;
            for p in iter_box(&lo, &hi) {
                let mut q = p.clone();
                q[0] += start;
                global.store(&q, slab_buffer.load(&p)?)?;
            }
        }
    }
    let wall = run_start.elapsed();

    // --- report ----------------------------------------------------------
    let off_axis: i64 = kernel.grid[1..].iter().product();
    let per_cu: Vec<CuReport> = states
        .iter()
        .enumerate()
        .map(|(cu, s)| CuReport {
            cu,
            rows: s.rows,
            interior_elems: ((s.rows.1 - s.rows.0) * off_axis) as u64,
            streams: streams[cu],
            stream_elements: stream_elements[cu],
            mem_beats: mem_beats[cu],
            model_cycles: estimates[cu].cycles,
            wall: walls[cu],
        })
        .collect();
    let total_elems: u64 = per_cu.iter().map(|c| c.interior_elems).sum::<u64>() * steps as u64;
    let mean_wall = walls.iter().map(|w| w.as_secs_f64()).sum::<f64>() / cus as f64;
    let max_wall = walls.iter().map(|w| w.as_secs_f64()).fold(0.0f64, f64::max);
    let report = MultiCuReport {
        cus,
        steps,
        per_cu,
        wall,
        elems_per_s: total_elems as f64 / wall.as_secs_f64().max(1e-9),
        load_imbalance: if mean_wall > 0.0 {
            max_wall / mean_wall
        } else {
            1.0
        },
        cache_hits,
        cache_misses,
        model: scale_estimate(&estimates),
    };
    Ok((merged, report))
}

/// Monolithic time-marching oracle: apply `run_once` to the full domain
/// `steps` times, feeding outputs back to inputs by [`feedback_pairs`].
/// The slab path is differentially tested against this with `run_once`
/// ranging over the single-CU engines and the stencil interpreter.
pub fn time_march_reference<F>(
    kernel: &KernelDef,
    data: &KernelData,
    steps: usize,
    mut run_once: F,
) -> IrResult<BTreeMap<String, Buffer>>
where
    F: FnMut(&KernelData) -> IrResult<BTreeMap<String, Buffer>>,
{
    if steps == 0 {
        ir_bail!("at least one timestep required");
    }
    let pairs = feedback_pairs(kernel);
    let mut current = data.clone();
    let mut last = BTreeMap::new();
    for step in 0..steps {
        last = run_once(&current)?;
        if step + 1 < steps {
            for (out_name, in_name) in &pairs {
                let fed = last
                    .get(out_name)
                    .ok_or_else(|| ir_error!("missing feedback output `{out_name}`"))?
                    .clone();
                current.buffers.insert(in_name.clone(), fed);
            }
        }
    }
    Ok(last)
}

/// Slice one CU's halo-padded slab inputs out of the global buffers:
/// fields get rows `[start-halo, end+halo)` re-indexed to slab
/// coordinates, axis-0 params are sliced likewise, other params and
/// scalars pass through.
fn slice_slab_data(
    kernel: &KernelDef,
    data: &KernelData,
    start: i64,
    end: i64,
    bounded: &shmls_ir::types::StencilBounds,
) -> IrResult<KernelData> {
    let halo = kernel.halo;
    let height = end - start;
    let mut slab_data = KernelData::default();
    for (name, value) in &data.scalars {
        slab_data = slab_data.scalar(name, *value);
    }
    for field in &kernel.fields {
        if !matches!(field.kind, FieldKind::Input | FieldKind::InOut) {
            continue;
        }
        let global = data
            .buffers
            .get(&field.name)
            .ok_or_else(|| ir_error!("missing input buffer `{}`", field.name))?;
        let mut slab_extents = bounded.extents();
        slab_extents[0] = height + 2 * halo;
        let mut slab_lb = bounded.lb.clone();
        slab_lb[0] = -halo;
        let mut slab = Buffer::zeroed(slab_extents, slab_lb);
        let mut lo = bounded.lb.clone();
        lo[0] = start - halo;
        let mut hi = bounded.ub.clone();
        hi[0] = end + halo;
        for p in iter_box(&lo, &hi) {
            let mut q = p.clone();
            q[0] -= start;
            slab.store(&q, global.load(&p)?)?;
        }
        slab_data = slab_data.buffer(&field.name, slab);
    }
    for p in &kernel.params {
        let global = data
            .buffers
            .get(&p.name)
            .ok_or_else(|| ir_error!("missing param buffer `{}`", p.name))?;
        if p.axis == 0 {
            let mut slab = Buffer::zeroed(vec![height + 2 * halo], vec![0]);
            for i in 0..height + 2 * halo {
                slab.store(&[i], global.load(&[i + start])?)?;
            }
            slab_data = slab_data.buffer(&p.name, slab);
        } else {
            slab_data = slab_data.buffer(&p.name, global.clone());
        }
    }
    Ok(slab_data)
}

/// Run every CU's slab once — concurrently on scoped worker threads, or
/// serially when asked. Workers share only `&CuState` (the compiled
/// design is immutable during execution) and each returns its own
/// outputs; nothing is written to shared state until after the join.
///
/// A panicking worker is *contained*: its join error is converted into a
/// structured [`IrResult`] error naming the CU (with the panic payload
/// when it is a string), exactly like any other per-CU failure — callers
/// see `Err`, not an aborted process. The remaining workers still run to
/// completion first (scoped threads always join), so no slab is left
/// half-executed when the error propagates.
#[allow(clippy::type_complexity)]
fn run_all_cus(
    states: &[CuState],
    serial: bool,
    panic_cu: Option<usize>,
) -> IrResult<Vec<(BTreeMap<String, Buffer>, StreamStats, Duration)>> {
    let run_one =
        |cu: usize, s: &CuState| -> IrResult<(BTreeMap<String, Buffer>, StreamStats, Duration)> {
            if panic_cu == Some(cu) {
                panic!("injected fault in compute unit {cu}");
            }
            let t0 = Instant::now();
            let (out, stats) = run_hls(&s.compiled, &s.data)?;
            Ok((out, stats, t0.elapsed()))
        };
    if serial || states.len() == 1 {
        return states
            .iter()
            .enumerate()
            .map(|(cu, s)| run_one(cu, s))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter()
            .enumerate()
            .map(|(cu, s)| scope.spawn(move || run_one(cu, s)))
            .collect();
        // Join *every* handle before propagating any error: a panicked
        // handle left to the scope's implicit join would re-raise the
        // panic and abort the caller.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        joined
            .into_iter()
            .enumerate()
            .map(|(cu, j)| match j {
                Ok(result) => result,
                Err(payload) => {
                    let reason = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Err(ir_error!("compute-unit {cu} worker panicked: {reason}"))
                }
            })
            .collect()
    })
}

/// Build every CU's next-step inputs from this step's outputs: each
/// paired input starts as the CU's own returned output buffer (so its
/// interior and its share of the global boundary are already correct),
/// then the axis-0 halo rows are overwritten with the neighbours'
/// just-computed boundary rows — rows `[-halo, 0)` from the previous
/// CU's top interior rows, rows `[height, height+halo)` from the next
/// CU's bottom interior rows. Full rows are exchanged (off-axis halo
/// columns included): the neighbour's slab holds exactly the global
/// values there. Global-boundary halos are never exchanged; the CU's own
/// buffer already carries the monolithic values (zero for pure outputs,
/// the original data for `inout` fields).
fn exchange_and_feed(
    states: &mut [CuState],
    outputs: &[BTreeMap<String, Buffer>],
    pairs: &[(String, String)],
    halo: i64,
    fault: Option<HaloFault>,
    step: usize,
) -> IrResult<()> {
    let cus = states.len();
    for cu in 0..cus {
        // Drop the first row this CU would receive, if a fault targets
        // this CU at this step.
        let mut drop_next = matches!(fault, Some(f) if f.cu == cu && f.step == step);
        let height = states[cu].rows.1 - states[cu].rows.0;
        for (out_name, in_name) in pairs {
            let own = outputs[cu]
                .get(out_name)
                .ok_or_else(|| ir_error!("missing feedback output `{out_name}`"))?;
            let mut fed = own.clone();
            if cu > 0 {
                // Rows [-halo, 0) ← previous CU's rows [prev_h - halo, prev_h).
                let prev = &outputs[cu - 1][out_name];
                let prev_h = states[cu - 1].rows.1 - states[cu - 1].rows.0;
                for r in 0..halo {
                    if std::mem::take(&mut drop_next) {
                        continue;
                    }
                    copy_row(prev, prev_h - halo + r, &mut fed, r - halo)?;
                }
            }
            if cu + 1 < cus {
                // Rows [height, height + halo) ← next CU's rows [0, halo).
                let next = &outputs[cu + 1][out_name];
                for r in 0..halo {
                    if std::mem::take(&mut drop_next) {
                        continue;
                    }
                    copy_row(next, r, &mut fed, height + r)?;
                }
            }
            states[cu].data.buffers.insert(in_name.clone(), fed);
        }
    }
    Ok(())
}

/// Copy one full axis-0 row (all other axes, halo included) between two
/// equally-shaped slab buffers.
fn copy_row(src: &Buffer, src_row: i64, dst: &mut Buffer, dst_row: i64) -> IrResult<()> {
    let mut lo = dst.origin.clone();
    let mut hi: Vec<i64> = dst
        .origin
        .iter()
        .zip(&dst.shape)
        .map(|(o, s)| o + s)
        .collect();
    lo[0] = src_row;
    hi[0] = src_row + 1;
    for p in iter_box(&lo, &hi) {
        let mut q = p.clone();
        q[0] = dst_row;
        dst.store(&q, src.load(&p)?)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_frontend::parse_kernel;

    #[test]
    fn partition_distributes_remainder_to_leading_cus() {
        assert_eq!(partition(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(partition(8, 4), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
        assert_eq!(partition(5, 1), vec![(0, 5)]);
        let slabs = partition(7, 7);
        assert_eq!(slabs.len(), 7);
        assert!(slabs.iter().all(|(s, e)| e - s == 1));
    }

    #[test]
    fn feedback_pairs_inout_and_positional() {
        let k = parse_kernel(
            "kernel f { grid(6, 6) halo 1 \
             field a : input field s : inout field b : output \
             compute s { s = a[0,1] } compute b { b = s[0,0] } }",
        )
        .unwrap();
        assert_eq!(
            feedback_pairs(&k),
            vec![
                ("s".to_string(), "s".to_string()),
                ("b".to_string(), "a".to_string()),
            ]
        );
    }

    #[test]
    fn worker_panic_surfaces_as_structured_error() {
        // Regression: a panicking compute-unit worker used to hit the
        // harness's `.expect("compute-unit worker panicked")`, re-raising
        // the panic in the coordinating thread and tearing the whole
        // process down. It must instead surface as an ordinary `Err`
        // naming the CU, like every other per-CU failure (cf. HaloFault).
        let kernel = parse_kernel(
            "kernel p { grid(8, 6) halo 1 field a : input field b : output \
             compute b { b = a[-1,0] + a[0,1] } }",
        )
        .unwrap();
        let mut a = Buffer::zeroed(vec![10, 8], vec![-1, -1]);
        for (i, v) in a.data.iter_mut().enumerate() {
            *v = i as f64 * 0.25 - 3.0;
        }
        let data = KernelData::default()
            .buffer("a", a)
            .buffer("b", Buffer::zeroed(vec![10, 8], vec![-1, -1]));
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            time_passes: false,
            ..Default::default()
        };
        let cache = CompileCache::new();

        // Sanity: the same configuration succeeds without the fault.
        let clean = MarchOptions {
            cache: Some(&cache),
            ..Default::default()
        };
        run_time_marched_with(&kernel, &data, 2, 2, &opts, &clean)
            .expect("clean parallel march must succeed");

        let faulty = MarchOptions {
            cache: Some(&cache),
            panic_cu: Some(1),
            ..Default::default()
        };
        let err = run_time_marched_with(&kernel, &data, 2, 2, &opts, &faulty)
            .expect_err("injected worker panic must fail the march");
        let msg = err.to_string();
        assert!(
            msg.contains("compute-unit 1 worker panicked"),
            "error must name the CU: {msg}"
        );
        assert!(
            msg.contains("injected fault in compute unit 1"),
            "error must carry the panic payload: {msg}"
        );
    }

    #[test]
    fn feedback_pairs_stop_at_shorter_list() {
        let k = parse_kernel(
            "kernel g { grid(6, 6) halo 1 field a : input field b : output \
             field c : output compute b { b = a[0,1] } compute c { c = a[1,0] } }",
        )
        .unwrap();
        // Two outputs, one input: only the first output is fed back.
        assert_eq!(feedback_pairs(&k), vec![("b".to_string(), "a".to_string())]);
    }
}
