//! Transformation step 4: separation of stencil fields in `stencil.apply`.
//!
//!> *"on the FPGA to obtain optimal throughput it is better for the
//! > calculations involved for each stencil field to be split into separate
//! > dataflow regions that can run concurrently."* (§3.3 step 4)
//!
//! Splits every multi-result `stencil.apply` into one apply per result —
//! each later becoming its own concurrent compute stage — and prunes the
//! per-copy bodies with dead-code elimination so each stage keeps only the
//! calculation feeding its own field.

use std::collections::HashMap;

use shmls_dialects::stencil;
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::rewrite::dead_code_elimination;

/// Split all multi-result `stencil.apply` ops under `root`. Returns the
/// number of applies created.
pub fn split_applies(ctx: &mut Context, root: OpId) -> IrResult<usize> {
    let mut created = 0;
    for apply in ctx.find_ops(root, stencil::APPLY) {
        let n = ctx.results(apply).len();
        if n <= 1 {
            continue;
        }
        created += split_one(ctx, apply)?;
    }
    Ok(created)
}

fn split_one(ctx: &mut Context, apply: OpId) -> IrResult<usize> {
    let n = ctx.results(apply).len();
    let operands = ctx.operands(apply).to_vec();
    let src_block = ctx.entry_block(apply).expect("apply has a body");
    let src_args = ctx.block_args(src_block).to_vec();
    let src_ops = ctx.block_ops(src_block).to_vec();
    let term = *src_ops.last().expect("apply has a terminator");

    let mut new_results: Vec<ValueId> = Vec::with_capacity(n);
    for i in 0..n {
        let result_ty = ctx.value_type(ctx.result(apply, i)).clone();
        let mut b = OpBuilder::before(ctx, apply);
        let (new_apply, new_block) = stencil::apply(&mut b, operands.clone(), vec![result_ty]);
        // Clone the whole body, then retarget the terminator to yield only
        // result `i`, and DCE the rest.
        let mut vmap: HashMap<ValueId, ValueId> = src_args
            .iter()
            .copied()
            .zip(ctx.block_args(new_block).to_vec())
            .collect();
        for op in &src_ops {
            if *op == term {
                continue;
            }
            let cloned = ctx.clone_op(*op, &mut vmap);
            ctx.append_op(new_block, cloned);
        }
        let yielded_old = ctx.operands(term)[i];
        let yielded_new = vmap.get(&yielded_old).copied().unwrap_or(yielded_old);
        let mut eb = OpBuilder::at_block_end(ctx, new_block);
        stencil::return_op(&mut eb, vec![yielded_new]);
        dead_code_elimination(ctx, new_apply, &shmls_dialects::is_pure);
        new_results.push(ctx.result(new_apply, 0));
    }

    for (i, &new_result) in new_results.iter().enumerate() {
        let old = ctx.result(apply, i);
        ctx.replace_all_uses(old, new_result);
    }
    ctx.erase_op(apply);
    Ok(n)
}

/// [`shmls_ir::pass::Pass`] wrapper for pipeline use (named `"split"`).
///
/// A no-op on functions whose applies are already single-result — the
/// frontend emits that form — so it doubles as the pipeline's guarantee of
/// [`crate::hmls::stencil_to_hls`]'s single-result precondition.
pub struct SplitPass;

impl shmls_ir::pass::Pass for SplitPass {
    fn name(&self) -> &str {
        "split"
    }

    fn run(&self, ctx: &mut Context, root: OpId) -> IrResult<()> {
        split_applies(ctx, root)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse_applies;
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};
    use shmls_ir::interp::{Buffer, Machine, NoExtern, RtValue};
    use shmls_ir::verifier::verify_with;

    const INDEP: &str = r#"
kernel indep {
  grid(4, 4)
  halo 1
  field a : input
  field b : output
  field c : output
  compute b { b = a[1,0] + a[-1,0] }
  compute c { c = a[0,1] * 3.0 }
}
"#;

    fn fused_module(src: &str) -> (Context, OpId, OpId) {
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (m, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        fuse_applies(&mut ctx, lowered.func).unwrap();
        (ctx, m, lowered.func)
    }

    #[test]
    fn split_restores_per_field_applies() {
        let (mut ctx, module, _f) = fused_module(INDEP);
        assert_eq!(ctx.find_ops(module, stencil::APPLY).len(), 1);
        let created = split_applies(&mut ctx, module).unwrap();
        assert_eq!(created, 2);
        let applies = ctx.find_ops(module, stencil::APPLY);
        assert_eq!(applies.len(), 2);
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        // DCE must have pruned each body: the `b` stage has 2 accesses +
        // addf + return; the `c` stage has 1 access + constant + mulf +
        // return. Neither should contain the other's ops.
        let sizes: Vec<usize> = applies
            .iter()
            .map(|&a| ctx.block_ops(ctx.entry_block(a).unwrap()).len())
            .collect();
        assert!(sizes.contains(&4), "expected a 4-op body, got {sizes:?}");
    }

    #[test]
    fn split_preserves_semantics() {
        let (mut ctx, module, _f) = fused_module(INDEP);
        split_applies(&mut ctx, module).unwrap();
        let mut no = NoExtern;
        let mut m = Machine::new(&ctx, module, &mut no);
        let mut a = Buffer::zeroed(vec![6, 6], vec![-1, -1]);
        for p in shmls_ir::interp::iter_box(&[-1, -1], &[5, 5]) {
            a.store(&p, (p[0] * 7 + p[1]) as f64).unwrap();
        }
        let a_h = m.store.alloc(a.clone());
        let b_h = m.store.alloc(Buffer::zeroed(vec![6, 6], vec![-1, -1]));
        let c_h = m.store.alloc(Buffer::zeroed(vec![6, 6], vec![-1, -1]));
        m.call(
            "indep",
            &[
                RtValue::MemRef(a_h),
                RtValue::MemRef(b_h),
                RtValue::MemRef(c_h),
            ],
        )
        .unwrap();
        for p in shmls_ir::interp::iter_box(&[0, 0], &[4, 4]) {
            let (i, j) = (p[0], p[1]);
            let b = m.store.get(b_h).unwrap().load(&p).unwrap();
            let c = m.store.get(c_h).unwrap().load(&p).unwrap();
            assert_eq!(
                b,
                a.load(&[i + 1, j]).unwrap() + a.load(&[i - 1, j]).unwrap()
            );
            assert_eq!(c, a.load(&[i, j + 1]).unwrap() * 3.0);
        }
    }

    #[test]
    fn single_result_apply_untouched() {
        let src = r#"
kernel single {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { b = a[0] }
}
"#;
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (m, body) = create_module(&mut ctx);
        let _ = lower_kernel(&mut ctx, body, &k).unwrap();
        let created = split_applies(&mut ctx, m).unwrap();
        assert_eq!(created, 0);
    }

    #[test]
    fn fuse_then_split_round_trips_op_count() {
        let (mut ctx, module, _f) = fused_module(INDEP);
        split_applies(&mut ctx, module).unwrap();
        // Round trip: 2 applies as in the original frontend output.
        assert_eq!(ctx.find_ops(module, stencil::APPLY).len(), 2);
    }
}
