//! Synthesis-report generation: a Vitis-HLS-style text report for a
//! compiled design (the artefact an FPGA engineer reads after `v++`
//! synthesis — loop latencies, initiation intervals, resource estimates,
//! interface summary).
//!
//! Everything in the report derives from the same models the evaluation
//! uses ([`shmls_fpga_sim::perf`], [`shmls_fpga_sim::resources`],
//! [`shmls_fpga_sim::cycle`]), so the report doubles as a human-readable
//! cross-section of the design descriptor.

use shmls_fpga_sim::design::{DesignDescriptor, Stage};
use shmls_fpga_sim::device::{CostTable, Device};
use shmls_fpga_sim::perf::hmls_estimate;
use shmls_fpga_sim::resources;

/// Render the synthesis report for `design` deployed with `cus` compute
/// units on `device`.
pub fn render(design: &DesignDescriptor, device: &Device, costs: &CostTable, cus: u32) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let perf = hmls_estimate(design, device, cus);
    let usage = resources::estimate(design, costs, cus);
    let pct = usage.percentages(device);

    writeln!(out, "== Synthesis Report: {} ==", design.name).unwrap();
    writeln!(out, "* Target device : {}", device.name).unwrap();
    writeln!(
        out,
        "* Clock target  : {:.0} MHz ({:.2} ns)",
        device.clock_hz / 1e6,
        1e9 / device.clock_hz
    )
    .unwrap();
    writeln!(out, "* Compute units : {cus}").unwrap();
    writeln!(out).unwrap();

    writeln!(out, "+ Performance Estimates").unwrap();
    writeln!(
        out,
        "  Overall latency: {} cycles ({:.3} ms), throughput {:.1} MPt/s",
        perf.cycles,
        perf.seconds * 1e3,
        perf.mpts
    )
    .unwrap();
    writeln!(
        out,
        "  Steady state {} + fill {} cycles; bottleneck: {}",
        perf.steady_cycles, perf.fill_cycles, perf.bottleneck
    )
    .unwrap();
    writeln!(out).unwrap();

    writeln!(out, "+ Dataflow Stages").unwrap();
    writeln!(
        out,
        "  {:<4} {:<10} {:>12} {:>4} {:>20}",
        "#", "kind", "trip count", "II", "detail"
    )
    .unwrap();
    for (i, stage) in design.stages.iter().enumerate() {
        let (kind, trips, ii, detail) = match stage {
            Stage::Load {
                fields,
                elements_per_field,
                beats_per_field,
            } => (
                "load",
                *elements_per_field,
                1,
                format!("{fields} field(s), {beats_per_field} beats each"),
            ),
            Stage::Shift {
                register_len,
                elements,
                windows,
            } => (
                "shift",
                *elements,
                1,
                format!("register {register_len} elems, {windows} windows"),
            ),
            Stage::Dup { copies, trips, .. } => ("dup", *trips, 1, format!("fan-out x{copies}")),
            Stage::Compute { ii, trips, ops, .. } => (
                "compute",
                *trips,
                *ii,
                format!(
                    "{} fadd, {} fmul, {} fdiv, {} misc",
                    ops.fadd, ops.fmul, ops.fdiv, ops.fmisc
                ),
            ),
            Stage::Write {
                fields,
                elements_per_field,
                beats_per_field,
            } => (
                "write",
                *elements_per_field,
                1,
                format!("{fields} field(s), {beats_per_field} beats each"),
            ),
        };
        writeln!(out, "  {i:<4} {kind:<10} {trips:>12} {ii:>4} {detail:>20}").unwrap();
    }
    writeln!(out).unwrap();

    writeln!(out, "+ Utilization Estimates (all CUs)").unwrap();
    writeln!(
        out,
        "  {:<8} {:>12} {:>12} {:>8}",
        "resource", "used", "available", "util%"
    )
    .unwrap();
    for (name, used, avail) in [
        ("LUT", usage.luts, device.luts),
        ("FF", usage.ffs, device.ffs),
        ("BRAM36", usage.bram36, device.bram36),
        ("URAM", usage.uram, device.uram),
        ("DSP", usage.dsps, device.dsps),
    ] {
        writeln!(
            out,
            "  {:<8} {:>12} {:>12} {:>7.2}%",
            name,
            used,
            avail,
            100.0 * used as f64 / avail as f64
        )
        .unwrap();
    }
    let _ = pct;
    writeln!(out).unwrap();

    writeln!(out, "+ Interfaces").unwrap();
    for (protocol, bundle) in &design.interfaces {
        writeln!(out, "  {protocol:<10} bundle={bundle}").unwrap();
    }
    writeln!(out).unwrap();

    writeln!(out, "+ Streams").unwrap();
    writeln!(
        out,
        "  {} FIFOs, {} bytes total storage, widest element {} bytes",
        design.streams.len(),
        design.fifo_bytes(),
        design
            .streams
            .iter()
            .map(|s| s.elem_bytes)
            .max()
            .unwrap_or(0)
    )
    .unwrap();
    writeln!(
        out,
        "  shift registers: {} bytes; local copies: {} bytes",
        design.shift_register_bytes(),
        design.local_buffer_bytes.iter().sum::<u64>()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile, CompileOptions, TargetPath};

    #[test]
    fn report_contains_all_sections() {
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            ..Default::default()
        };
        let compiled = compile(&shmls_kernels::pw_advection::source(16, 12, 8), &opts).unwrap();
        let design = DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func).unwrap();
        let report = render(&design, &Device::u280(), &CostTable::default_f64(), 4);
        for needle in [
            "Synthesis Report: pw_advection_hls",
            "Compute units : 4",
            "Performance Estimates",
            "Dataflow Stages",
            "Utilization Estimates",
            "Interfaces",
            "Streams",
            "bottleneck",
            "m_axi",
            "compute",
            "shift",
        ] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
        // One row per stage (digit index followed by a stage kind).
        let kinds = ["load", "shift", "dup", "compute", "write"];
        let stage_rows = report
            .lines()
            .filter(|l| {
                let mut parts = l.split_whitespace();
                matches!(
                    (parts.next(), parts.next()),
                    (Some(idx), Some(kind))
                        if idx.chars().all(|c| c.is_ascii_digit())
                            && kinds.contains(&kind)
                )
            })
            .count();
        assert_eq!(stage_rows, design.stages.len());
    }
}
