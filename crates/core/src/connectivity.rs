//! Post-transform stream-graph verification.
//!
//! The stencil-to-HLS transform must emit a well-formed Kahn network:
//! every FIFO created by `hls.create_stream` needs exactly the producers
//! and consumers that keep tokens flowing. A stream that is written but
//! never drained fills up and blocks its producer; a stream that is read
//! but never fed starves its consumer — both are guaranteed deadlocks
//! under bounded FIFOs (the StencilFlow failure mode the paper reports as
//! runs that never finish). This verifier walks the generated function's
//! stream graph and rejects such designs at compile time, naming the
//! offending stream and stage.

use std::collections::BTreeMap;

use shmls_dialects::{func, hls};
use shmls_ir::error::IrResult;
use shmls_ir::ir_bail;
use shmls_ir::prelude::*;

/// How each stream is touched, for diagnostics: stage labels that push
/// into it and stage labels that pop from it.
#[derive(Debug, Default, Clone)]
struct StreamUse {
    producers: Vec<String>,
    consumers: Vec<String>,
}

/// Role hint for a dataflow stage, from the runtime calls it makes.
fn stage_role(ctx: &Context, stage: OpId) -> &'static str {
    for call in ctx.find_ops(stage, "func.call") {
        match func::callee(ctx, call) {
            Some("write_data") => return "write_data",
            Some("load_data") | Some("dummy_load_data") => return "load_data",
            Some("shift_buffer") => return "shift_buffer",
            _ => {}
        }
    }
    "compute"
}

/// Record the stream operands of `op` (reads and writes) against `label`.
fn record_op(
    ctx: &Context,
    op: OpId,
    label: &str,
    handles: &BTreeMap<ValueId, usize>,
    uses: &mut [StreamUse],
) -> IrResult<()> {
    let operands = ctx.operands(op);
    match ctx.op_name(op) {
        n if n == hls::READ => {
            if let Some(&h) = operands.first().and_then(|v| handles.get(v)) {
                uses[h].consumers.push(label.to_string());
            }
        }
        n if n == hls::WRITE => {
            if let Some(&h) = operands.get(1).and_then(|v| handles.get(v)) {
                uses[h].producers.push(label.to_string());
            }
        }
        "func.call" => match func::callee(ctx, op) {
            // load_data(ptrs…, streams…): second half of the operands.
            Some("load_data") => {
                let n = operands.len() / 2;
                for v in &operands[n..] {
                    if let Some(&h) = handles.get(v) {
                        uses[h].producers.push(label.to_string());
                    }
                }
            }
            Some("dummy_load_data") => {
                if let Some(&h) = operands.get(1).and_then(|v| handles.get(v)) {
                    uses[h].producers.push(label.to_string());
                }
            }
            // shift_buffer(elem_in, window_out).
            Some("shift_buffer") => {
                if let Some(&h) = operands.first().and_then(|v| handles.get(v)) {
                    uses[h].consumers.push(label.to_string());
                }
                if let Some(&h) = operands.get(1).and_then(|v| handles.get(v)) {
                    uses[h].producers.push(label.to_string());
                }
            }
            // write_data(streams…, ptrs…) {fields}: first `fields` operands.
            Some("write_data") => {
                let n = ctx
                    .attr(op, "fields")
                    .and_then(Attribute::as_int)
                    .unwrap_or(operands.len() as i64 / 2) as usize;
                for v in operands.iter().take(n) {
                    if let Some(&h) = handles.get(v) {
                        uses[h].consumers.push(label.to_string());
                    }
                }
            }
            callee => {
                // Any other call touching a stream is outside the known
                // runtime contract — reject rather than mis-count.
                if operands.iter().any(|v| handles.contains_key(v)) {
                    ir_bail!(
                        "connectivity: call to {:?} in {label} passes a stream \
                         but is not a known runtime function",
                        callee.unwrap_or("<unknown>")
                    );
                }
            }
        },
        _ => {}
    }
    Ok(())
}

/// Verify that every stream in `hls_func` has at least one producer and at
/// least one consumer. Returns an error naming the offending stream handle
/// and stage label otherwise.
pub fn verify_connectivity(ctx: &Context, hls_func: OpId) -> IrResult<()> {
    let name = func::func_name(ctx, hls_func).unwrap_or("<anon>");
    // Stream handles are assigned in creation order at runtime; the ops
    // appear in the same (program) order in the entry block.
    let creates = ctx.find_ops(hls_func, hls::CREATE_STREAM);
    let handles: BTreeMap<ValueId, usize> = creates
        .iter()
        .enumerate()
        .map(|(i, &op)| (ctx.result(op, 0), i))
        .collect();
    let mut uses = vec![StreamUse::default(); creates.len()];

    let Some(entry) = ctx.entry_block(hls_func) else {
        return Ok(()); // a declaration has no streams to verify
    };
    let mut stage_idx = 0usize;
    for &op in ctx.block_ops(entry) {
        if ctx.op_name(op) == hls::DATAFLOW {
            let label = format!("stage{stage_idx}:{}", stage_role(ctx, op));
            stage_idx += 1;
            for kind in [hls::READ, hls::WRITE, "func.call"] {
                for inner in ctx.find_ops(op, kind) {
                    record_op(ctx, inner, &label, &handles, &mut uses)?;
                }
            }
        } else {
            record_op(ctx, op, "init", &handles, &mut uses)?;
        }
    }

    for (h, u) in uses.iter().enumerate() {
        match (u.producers.is_empty(), u.consumers.is_empty()) {
            (false, false) => {}
            (true, true) => ir_bail!(
                "connectivity: `{name}` creates stream {h} but no stage reads or writes it"
            ),
            (true, false) => ir_bail!(
                "connectivity: `{name}` stream {h} has no producer but is read by {}",
                u.consumers.join(", ")
            ),
            (false, true) => ir_bail!(
                "connectivity: `{name}` stream {h} has no consumer but is written by {} \
                 — an unconsumed producer deadlocks under bounded FIFOs",
                u.producers.join(", ")
            ),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_dialects::{arith, func as fdial};
    use shmls_ir::builder::OpBuilder;

    /// A `func.func` whose entry block is filled in by `build`.
    fn func_with(build: impl FnOnce(&mut Context, BlockId)) -> (Context, OpId) {
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let (f, entry) = fdial::create_func(&mut ctx, body, "k", vec![], vec![]);
        build(&mut ctx, entry);
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        fdial::ret(&mut b, vec![]);
        (ctx, f)
    }

    #[test]
    fn balanced_stream_passes() {
        let (ctx, f) = func_with(|ctx, entry| {
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let s = hls::create_stream(&mut b, Type::F64, 4);
            let (_p, pbody) = hls::dataflow(&mut b);
            let mut pb = OpBuilder::at_block_end(ctx, pbody);
            let v = arith::constant_f64(&mut pb, 1.0);
            hls::write(&mut pb, v, s);
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let (_c, cbody) = hls::dataflow(&mut b);
            let mut cb = OpBuilder::at_block_end(ctx, cbody);
            let _ = hls::read(&mut cb, s);
        });
        verify_connectivity(&ctx, f).unwrap();
    }

    #[test]
    fn unconsumed_producer_is_rejected_naming_stream_and_stage() {
        // A stage pushes into stream 0 but nothing ever drains it — the
        // exact shape a dead compute stage would leave behind.
        let (ctx, f) = func_with(|ctx, entry| {
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let s = hls::create_stream(&mut b, Type::F64, 4);
            let (_p, pbody) = hls::dataflow(&mut b);
            let mut pb = OpBuilder::at_block_end(ctx, pbody);
            let v = arith::constant_f64(&mut pb, 1.0);
            hls::write(&mut pb, v, s);
        });
        let e = verify_connectivity(&ctx, f).unwrap_err().to_string();
        assert!(e.contains("stream 0"), "{e}");
        assert!(e.contains("no consumer"), "{e}");
        assert!(e.contains("stage0:compute"), "{e}");
    }

    #[test]
    fn unfed_consumer_is_rejected() {
        let (ctx, f) = func_with(|ctx, entry| {
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let s = hls::create_stream(&mut b, Type::F64, 4);
            let (_c, cbody) = hls::dataflow(&mut b);
            let mut cb = OpBuilder::at_block_end(ctx, cbody);
            let _ = hls::read(&mut cb, s);
        });
        let e = verify_connectivity(&ctx, f).unwrap_err().to_string();
        assert!(e.contains("stream 0"), "{e}");
        assert!(e.contains("no producer"), "{e}");
        assert!(e.contains("stage0:compute"), "{e}");
    }

    #[test]
    fn orphan_stream_is_rejected() {
        let (ctx, f) = func_with(|ctx, entry| {
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let _s = hls::create_stream(&mut b, Type::F64, 4);
        });
        let e = verify_connectivity(&ctx, f).unwrap_err().to_string();
        assert!(e.contains("stream 0"), "{e}");
        assert!(e.contains("no stage reads or writes"), "{e}");
    }
}
