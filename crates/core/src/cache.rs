//! Content-addressed compile cache.
//!
//! Multi-CU domain decomposition compiles one design per distinct slab
//! height ("static shapes": the paper's future-work note that a new
//! bitstream is needed per problem size). Those compilations repeat —
//! across the CUs of one run, across the timesteps of a time-marched run
//! (which must not recompile inside the loop), and across repeated
//! `repro bench` / `repro fuzz` invocations in one process. The cache
//! keys a compiled design by an FNV-1a digest of the kernel's DSL source
//! (which includes the slab's grid shape) plus a fingerprint of the
//! [`CompileOptions`], so a hit is guaranteed to be the design an
//! identical fresh compilation would produce — a property
//! [`CompiledKernel::design_fingerprint`] makes checkable.
//!
//! The FNV-1a hasher here ([`Fnv64`]) is the same construction the
//! conformance fuzzer uses for its kernel-source digest; the fuzzer now
//! reuses this implementation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use shmls_frontend::{kernel_to_source, KernelDef};
use shmls_ir::error::IrResult;
use shmls_ir::ir_error;

use crate::driver::{compile_kernel, CompileOptions, CompiledKernel, TargetPath};

/// Streaming FNV-1a (64-bit) hasher. Stable across hosts and runs — the
/// digest is part of the repo's determinism evidence (fuzzer digests,
/// cache keys, design fingerprints), so it must not depend on
/// `std::hash` internals.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    /// The FNV-1a 64-bit prime.
    pub const PRIME: u64 = 0x100_0000_01b3;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET_BASIS)
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a digest of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// How a cached-compilation request was satisfied.
///
/// The compile server reports this per request, and the load generator's
/// exactly-once accounting depends on the distinction: for a key set with
/// duplicates, the number of [`Disposition::Miss`] outcomes is the number
/// of *actual compilations*, and every duplicate must come back as a
/// [`Disposition::MemoryHit`], [`Disposition::DiskHit`] or
/// [`Disposition::Coalesced`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served from the in-memory tier.
    MemoryHit,
    /// Served from the disk tier (a warm restart; see
    /// [`crate::persist::PersistentCache`]). [`CompileCache`] itself never
    /// returns this — only the persistent wrapper does.
    DiskHit,
    /// Not cached anywhere: this request ran the compiler.
    Miss,
    /// A single-flight follower: another request was already compiling
    /// the same key, and this one received the leader's design without
    /// compiling.
    Coalesced,
}

impl Disposition {
    /// Stable wire/metric name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Disposition::MemoryHit => "hit",
            Disposition::DiskHit => "disk-hit",
            Disposition::Miss => "miss",
            Disposition::Coalesced => "coalesced",
        }
    }

    /// Whether the request was served without waiting on a compilation
    /// it triggered (misses compile; coalesced followers wait on the
    /// leader's compile but do not run one).
    pub fn compiled(&self) -> bool {
        matches!(self, Disposition::Miss)
    }

    /// Whether this was a plain cache hit (memory or disk).
    pub fn is_hit(&self) -> bool {
        matches!(self, Disposition::MemoryHit | Disposition::DiskHit)
    }
}

impl std::fmt::Display for Disposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cache occupancy and traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a compiled design.
    pub hits: u64,
    /// Lookups that missed (each one cost a compilation).
    pub misses: u64,
    /// Designs currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0.0` for an untouched cache. The
    /// zero-lookup case must stay finite (and must not claim a perfect
    /// hit rate): bench telemetry serialises this value, and a non-finite
    /// number would serialise as `null` and silently drop the metric from
    /// `repro compare`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded content-addressed cache of compiled kernels.
///
/// Entries are shared as [`Arc`]s, so a cached design can be executed by
/// several compute-unit workers concurrently while the cache itself stays
/// lock-free on the hot read path (the lock is held only around the map
/// probe, never across a compilation). Eviction is FIFO by insertion
/// order — the workload is "a handful of slab shapes, reused heavily",
/// not a scan, so recency tracking would buy nothing.
#[derive(Debug)]
pub struct CompileCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<u64, Arc<CompiledKernel>>,
    /// Keys in insertion order, for FIFO eviction.
    order: Vec<u64>,
    /// Single-flight guards: keys whose compilation is in progress. A
    /// thread that misses while a key is here waits on the slot instead
    /// of compiling the same design a second time.
    in_flight: HashMap<u64, Arc<Pending>>,
}

/// A single-flight slot: the leader publishes its outcome here and wakes
/// every follower that blocked on the same key. Errors are carried as
/// strings because [`shmls_ir::error::IrError`] is not `Clone` and each
/// follower needs its own copy.
#[derive(Debug, Default)]
struct Pending {
    done: Mutex<Option<Result<Arc<CompiledKernel>, String>>>,
    cv: Condvar,
}

/// Default capacity of [`CompileCache::new`] (also the global cache's).
pub const DEFAULT_CAPACITY: usize = 128;

impl CompileCache {
    /// An empty cache holding at most [`DEFAULT_CAPACITY`] designs.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` designs (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        CompileCache {
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The content-addressed key: FNV-1a over the kernel's DSL source
    /// (grid shape included, so every slab height keys separately) and a
    /// fingerprint of every compile option. Two requests with the same
    /// key are guaranteed to want byte-identical designs.
    ///
    /// Every option field is hashed explicitly through an exhaustive
    /// destructuring — no `..` — so adding a field to [`CompileOptions`]
    /// or [`crate::hmls::HmlsOptions`] breaks this function at compile
    /// time instead of silently aliasing designs that differ in the new
    /// field. (The previous fingerprint hashed `format!("{opts:?}")`,
    /// which would also quietly change for cosmetic Debug-format edits.)
    pub fn key(kernel: &KernelDef, opts: &CompileOptions) -> u64 {
        let CompileOptions {
            hmls:
                crate::hmls::HmlsOptions {
                    stream_depth,
                    window_stream_depth,
                    ii,
                    unroll,
                },
            paths,
            verify,
            optimize,
            time_passes,
            snapshots,
        } = opts;
        let mut h = Fnv64::new();
        h.update(kernel_to_source(kernel).as_bytes());
        let mut field = |tag: &str, value: i64| {
            h.update(tag.as_bytes());
            h.update(&value.to_le_bytes());
        };
        field("|stream_depth:", *stream_depth);
        field("|window_stream_depth:", *window_stream_depth);
        field("|ii:", *ii);
        field("|unroll:", *unroll);
        field(
            "|paths:",
            match paths {
                TargetPath::HlsOnly => 0,
                TargetPath::HlsAndCpu => 1,
                TargetPath::Full => 2,
            },
        );
        field("|verify:", i64::from(*verify));
        field("|optimize:", i64::from(*optimize));
        field("|time_passes:", i64::from(*time_passes));
        field("|snapshots:", i64::from(*snapshots));
        h.finish()
    }

    /// Look up a design by key, counting the hit or miss.
    pub fn lookup(&self, key: u64) -> Option<Arc<CompiledKernel>> {
        let found = self
            .inner
            .lock()
            .expect("cache poisoned")
            .map
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a design (evicting the oldest entry when full). If another
    /// thread inserted the same key first, the resident entry wins so
    /// every holder shares one design.
    pub fn insert(&self, key: u64, compiled: Arc<CompiledKernel>) -> Arc<CompiledKernel> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        Self::insert_locked(&mut inner, self.capacity, key, compiled)
    }

    /// Insertion body, factored out so the single-flight leader can
    /// publish its design and retire its guard under one lock.
    fn insert_locked(
        inner: &mut CacheInner,
        capacity: usize,
        key: u64,
        compiled: Arc<CompiledKernel>,
    ) -> Arc<CompiledKernel> {
        if let Some(existing) = inner.map.get(&key) {
            return Arc::clone(existing);
        }
        while inner.order.len() >= capacity {
            let oldest = inner.order.remove(0);
            inner.map.remove(&oldest);
        }
        inner.order.push(key);
        inner.map.insert(key, Arc::clone(&compiled));
        compiled
    }

    /// Fetch the design for `kernel` under `opts`, compiling on a miss.
    /// Returns the design and whether it was a cache hit. The lock is
    /// never held during compilation, so concurrent misses on *different*
    /// kernels compile in parallel; concurrent requests for the *same*
    /// key are single-flighted — the first becomes the leader and
    /// compiles (the one miss), everyone else blocks on the in-flight
    /// slot and receives the leader's design (a hit each). Before the
    /// guard, N racing threads would each run the full pass pipeline and
    /// dedup only at insertion, wasting N−1 compilations.
    pub fn get_or_compile(
        &self,
        kernel: &KernelDef,
        opts: &CompileOptions,
    ) -> IrResult<(Arc<CompiledKernel>, bool)> {
        self.get_or_compile_traced(kernel, opts)
            .map(|(compiled, disposition)| (compiled, !disposition.compiled()))
    }

    /// [`Self::get_or_compile`], but reporting *how* the request was
    /// served: a memory hit, the compiling miss, or a coalesced
    /// single-flight follower. The compile server uses this to attach a
    /// cache disposition to every response; the boolean form above
    /// collapses hit and coalesced (both "did not compile").
    pub fn get_or_compile_traced(
        &self,
        kernel: &KernelDef,
        opts: &CompileOptions,
    ) -> IrResult<(Arc<CompiledKernel>, Disposition)> {
        let key = Self::key(kernel, opts);
        enum Role {
            Leader(Arc<Pending>),
            Follower(Arc<Pending>),
        }
        let role = {
            let mut inner = self.inner.lock().expect("cache poisoned");
            if let Some(hit) = inner.map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(hit), Disposition::MemoryHit));
            }
            match inner.in_flight.get(&key) {
                Some(slot) => Role::Follower(Arc::clone(slot)),
                None => {
                    let slot = Arc::new(Pending::default());
                    inner.in_flight.insert(key, Arc::clone(&slot));
                    Role::Leader(slot)
                }
            }
        };
        match role {
            Role::Leader(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let outcome = compile_kernel(kernel.clone(), opts).map(Arc::new);
                let result = match outcome {
                    Ok(compiled) => {
                        // Publish to the map and retire the guard in one
                        // critical section, so a thread that finds the
                        // guard gone is guaranteed to find the entry.
                        let mut inner = self.inner.lock().expect("cache poisoned");
                        inner.in_flight.remove(&key);
                        let shared = Self::insert_locked(&mut inner, self.capacity, key, compiled);
                        Ok(shared)
                    }
                    Err(e) => {
                        let mut inner = self.inner.lock().expect("cache poisoned");
                        inner.in_flight.remove(&key);
                        Err(e)
                    }
                };
                let for_followers = match &result {
                    Ok(c) => Ok(Arc::clone(c)),
                    Err(e) => Err(e.to_string()),
                };
                *slot.done.lock().expect("pending slot poisoned") = Some(for_followers);
                slot.cv.notify_all();
                result.map(|c| (c, Disposition::Miss))
            }
            Role::Follower(slot) => {
                let mut done = slot.done.lock().expect("pending slot poisoned");
                while done.is_none() {
                    done = slot.cv.wait(done).expect("pending slot poisoned");
                }
                match done.as_ref().expect("checked above") {
                    Ok(compiled) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        Ok((Arc::clone(compiled), Disposition::Coalesced))
                    }
                    Err(msg) => Err(ir_error!("single-flight leader failed: {msg}")),
                }
            }
        }
    }

    /// Traffic and occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("cache poisoned").map.len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }
}

impl Default for CompileCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide cache used by the scale-out runners when no explicit
/// cache is supplied — this is what lets repeated `repro bench` /
/// `repro fuzz` work inside one process share slab compilations.
pub fn global_cache() -> &'static CompileCache {
    static GLOBAL: OnceLock<CompileCache> = OnceLock::new();
    GLOBAL.get_or_init(CompileCache::new)
}

// Cached designs are executed concurrently by compute-unit workers;
// sharing them requires the compiled artifact to be thread-safe.
#[allow(dead_code)]
fn _assert_compiled_kernel_is_shareable() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledKernel>();
    assert_send_sync::<CompileCache>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TargetPath;
    use shmls_frontend::parse_kernel;

    fn kernel(n0: i64) -> KernelDef {
        parse_kernel(&format!(
            "kernel c {{ grid({n0}, 5) halo 1 field a : input field b : output \
             compute b {{ b = a[-1,0] + a[0,1] }} }}"
        ))
        .unwrap()
    }

    fn opts() -> CompileOptions {
        CompileOptions {
            paths: TargetPath::HlsOnly,
            time_passes: false,
            ..Default::default()
        }
    }

    #[test]
    fn every_option_field_perturbs_the_key() {
        // Exhaustively destructure the defaults: adding a field to either
        // options struct fails here until the new field both feeds
        // `CompileCache::key` and gets a perturbed variant below.
        let k = kernel(6);
        let base = CompileOptions::default();
        let crate::driver::CompileOptions {
            hmls:
                crate::hmls::HmlsOptions {
                    stream_depth,
                    window_stream_depth,
                    ii,
                    unroll,
                },
            paths: _,
            verify,
            optimize,
            time_passes,
            snapshots,
        } = base.clone();
        let variants = vec![
            CompileOptions {
                hmls: crate::hmls::HmlsOptions {
                    stream_depth: stream_depth + 1,
                    ..base.hmls
                },
                ..base.clone()
            },
            CompileOptions {
                hmls: crate::hmls::HmlsOptions {
                    window_stream_depth: window_stream_depth + 1,
                    ..base.hmls
                },
                ..base.clone()
            },
            CompileOptions {
                hmls: crate::hmls::HmlsOptions {
                    ii: ii + 1,
                    ..base.hmls
                },
                ..base.clone()
            },
            CompileOptions {
                hmls: crate::hmls::HmlsOptions {
                    unroll: unroll + 1,
                    ..base.hmls
                },
                ..base.clone()
            },
            CompileOptions {
                paths: TargetPath::HlsOnly,
                ..base.clone()
            },
            CompileOptions {
                paths: TargetPath::HlsAndCpu,
                ..base.clone()
            },
            CompileOptions {
                verify: !verify,
                ..base.clone()
            },
            CompileOptions {
                optimize: !optimize,
                ..base.clone()
            },
            CompileOptions {
                time_passes: !time_passes,
                ..base.clone()
            },
            CompileOptions {
                snapshots: !snapshots,
                ..base.clone()
            },
        ];
        let base_key = CompileCache::key(&k, &base);
        let mut keys = vec![base_key];
        for (i, v) in variants.iter().enumerate() {
            let key = CompileCache::key(&k, v);
            assert_ne!(key, base_key, "variant {i} must not alias the defaults");
            keys.push(key);
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys.len(),
            variants.len() + 1,
            "every perturbed option set must key separately"
        );
        // The key must also be stable across calls (pure function).
        assert_eq!(base_key, CompileCache::key(&k, &base));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn same_kernel_twice_compiles_once() {
        let cache = CompileCache::new();
        let (_, hit1) = cache.get_or_compile(&kernel(6), &opts()).unwrap();
        let (_, hit2) = cache.get_or_compile(&kernel(6), &opts()).unwrap();
        assert!(!hit1, "first request must compile");
        assert!(hit2, "second request must hit");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_slab_heights_compile_separately() {
        let cache = CompileCache::new();
        cache.get_or_compile(&kernel(6), &opts()).unwrap();
        cache.get_or_compile(&kernel(7), &opts()).unwrap();
        cache.get_or_compile(&kernel(6), &opts()).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let cache = CompileCache::new();
        cache.get_or_compile(&kernel(6), &opts()).unwrap();
        let full = CompileOptions {
            time_passes: false,
            ..Default::default()
        };
        let (compiled, hit) = cache.get_or_compile(&kernel(6), &full).unwrap();
        assert!(!hit, "different options must not alias");
        assert!(compiled.cpu_func.is_some(), "full compile was produced");
    }

    #[test]
    fn cached_design_is_identical_to_a_fresh_compilation() {
        let cache = CompileCache::new();
        let (cached, _) = cache.get_or_compile(&kernel(9), &opts()).unwrap();
        let (same, hit) = cache.get_or_compile(&kernel(9), &opts()).unwrap();
        assert!(hit);
        let fresh = crate::driver::compile_kernel(kernel(9), &opts()).unwrap();
        assert_eq!(cached.design_fingerprint(), fresh.design_fingerprint());
        assert_eq!(cached.design_fingerprint(), same.design_fingerprint());
    }

    #[test]
    fn fifo_eviction_bounds_occupancy() {
        let cache = CompileCache::with_capacity(2);
        for n0 in [5, 6, 7, 8] {
            cache.get_or_compile(&kernel(n0), &opts()).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.misses, 4);
        // The two newest survive; the oldest two were evicted.
        let (_, hit8) = cache.get_or_compile(&kernel(8), &opts()).unwrap();
        assert!(hit8);
        let (_, hit5) = cache.get_or_compile(&kernel(5), &opts()).unwrap();
        assert!(!hit5);
    }

    #[test]
    fn untouched_cache_reports_zero_hit_rate() {
        // Regression: this used to return 1.0 before any lookup, which
        // made an idle cache read as "perfect" in telemetry.
        let stats = CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
        };
        assert_eq!(stats.hit_rate(), 0.0);
        assert!(stats.hit_rate().is_finite());
        assert_eq!(CompileCache::new().stats().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_same_key_requests_compile_once() {
        const THREADS: usize = 8;
        let cache = Arc::new(CompileCache::new());
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compile(&kernel(11), &opts()).unwrap()
                })
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

        // Exactly one thread compiled (the single miss); every other
        // request was served by the in-flight guard or the map.
        let s = cache.stats();
        assert_eq!(s.misses, 1, "single-flight must compile exactly once");
        assert_eq!(s.hits, THREADS as u64 - 1);
        assert_eq!(s.entries, 1);
        assert_eq!(results.iter().filter(|(_, hit)| !hit).count(), 1);
        let first = &results[0].0;
        for (design, _) in &results {
            assert!(
                Arc::ptr_eq(first, design),
                "all threads must share one compiled design"
            );
        }
    }

    #[test]
    fn dispositions_distinguish_miss_hit_and_coalesced() {
        let cache = CompileCache::new();
        let (_, d1) = cache.get_or_compile_traced(&kernel(6), &opts()).unwrap();
        let (_, d2) = cache.get_or_compile_traced(&kernel(6), &opts()).unwrap();
        assert_eq!(d1, Disposition::Miss);
        assert_eq!(d2, Disposition::MemoryHit);
        assert!(d1.compiled() && !d2.compiled());
        assert!(!d1.is_hit() && d2.is_hit());
        assert_eq!(d1.as_str(), "miss");
        assert_eq!(Disposition::Coalesced.as_str(), "coalesced");
        assert_eq!(Disposition::DiskHit.as_str(), "disk-hit");
    }

    #[test]
    fn eviction_race_still_compiles_each_key_exactly_once() {
        // Capacity 1, so every insertion evicts the previous entry —
        // including, potentially, a design that racing same-key requests
        // are still being served. An in-progress key lives in the
        // single-flight table (not the FIFO map), so eviction must never
        // cause a second compilation of a key whose leader is mid-flight:
        // followers take the design from the leader's published slot, not
        // from the (possibly already-evicted) map entry.
        const RACERS: usize = 6;
        const CHURN_KEYS: i64 = 4;
        let cache = Arc::new(CompileCache::with_capacity(1));
        let barrier = Arc::new(std::sync::Barrier::new(RACERS + 1));
        let racers: Vec<_> = (0..RACERS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compile_traced(&kernel(13), &opts()).unwrap()
                })
            })
            .collect();
        // Churn thread: keeps inserting distinct keys so the FIFO slot
        // turns over while the racers' key is in flight.
        let churn = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for n0 in 20..20 + CHURN_KEYS {
                    cache.get_or_compile_traced(&kernel(n0), &opts()).unwrap();
                }
            })
        };
        let results: Vec<_> = racers.into_iter().map(|r| r.join().unwrap()).collect();
        churn.join().unwrap();

        // Exactly one racer compiled key 13; everyone else coalesced onto
        // it or hit the map, and all six share one design.
        let compiles = results.iter().filter(|(_, d)| d.compiled()).count();
        assert_eq!(compiles, 1, "evicted in-flight key must compile once");
        let first = &results[0].0;
        for (design, d) in &results {
            assert!(Arc::ptr_eq(first, design), "racers must share one design");
            assert!(matches!(
                d,
                Disposition::Miss | Disposition::MemoryHit | Disposition::Coalesced
            ));
        }
        let s = cache.stats();
        assert_eq!(
            s.misses,
            1 + CHURN_KEYS as u64,
            "misses = one per distinct key, never more"
        );
        assert_eq!(s.entries, 1, "capacity-1 FIFO holds exactly one design");
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = CompileCache::new();
        cache.get_or_compile(&kernel(6), &opts()).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 1);
    }
}
