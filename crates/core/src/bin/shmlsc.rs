//! `shmlsc` — the Stencil-HMLS command-line compiler driver.
//!
//! ```text
//! shmlsc kernel.stencil                 # compile, print the report
//! shmlsc kernel.stencil --emit stencil  # print the stencil-dialect IR
//! shmlsc kernel.stencil --emit hls      # print the HLS dataflow design
//! shmlsc kernel.stencil --emit llvm     # print the annotated LLVM module
//! shmlsc kernel.stencil --emit all      # print every stage
//! shmlsc kernel.stencil --design        # print the extracted design facts
//! shmlsc kernel.stencil --estimate      # perf/resource/power on the U280
//! shmlsc kernel.stencil --estimate --cus 4   # …replicated over 4 CUs
//! shmlsc kernel.stencil --synthesis-report   # Vitis-style synthesis report
//! shmlsc kernel.stencil --validate      # run dataflow vs reference on random data
//! shmlsc kernel.stencil --connectivity N  # Vitis HBM connectivity cfg for N CUs
//! shmlsc kernel.stencil --no-opt        # skip canonicalisation
//! ```

use std::process::ExitCode;

use shmls_fpga_sim::design::DesignDescriptor;
use shmls_fpga_sim::device::{CostTable, Device, PowerCoefficients};
use shmls_ir::printer::print_op;
use stencil_hmls::runner::{max_output_diff, run_hls, run_stencil, KernelData};
use stencil_hmls::{compile, CompileOptions};

struct Args {
    path: String,
    emit: Option<String>,
    design: bool,
    estimate: bool,
    validate: bool,
    optimize: bool,
    connectivity: Option<u32>,
    cus: u32,
    synthesis_report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        emit: None,
        design: false,
        estimate: false,
        validate: false,
        optimize: true,
        connectivity: None,
        cus: 1,
        synthesis_report: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => {
                args.emit = Some(it.next().ok_or("--emit needs a stage name")?);
            }
            "--design" => args.design = true,
            "--estimate" => args.estimate = true,
            "--validate" => args.validate = true,
            "--no-opt" => args.optimize = false,
            "--synthesis-report" => args.synthesis_report = true,
            "--cus" => {
                let n = it.next().ok_or("--cus needs a count")?;
                args.cus = n.parse().map_err(|e| format!("bad CU count: {e}"))?;
                if args.cus == 0 {
                    return Err("--cus must be at least 1".into());
                }
            }
            "--connectivity" => {
                let n = it.next().ok_or("--connectivity needs a CU count")?;
                args.connectivity = Some(n.parse().map_err(|e| format!("bad CU count: {e}"))?);
            }
            "--help" | "-h" => return Err("usage".into()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => {
                if !args.path.is_empty() {
                    return Err("exactly one input file expected".into());
                }
                args.path = other.to_string();
            }
        }
    }
    if args.path.is_empty() {
        return Err("no input file".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shmlsc: {e}");
            eprintln!(
                "usage: shmlsc <kernel.stencil> [--emit stencil|hls|llvm|all] \
                 [--design] [--estimate] [--cus N] [--synthesis-report] \
                 [--validate] [--connectivity N] [--no-opt]"
            );
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shmlsc: cannot read `{}`: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };

    let opts = CompileOptions {
        optimize: args.optimize,
        ..Default::default()
    };
    let compiled = match compile(&source, &opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("shmlsc: compilation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    match args.emit.as_deref() {
        Some("stencil") => println!("{}", print_op(&compiled.ctx, compiled.stencil_func)),
        Some("hls") => println!("{}", print_op(&compiled.ctx, compiled.hls_func)),
        Some("llvm") => match compiled.llvm_func {
            Some(f) => println!("{}", print_op(&compiled.ctx, f)),
            None => eprintln!("shmlsc: no LLVM path was generated"),
        },
        Some("all") => println!("{}", print_op(&compiled.ctx, compiled.module)),
        Some(other) => {
            eprintln!("shmlsc: unknown emit stage `{other}`");
            return ExitCode::from(2);
        }
        None => {}
    }

    if args.emit.is_none() || args.design || args.estimate {
        let r = &compiled.report;
        println!("kernel `{}`:", compiled.kernel.name);
        println!(
            "  grid            : {:?} (halo {})",
            compiled.kernel.grid, compiled.kernel.halo
        );
        println!("  computations    : {}", r.compute_stages);
        println!("  fields in/out   : {}/{}", r.inputs, r.outputs);
        println!(
            "  streams         : {} ({} dup stages)",
            r.streams, r.dup_stages
        );
        println!(
            "  shift buffers   : {} x {:?} elements",
            r.shift_buffers,
            r.shift_register_lens.first().unwrap_or(&0)
        );
        println!("  window          : {} values", r.window_elems);
        println!("  bundles         : {:?}", r.bundles);
        if let Some(d) = &compiled.directives {
            println!(
                "  fpp round trip  : {} markers, {} dataflow regions, IIs {:?}",
                d.markers_consumed, d.dataflow_regions, d.pipelined_loops
            );
        }
    }

    if args.design || args.estimate {
        let design = match DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("shmlsc: design extraction failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.design {
            println!("\ndesign:");
            println!("  interior points : {}", design.interior_points);
            println!("  bounded points  : {}", design.bounded_points);
            println!("  memory beats    : {}", design.total_beats());
            println!("  fifo bytes      : {}", design.fifo_bytes());
            println!("  shift reg bytes : {}", design.shift_register_bytes());
            println!("  axi ports       : {}", design.axi_ports());
            for (i, s) in design.stages.iter().enumerate() {
                println!("  stage[{i}]        : {s:?}");
            }
        }
        if args.estimate {
            let device = Device::u280();
            let costs = CostTable::default_f64();
            let coeffs = PowerCoefficients::default_u280();
            let perf = shmls_fpga_sim::perf::hmls_estimate(&design, &device, args.cus);
            let usage = shmls_fpga_sim::resources::estimate(&design, &costs, args.cus);
            let pct = usage.percentages(&device);
            let power = shmls_fpga_sim::power::estimate(
                &device,
                &coeffs,
                &usage,
                design.total_beats() * 64,
                perf.seconds,
            );
            println!("\nestimate ({} CU(s) on {}):", args.cus, device.name);
            println!(
                "  throughput      : {:.1} MPt/s ({} cycles, bottleneck {})",
                perf.mpts, perf.cycles, perf.bottleneck
            );
            println!("  runtime         : {:.3} ms", perf.seconds * 1e3);
            println!(
                "  resources       : {:.2}% LUT, {:.2}% FF, {:.2}% BRAM, {:.2}% URAM, {:.2}% DSP",
                pct[0],
                pct[1],
                pct[2],
                usage.uram_pct(&device),
                pct[3]
            );
            println!(
                "  power / energy  : {:.1} W / {:.3} J",
                power.watts, power.joules
            );
        }
    }

    if args.synthesis_report {
        let design = match DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("shmlsc: design extraction failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "\n{}",
            stencil_hmls::synthesis_report::render(
                &design,
                &Device::u280(),
                &CostTable::default_f64(),
                args.cus,
            )
        );
    }

    if let Some(cus) = args.connectivity {
        let design = match DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("shmlsc: design extraction failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match shmls_fpga_sim::memory::assign_banks(&design, &Device::u280(), cus) {
            Ok(c) => {
                println!(
                    "\n# HBM connectivity for {cus} CU(s) ({} banks)",
                    c.banks_used()
                );
                print!("{}", c.to_cfg());
            }
            Err(e) => {
                eprintln!("shmlsc: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.validate {
        // Random data, reference vs dataflow.
        let mut data = KernelData::default();
        let bounded = shmls_ir::types::StencilBounds::from_extents(&compiled.kernel.grid)
            .grown(compiled.kernel.halo);
        let mut seed = 0x5EEDu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 200.0 - 2.5
        };
        for f in &compiled.kernel.fields {
            if matches!(
                f.kind,
                shmls_frontend::FieldKind::Input | shmls_frontend::FieldKind::InOut
            ) {
                let mut b = shmls_ir::interp::Buffer::zeroed(bounded.extents(), bounded.lb.clone());
                for v in &mut b.data {
                    *v = rnd();
                }
                data = data.buffer(&f.name, b);
            }
        }
        for p in &compiled.kernel.params {
            let extent = compiled.kernel.grid[p.axis] + 2 * compiled.kernel.halo;
            let mut b = shmls_ir::interp::Buffer::zeroed(vec![extent], vec![0]);
            for v in &mut b.data {
                *v = rnd();
            }
            data = data.buffer(&p.name, b);
        }
        for c in &compiled.kernel.consts {
            data = data.scalar(&c.name, rnd());
        }
        let reference = run_stencil(&compiled, &data).expect("reference run");
        let (dataflow, (streams, elements, beats)) = run_hls(&compiled, &data).expect("hls run");
        let lb = vec![0i64; compiled.kernel.rank()];
        let diff = max_output_diff(&reference, &dataflow, &lb, &compiled.kernel.grid);
        println!("\nvalidate:");
        println!("  streams/elements/beats : {streams}/{elements}/{beats}");
        println!("  max |dataflow - reference| = {diff:.3e}");
        if diff > 1e-12 {
            eprintln!("shmlsc: VALIDATION FAILED");
            return ExitCode::FAILURE;
        }
        println!("  PASS");
    }

    ExitCode::SUCCESS
}
