//! # stencil-hmls — automatic optimisation of stencil codes for FPGA
//!
//! Rust reproduction of *"Stencil-HMLS: A multi-layered approach to the
//! automatic optimisation of stencil codes on FPGA"* (SC-W 2023). The crate
//! implements the paper's compiler: stencil-dialect IR in, an optimised
//! HLS-dialect dataflow design out (plus the lowering to annotated
//! LLVM-dialect IR and the `f++`-equivalent directive pass).
//!
//! Pipeline stages (see DESIGN.md for the per-experiment map):
//!
//! - [`classify`] — step 1: kernel-argument classification.
//! - [`fuse`] / [`split`] — the CPU-favoured fusion and the FPGA-favoured
//!   per-field split (step 4).
//! - [`shift_buffer`] — window geometry shared by transform, runtime and
//!   resource model (steps 3/5, Figure 2).
//! - [`hmls`] — the stencil→HLS dataflow construction (steps 2–9,
//!   Figure 3), including dead compute-stage pruning.
//! - [`connectivity`] — post-transform stream-graph verification: every
//!   FIFO must have a producer and a consumer or the design deadlocks.
//! - [`cpu_lowering`] — the reference Von-Neumann lowering (baseline
//!   structure, golden path).
//! - [`llvm_lowering`] — HLS dialect → annotation-encoded LLVM dialect.
//! - [`fpp`] — the f++ equivalent: marker-call pattern matching back into
//!   structured directives.
//! - [`driver`] — end-to-end compilation entry points.
//! - [`cache`] — content-addressed compile cache (kernel source +
//!   compile-option digest), shared by the scale-out runners.
//! - [`persist`] — the disk-persistent tier behind the compile server:
//!   checksummed, atomically written design records that make restarts
//!   warm ([`persist::PersistentCache`]).
//! - [`scale`] — scale-out execution: parallel compute units,
//!   time-marching with halo exchange, and the aggregated
//!   [`scale::MultiCuReport`].
//!
//! ## Example
//!
//! ```
//! use stencil_hmls::runner::{run_hls, run_stencil, KernelData};
//! use stencil_hmls::{compile, CompileOptions};
//!
//! let compiled = compile(
//!     r#"
//! kernel blur {
//!   grid(8, 8)
//!   halo 1
//!   field a : input
//!   field b : output
//!   compute b { b = 0.25 * (a[-1,0] + a[1,0] + a[0,-1] + a[0,1]) }
//! }
//! "#,
//!     &CompileOptions::default(),
//! )
//! .unwrap();
//!
//! // Bind a halo-padded input buffer and simulate the dataflow design.
//! let mut a = shmls_ir::interp::Buffer::zeroed(vec![10, 10], vec![-1, -1]);
//! a.store(&[4, 4], 8.0).unwrap();
//! let data = KernelData::default().buffer("a", a);
//! let (dataflow, _stats) = run_hls(&compiled, &data).unwrap();
//! let reference = run_stencil(&compiled, &data).unwrap();
//! assert_eq!(
//!     dataflow["b"].load(&[4, 5]).unwrap(),
//!     reference["b"].load(&[4, 5]).unwrap(),
//! );
//! assert_eq!(dataflow["b"].load(&[4, 5]).unwrap(), 2.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod canonicalize;
pub mod classify;
pub mod connectivity;
pub mod cpu_lowering;
pub mod driver;
pub mod dse;
pub mod fpp;
pub mod fuse;
pub mod hmls;
pub mod llvm_lowering;
pub mod persist;
pub mod runner;
pub mod scale;
pub mod shift_buffer;
pub mod split;
pub mod synthesis_report;

pub use cache::{fnv1a, global_cache, CacheStats, CompileCache, Disposition, Fnv64};
pub use canonicalize::CanonicalizePass;
pub use driver::{compile, compile_kernel, CompileOptions, CompiledKernel, TargetPath};
pub use fuse::FusePass;
pub use hmls::{stencil_to_hls, HmlsOptions, HmlsOutput, HmlsReport};
pub use persist::{DesignRecord, DesignSummary, DiskStore, PersistentCache, ServeStats};
pub use scale::{
    feedback_pairs, partition, run_hls_multi_cu_report, run_time_marched, run_time_marched_with,
    time_march_reference, CuReport, HaloFault, MarchOptions, MultiCuReport,
};
pub use split::SplitPass;
