//! The `f++` equivalent: directive recovery by marker-call pattern
//! matching (§3.2).
//!
//! The paper's closed-source `f++` tool consumes the annotation-encoded
//! LLVM-IR, *"identif\[ies\] these corresponding function calls via pattern
//! matching and replace\[s\] them with the appropriate intrinsics or
//! metadata"*, using loop-tree analysis to attach pipeline/unroll requests
//! to the right loop. This module reimplements that behaviour on our
//! `llvm`-dialect module: every `_shmls_*` marker call is matched, removed,
//! and turned into structured metadata — attributes on the enclosing loop
//! or region — plus a [`DirectiveReport`] that downstream consumers (and
//! the round-trip tests) read.

use std::collections::BTreeMap;

use shmls_dialects::{func, llvm, scf};
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_ensure, ir_error};

/// Attribute placed on loops that received a pipeline directive.
pub const ATTR_PIPELINE_II: &str = "pipeline_ii";
/// Attribute placed on loops that received an unroll directive.
pub const ATTR_UNROLL: &str = "unroll_factor";
/// Attribute placed on regions that are dataflow regions.
pub const ATTR_DATAFLOW: &str = "dataflow";

/// Everything `fpp` recovered from the marker calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirectiveReport {
    /// Loops annotated with a pipeline II (loop op count per II value).
    pub pipelined_loops: BTreeMap<i64, usize>,
    /// Loops annotated with unroll factors (factor → count).
    pub unrolled_loops: BTreeMap<i64, usize>,
    /// Number of dataflow regions.
    pub dataflow_regions: usize,
    /// Interface bindings: (protocol, bundle) per marker, in encounter
    /// order.
    pub interfaces: Vec<(String, String)>,
    /// Stream depths recovered from `@llvm.fpga.set.stream.depth` calls.
    pub stream_depths: Vec<i64>,
    /// Array-partition directives: (kind, factor, dim).
    pub array_partitions: Vec<(String, i64, i64)>,
    /// Total marker calls consumed.
    pub markers_consumed: usize,
}

/// Run the f++-equivalent pass over `llvm_func`: consume every marker call,
/// attach metadata, and report what was found.
pub fn run_fpp(ctx: &mut Context, llvm_func: OpId) -> IrResult<DirectiveReport> {
    ir_ensure!(
        ctx.op_name(llvm_func) == func::FUNC,
        "fpp expects a func.func, got `{}`",
        ctx.op_name(llvm_func)
    );
    let mut report = DirectiveReport::default();
    for op in ctx.walk_collect(llvm_func) {
        if !ctx.is_live_op(op) || ctx.op_name(op) != llvm::CALL {
            continue;
        }
        let Some(callee) = llvm::callee(ctx, op).map(str::to_string) else {
            continue;
        };
        if callee == llvm::SET_STREAM_DEPTH {
            let depth = ctx
                .attr(op, "depth")
                .and_then(Attribute::as_int)
                .ok_or_else(|| ir_error!("set.stream.depth without depth"))?;
            report.stream_depths.push(depth);
            continue;
        }
        let Some(suffix) = callee.strip_prefix(llvm::MARKER_PREFIX) else {
            continue;
        };
        report.markers_consumed += 1;
        if let Some(ii_text) = suffix.strip_prefix("pipeline_ii_") {
            let ii: i64 = ii_text
                .parse()
                .map_err(|e| ir_error!("bad pipeline marker `{callee}`: {e}"))?;
            let loop_op = enclosing_loop(ctx, op)
                .ok_or_else(|| ir_error!("pipeline marker outside any loop"))?;
            ctx.set_attr(loop_op, ATTR_PIPELINE_II, Attribute::int(ii));
            *report.pipelined_loops.entry(ii).or_default() += 1;
            ctx.erase_op(op);
        } else if let Some(factor_text) = suffix.strip_prefix("unroll_factor_") {
            let factor: i64 = factor_text
                .parse()
                .map_err(|e| ir_error!("bad unroll marker `{callee}`: {e}"))?;
            let loop_op = enclosing_loop(ctx, op)
                .ok_or_else(|| ir_error!("unroll marker outside any loop"))?;
            ctx.set_attr(loop_op, ATTR_UNROLL, Attribute::int(factor));
            *report.unrolled_loops.entry(factor).or_default() += 1;
            ctx.erase_op(op);
        } else if suffix == "dataflow" {
            let region_op = ctx
                .parent_op(op)
                .ok_or_else(|| ir_error!("dataflow marker outside any region"))?;
            ctx.set_attr(region_op, ATTR_DATAFLOW, Attribute::Unit);
            report.dataflow_regions += 1;
            ctx.erase_op(op);
        } else if let Some(rest) = suffix.strip_prefix("interface_") {
            // Encoded as `<protocol>_<bundle>` where protocol itself may
            // contain an underscore (m_axi, s_axilite).
            let (protocol, bundle) = split_interface(rest)?;
            report.interfaces.push((protocol, bundle));
            ctx.erase_op(op);
        } else if let Some(rest) = suffix.strip_prefix("array_partition_") {
            let parts: Vec<&str> = rest.split('_').collect();
            ir_ensure!(parts.len() == 3, "bad array_partition marker `{callee}`");
            let kind = parts[0].to_string();
            let factor: i64 = parts[1].parse().map_err(|e| ir_error!("bad factor: {e}"))?;
            let dim: i64 = parts[2].parse().map_err(|e| ir_error!("bad dim: {e}"))?;
            report.array_partitions.push((kind, factor, dim));
            ctx.erase_op(op);
        } else if suffix.starts_with("stream_") {
            // Stream access shims are backend runtime calls, not
            // directives; they stay in the IR (the backend links them).
            report.markers_consumed -= 1;
        } else {
            ir_bail!("unrecognised marker `{callee}`");
        }
    }
    Ok(report)
}

/// Innermost `scf.for` containing `op` (the paper: "LLVM passes that
/// determine where in the loop tree the call was found").
fn enclosing_loop(ctx: &Context, op: OpId) -> Option<OpId> {
    let mut current = ctx.parent_op(op)?;
    loop {
        if ctx.op_name(current) == scf::FOR {
            return Some(current);
        }
        current = ctx.parent_op(current)?;
    }
}

fn split_interface(rest: &str) -> IrResult<(String, String)> {
    for protocol in ["m_axi", "s_axilite"] {
        if let Some(bundle) = rest
            .strip_prefix(protocol)
            .and_then(|r| r.strip_prefix('_'))
        {
            return Ok((protocol.to_string(), bundle.to_string()));
        }
    }
    ir_bail!("cannot split interface marker `{rest}`")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmls::{stencil_to_hls, HmlsOptions};
    use crate::llvm_lowering::hls_to_llvm;
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};

    const MULTI: &str = r#"
kernel multi {
  grid(6, 5, 4)
  halo 1
  field u : input
  field v : input
  field su : output
  field sv : output
  param tz[k]
  const c
  compute su { su = c * (u[1,0,0] - u[-1,0,0]) + tz[k] * v[0,0,0] }
  compute sv { sv = v[0,1,0] + v[0,-1,0] + u[0,0,1] }
}
"#;

    fn run() -> (Context, OpId, crate::hmls::HmlsReport, DirectiveReport) {
        let k = parse_kernel(MULTI).unwrap();
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let hls_out = stencil_to_hls(&mut ctx, lowered.func, &HmlsOptions::default()).unwrap();
        let llvm_func = hls_to_llvm(&mut ctx, hls_out.func).unwrap();
        let report = run_fpp(&mut ctx, llvm_func).unwrap();
        (ctx, llvm_func, hls_out.report, report)
    }

    #[test]
    fn round_trip_recovers_all_directives() {
        let (_ctx, _f, hmls_report, fpp_report) = run();
        // Every pipelined loop (compute + dup stages) recovered at II = 1.
        let expected_loops = hmls_report.compute_stages + hmls_report.dup_stages;
        assert_eq!(
            fpp_report.pipelined_loops.get(&1).copied(),
            Some(expected_loops)
        );
        // Dataflow regions: load + 2 shifts + 2 dups + 2 computes + write.
        assert_eq!(fpp_report.dataflow_regions, 8);
        // One interface per function argument; bundles match step 9.
        let bundles: Vec<&str> = fpp_report
            .interfaces
            .iter()
            .map(|(_, b)| b.as_str())
            .collect();
        assert_eq!(
            bundles,
            hmls_report
                .bundles
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
        // One stream depth per created stream.
        assert_eq!(fpp_report.stream_depths.len(), hmls_report.streams);
    }

    #[test]
    fn markers_are_consumed() {
        let (ctx, f, _h, report) = run();
        assert!(report.markers_consumed > 0);
        for op in ctx.walk_collect(f) {
            if ctx.op_name(op) == llvm::CALL {
                let callee = llvm::callee(&ctx, op).unwrap_or_default();
                assert!(
                    !callee.starts_with(llvm::MARKER_PREFIX)
                        || callee.starts_with("_shmls_stream_"),
                    "directive marker `{callee}` survived fpp"
                );
            }
        }
    }

    #[test]
    fn loops_carry_metadata() {
        let (ctx, f, _h, _r) = run();
        let pipelined: Vec<_> = ctx
            .find_ops(f, scf::FOR)
            .into_iter()
            .filter(|&l| ctx.attr(l, ATTR_PIPELINE_II).is_some())
            .collect();
        assert!(!pipelined.is_empty());
        for l in pipelined {
            assert_eq!(
                ctx.attr(l, ATTR_PIPELINE_II).and_then(Attribute::as_int),
                Some(1)
            );
        }
    }

    #[test]
    fn dataflow_regions_carry_metadata() {
        let (ctx, f, _h, r) = run();
        let marked = ctx
            .find_ops(f, crate::llvm_lowering::LLVM_REGION)
            .into_iter()
            .filter(|&o| ctx.attr(o, ATTR_DATAFLOW).is_some())
            .count();
        assert_eq!(marked, r.dataflow_regions);
    }

    #[test]
    fn interface_split_handles_protocols() {
        assert_eq!(
            split_interface("m_axi_gmem0").unwrap(),
            ("m_axi".to_string(), "gmem0".to_string())
        );
        assert_eq!(
            split_interface("s_axilite_control").unwrap(),
            ("s_axilite".to_string(), "control".to_string())
        );
        assert!(split_interface("bogus_gmem0").is_err());
    }
}
