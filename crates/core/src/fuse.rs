//! Stencil fusion: merge the `stencil.apply` ops of a function into one
//! multi-result apply.
//!
//! §3.3 step 4 of the paper observes that *"the stencil transformations for
//! the CPU or GPU favour fusing stencils together for fewer, larger stencil
//! regions"* — this pass is that CPU/GPU-favoured form. It is the input
//! situation that the FPGA-specific *split* transformation
//! ([`crate::split`]) undoes, so the pair lets us express both ends of the
//! paper's trade-off and benchmark the difference (the `3(split)` factor of
//! the paper's §4 speed-up decomposition).
//!
//! Producer→consumer dependencies between applies are legal as long as the
//! consumer reads the produced temp only at offset 0 (the frontend enforces
//! this); fusion replaces such reads with the producer's yielded SSA value.

use std::collections::HashMap;

use shmls_dialects::stencil;
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_ensure};

/// Fuse all `stencil.apply` ops directly inside `func`'s entry block into a
/// single multi-result apply. Returns the fused op (or the single existing
/// apply when there is nothing to do).
pub fn fuse_applies(ctx: &mut Context, func: OpId) -> IrResult<OpId> {
    let entry = ctx
        .entry_block(func)
        .ok_or_else(|| shmls_ir::ir_error!("fuse: function has no body"))?;
    let applies: Vec<OpId> = ctx
        .block_ops(entry)
        .iter()
        .copied()
        .filter(|&o| ctx.op_name(o) == stencil::APPLY)
        .collect();
    if applies.is_empty() {
        ir_bail!("fuse: function contains no stencil.apply");
    }
    if applies.len() == 1 {
        return Ok(applies[0]);
    }

    // Results of the applies being fused (they become internal values).
    let mut fused_results: Vec<ValueId> = Vec::new();
    for &a in &applies {
        fused_results.extend(ctx.results(a).iter().copied());
    }

    // Combined external operands, in first-use order, deduplicated.
    let mut operands: Vec<ValueId> = Vec::new();
    for &a in &applies {
        for &o in ctx.operands(a) {
            if !fused_results.contains(&o) && !operands.contains(&o) {
                operands.push(o);
            }
        }
    }

    let result_types: Vec<Type> = applies
        .iter()
        .flat_map(|&a| ctx.results(a).iter().map(|&r| ctx.value_type(r).clone()))
        .collect();

    // Build the fused apply before the first original apply.
    let mut b = OpBuilder::before(ctx, applies[0]);
    let (fused, body) = stencil::apply(&mut b, operands.clone(), result_types);
    let body_args = ctx.block_args(body).to_vec();

    // external operand value -> fused block arg
    let arg_for: HashMap<ValueId, ValueId> = operands
        .iter()
        .copied()
        .zip(body_args.iter().copied())
        .collect();
    // old apply result -> per-point SSA value inside the fused body
    let mut produced: HashMap<ValueId, ValueId> = HashMap::new();
    let mut yielded: Vec<ValueId> = Vec::new();

    for &a in &applies {
        let src_block = ctx.entry_block(a).expect("apply has a body");
        // old body block arg -> value in the fused body
        let mut vmap: HashMap<ValueId, ValueId> = HashMap::new();
        for (i, &src_arg) in ctx.block_args(src_block).to_vec().iter().enumerate() {
            let operand = ctx.operands(a)[i];
            if let Some(&fused_arg) = arg_for.get(&operand) {
                vmap.insert(src_arg, fused_arg);
            } else {
                // Operand is an earlier apply's result; accesses to it are
                // rewritten below, so map the arg to a placeholder that we
                // must never materialise as an operand.
                vmap.insert(src_arg, operand);
            }
        }
        let src_ops = ctx.block_ops(src_block).to_vec();
        for op in src_ops {
            let name = ctx.op_name(op).to_string();
            if name == stencil::RETURN {
                for &v in &ctx.operands(op).to_vec() {
                    let mapped = vmap.get(&v).copied().unwrap_or(v);
                    yielded.push(mapped);
                }
                continue;
            }
            if name == stencil::ACCESS {
                let operand = ctx.operands(op)[0];
                let mapped = vmap.get(&operand).copied().unwrap_or(operand);
                if let Some(&inline_value) = produced.get(&mapped) {
                    // Access to a fused producer: must be the centre point.
                    let offset = stencil::access_offset(ctx, op)
                        .ok_or_else(|| shmls_ir::ir_error!("access without offset"))?;
                    ir_ensure!(
                        offset.iter().all(|&o| o == 0),
                        "fuse: access to a produced temp at non-zero offset {offset:?}"
                    );
                    vmap.insert(ctx.result(op, 0), inline_value);
                    continue;
                }
            }
            let mut clone_map = vmap.clone();
            let cloned = ctx.clone_op(op, &mut clone_map);
            ctx.append_op(body, cloned);
            // Carry over new result bindings.
            for (&old_r, &new_r) in ctx
                .results(op)
                .to_vec()
                .iter()
                .zip(ctx.results(cloned).to_vec().iter())
            {
                vmap.insert(old_r, new_r);
            }
        }
        // Record this apply's per-point values for later consumers.
        let n_results = ctx.results(a).len();
        let start = yielded.len() - n_results;
        for (i, &r) in ctx.results(a).to_vec().iter().enumerate() {
            produced.insert(r, yielded[start + i]);
        }
    }

    let mut eb = OpBuilder::at_block_end(ctx, body);
    stencil::return_op(&mut eb, yielded);

    // Rewire external uses (stencil.store etc.) and erase the originals.
    let mut out_idx = 0;
    for &a in &applies {
        for i in 0..ctx.results(a).len() {
            let old = ctx.result(a, i);
            let new = ctx.result(fused, out_idx);
            out_idx += 1;
            ctx.replace_all_uses(old, new);
        }
    }
    for &a in applies.iter().rev() {
        ctx.erase_op(a);
    }
    // Some fused results may now be unused (pure intermediates); that is
    // fine — stencil.apply may yield values nobody stores.
    Ok(fused)
}

/// [`shmls_ir::pass::Pass`] wrapper for pipeline use (named `"fuse"`):
/// fuses the applies of every function that contains any, skipping
/// stencil-free functions instead of erroring like [`fuse_applies`].
///
/// This is the CPU/GPU-favoured form; the FPGA pipeline follows it with
/// [`crate::split::SplitPass`] only in experiments that measure the
/// paper's `3 (split)` ablation factor — splitting a fused apply
/// duplicates each consumer's producer cone, which is exactly the
/// trade-off being measured.
pub struct FusePass;

impl shmls_ir::pass::Pass for FusePass {
    fn name(&self) -> &str {
        "fuse"
    }

    fn run(&self, ctx: &mut Context, root: OpId) -> IrResult<()> {
        for func in ctx.find_ops(root, shmls_dialects::func::FUNC) {
            if !ctx.find_ops(func, stencil::APPLY).is_empty() {
                fuse_applies(ctx, func)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};
    use shmls_ir::interp::{Buffer, Machine, NoExtern, RtValue};
    use shmls_ir::verifier::verify_with;

    const CHAIN: &str = r#"
kernel chain {
  grid(6)
  halo 1
  field a : input
  field t : temp
  field b : output
  compute t { t = 2.0 * a[0] }
  compute b { b = t[0] + a[1] }
}
"#;

    fn lower(src: &str) -> (Context, OpId, OpId) {
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (m, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        (ctx, m, lowered.func)
    }

    #[test]
    fn chain_fuses_to_one_apply() {
        let (mut ctx, module, func) = lower(CHAIN);
        assert_eq!(ctx.find_ops(module, stencil::APPLY).len(), 2);
        let fused = fuse_applies(&mut ctx, func).unwrap();
        assert_eq!(ctx.find_ops(module, stencil::APPLY).len(), 1);
        assert_eq!(ctx.results(fused).len(), 2);
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
    }

    #[test]
    fn fused_chain_computes_same_values() {
        let (mut ctx, module, func) = lower(CHAIN);
        fuse_applies(&mut ctx, func).unwrap();
        let mut no = NoExtern;
        let mut m = Machine::new(&ctx, module, &mut no);
        let mut a = Buffer::zeroed(vec![8], vec![-1]);
        for i in -1..7i64 {
            a.store(&[i], (i * i) as f64).unwrap();
        }
        let a_h = m.store.alloc(a);
        let b_h = m.store.alloc(Buffer::zeroed(vec![8], vec![-1]));
        m.call("chain", &[RtValue::MemRef(a_h), RtValue::MemRef(b_h)])
            .unwrap();
        for i in 0..6i64 {
            let got = m.store.get(b_h).unwrap().load(&[i]).unwrap();
            let expect = 2.0 * (i * i) as f64 + ((i + 1) * (i + 1)) as f64;
            assert_eq!(got, expect, "i={i}");
        }
    }

    #[test]
    fn independent_computes_fuse() {
        let src = r#"
kernel indep {
  grid(4, 4)
  halo 1
  field a : input
  field b : output
  field c : output
  compute b { b = a[1,0] }
  compute c { c = a[-1,0] }
}
"#;
        let (mut ctx, module, func) = lower(src);
        let fused = fuse_applies(&mut ctx, func).unwrap();
        assert_eq!(ctx.results(fused).len(), 2);
        // Both stores must now point at the fused op.
        for s in ctx.find_ops(module, stencil::STORE) {
            let temp = ctx.operands(s)[0];
            assert_eq!(ctx.defining_op(temp), Some(fused));
        }
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
    }

    #[test]
    fn single_apply_is_noop() {
        let src = r#"
kernel single {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { b = a[0] }
}
"#;
        let (mut ctx, module, func) = lower(src);
        let before = ctx.num_ops();
        fuse_applies(&mut ctx, func).unwrap();
        assert_eq!(ctx.num_ops(), before);
        let _ = module;
    }
}
