//! Lowering the HLS dialect to annotation-encoded LLVM-dialect IR (§3.2).
//!
//! The paper's key encoding decision, adopted from Fortran-HLS \[15\]:
//! *"void functions with no arguments are used to encode HLS directives …
//! they then effectively become annotations in the LLVM-IR and do not alter
//! the structure of the IR"*. Streams are legalised for the AMD Xilinx
//! backend by (1) becoming pointers-to-structs and (2) receiving an
//! `@llvm.fpga.set.stream.depth` call on their first element (obtained with
//! a `getelementptr [0,0]`).
//!
//! We reproduce the encoding at the `llvm` *dialect* level. Loops stay as
//! `scf.for` (our stand-in for LLVM's loop tree — see DESIGN.md); every HLS
//! op becomes either real `llvm` ops (streams) or `_shmls_*` marker calls
//! that the [`crate::fpp`] pass later pattern-matches, exactly as the
//! paper's `f++` tool does on real LLVM-IR.

use shmls_dialects::{func, hls, llvm};
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_error};

/// Generic structured container op replacing `hls.dataflow` in the LLVM
/// module (the dataflow fact itself rides on a marker call inside).
pub const LLVM_REGION: &str = "llvm.region";

/// Clone the HLS function `hls_func` as `<name>_llvm` and lower every HLS
/// op in the clone to the annotation encoding. Returns the new function.
pub fn hls_to_llvm(ctx: &mut Context, hls_func: OpId) -> IrResult<OpId> {
    let name = func::func_name(ctx, hls_func)
        .ok_or_else(|| ir_error!("hls function has no name"))?
        .to_string();
    let module_body = ctx
        .parent_block(hls_func)
        .ok_or_else(|| ir_error!("hls function is detached"))?;

    // Deep-clone the function, then rewrite the clone in place.
    let mut vmap = std::collections::HashMap::new();
    let clone = ctx.clone_op(hls_func, &mut vmap);
    ctx.append_op(module_body, clone);
    let base = name.strip_suffix("_hls").unwrap_or(&name);
    ctx.set_attr(clone, "sym_name", Attribute::string(format!("{base}_llvm")));

    // Process ops innermost-last is unnecessary; a single pre-order pass
    // collecting then rewriting suffices because rewrites are local.
    let ops = ctx.walk_collect(clone);
    for op in ops {
        if !ctx.is_live_op(op) {
            continue;
        }
        let op_name = ctx.op_name(op).to_string();
        match op_name.as_str() {
            hls::CREATE_STREAM => lower_create_stream(ctx, op)?,
            hls::READ => {
                let result_ty = ctx.value_type(ctx.result(op, 0)).clone();
                let stream = ctx.operands(op)[0];
                let mut b = OpBuilder::before(ctx, op);
                let call = llvm::call(&mut b, "_shmls_stream_read", vec![stream], vec![result_ty]);
                let new = ctx.result(call, 0);
                let old = ctx.result(op, 0);
                ctx.replace_all_uses(old, new);
                ctx.erase_op(op);
            }
            hls::WRITE => {
                let operands = ctx.operands(op).to_vec();
                let mut b = OpBuilder::before(ctx, op);
                llvm::call(&mut b, "_shmls_stream_write", operands, vec![]);
                ctx.erase_op(op);
            }
            hls::EMPTY | hls::FULL => {
                let suffix = if op_name == hls::EMPTY {
                    "empty"
                } else {
                    "full"
                };
                let stream = ctx.operands(op)[0];
                let mut b = OpBuilder::before(ctx, op);
                let c = llvm::call(
                    &mut b,
                    &format!("_shmls_stream_{suffix}"),
                    vec![stream],
                    vec![Type::I1],
                );
                let old = ctx.result(op, 0);
                let new = ctx.result(c, 0);
                ctx.replace_all_uses(old, new);
                ctx.erase_op(op);
            }
            hls::PIPELINE => {
                let ii =
                    hls::pipeline_ii(ctx, op).ok_or_else(|| ir_error!("pipeline without ii"))?;
                let mut b = OpBuilder::before(ctx, op);
                llvm::call(&mut b, &format!("_shmls_pipeline_ii_{ii}"), vec![], vec![]);
                ctx.erase_op(op);
            }
            hls::UNROLL => {
                let factor = ctx
                    .attr(op, "factor")
                    .and_then(Attribute::as_int)
                    .ok_or_else(|| ir_error!("unroll without factor"))?;
                let mut b = OpBuilder::before(ctx, op);
                llvm::call(
                    &mut b,
                    &format!("_shmls_unroll_factor_{factor}"),
                    vec![],
                    vec![],
                );
                ctx.erase_op(op);
            }
            hls::ARRAY_PARTITION => {
                let kind = ctx
                    .attr(op, "kind")
                    .and_then(Attribute::as_str)
                    .ok_or_else(|| ir_error!("array_partition without kind"))?
                    .to_string();
                let factor = ctx
                    .attr(op, "factor")
                    .and_then(Attribute::as_int)
                    .unwrap_or(0);
                let dim = ctx.attr(op, "dim").and_then(Attribute::as_int).unwrap_or(0);
                let target = ctx.operands(op)[0];
                let mut b = OpBuilder::before(ctx, op);
                llvm::call(
                    &mut b,
                    &format!("_shmls_array_partition_{kind}_{factor}_{dim}"),
                    vec![target],
                    vec![],
                );
                ctx.erase_op(op);
            }
            hls::INTERFACE => {
                let (protocol, bundle) = hls::interface_binding(ctx, op)
                    .map(|(p, b)| (p.to_string(), b.to_string()))
                    .ok_or_else(|| ir_error!("interface without binding"))?;
                let target = ctx.operands(op)[0];
                let mut b = OpBuilder::before(ctx, op);
                llvm::call(
                    &mut b,
                    &format!("_shmls_interface_{protocol}_{bundle}"),
                    vec![target],
                    vec![],
                );
                ctx.erase_op(op);
            }
            hls::DATAFLOW => {
                // Keep the region structure; mark it with a dataflow call.
                ctx.set_op_name(op, LLVM_REGION);
                let body = ctx
                    .entry_block(op)
                    .ok_or_else(|| ir_error!("dataflow without a body"))?;
                let first = ctx.block_ops(body).first().copied();
                let marker = ctx.create_op("llvm.call", vec![], vec![], Default::default());
                ctx.set_attr(marker, "callee", Attribute::symbol("_shmls_dataflow"));
                match first {
                    Some(anchor) => {
                        let (block, pos) = ctx.op_position(anchor).expect("anchored");
                        ctx.insert_op(block, pos, marker);
                    }
                    None => ctx.append_op(body, marker),
                }
            }
            _ => {}
        }
    }
    Ok(clone)
}

/// `hls.create_stream` → `llvm.alloca` of the wrapped struct type, a GEP to
/// the first element, and the `@llvm.fpga.set.stream.depth` intrinsic — the
/// two legality conditions of §3.2.
fn lower_create_stream(ctx: &mut Context, op: OpId) -> IrResult<()> {
    let stream_value = ctx.result(op, 0);
    let Type::HlsStream(elem) = ctx.value_type(stream_value).clone() else {
        ir_bail!("create_stream result is not a stream type");
    };
    let depth = hls::stream_depth(ctx, op);
    let struct_ty = Type::LlvmStruct(vec![(*elem).clone()]);
    let mut b = OpBuilder::before(ctx, op);
    let ptr = llvm::alloca(&mut b, struct_ty);
    let first = llvm::gep(&mut b, ptr, &[0, 0], Type::llvm_ptr((*elem).clone()));
    let call = llvm::call(&mut b, llvm::SET_STREAM_DEPTH, vec![first], vec![]);
    ctx.set_attr(call, "depth", Attribute::int(depth));
    ctx.replace_all_uses(stream_value, ptr);
    ctx.erase_op(op);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmls::{stencil_to_hls, HmlsOptions};
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};

    const LAPLACE: &str = r#"
kernel laplace {
  grid(8, 6)
  halo 1
  field a : input
  field b : output
  const w
  compute b {
    b = w * (a[-1,0] + a[1,0] + a[0,-1] + a[0,1] - 4.0 * a[0,0])
  }
}
"#;

    fn build() -> (Context, OpId, OpId) {
        let k = parse_kernel(LAPLACE).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let hls_out = stencil_to_hls(&mut ctx, lowered.func, &HmlsOptions::default()).unwrap();
        let llvm_func = hls_to_llvm(&mut ctx, hls_out.func).unwrap();
        (ctx, module, llvm_func)
    }

    #[test]
    fn no_hls_ops_remain() {
        let (ctx, _module, llvm_func) = build();
        for op in ctx.walk_collect(llvm_func) {
            assert!(
                !ctx.op_name(op).starts_with("hls."),
                "HLS op `{}` survived lowering",
                ctx.op_name(op)
            );
        }
    }

    #[test]
    fn streams_are_legalised() {
        let (ctx, _module, llvm_func) = build();
        // Three streams (elem, window, result): three alloca + gep +
        // set.stream.depth triples.
        let allocas = ctx.find_ops(llvm_func, llvm::ALLOCA);
        assert_eq!(allocas.len(), 3);
        let depth_calls: Vec<_> = ctx
            .find_ops(llvm_func, llvm::CALL)
            .into_iter()
            .filter(|&c| llvm::callee(&ctx, c) == Some(llvm::SET_STREAM_DEPTH))
            .collect();
        assert_eq!(depth_calls.len(), 3);
        // Stream type shape: ptr-to-struct.
        for &a in &allocas {
            let ty = ctx.value_type(ctx.result(a, 0));
            assert!(
                matches!(ty, Type::LlvmPtr(inner) if matches!(**inner, Type::LlvmStruct(_))),
                "stream lowered to {ty}, expected ptr-to-struct"
            );
        }
        // The GEP feeding set.stream.depth uses offset [0,0] (§3.2 cond. 2).
        for &c in &depth_calls {
            let gep = ctx.defining_op(ctx.operands(c)[0]).unwrap();
            assert_eq!(ctx.op_name(gep), llvm::GEP);
            assert_eq!(
                ctx.attr(gep, "indices").and_then(Attribute::as_index_array),
                Some(&[0, 0][..])
            );
        }
    }

    #[test]
    fn directives_become_marker_calls() {
        let (ctx, _module, llvm_func) = build();
        let markers: Vec<String> = ctx
            .find_ops(llvm_func, llvm::CALL)
            .into_iter()
            .filter(|&c| llvm::is_marker_call(&ctx, c))
            .map(|c| llvm::callee(&ctx, c).unwrap().to_string())
            .collect();
        assert!(
            markers.iter().any(|m| m == "_shmls_pipeline_ii_1"),
            "{markers:?}"
        );
        assert!(markers
            .iter()
            .any(|m| m.starts_with("_shmls_interface_m_axi_gmem")));
        assert!(markers.iter().any(|m| m == "_shmls_dataflow"));
        assert!(markers.iter().any(|m| m == "_shmls_stream_read"));
        assert!(markers.iter().any(|m| m == "_shmls_stream_write"));
    }

    #[test]
    fn dataflow_regions_become_generic_regions() {
        let (ctx, _module, llvm_func) = build();
        let regions = ctx.find_ops(llvm_func, LLVM_REGION);
        // laplace: load + shift + compute + write stages.
        assert_eq!(regions.len(), 4);
        for r in regions {
            let body = ctx.entry_block(r).unwrap();
            let first = ctx.block_ops(body)[0];
            assert_eq!(llvm::callee(&ctx, first), Some("_shmls_dataflow"));
        }
    }

    #[test]
    fn original_hls_func_untouched() {
        let k = parse_kernel(LAPLACE).unwrap();
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        let hls_out = stencil_to_hls(&mut ctx, lowered.func, &HmlsOptions::default()).unwrap();
        let before = ctx.find_ops(hls_out.func, hls::CREATE_STREAM).len();
        let _ = hls_to_llvm(&mut ctx, hls_out.func).unwrap();
        let after = ctx.find_ops(hls_out.func, hls::CREATE_STREAM).len();
        assert_eq!(before, after, "lowering must clone, not mutate");
    }
}
