//! Canonicalisation: greedy pattern-based simplification of the arith
//! subset, plus dead-code elimination.
//!
//! Runs before the Stencil-HMLS transformation so the generated dataflow
//! stages (and therefore the resource estimate — every op is a hardware
//! operator instance!) contain no foldable arithmetic. On an FPGA a folded
//! constant is not a micro-optimisation: it deletes a physical
//! double-precision operator.

use shmls_dialects::arith;
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::rewrite::{dead_code_elimination, RewriteDriver, RewritePattern, RewriteStats};

/// Fold binary float arithmetic over two constants.
struct FoldConstBinary;

impl RewritePattern for FoldConstBinary {
    fn name(&self) -> &str {
        "fold-const-binary"
    }

    fn match_and_rewrite(&self, ctx: &mut Context, op: OpId) -> IrResult<bool> {
        let folded = match ctx.op_name(op) {
            "arith.addf" => |a: f64, b: f64| a + b,
            "arith.subf" => |a: f64, b: f64| a - b,
            "arith.mulf" => |a: f64, b: f64| a * b,
            "arith.divf" => |a: f64, b: f64| a / b,
            _ => return Ok(false),
        };
        let Some(a) = const_f64(ctx, ctx.operands(op)[0]) else {
            return Ok(false);
        };
        let Some(b) = const_f64(ctx, ctx.operands(op)[1]) else {
            return Ok(false);
        };
        let value = folded(a, b);
        if !value.is_finite() {
            return Ok(false); // keep runtime semantics for inf/nan cases
        }
        let mut builder = OpBuilder::before(ctx, op);
        let new = arith::constant_f64(&mut builder, value);
        let old = ctx.result(op, 0);
        ctx.replace_all_uses(old, new);
        ctx.erase_op(op);
        Ok(true)
    }
}

/// Algebraic identities that delete hardware operators:
/// `x + 0 = x`, `0 + x = x`, `x - 0 = x`, `x * 1 = x`, `1 * x = x`,
/// `x * 0 = 0`, `0 * x = 0`, `x / 1 = x`, `-(-x) = x`.
///
/// Signed-zero/NaN caveat: like the HLS backends this models (which build
/// hardware under fast-math assumptions), `x + 0 → x` and `x * 0 → 0`
/// assume no-signed-zero / no-NaN inputs. Identities involving a literal
/// `-0.0` are excluded outright.
struct AlgebraicIdentity;

impl RewritePattern for AlgebraicIdentity {
    fn name(&self) -> &str {
        "algebraic-identity"
    }

    fn match_and_rewrite(&self, ctx: &mut Context, op: OpId) -> IrResult<bool> {
        let name = ctx.op_name(op).to_string();
        let operands = ctx.operands(op).to_vec();
        let replacement: Option<ValueId> = match name.as_str() {
            "arith.addf" => {
                if const_f64(ctx, operands[0]) == Some(0.0) {
                    Some(operands[1])
                } else if const_f64(ctx, operands[1]) == Some(0.0) {
                    Some(operands[0])
                } else {
                    None
                }
            }
            "arith.subf" => (const_f64(ctx, operands[1]) == Some(0.0)).then_some(operands[0]),
            "arith.mulf" => {
                let lhs_const = const_f64(ctx, operands[0]);
                let rhs_const = const_f64(ctx, operands[1]);
                #[allow(clippy::match_like_matches_macro)]
                match (lhs_const, rhs_const) {
                    (Some(1.0), _) => Some(operands[1]),
                    (_, Some(1.0)) => Some(operands[0]),
                    (Some(0.0), _) => Some(operands[0]), // 0 * x -> 0
                    (_, Some(0.0)) => Some(operands[1]), // x * 0 -> 0
                    _ => None,
                }
            }
            "arith.divf" => (const_f64(ctx, operands[1]) == Some(1.0)).then_some(operands[0]),
            "arith.negf" => {
                let def = ctx.defining_op(operands[0]);
                match def {
                    Some(d) if ctx.op_name(d) == "arith.negf" => Some(ctx.operands(d)[0]),
                    _ => None,
                }
            }
            _ => None,
        };
        let Some(new) = replacement else {
            return Ok(false);
        };
        let old = ctx.result(op, 0);
        ctx.replace_all_uses(old, new);
        ctx.erase_op(op);
        Ok(true)
    }
}

/// The constant f64 defined by `value`'s producer, if any. `-0.0` is
/// deliberately *not* treated as `0.0` for the additive identities
/// (`x + -0.0` has different semantics for `x = -0.0`), so this returns
/// the raw bits and callers compare with `==` (which treats `0.0 == -0.0`;
/// we therefore exclude `-0.0` explicitly here).
fn const_f64(ctx: &Context, value: ValueId) -> Option<f64> {
    let def = ctx.defining_op(value)?;
    let v = arith::constant_value(ctx, def)?.as_float()?;
    if v == 0.0 && v.is_sign_negative() {
        return None;
    }
    Some(v)
}

/// Run canonicalisation to fixpoint followed by DCE on everything under
/// `root`. Returns `(rewrite stats, ops erased by DCE)`.
pub fn canonicalize(ctx: &mut Context, root: OpId) -> IrResult<(RewriteStats, usize)> {
    let fold = FoldConstBinary;
    let identity = AlgebraicIdentity;
    let driver = RewriteDriver::new(vec![&fold, &identity]);
    let stats = driver.run(ctx, root)?;
    let erased = dead_code_elimination(ctx, root, &shmls_dialects::is_pure);
    Ok((stats, erased))
}

/// [`shmls_ir::pass::Pass`] wrapper for pipeline use.
pub struct CanonicalizePass;

impl shmls_ir::pass::Pass for CanonicalizePass {
    fn name(&self) -> &str {
        "canonicalize"
    }

    fn run(&self, ctx: &mut Context, root: OpId) -> IrResult<()> {
        canonicalize(ctx, root)?;
        Ok(())
    }
}

/// Count the floating-point operator instances under `root` — the
/// hardware-relevant metric this pass reduces.
pub fn count_float_ops(ctx: &Context, root: OpId) -> usize {
    let mut n = 0;
    ctx.walk(root, &mut |op| {
        if matches!(
            ctx.op_name(op),
            "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.negf"
        ) {
            n += 1;
        }
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};
    use shmls_ir::interp::{Buffer, Machine, NoExtern, RtValue};
    use shmls_ir::verifier::verify_with;

    fn compile_and_canonicalize(src: &str) -> (Context, OpId, usize, usize) {
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let _ = lower_kernel(&mut ctx, body, &k).unwrap();
        let before = count_float_ops(&ctx, module);
        canonicalize(&mut ctx, module).unwrap();
        let after = count_float_ops(&ctx, module);
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        (ctx, module, before, after)
    }

    #[test]
    fn folds_constant_subexpressions() {
        // 2.0 * 3.0 folds; + a[0] survives.
        let src = r#"
kernel k {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { b = 2.0 * 3.0 + a[0] }
}
"#;
        let (_ctx, _m, before, after) = compile_and_canonicalize(src);
        assert_eq!(before, 2);
        assert_eq!(after, 1, "only the addf with the access remains");
    }

    #[test]
    fn removes_identity_operators() {
        let src = r#"
kernel k {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { b = 1.0 * a[0] + 0.0 }
}
"#;
        let (_ctx, _m, before, after) = compile_and_canonicalize(src);
        assert_eq!(before, 2);
        assert_eq!(after, 0, "both operators are identities");
    }

    #[test]
    fn multiplication_by_zero_short_circuits() {
        let src = r#"
kernel k {
  grid(4)
  halo 0
  field a : input
  field c : input
  field b : output
  compute b { b = a[0] + 0.0 * c[0] }
}
"#;
        // 0.0 * c[0] -> 0.0, then a[0] + 0.0 -> a[0]: no operators left.
        let (_ctx, _m, before, after) = compile_and_canonicalize(src);
        assert_eq!(before, 2);
        assert_eq!(after, 0);
    }

    #[test]
    fn canonicalized_kernel_is_semantically_identical() {
        let src = r#"
kernel k {
  grid(6)
  halo 1
  field a : input
  field b : output
  compute b { b = (2.0 * 0.5) * a[-1] + a[1] * 1.0 + 0.0 }
}
"#;
        let k = parse_kernel(src).unwrap();
        // Uncanonicalised reference.
        let run = |canon: bool| -> Vec<f64> {
            let mut ctx = Context::new();
            let (module, body) = create_module(&mut ctx);
            let _ = lower_kernel(&mut ctx, body, &k).unwrap();
            if canon {
                canonicalize(&mut ctx, module).unwrap();
            }
            let mut no = NoExtern;
            let mut m = Machine::new(&ctx, module, &mut no);
            let mut a = Buffer::zeroed(vec![8], vec![-1]);
            for i in -1..7i64 {
                a.store(&[i], (i * 3) as f64).unwrap();
            }
            let ah = m.store.alloc(a);
            let bh = m.store.alloc(Buffer::zeroed(vec![8], vec![-1]));
            m.call("k", &[RtValue::MemRef(ah), RtValue::MemRef(bh)])
                .unwrap();
            (0..6)
                .map(|i| m.store.get(bh).unwrap().load(&[i]).unwrap())
                .collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn negative_zero_additive_identity_not_applied() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let x = b.build_value("test.x", vec![], Type::F64);
        let neg_zero = arith::constant_f64(&mut b, -0.0);
        let sum = arith::addf(&mut b, x, neg_zero);
        b.build("test.sink", vec![sum], vec![]);
        canonicalize(&mut ctx, module).unwrap();
        // x + (-0.0) must NOT fold to x (x = -0.0 gives -0.0 vs +0.0...
        // actually -0.0 + -0.0 = -0.0 = x; but +0.0-identity logic must not
        // fire from the -0.0 constant). The addf survives.
        assert_eq!(count_float_ops(&ctx, module), 1);
    }

    #[test]
    fn division_fold_keeps_nonfinite_at_runtime() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let one = arith::constant_f64(&mut b, 1.0);
        let zero = arith::constant_f64(&mut b, 0.0);
        let div = arith::divf(&mut b, one, zero);
        b.build("test.sink", vec![div], vec![]);
        canonicalize(&mut ctx, module).unwrap();
        // 1/0 = inf is not folded (non-finite results stay runtime ops).
        assert_eq!(count_float_ops(&ctx, module), 1);
    }

    #[test]
    fn double_negation_cancels() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let x = b.build_value("test.x", vec![], Type::F64);
        let n1 = arith::negf(&mut b, x);
        let n2 = arith::negf(&mut b, n1);
        let sink = b.build("test.sink", vec![n2], vec![]);
        canonicalize(&mut ctx, module).unwrap();
        assert_eq!(count_float_ops(&ctx, module), 0);
        assert_eq!(ctx.operands(sink)[0], x);
    }
}
