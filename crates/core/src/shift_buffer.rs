//! Shift-buffer geometry (§3.3, Figure 2) — re-exported from
//! [`shmls_dialects::window`], where it is shared with the simulator's
//! runtime implementation and resource estimator.

pub use shmls_dialects::window::{
    linearize, offset_to_window_pos, shift_register_len, window_offsets, window_size,
};
