//! Transformation step 1: classification of kernel arguments.
//!
//!> *"Where the data arguments in a stencil region are classified as either
//! > stencil field inputs, stencil field outputs or constants."* (§3.3)
//!
//! We classify every argument of the stencil function by type and use:
//! stencil fields split into inputs / outputs / in-outs depending on whether
//! they are `stencil.load`ed, `stencil.store`d, or both; `memref` arguments
//! are the small static data of step 8; scalars are runtime constants.

use shmls_dialects::stencil;
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_ensure};

/// Classification of one kernel argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgClass {
    /// Stencil field that is only read.
    FieldInput,
    /// Stencil field that is only written.
    FieldOutput,
    /// Stencil field that is read and written.
    FieldInOut,
    /// Small static data (copied to BRAM by step 8).
    SmallData,
    /// Runtime scalar constant.
    Scalar,
}

impl ArgClass {
    /// True for any stencil-field class.
    pub fn is_field(self) -> bool {
        matches!(
            self,
            ArgClass::FieldInput | ArgClass::FieldOutput | ArgClass::FieldInOut
        )
    }

    /// True when the field is read from external memory.
    pub fn is_read(self) -> bool {
        matches!(self, ArgClass::FieldInput | ArgClass::FieldInOut)
    }

    /// True when the field is written to external memory.
    pub fn is_written(self) -> bool {
        matches!(self, ArgClass::FieldOutput | ArgClass::FieldInOut)
    }
}

/// The classification of a stencil kernel's arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// One class per function argument, in order.
    pub classes: Vec<ArgClass>,
}

impl Classification {
    /// Argument indices of a given class.
    pub fn indices_of(&self, class: ArgClass) -> Vec<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == class).then_some(i))
            .collect()
    }

    /// Argument indices of fields read from external memory.
    pub fn read_fields(&self) -> Vec<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c.is_field() && c.is_read()).then_some(i))
            .collect()
    }

    /// Argument indices of fields written to external memory.
    pub fn written_fields(&self) -> Vec<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c.is_field() && c.is_written()).then_some(i))
            .collect()
    }

    /// Argument indices of all stencil fields.
    pub fn fields(&self) -> Vec<usize> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| c.is_field().then_some(i))
            .collect()
    }

    /// Argument indices of small-data arrays.
    pub fn small_data(&self) -> Vec<usize> {
        self.indices_of(ArgClass::SmallData)
    }

    /// Argument indices of scalar constants.
    pub fn scalars(&self) -> Vec<usize> {
        self.indices_of(ArgClass::Scalar)
    }
}

/// Classify the arguments of a stencil `func.func`.
pub fn classify_args(ctx: &Context, func: OpId) -> IrResult<Classification> {
    ir_ensure!(
        ctx.op_name(func) == shmls_dialects::func::FUNC,
        "classify_args expects a func.func, got `{}`",
        ctx.op_name(func)
    );
    let entry = ctx
        .entry_block(func)
        .ok_or_else(|| shmls_ir::ir_error!("function has no body"))?;
    let mut classes = Vec::new();
    for &arg in ctx.block_args(entry) {
        let class = match ctx.value_type(arg) {
            Type::StencilField { .. } => {
                let mut read = false;
                let mut written = false;
                for u in ctx.value_uses(arg) {
                    match ctx.op_name(u.op) {
                        stencil::LOAD => read = true,
                        stencil::STORE if u.operand_index == 1 => written = true,
                        stencil::EXTERNAL_STORE if u.operand_index == 0 => written = true,
                        other => {
                            ir_bail!("unexpected use of field argument by `{other}`")
                        }
                    }
                }
                match (read, written) {
                    (true, false) => ArgClass::FieldInput,
                    (false, true) => ArgClass::FieldOutput,
                    (true, true) => ArgClass::FieldInOut,
                    // A declared-but-unused field (its stencil.load was
                    // dead-code-eliminated): classified as an input so it
                    // still receives an AXI interface, but downstream
                    // stages are demand-driven and create no streams for
                    // it.
                    (false, false) => ArgClass::FieldInput,
                }
            }
            Type::MemRef { .. } => ArgClass::SmallData,
            Type::F64 | Type::F32 | Type::I64 | Type::I32 | Type::Index => ArgClass::Scalar,
            other => ir_bail!("cannot classify argument of type {other}"),
        };
        classes.push(class);
    }
    Ok(Classification { classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_frontend::{lower_kernel, parse_kernel};

    fn classify(src: &str) -> Classification {
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (_m, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        classify_args(&ctx, lowered.func).unwrap()
    }

    #[test]
    fn classifies_all_roles() {
        let c = classify(
            r#"
kernel k {
  grid(4, 4)
  halo 1
  field a : input
  field b : output
  field c : inout
  param tz[j]
  const w
  compute b { b = w * a[0,0] + tz[j] }
  compute c { c = c[0,0] + b[0,0] }
}
"#,
        );
        assert_eq!(
            c.classes,
            vec![
                ArgClass::FieldInput,
                ArgClass::FieldOutput,
                ArgClass::FieldInOut,
                ArgClass::SmallData,
                ArgClass::Scalar,
            ]
        );
        assert_eq!(c.read_fields(), vec![0, 2]);
        assert_eq!(c.written_fields(), vec![1, 2]);
        assert_eq!(c.fields(), vec![0, 1, 2]);
        assert_eq!(c.small_data(), vec![3]);
        assert_eq!(c.scalars(), vec![4]);
    }

    #[test]
    fn class_predicates() {
        assert!(ArgClass::FieldInOut.is_field());
        assert!(ArgClass::FieldInOut.is_read());
        assert!(ArgClass::FieldInOut.is_written());
        assert!(!ArgClass::SmallData.is_field());
        assert!(!ArgClass::FieldInput.is_written());
    }

    #[test]
    fn non_func_rejected() {
        let mut ctx = Context::new();
        let (m, _body) = create_module(&mut ctx);
        let e = classify_args(&ctx, m).unwrap_err();
        assert!(e.to_string().contains("expects a func.func"), "{e}");
    }
}
