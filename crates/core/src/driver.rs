//! End-to-end compilation driver: DSL text → stencil IR → {HLS dataflow,
//! CPU loops, annotated LLVM} — the whole Figure-1 flow in one call.

use std::collections::HashMap;
use std::sync::Arc;

use shmls_dialects::builtin::create_module;
use shmls_frontend::{lower_kernel, parse_kernel, KernelDef, KernelSignature};
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::verifier::verify_with;

use crate::fpp::{run_fpp, DirectiveReport};
use crate::hmls::{stencil_to_hls, HmlsOptions, HmlsReport};
use crate::llvm_lowering::hls_to_llvm;

/// Which lowering paths [`compile`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetPath {
    /// Only the Stencil-HMLS dataflow design.
    HlsOnly,
    /// HLS design + CPU reference loops.
    HlsAndCpu,
    /// Everything: HLS design, CPU loops, annotated LLVM + fpp.
    Full,
}

/// Options for the end-to-end driver.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Stencil-HMLS transformation options.
    pub hmls: HmlsOptions,
    /// Which paths to generate.
    pub paths: TargetPath,
    /// Verify the module between stages (cheap at kernel sizes).
    pub verify: bool,
    /// Run canonicalisation (constant folding + identity elimination +
    /// DCE) on the stencil IR before lowering — on FPGAs this deletes
    /// physical operators, not just instructions.
    pub optimize: bool,
    /// Collect per-pass wall-clock timings on [`CompiledKernel::timings`].
    /// With `false` the driver skips its clock reads and record
    /// allocations at runtime and the result's timings are empty (the
    /// pass manager and stencil-to-HLS transform still take a handful of
    /// internal timestamps, which are dropped); building `shmls-ir`
    /// without its `timing` feature removes the instrumentation entirely.
    pub time_passes: bool,
    /// Capture a printed snapshot of the whole module after every
    /// pipeline stage on [`CompiledKernel::snapshots`]. Off by default
    /// (printing is not free); the conformance harness turns it on so a
    /// differential failure can name the exact IR each engine executed.
    pub snapshots: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            hmls: HmlsOptions::default(),
            paths: TargetPath::Full,
            verify: true,
            optimize: true,
            time_passes: true,
            snapshots: false,
        }
    }
}

/// A fully compiled kernel: the module plus handles to every generated
/// function and the reports the evaluation harness consumes.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The IR context owning everything.
    pub ctx: Context,
    /// The `builtin.module`.
    pub module: OpId,
    /// The kernel definition (AST).
    pub kernel: KernelDef,
    /// Runtime argument layout.
    pub signature: KernelSignature,
    /// The frontend's stencil-dialect function.
    pub stencil_func: OpId,
    /// The Stencil-HMLS dataflow function (`<name>_hls`).
    pub hls_func: OpId,
    /// The Von-Neumann reference (`<name>_cpu`), when requested.
    pub cpu_func: Option<OpId>,
    /// The annotated-LLVM function (`<name>_llvm`), when requested.
    pub llvm_func: Option<OpId>,
    /// Design summary from the stencil→HLS transformation.
    pub report: HmlsReport,
    /// Directives recovered by the fpp pass, when requested.
    pub directives: Option<DirectiveReport>,
    /// Per-pass wall-clock timings (`parse`, `frontend-lower`,
    /// `canonicalize`, `split`, `stencil-to-hls`, `connectivity`,
    /// `cpu-lowering`, `llvm-lowering`, `fpp`, `bytecode`, `verify`,
    /// `total`), in execution order. Empty when
    /// [`CompileOptions::time_passes`] is off or `shmls-ir` was built
    /// without its `timing` feature.
    pub timings: Timings,
    /// `(stage, printed module)` pairs in pipeline order, when
    /// [`CompileOptions::snapshots`] was set: `frontend-lower`,
    /// `optimize` (after canonicalize+split), `stencil-to-hls`, and the
    /// requested lowerings. Empty otherwise.
    pub snapshots: Vec<(String, String)>,
    /// Bytecode programs for every `stencil.apply` in the stencil-dialect
    /// function whose body fits the straight-line vocabulary (see
    /// `shmls_ir::bytecode`), keyed by apply op. Installed on a
    /// [`Machine`](shmls_ir::interp::Machine) these replace the per-point
    /// tree walk with a flat register program — bitwise-identical, just
    /// fast. Applies that fail to compile are simply absent (the
    /// tree-walker remains the universal fallback).
    pub apply_plans: HashMap<OpId, Arc<shmls_ir::bytecode::Program>>,
}

impl CompiledKernel {
    /// Name of the HLS entry function.
    pub fn hls_name(&self) -> String {
        format!("{}_hls", self.kernel.name)
    }

    /// Name of the CPU reference function.
    pub fn cpu_name(&self) -> String {
        format!("{}_cpu", self.kernel.name)
    }

    /// A stable fingerprint of the compiled module: FNV-1a over the
    /// printed IR. Compilation is deterministic, so two compilations of
    /// the same kernel under the same options produce the same
    /// fingerprint — the correctness condition the compile cache's
    /// determinism test checks.
    pub fn design_fingerprint(&self) -> u64 {
        crate::cache::fnv1a(shmls_ir::printer::print_op(&self.ctx, self.module).as_bytes())
    }
}

/// Compile a module of *stencil-dialect IR text* (rather than DSL source):
/// the frontend-independence path of the paper's Figure 1 — PSyclone,
/// Devito or Flang only need to emit stencil IR, and this entry point
/// takes over from there. The module must contain exactly one `func.func`
/// whose body is stencil-dialect IR. Returns the transformed module's
/// context plus the generated HLS function and report.
pub fn compile_stencil_ir(
    ir_text: &str,
    opts: &CompileOptions,
) -> IrResult<(Context, OpId, OpId, HmlsReport)> {
    let (mut ctx, module) = shmls_ir::parser::parse_op(ir_text)?;
    let registry = shmls_dialects::registry();
    verify_with(&ctx, module, &registry).map_err(|e| e.context("verifying input IR"))?;
    let funcs = ctx.find_ops(module, shmls_dialects::func::FUNC);
    let [stencil_func] = funcs.as_slice() else {
        shmls_ir::ir_bail!("expected exactly one func.func, found {}", funcs.len());
    };
    let stencil_func = *stencil_func;
    if opts.optimize {
        crate::canonicalize::canonicalize(&mut ctx, module)?;
    }
    let out = stencil_to_hls(&mut ctx, stencil_func, &opts.hmls)?;
    if opts.verify {
        verify_with(&ctx, module, &registry).map_err(|e| e.context("after stencil-to-hls"))?;
    }
    Ok((ctx, module, out.func, out.report))
}

/// The driver's phase collector: live when `time_passes` is set, a
/// runtime no-op otherwise.
fn driver_timings(opts: &CompileOptions) -> Timings {
    if opts.time_passes {
        Timings::new()
    } else {
        Timings::off()
    }
}

/// Compile DSL source text through the full pipeline.
pub fn compile(source: &str, opts: &CompileOptions) -> IrResult<CompiledKernel> {
    let mut timings = driver_timings(opts);
    let kernel = timings.time("parse", || parse_kernel(source))?;
    compile_kernel_timed(kernel, opts, timings)
}

/// Compile an already-built [`KernelDef`] through the full pipeline.
pub fn compile_kernel(kernel: KernelDef, opts: &CompileOptions) -> IrResult<CompiledKernel> {
    compile_kernel_timed(kernel, opts, driver_timings(opts))
}

/// The pipeline body, continuing the telemetry started by [`compile`]
/// (which has already recorded the `parse` phase).
fn compile_kernel_timed(
    kernel: KernelDef,
    opts: &CompileOptions,
    mut timings: Timings,
) -> IrResult<CompiledKernel> {
    let mut stopwatch = Stopwatch::start();
    let mut ctx = Context::new();
    let (module, body) = create_module(&mut ctx);
    let mut snapshots: Vec<(String, String)> = Vec::new();
    let snap = |ctx: &Context, stage: &str, snapshots: &mut Vec<(String, String)>| {
        snapshots.push((stage.to_string(), shmls_ir::printer::print_op(ctx, module)));
    };
    let lowered = lower_kernel(&mut ctx, body, &kernel)?;
    stopwatch.lap(&mut timings, "frontend-lower");
    if opts.snapshots {
        snap(&ctx, "frontend-lower", &mut snapshots);
    }
    let registry = shmls_dialects::registry();
    if opts.verify {
        verify_with(&ctx, module, &registry).map_err(|e| e.context("after frontend lowering"))?;
        stopwatch.lap(&mut timings, "verify");
    }

    if opts.optimize {
        // A real pass pipeline (with inter-pass verification) for the
        // IR-to-IR stages that precede the dataflow construction. `split`
        // is a no-op on the frontend's already-split form but guarantees
        // `stencil_to_hls`'s single-result precondition for IR arriving
        // from other frontends in the CPU/GPU-favoured fused form.
        let mut pm = shmls_ir::pass::PassManager::with_verifiers(shmls_dialects::registry());
        pm.verify_each = opts.verify;
        pm.add(crate::canonicalize::CanonicalizePass);
        pm.add(crate::split::SplitPass);
        let pass_timings = pm.run(&mut ctx, module)?;
        timings.absorb_pass_timings(&pass_timings);
        if opts.snapshots {
            snap(&ctx, "optimize", &mut snapshots);
        }
    }

    let hls_out = stencil_to_hls(&mut ctx, lowered.func, &opts.hmls)?;
    timings.extend(&hls_out.timings);
    if opts.snapshots {
        snap(&ctx, "stencil-to-hls", &mut snapshots);
    }
    stopwatch = Stopwatch::start();
    if opts.verify {
        verify_with(&ctx, module, &registry).map_err(|e| e.context("after stencil-to-hls"))?;
        stopwatch.lap(&mut timings, "verify");
    }

    let cpu_func = if matches!(opts.paths, TargetPath::HlsAndCpu | TargetPath::Full) {
        let f = crate::cpu_lowering::stencil_to_cpu(&mut ctx, lowered.func)?;
        stopwatch.lap(&mut timings, "cpu-lowering");
        if opts.snapshots {
            snap(&ctx, "cpu-lowering", &mut snapshots);
        }
        if opts.verify {
            verify_with(&ctx, module, &registry).map_err(|e| e.context("after cpu lowering"))?;
            stopwatch.lap(&mut timings, "verify");
        }
        Some(f)
    } else {
        None
    };

    let (llvm_func, directives) = if matches!(opts.paths, TargetPath::Full) {
        let f = hls_to_llvm(&mut ctx, hls_out.func)?;
        stopwatch.lap(&mut timings, "llvm-lowering");
        let report = run_fpp(&mut ctx, f)?;
        stopwatch.lap(&mut timings, "fpp");
        if opts.snapshots {
            snap(&ctx, "llvm-lowering", &mut snapshots);
        }
        if opts.verify {
            verify_with(&ctx, module, &registry)
                .map_err(|e| e.context("after llvm lowering + fpp"))?;
            stopwatch.lap(&mut timings, "verify");
        }
        (Some(f), Some(report))
    } else {
        (None, None)
    };

    // Bytecode tier: compile each apply body once into a flat register
    // program. Best-effort per apply — an unsupported body just keeps the
    // tree-walking path.
    stopwatch = Stopwatch::start();
    let apply_plans = compile_apply_plans(&ctx, lowered.func);
    stopwatch.lap(&mut timings, "bytecode");

    // Summary row last; `Timings::total()` skips it when re-summing, so
    // the reported end-to-end time is not doubled. No-op when the
    // collector is off.
    let total = timings.total();
    timings.record("total", total);

    Ok(CompiledKernel {
        ctx,
        module,
        kernel,
        signature: lowered.signature,
        stencil_func: lowered.func,
        hls_func: hls_out.func,
        cpu_func,
        llvm_func,
        report: hls_out.report,
        directives,
        timings,
        snapshots,
        apply_plans,
    })
}

/// Compile a bytecode [`Program`](shmls_ir::bytecode::Program) for every
/// `stencil.apply` under `func` whose body supports it.
pub fn compile_apply_plans(
    ctx: &Context,
    func: OpId,
) -> HashMap<OpId, Arc<shmls_ir::bytecode::Program>> {
    ctx.find_ops(func, "stencil.apply")
        .into_iter()
        .filter_map(|apply| {
            shmls_ir::bytecode::compile_apply(ctx, apply)
                .ok()
                .map(|p| (apply, Arc::new(p)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
kernel demo {
  grid(6, 6)
  halo 1
  field a : input
  field b : output
  compute b { b = a[-1,0] + a[1,0] }
}
"#;

    #[test]
    fn full_pipeline_produces_everything() {
        let compiled = compile(SRC, &CompileOptions::default()).unwrap();
        assert_eq!(compiled.hls_name(), "demo_hls");
        assert!(compiled.cpu_func.is_some());
        assert!(compiled.llvm_func.is_some());
        let d = compiled.directives.unwrap();
        assert!(d.dataflow_regions >= 4);
        assert!(!d.interfaces.is_empty());
        assert_eq!(compiled.report.compute_stages, 1);
    }

    #[test]
    fn hls_only_skips_other_paths() {
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            ..Default::default()
        };
        let compiled = compile(SRC, &opts).unwrap();
        assert!(compiled.cpu_func.is_none());
        assert!(compiled.llvm_func.is_none());
        assert!(compiled.directives.is_none());
    }

    #[test]
    fn every_apply_gets_a_bytecode_plan() {
        let compiled = compile(SRC, &CompileOptions::default()).unwrap();
        let applies = compiled
            .ctx
            .find_ops(compiled.stencil_func, "stencil.apply");
        assert!(!applies.is_empty());
        assert_eq!(compiled.apply_plans.len(), applies.len());
        for apply in applies {
            let plan = &compiled.apply_plans[&apply];
            assert!(!plan.instrs.is_empty() || !plan.inputs.is_empty());
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let e = compile("kernel broken {", &CompileOptions::default()).unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn timings_cover_every_stage() {
        let compiled = compile(SRC, &CompileOptions::default()).unwrap();
        if !Timings::enabled() {
            assert!(compiled.timings.is_empty());
            return;
        }
        for stage in [
            "parse",
            "frontend-lower",
            "canonicalize",
            "split",
            "stencil-to-hls",
            "connectivity",
            "cpu-lowering",
            "llvm-lowering",
            "fpp",
            "bytecode",
            "verify",
            "total",
        ] {
            assert!(
                compiled.timings.get(stage).is_some(),
                "stage `{stage}` missing from timings:\n{}",
                compiled.timings
            );
        }
        // `total` is recorded last, covers the sum of the real phases,
        // and re-summing after it lands must not double-count it.
        let records = compiled.timings.records();
        assert_eq!(records.last().unwrap().name, "total");
        assert_eq!(
            compiled.timings.get("total"),
            Some(compiled.timings.total())
        );
    }

    #[test]
    fn snapshots_capture_every_stage_in_order() {
        let opts = CompileOptions {
            snapshots: true,
            ..Default::default()
        };
        let compiled = compile(SRC, &opts).unwrap();
        let stages: Vec<&str> = compiled.snapshots.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(
            stages,
            [
                "frontend-lower",
                "optimize",
                "stencil-to-hls",
                "cpu-lowering",
                "llvm-lowering"
            ]
        );
        for (stage, ir) in &compiled.snapshots {
            assert!(
                ir.contains("builtin.module"),
                "snapshot `{stage}` is not a module print"
            );
        }
        // The dataflow function only exists from stencil-to-hls onwards.
        assert!(!compiled.snapshots[0].1.contains("demo_hls"));
        assert!(compiled.snapshots[2].1.contains("demo_hls"));
    }

    #[test]
    fn snapshots_off_by_default() {
        let compiled = compile(SRC, &CompileOptions::default()).unwrap();
        assert!(compiled.snapshots.is_empty());
    }

    #[test]
    fn time_passes_off_leaves_timings_empty() {
        let opts = CompileOptions {
            time_passes: false,
            ..Default::default()
        };
        let compiled = compile(SRC, &opts).unwrap();
        assert!(compiled.timings.is_empty());
    }
}
