//! Disk-persistent tier for the compile cache.
//!
//! The in-memory [`CompileCache`] dies with its process, so every
//! `repro` invocation — and every compile-server restart — starts cold.
//! This module adds the tier that makes restarts warm: each compiled
//! design is distilled into a small [`DesignRecord`] (content-addressed
//! key, design fingerprint, structural summary, per-pass timings) and
//! written to disk under a versioned, checksummed format. A restarted
//! process answers repeat requests from these records without compiling,
//! which is exactly what the compile server's response needs — the
//! server ships fingerprints and telemetry over the wire, not the
//! in-memory IR.
//!
//! Two properties the format guarantees:
//!
//! - **Atomicity.** Entries are written to a temporary file in the same
//!   directory and `rename`d into place, so a reader (or a concurrent
//!   server killed mid-write) never observes a half-written entry under
//!   the final name.
//! - **Corruption tolerance.** Every entry carries a version header and
//!   a trailing FNV-1a checksum over its body. A truncated, bit-flipped
//!   or wrong-version entry fails to decode and is *discarded* — the
//!   key recompiles as a plain miss and the entry is rewritten. A bad
//!   entry never poisons the rest of the cache directory.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use shmls_frontend::{kernel_to_source, KernelDef};
use shmls_ir::error::IrResult;

use crate::cache::{fnv1a, CompileCache, Disposition};
use crate::driver::{CompileOptions, CompiledKernel};

/// On-disk format version. Bump on any change to the entry layout; a
/// reader finding a different version discards the entry (recompiling is
/// always safe, trusting a misread record is not).
pub const FORMAT_VERSION: u64 = 1;

const MAGIC: &str = "shmls-design";
const ENTRY_SUFFIX: &str = ".design";

/// Structural summary of a compiled design — the fields of
/// [`crate::hmls::HmlsReport`] a service response carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DesignSummary {
    /// Input (read) field count.
    pub inputs: usize,
    /// Output (written) field count.
    pub outputs: usize,
    /// Compute stages generated.
    pub compute_stages: usize,
    /// Stream-duplication stages generated.
    pub dup_stages: usize,
    /// Total streams created.
    pub streams: usize,
    /// Shift buffers (one per read field).
    pub shift_buffers: usize,
}

/// The persistable distillation of one compiled design: everything a
/// compile-service response needs, none of the in-memory IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignRecord {
    /// Content-addressed cache key ([`CompileCache::key`]).
    pub key: u64,
    /// [`CompiledKernel::design_fingerprint`] of the compiled module.
    pub fingerprint: u64,
    /// FNV-1a digest of the canonical kernel source, for an independent
    /// sanity check against key collisions and misfiled entries.
    pub source_digest: u64,
    /// Structural design summary.
    pub summary: DesignSummary,
    /// Per-pass compile timings in microseconds, in execution order —
    /// the timings of the compilation that *produced* this design (a
    /// warm hit reports the original compile cost, not zero).
    pub timings_us: Vec<(String, u64)>,
}

impl DesignRecord {
    /// Distil a freshly compiled kernel into its persistable record.
    pub fn from_compiled(key: u64, compiled: &CompiledKernel) -> Self {
        let r = &compiled.report;
        DesignRecord {
            key,
            fingerprint: compiled.design_fingerprint(),
            source_digest: fnv1a(kernel_to_source(&compiled.kernel).as_bytes()),
            summary: DesignSummary {
                inputs: r.inputs,
                outputs: r.outputs,
                compute_stages: r.compute_stages,
                dup_stages: r.dup_stages,
                streams: r.streams,
                shift_buffers: r.shift_buffers,
            },
            timings_us: compiled
                .timings
                .records()
                .iter()
                .map(|t| (t.name.clone(), t.duration.as_micros() as u64))
                .collect(),
        }
    }

    /// Serialise to the on-disk entry text: a version header, one
    /// `name value` line per field, and a trailing `checksum` line over
    /// everything before it.
    pub fn encode(&self) -> String {
        let mut body = format!("{MAGIC} v{FORMAT_VERSION}\n");
        body.push_str(&format!("key {:016x}\n", self.key));
        body.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        body.push_str(&format!("source {:016x}\n", self.source_digest));
        let s = &self.summary;
        body.push_str(&format!("inputs {}\n", s.inputs));
        body.push_str(&format!("outputs {}\n", s.outputs));
        body.push_str(&format!("compute_stages {}\n", s.compute_stages));
        body.push_str(&format!("dup_stages {}\n", s.dup_stages));
        body.push_str(&format!("streams {}\n", s.streams));
        body.push_str(&format!("shift_buffers {}\n", s.shift_buffers));
        for (name, us) in &self.timings_us {
            // Pass names are single tokens by construction; a name that
            // ever grew whitespace would fail the strict decode below,
            // reading as corruption rather than silently misparsing.
            body.push_str(&format!("timing {name} {us}\n"));
        }
        let sum = fnv1a(body.as_bytes());
        body.push_str(&format!("checksum {sum:016x}\n"));
        body
    }

    /// Parse an on-disk entry. Returns `None` on *any* anomaly — wrong
    /// magic or version, missing or malformed fields, truncation, or a
    /// checksum mismatch. Callers treat `None` as "not cached".
    pub fn decode(text: &str) -> Option<DesignRecord> {
        // The checksum line must be the final line and must match the
        // digest of everything before it.
        let trimmed = text.strip_suffix('\n')?;
        let (body_less_sum, sum_line) = trimmed.rsplit_once('\n')?;
        let body = format!("{body_less_sum}\n");
        let sum_hex = sum_line.strip_prefix("checksum ")?;
        let sum = u64::from_str_radix(sum_hex, 16).ok()?;
        if fnv1a(body.as_bytes()) != sum {
            return None;
        }

        let mut lines = body.lines();
        let header = lines.next()?;
        let version = header.strip_prefix(MAGIC)?.trim().strip_prefix('v')?;
        if version.parse::<u64>().ok()? != FORMAT_VERSION {
            return None;
        }
        let hex_field = |name: &str, lines: &mut std::str::Lines| -> Option<u64> {
            let line = lines.next()?;
            let value = line.strip_prefix(name)?.strip_prefix(' ')?;
            u64::from_str_radix(value, 16).ok()
        };
        let key = hex_field("key", &mut lines)?;
        let fingerprint = hex_field("fingerprint", &mut lines)?;
        let source_digest = hex_field("source", &mut lines)?;
        let count_field = |name: &str, lines: &mut std::str::Lines| -> Option<usize> {
            let line = lines.next()?;
            line.strip_prefix(name)?.strip_prefix(' ')?.parse().ok()
        };
        let summary = DesignSummary {
            inputs: count_field("inputs", &mut lines)?,
            outputs: count_field("outputs", &mut lines)?,
            compute_stages: count_field("compute_stages", &mut lines)?,
            dup_stages: count_field("dup_stages", &mut lines)?,
            streams: count_field("streams", &mut lines)?,
            shift_buffers: count_field("shift_buffers", &mut lines)?,
        };
        let mut timings_us = Vec::new();
        for line in lines {
            let rest = line.strip_prefix("timing ")?;
            let (name, us) = rest.split_once(' ')?;
            if name.is_empty() || name.contains(char::is_whitespace) {
                return None;
            }
            timings_us.push((name.to_string(), us.parse().ok()?));
        }
        Some(DesignRecord {
            key,
            fingerprint,
            source_digest,
            summary,
            timings_us,
        })
    }
}

/// A directory of persisted [`DesignRecord`] entries, one file per key.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) a cache directory. Entries are loaded
    /// lazily, per key, on first request — opening is O(1) regardless of
    /// how many designs are persisted.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(DiskStore { dir })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry file for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}{ENTRY_SUFFIX}"))
    }

    /// Load the entry for `key`, if present and intact. Corrupt entries
    /// read as absent.
    pub fn load(&self, key: u64) -> Option<DesignRecord> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let record = DesignRecord::decode(&text)?;
        // A record that decodes but names a different key is misfiled
        // (or the victim of a very unlucky corruption): discard it.
        (record.key == key).then_some(record)
    }

    /// Persist `record` atomically: write a temporary file in the same
    /// directory, fsync it, then `rename` over the final name. Readers
    /// only ever see absent-or-complete entries; a concurrent writer of
    /// the same key loses the rename race benignly (both wrote
    /// byte-identical content — the key is content-addressed).
    pub fn store(&self, record: &DesignRecord) -> io::Result<()> {
        let final_path = self.entry_path(record.key);
        let tmp_path = self
            .dir
            .join(format!(".{:016x}.tmp-{}", record.key, std::process::id()));
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(record.encode().as_bytes())?;
        f.sync_all()?;
        drop(f);
        let renamed = fs::rename(&tmp_path, &final_path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp_path);
        }
        renamed
    }

    /// Eagerly read every entry in the directory: the intact records,
    /// plus a count of entries that failed to decode and were skipped.
    /// The lazy per-key path never needs this; it exists for startup
    /// reporting ("N designs persisted, M corrupt") and tests.
    pub fn scan(&self) -> (Vec<DesignRecord>, usize) {
        let mut records = Vec::new();
        let mut skipped = 0usize;
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return (records, skipped);
        };
        let mut paths: Vec<PathBuf> = dir
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(ENTRY_SUFFIX) && !n.starts_with('.'))
            })
            .collect();
        paths.sort();
        for path in paths {
            let decoded = fs::read_to_string(&path)
                .ok()
                .and_then(|text| DesignRecord::decode(&text));
            match decoded {
                Some(record) => records.push(record),
                None => skipped += 1,
            }
        }
        (records, skipped)
    }
}

/// Traffic counters for a [`PersistentCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests served from the in-memory record tier.
    pub memory_hits: u64,
    /// Requests served from disk (warm restarts).
    pub disk_hits: u64,
    /// Requests that ran a compilation.
    pub misses: u64,
    /// Single-flight followers served by a concurrent leader's compile.
    pub coalesced: u64,
    /// Records currently resident in memory.
    pub records: usize,
}

impl ServeStats {
    /// Total requests observed.
    pub fn total(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.misses + self.coalesced
    }

    /// Plain-hit fraction in `[0, 1]` (memory + disk hits; coalesced
    /// followers are counted in the denominator but are not hits). `0.0`
    /// for an untouched cache, never non-finite.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.memory_hits + self.disk_hits) as f64 / total as f64
        }
    }
}

/// The two-tier (memory + optional disk) compile cache the server runs
/// on. The unit of storage is the [`DesignRecord`]; full
/// [`CompiledKernel`]s are held only transiently in the wrapped
/// [`CompileCache`], which also provides the single-flight guarantee —
/// concurrent requests for one key compile exactly once no matter how
/// they interleave with eviction or persistence.
#[derive(Debug)]
pub struct PersistentCache {
    mem: CompileCache,
    records: Mutex<RecordTier>,
    disk: Option<DiskStore>,
    record_capacity: usize,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

#[derive(Debug, Default)]
struct RecordTier {
    map: HashMap<u64, Arc<DesignRecord>>,
    /// Keys in insertion order, for FIFO eviction (records are tiny, but
    /// a service that never evicts grows without bound).
    order: Vec<u64>,
}

impl PersistentCache {
    /// A memory-only cache (no persistence): `capacity` bounds the
    /// compiled-kernel tier; the record tier keeps 8× as many entries
    /// (records are ~a hundred bytes against a design's megabytes).
    pub fn in_memory(capacity: usize) -> Self {
        PersistentCache {
            mem: CompileCache::with_capacity(capacity),
            records: Mutex::new(RecordTier::default()),
            disk: None,
            record_capacity: capacity.max(1).saturating_mul(8),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// A cache persisted under `dir` (created if needed). Existing
    /// entries are *not* read here — they are loaded lazily, per key, on
    /// first request, so startup cost is independent of cache size.
    pub fn with_dir(dir: impl AsRef<Path>, capacity: usize) -> io::Result<Self> {
        let mut cache = Self::in_memory(capacity);
        cache.disk = Some(DiskStore::open(dir)?);
        Ok(cache)
    }

    /// The disk tier, when persistence is on.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// The content-addressed key (delegates to [`CompileCache::key`]).
    pub fn key(kernel: &KernelDef, opts: &CompileOptions) -> u64 {
        CompileCache::key(kernel, opts)
    }

    /// Serve the design record for `kernel` under `opts`: from the
    /// memory record tier, then the disk tier, then by compiling (with
    /// single-flight deduplication of concurrent same-key misses). The
    /// returned [`Disposition`] says which of those happened.
    pub fn get_or_compile_record(
        &self,
        kernel: &KernelDef,
        opts: &CompileOptions,
    ) -> IrResult<(Arc<DesignRecord>, Disposition)> {
        let key = Self::key(kernel, opts);
        if let Some(record) = self.probe_records(key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((record, Disposition::MemoryHit));
        }
        if let Some(disk) = &self.disk {
            if let Some(record) = disk.load(key) {
                let record = self.insert_record(key, Arc::new(record));
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((record, Disposition::DiskHit));
            }
        }
        let (compiled, disposition) = self.mem.get_or_compile_traced(kernel, opts)?;
        let record = match disposition {
            Disposition::Miss => {
                let record = Arc::new(DesignRecord::from_compiled(key, &compiled));
                if let Some(disk) = &self.disk {
                    // Persistence is best-effort: a full disk degrades the
                    // next restart to cold, it must not fail the request.
                    let _ = disk.store(&record);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.insert_record(key, record)
            }
            Disposition::Coalesced | Disposition::MemoryHit => {
                // The leader inserts the record, but this follower may
                // get here first — build it from the shared design if so
                // (cheap: no compilation, just a fingerprint).
                let counter = if disposition == Disposition::Coalesced {
                    &self.coalesced
                } else {
                    &self.memory_hits
                };
                counter.fetch_add(1, Ordering::Relaxed);
                match self.probe_records(key) {
                    Some(record) => record,
                    None => self
                        .insert_record(key, Arc::new(DesignRecord::from_compiled(key, &compiled))),
                }
            }
            Disposition::DiskHit => unreachable!("CompileCache has no disk tier"),
        };
        Ok((record, disposition))
    }

    fn probe_records(&self, key: u64) -> Option<Arc<DesignRecord>> {
        self.records
            .lock()
            .expect("record tier poisoned")
            .map
            .get(&key)
            .cloned()
    }

    /// Insert into the record tier (FIFO-bounded); a concurrently
    /// inserted record for the same key wins so all holders share one.
    fn insert_record(&self, key: u64, record: Arc<DesignRecord>) -> Arc<DesignRecord> {
        let mut tier = self.records.lock().expect("record tier poisoned");
        if let Some(existing) = tier.map.get(&key) {
            return Arc::clone(existing);
        }
        while tier.order.len() >= self.record_capacity {
            let oldest = tier.order.remove(0);
            tier.map.remove(&oldest);
        }
        tier.order.push(key);
        tier.map.insert(key, Arc::clone(&record));
        record
    }

    /// Traffic counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            records: self.records.lock().expect("record tier poisoned").map.len(),
        }
    }
}

// The server shares one cache across its worker threads.
#[allow(dead_code)]
fn _assert_persistent_cache_is_shareable() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PersistentCache>();
    assert_send_sync::<DesignRecord>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::TargetPath;
    use shmls_frontend::parse_kernel;
    use std::sync::atomic::AtomicU32;

    fn kernel(n0: i64) -> KernelDef {
        parse_kernel(&format!(
            "kernel p {{ grid({n0}, 5) halo 1 field a : input field b : output \
             compute b {{ b = a[-1,0] + a[0,1] }} }}"
        ))
        .unwrap()
    }

    fn opts() -> CompileOptions {
        CompileOptions {
            paths: TargetPath::HlsOnly,
            time_passes: true,
            ..Default::default()
        }
    }

    /// A fresh, unique scratch directory (no tempfile dependency).
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "shmls-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_record(key: u64) -> DesignRecord {
        DesignRecord {
            key,
            fingerprint: 0xdead_beef_0123_4567,
            source_digest: 0x0123_4567_89ab_cdef,
            summary: DesignSummary {
                inputs: 2,
                outputs: 1,
                compute_stages: 3,
                dup_stages: 1,
                streams: 9,
                shift_buffers: 2,
            },
            timings_us: vec![
                ("parse".into(), 120),
                ("stencil-to-hls".into(), 4210),
                ("total".into(), 9000),
            ],
        }
    }

    #[test]
    fn record_text_round_trips() {
        let record = sample_record(42);
        let text = record.encode();
        assert!(text.starts_with("shmls-design v1\n"));
        assert_eq!(DesignRecord::decode(&text), Some(record));
    }

    #[test]
    fn truncated_or_flipped_entries_fail_to_decode() {
        let text = sample_record(7).encode();
        // Every strict prefix is rejected (truncation at any byte).
        for cut in [0, 1, text.len() / 2, text.len() - 1] {
            assert_eq!(DesignRecord::decode(&text[..cut]), None, "cut at {cut}");
        }
        // A single flipped byte anywhere is rejected.
        for pos in [0, 14, text.len() / 2, text.len() - 2] {
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= 0x01;
            if let Ok(s) = String::from_utf8(bytes) {
                assert_eq!(DesignRecord::decode(&s), None, "flip at {pos}");
            }
        }
        // A future format version is rejected rather than misread.
        let future = text.replace("shmls-design v1", "shmls-design v2");
        assert_eq!(DesignRecord::decode(&future), None);
    }

    #[test]
    fn store_is_atomic_and_leaves_no_temp_files() {
        let dir = scratch_dir("atomic");
        let store = DiskStore::open(&dir).unwrap();
        let record = sample_record(3);
        store.store(&record).unwrap();
        assert_eq!(store.load(3), Some(record));
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file survived the rename");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn misfiled_entry_reads_as_absent() {
        let dir = scratch_dir("misfiled");
        let store = DiskStore::open(&dir).unwrap();
        // A valid record written under the *wrong* key's file name must
        // not be served for that key.
        let record = sample_record(10);
        fs::write(store.entry_path(11), record.encode()).unwrap();
        assert_eq!(store.load(11), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_skipped_and_the_rest_still_load() {
        let dir = scratch_dir("corrupt");
        let store = DiskStore::open(&dir).unwrap();
        for key in [1u64, 2, 3] {
            store.store(&sample_record(key)).unwrap();
        }
        // Truncate entry 1 mid-file; bit-flip entry 2.
        let p1 = store.entry_path(1);
        let text = fs::read_to_string(&p1).unwrap();
        fs::write(&p1, &text[..text.len() / 2]).unwrap();
        let p2 = store.entry_path(2);
        let mut bytes = fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&p2, bytes).unwrap();

        let (records, skipped) = store.scan();
        assert_eq!(skipped, 2, "both damaged entries must be skipped");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, 3);
        assert_eq!(store.load(1), None);
        assert_eq!(store.load(2), None);
        assert_eq!(store.load(3).unwrap(), sample_record(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_is_warm_and_compile_free() {
        let dir = scratch_dir("restart");
        let fingerprint = {
            let cache = PersistentCache::with_dir(&dir, 8).unwrap();
            let (record, d) = cache.get_or_compile_record(&kernel(6), &opts()).unwrap();
            assert_eq!(d, Disposition::Miss);
            let (again, d) = cache.get_or_compile_record(&kernel(6), &opts()).unwrap();
            assert_eq!(d, Disposition::MemoryHit);
            assert_eq!(again.fingerprint, record.fingerprint);
            record.fingerprint
        };
        // "Restart": a brand-new cache over the same directory answers
        // without compiling, with the identical fingerprint and the
        // original compile's pass timings.
        let cache = PersistentCache::with_dir(&dir, 8).unwrap();
        let (record, d) = cache.get_or_compile_record(&kernel(6), &opts()).unwrap();
        assert_eq!(d, Disposition::DiskHit);
        assert_eq!(record.fingerprint, fingerprint);
        assert!(record.timings_us.iter().any(|(n, _)| n == "total"));
        let s = cache.stats();
        assert_eq!((s.misses, s.disk_hits), (0, 1));
        // And the disk record matches a fresh compilation exactly.
        let fresh = crate::driver::compile_kernel(kernel(6), &opts()).unwrap();
        assert_eq!(record.fingerprint, fresh.design_fingerprint());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_entry_recompiles_and_heals() {
        let dir = scratch_dir("heal");
        let key = {
            let cache = PersistentCache::with_dir(&dir, 8).unwrap();
            cache.get_or_compile_record(&kernel(7), &opts()).unwrap();
            PersistentCache::key(&kernel(7), &opts())
        };
        // Corrupt the persisted entry, restart: the request must fall
        // through to a miss (never trust a damaged entry) and rewrite it.
        let cache = PersistentCache::with_dir(&dir, 8).unwrap();
        let path = cache.disk().unwrap().entry_path(key);
        fs::write(&path, "shmls-design v1\ngarbage\n").unwrap();
        let (record, d) = cache.get_or_compile_record(&kernel(7), &opts()).unwrap();
        assert_eq!(d, Disposition::Miss);
        // Healed: the rewritten entry round-trips.
        assert_eq!(cache.disk().unwrap().load(key).unwrap(), *record);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_requests_compile_once_and_persist_once() {
        const THREADS: usize = 8;
        let dir = scratch_dir("concurrent");
        let cache = Arc::new(PersistentCache::with_dir(&dir, 8).unwrap());
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compile_record(&kernel(9), &opts()).unwrap()
                })
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let misses = results.iter().filter(|(_, d)| d.compiled()).count();
        assert_eq!(misses, 1, "duplicates must compile exactly once");
        let first = &results[0].0;
        for (record, d) in &results {
            assert_eq!(record.fingerprint, first.fingerprint);
            assert!(matches!(
                d,
                Disposition::Miss | Disposition::MemoryHit | Disposition::Coalesced
            ));
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.total(), THREADS as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn untouched_stats_are_finite() {
        let stats = ServeStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert!(stats.hit_rate().is_finite());
    }
}
