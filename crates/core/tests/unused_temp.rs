//! The unused-temp regression: a kernel declaring a temp field nobody
//! reads or stores used to compile to a design with a dead compute stage
//! whose result stream had no consumer — the sequential (unbounded Kahn)
//! engine completed but the threaded engine deadlocked. The transform now
//! prunes dead stages, so the design is well-formed by construction and
//! all three engines complete and agree.

use std::time::Duration;

use shmls_fpga_sim::cycle;
use shmls_fpga_sim::design::DesignDescriptor;
use shmls_ir::interp::Buffer;
use shmls_ir::types::StencilBounds;
use stencil_hmls::runner::{run_hls, run_hls_threaded, run_stencil, KernelData};
use stencil_hmls::{compile, CompileOptions, TargetPath};

const SRC: &str = r#"
kernel unused {
  grid(64)
  halo 1
  field a : input
  field t : temp
  field b : output
  compute t { t = 2.0 * a[0] }
  compute b { b = a[1] + a[-1] }
}
"#;

#[test]
fn unused_temp_completes_on_all_engines() {
    let opts = CompileOptions {
        paths: TargetPath::HlsOnly,
        ..Default::default()
    };
    let compiled = compile(SRC, &opts).unwrap();
    // The dead temp's compute stage is pruned at compile time.
    assert_eq!(compiled.report.pruned_stages, 1);
    assert_eq!(compiled.report.compute_stages, 1);

    let bounded =
        StencilBounds::from_extents(&compiled.signature.grid).grown(compiled.signature.halo);
    let mut a = Buffer::zeroed(bounded.extents(), bounded.lb.clone());
    for (i, v) in a.data.iter_mut().enumerate() {
        *v = i as f64 * 0.25 - 3.0;
    }
    let data = KernelData::default().buffer("a", a);

    // Reference semantics, sequential Kahn engine, threaded engine.
    let reference = run_stencil(&compiled, &data).unwrap();
    let (sequential, _) = run_hls(&compiled, &data).unwrap();
    let threaded = run_hls_threaded(&compiled, &data, Duration::from_secs(10))
        .unwrap()
        .unwrap_or_else(|report| panic!("pruned design must not deadlock:\n{report}"));

    for p in 0..64 {
        let r = reference["b"].load(&[p]).unwrap();
        assert_eq!(sequential["b"].load(&[p]).unwrap(), r, "sequential @ {p}");
        assert_eq!(threaded["b"].load(&[p]).unwrap(), r, "threaded @ {p}");
    }

    // Cycle-accurate engine: completes at the declared depths and even
    // with depth-1 FIFOs, draining every interior point.
    let design = DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func).unwrap();
    let last = design.stages.len() - 1;
    let report = cycle::simulate(&design, None).unwrap();
    assert_eq!(report.fires[last], design.interior_points);
    let shallow = cycle::simulate(&design, Some(1)).unwrap();
    assert_eq!(shallow.fires[last], design.interior_points);
}
