//! Property tests for the shift-buffer window geometry (§3.3, Figure 2).

use proptest::prelude::*;
use shmls_dialects::window::{
    linearize, offset_to_window_pos, shift_register_len, window_offsets, window_size,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// offset → position → offset is the identity, positions are dense.
    #[test]
    fn offset_position_bijection(rank in 1usize..4, halo in 1i64..4) {
        let offsets = window_offsets(rank, halo);
        prop_assert_eq!(offsets.len(), window_size(rank, halo));
        let mut seen = vec![false; offsets.len()];
        for o in &offsets {
            let pos = offset_to_window_pos(o, halo);
            prop_assert!(pos < seen.len());
            prop_assert!(!seen[pos], "position {} hit twice", pos);
            seen[pos] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// The centre offset always maps to the middle of the window.
    #[test]
    fn centre_is_middle(rank in 1usize..4, halo in 1i64..4) {
        let centre = vec![0i64; rank];
        let pos = offset_to_window_pos(&centre, halo);
        prop_assert_eq!(pos, window_size(rank, halo) / 2);
    }

    /// The shift register is exactly long enough: the flattened distance
    /// between the first and last window element plus one — and holding
    /// one fewer element would lose a needed value.
    #[test]
    fn register_length_is_tight(
        extents in prop::collection::vec(4i64..40, 1..4),
        halo in 1i64..3,
    ) {
        prop_assume!(extents.iter().all(|&e| e > 2 * halo));
        let len = shift_register_len(&extents, halo);
        let lb: Vec<i64> = vec![0; extents.len()];
        // Pick the first interior point fully covered by the window.
        let p: Vec<i64> = vec![halo; extents.len()];
        let hi: Vec<i64> = p.iter().map(|&x| x + halo).collect();
        let lo: Vec<i64> = p.iter().map(|&x| x - halo).collect();
        let span = linearize(&hi, &lb, &extents) - linearize(&lo, &lb, &extents) + 1;
        prop_assert_eq!(len, span, "register must exactly span the window");
    }

    /// Linearisation is row-major: the last axis is contiguous and
    /// strictly monotone in every axis.
    #[test]
    fn linearize_monotone(
        extents in prop::collection::vec(2i64..10, 1..4),
    ) {
        let lb: Vec<i64> = vec![0; extents.len()];
        let mid: Vec<i64> = extents.iter().map(|&e| e / 2).collect();
        let base = linearize(&mid, &lb, &extents);
        for d in 0..extents.len() {
            if mid[d] + 1 < extents[d] {
                let mut next = mid.clone();
                next[d] += 1;
                let stride = linearize(&next, &lb, &extents) - base;
                let expected: i64 = extents[d + 1..].iter().product();
                prop_assert_eq!(stride, expected, "axis {} stride", d);
            }
        }
    }

    /// Growing the halo strictly grows both the window and the register.
    #[test]
    fn halo_growth_is_monotone(
        extents in prop::collection::vec(10i64..30, 1..4),
    ) {
        for halo in 1i64..3 {
            prop_assert!(window_size(extents.len(), halo + 1) > window_size(extents.len(), halo));
            prop_assert!(
                shift_register_len(&extents, halo + 1) > shift_register_len(&extents, halo)
            );
        }
    }
}
