//! `arith` dialect: constants, arithmetic and comparisons.

use shmls_ir::ir_ensure;
use shmls_ir::prelude::*;

/// `arith.constant` op name.
pub const CONSTANT: &str = "arith.constant";

/// Build an f64 constant.
pub fn constant_f64(b: &mut OpBuilder<'_>, v: f64) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("value".to_string(), Attribute::f64(v));
    let op = b.build_with_attrs(CONSTANT, vec![], vec![Type::F64], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build an index constant.
pub fn constant_index(b: &mut OpBuilder<'_>, v: i64) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("value".to_string(), Attribute::index(v));
    let op = b.build_with_attrs(CONSTANT, vec![], vec![Type::Index], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build an i64 constant.
pub fn constant_i64(b: &mut OpBuilder<'_>, v: i64) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("value".to_string(), Attribute::int(v));
    let op = b.build_with_attrs(CONSTANT, vec![], vec![Type::I64], attrs);
    b.ctx_ref().result(op, 0)
}

macro_rules! float_binop {
    ($(#[$doc:meta])* $fn_name:ident, $op_name:expr) => {
        $(#[$doc])*
        pub fn $fn_name(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
            b.build_value($op_name, vec![lhs, rhs], Type::F64)
        }
    };
}

float_binop!(
    /// `lhs + rhs` on f64.
    addf, "arith.addf"
);
float_binop!(
    /// `lhs - rhs` on f64.
    subf, "arith.subf"
);
float_binop!(
    /// `lhs * rhs` on f64.
    mulf, "arith.mulf"
);
float_binop!(
    /// `lhs / rhs` on f64.
    divf, "arith.divf"
);
float_binop!(
    /// `max(lhs, rhs)` on f64.
    maximumf, "arith.maximumf"
);
float_binop!(
    /// `min(lhs, rhs)` on f64.
    minimumf, "arith.minimumf"
);

/// `-v` on f64.
pub fn negf(b: &mut OpBuilder<'_>, v: ValueId) -> ValueId {
    b.build_value("arith.negf", vec![v], Type::F64)
}

macro_rules! int_binop {
    ($(#[$doc:meta])* $fn_name:ident, $op_name:expr) => {
        $(#[$doc])*
        pub fn $fn_name(b: &mut OpBuilder<'_>, lhs: ValueId, rhs: ValueId) -> ValueId {
            let ty = b.ctx_ref().value_type(lhs).clone();
            b.build_value($op_name, vec![lhs, rhs], ty)
        }
    };
}

int_binop!(
    /// `lhs + rhs` on integers/index.
    addi, "arith.addi"
);
int_binop!(
    /// `lhs - rhs` on integers/index.
    subi, "arith.subi"
);
int_binop!(
    /// `lhs * rhs` on integers/index.
    muli, "arith.muli"
);
int_binop!(
    /// `lhs / rhs` (signed) on integers/index.
    divsi, "arith.divsi"
);
int_binop!(
    /// `lhs % rhs` (signed) on integers/index.
    remsi, "arith.remsi"
);

/// Signed integer comparison; `pred` is one of eq/ne/slt/sle/sgt/sge.
pub fn cmpi(b: &mut OpBuilder<'_>, pred: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("predicate".to_string(), Attribute::string(pred));
    let op = b.build_with_attrs("arith.cmpi", vec![lhs, rhs], vec![Type::I1], attrs);
    b.ctx_ref().result(op, 0)
}

/// Ordered float comparison; `pred` is one of oeq/one/olt/ole/ogt/oge.
pub fn cmpf(b: &mut OpBuilder<'_>, pred: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("predicate".to_string(), Attribute::string(pred));
    let op = b.build_with_attrs("arith.cmpf", vec![lhs, rhs], vec![Type::I1], attrs);
    b.ctx_ref().result(op, 0)
}

/// `cond ? a : b`.
pub fn select(b: &mut OpBuilder<'_>, cond: ValueId, a: ValueId, v: ValueId) -> ValueId {
    let ty = b.ctx_ref().value_type(a).clone();
    b.build_value("arith.select", vec![cond, a, v], ty)
}

/// Cast between integer-like types (`index` ↔ `i64` etc.).
pub fn index_cast(b: &mut OpBuilder<'_>, v: ValueId, to: Type) -> ValueId {
    b.build_value("arith.index_cast", vec![v], to)
}

/// Integer to float conversion.
pub fn sitofp(b: &mut OpBuilder<'_>, v: ValueId) -> ValueId {
    b.build_value("arith.sitofp", vec![v], Type::F64)
}

/// The constant value attribute, if `op` is an `arith.constant`.
pub fn constant_value(ctx: &Context, op: OpId) -> Option<&Attribute> {
    if ctx.op_name(op) == CONSTANT {
        ctx.attr(op, "value")
    } else {
        None
    }
}

/// True for the side-effect-free arith/math op names (used by DCE).
pub fn is_pure(name: &str) -> bool {
    name.starts_with("arith.") || name.starts_with("math.")
}

/// Verifier rules for the arith dialect.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    v.register(CONSTANT, |ctx, op| {
        let value = ctx
            .attr(op, "value")
            .ok_or_else(|| shmls_ir::ir_error!("arith.constant needs a value attribute"))?;
        ir_ensure!(ctx.results(op).len() == 1, "arith.constant has one result");
        let rt = ctx.value_type(ctx.result(op, 0));
        match value {
            Attribute::Int(_, t) | Attribute::Float(_, t) => {
                ir_ensure!(t == rt, "constant type {t} does not match result type {rt}");
            }
            other => shmls_ir::ir_bail!("bad constant attribute {other}"),
        }
        Ok(())
    });
    for name in ["arith.addf", "arith.subf", "arith.mulf", "arith.divf"] {
        v.register(name, |ctx, op| {
            ir_ensure!(
                ctx.operands(op).len() == 2,
                "float binop takes two operands"
            );
            for &o in ctx.operands(op) {
                ir_ensure!(
                    ctx.value_type(o).is_float(),
                    "float binop operand has non-float type {}",
                    ctx.value_type(o)
                );
            }
            Ok(())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    fn verifiers() -> OpVerifiers {
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        v
    }

    #[test]
    fn builders_and_types() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let x = constant_f64(&mut b, 2.0);
        let y = constant_f64(&mut b, 3.0);
        let s = addf(&mut b, x, y);
        let p = mulf(&mut b, s, s);
        let i = constant_index(&mut b, 4);
        let j = addi(&mut b, i, i);
        let c = cmpi(&mut b, "slt", i, j);
        let _sel = select(&mut b, c, x, y);
        assert_eq!(ctx.value_type(p), &Type::F64);
        assert_eq!(ctx.value_type(j), &Type::Index);
        assert_eq!(ctx.value_type(c), &Type::I1);
        verify_with(&ctx, module, &verifiers()).unwrap();
    }

    #[test]
    fn constant_type_mismatch_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let x = constant_f64(&mut b, 2.0);
        let op = ctx.defining_op(x).unwrap();
        ctx.set_attr(op, "value", Attribute::int(2));
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("does not match result type"), "{e}");
    }

    #[test]
    fn float_binop_int_operand_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let i = constant_index(&mut b, 1);
        b.build("arith.addf", vec![i, i], vec![Type::F64]);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("non-float"), "{e}");
    }

    #[test]
    fn purity() {
        assert!(is_pure("arith.addf"));
        assert!(is_pure("math.sqrt"));
        assert!(!is_pure("memref.store"));
        assert!(!is_pure("hls.write"));
    }
}
