//! Shift-buffer window geometry (paper §3.3, Figure 2).
//!
//! The shift buffer turns a row-major element stream of a (halo-padded)
//! field into a stream of *windows*: for every interior point, all
//! `(2·halo+1)^rank` neighbouring values (3 in 1D, 9 in 2D, 27 in 3D for
//! halo 1 — exactly the paper's example). This module holds the pure
//! geometry shared by the IR transform (step 5's offset→window-position
//! mapping), the runtime/simulator implementation of `shift_buffer`, and
//! the resource estimator (shift-register length → BRAM usage).

/// Number of elements in a full window.
pub fn window_size(rank: usize, halo: i64) -> usize {
    (2 * halo + 1).pow(rank as u32) as usize
}

/// Map a stencil access offset (each component in `[-halo, halo]`) to its
/// position inside the flattened window (row-major, last dim fastest).
pub fn offset_to_window_pos(offset: &[i64], halo: i64) -> usize {
    let base = 2 * halo + 1;
    let mut pos: i64 = 0;
    for &o in offset {
        debug_assert!(o.abs() <= halo, "offset {o} outside halo {halo}");
        pos = pos * base + (o + halo);
    }
    pos as usize
}

/// All window offsets in flattened order (the inverse of
/// [`offset_to_window_pos`]).
pub fn window_offsets(rank: usize, halo: i64) -> Vec<Vec<i64>> {
    let lb = vec![-halo; rank];
    let ub = vec![halo + 1; rank];
    shmls_ir::interp::iter_box(&lb, &ub)
}

/// Length of the shift register needed to hold a full window over a
/// row-major stream of a field with the given *bounded* extents (interior +
/// halo): the flattened distance between the first and last window element,
/// plus one.
///
/// For 3D extents `(ex, ey, ez)` and halo `h` this is
/// `2h·(ey·ez) + 2h·ez + 2h + 1` — the classic "2h planes + 2h rows + a few
/// elements" sizing that dominates the design's BRAM usage.
pub fn shift_register_len(bounded_extents: &[i64], halo: i64) -> i64 {
    let rank = bounded_extents.len();
    let mut stride = 1i64;
    let mut span = 0i64;
    for d in (0..rank).rev() {
        span += 2 * halo * stride;
        stride *= bounded_extents[d];
    }
    span + 1
}

/// Row-major linear position of `index` within bounds `[lb, lb+extents)`.
pub fn linearize(index: &[i64], lb: &[i64], extents: &[i64]) -> i64 {
    let mut lin = 0;
    for d in 0..index.len() {
        lin = lin * extents[d] + (index[d] - lb[d]);
    }
    lin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_sizes_match_paper() {
        // §3.3 step 3: "in 1 dimension three values are provided …, in 2
        // dimensions nine values …, and in 3 dimensions 27 values".
        assert_eq!(window_size(1, 1), 3);
        assert_eq!(window_size(2, 1), 9);
        assert_eq!(window_size(3, 1), 27);
        assert_eq!(window_size(3, 2), 125);
    }

    #[test]
    fn offset_mapping_is_bijective() {
        for rank in 1..=3usize {
            for halo in 1..=2i64 {
                let offsets = window_offsets(rank, halo);
                assert_eq!(offsets.len(), window_size(rank, halo));
                for (i, o) in offsets.iter().enumerate() {
                    assert_eq!(offset_to_window_pos(o, halo), i, "offset {o:?}");
                }
            }
        }
    }

    #[test]
    fn centre_is_middle() {
        assert_eq!(offset_to_window_pos(&[0], 1), 1);
        assert_eq!(offset_to_window_pos(&[0, 0], 1), 4);
        assert_eq!(offset_to_window_pos(&[0, 0, 0], 1), 13);
    }

    #[test]
    fn shift_register_sizing() {
        // 1D: window 3, stream of 1D field: 2h+1 elements.
        assert_eq!(shift_register_len(&[66], 1), 3);
        // 2D (ey = 66): 2 rows + 3.
        assert_eq!(shift_register_len(&[66, 66], 1), 2 * 66 + 3);
        // 3D: 2 planes + 2 rows + 3.
        assert_eq!(
            shift_register_len(&[66, 66, 34], 1),
            2 * 66 * 34 + 2 * 34 + 3
        );
    }

    #[test]
    fn linearize_row_major() {
        assert_eq!(linearize(&[0, 0], &[0, 0], &[4, 5]), 0);
        assert_eq!(linearize(&[0, 1], &[0, 0], &[4, 5]), 1);
        assert_eq!(linearize(&[1, 0], &[0, 0], &[4, 5]), 5);
        assert_eq!(linearize(&[-1, -1], &[-1, -1], &[6, 7]), 0);
    }
}
