//! `func` dialect: functions, calls and returns.

use shmls_ir::ir_ensure;
use shmls_ir::prelude::*;
use shmls_ir::verifier::check_terminator;

/// `func.func` op name.
pub const FUNC: &str = "func.func";
/// `func.return` op name.
pub const RETURN: &str = "func.return";
/// `func.call` op name.
pub const CALL: &str = "func.call";

/// Create a `func.func` named `name` with the given signature appended to
/// `block`, returning `(func_op, entry_block)`. The entry block's arguments
/// carry the input types; the body must end with `func.return`.
pub fn create_func(
    ctx: &mut Context,
    block: BlockId,
    name: &str,
    inputs: Vec<Type>,
    results: Vec<Type>,
) -> (OpId, BlockId) {
    let f = ctx.create_op(FUNC, vec![], vec![], Default::default());
    ctx.set_attr(f, "sym_name", Attribute::string(name));
    ctx.set_attr(
        f,
        "function_type",
        Attribute::TypeAttr(Type::function(inputs.clone(), results)),
    );
    let region = ctx.add_region(f);
    let entry = ctx.add_block(region, inputs);
    ctx.append_op(block, f);
    (f, entry)
}

/// Build a `func.call` to `callee` with `args`, returning the op.
pub fn call(b: &mut OpBuilder<'_>, callee: &str, args: Vec<ValueId>, results: Vec<Type>) -> OpId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("callee".to_string(), Attribute::symbol(callee));
    b.build_with_attrs(CALL, args, results, attrs)
}

/// Build a `func.return`.
pub fn ret(b: &mut OpBuilder<'_>, values: Vec<ValueId>) -> OpId {
    b.build(RETURN, values, vec![])
}

/// The `sym_name` of a `func.func`.
pub fn func_name(ctx: &Context, f: OpId) -> Option<&str> {
    ctx.attr(f, "sym_name").and_then(Attribute::as_str)
}

/// The callee symbol of a `func.call`.
pub fn callee(ctx: &Context, call: OpId) -> Option<&str> {
    ctx.attr(call, "callee").and_then(Attribute::as_str)
}

/// The declared function type of a `func.func`.
pub fn function_type(ctx: &Context, f: OpId) -> Option<&Type> {
    ctx.attr(f, "function_type").and_then(Attribute::as_type)
}

/// Look up a `func.func` by name under `root`.
pub fn lookup(ctx: &Context, root: OpId, name: &str) -> Option<OpId> {
    ctx.find_ops(root, FUNC)
        .into_iter()
        .find(|&f| func_name(ctx, f) == Some(name))
}

/// Verifier rules for the func dialect.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    v.register(FUNC, |ctx, op| {
        ir_ensure!(
            ctx.attr(op, "sym_name")
                .and_then(Attribute::as_str)
                .is_some(),
            "func.func needs a sym_name string attribute"
        );
        let Some(Type::Function { inputs, .. }) = function_type(ctx, op) else {
            shmls_ir::ir_bail!("func.func needs a function_type attribute");
        };
        let entry = ctx
            .entry_block(op)
            .ok_or_else(|| shmls_ir::ir_error!("func.func needs a body block"))?;
        let args = ctx.block_args(entry);
        ir_ensure!(
            args.len() == inputs.len(),
            "entry block has {} args but function_type has {} inputs",
            args.len(),
            inputs.len()
        );
        for (i, (&a, t)) in args.iter().zip(inputs).enumerate() {
            ir_ensure!(
                ctx.value_type(a) == t,
                "entry arg {i} has type {} but function_type says {t}",
                ctx.value_type(a)
            );
        }
        check_terminator(ctx, op, RETURN)
    });
    v.register(CALL, |ctx, op| {
        ir_ensure!(
            callee(ctx, op).is_some(),
            "func.call needs a callee symbol attribute"
        );
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    fn verifiers() -> OpVerifiers {
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        v
    }

    #[test]
    fn well_formed_function() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let (f, entry) = create_func(&mut ctx, body, "main", vec![Type::F64], vec![Type::F64]);
        let arg = ctx.block_args(entry)[0];
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        ret(&mut b, vec![arg]);
        verify_with(&ctx, module, &verifiers()).unwrap();
        assert_eq!(func_name(&ctx, f), Some("main"));
        assert_eq!(lookup(&ctx, module, "main"), Some(f));
        assert_eq!(lookup(&ctx, module, "nope"), None);
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        create_func(&mut ctx, body, "main", vec![], vec![]);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("func.return"), "{e}");
    }

    #[test]
    fn arg_type_mismatch_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let (f, entry) = create_func(&mut ctx, body, "main", vec![Type::F64], vec![]);
        // Corrupt the declared type.
        ctx.set_attr(
            f,
            "function_type",
            Attribute::TypeAttr(Type::function(vec![Type::I64], vec![])),
        );
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        ret(&mut b, vec![]);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("entry arg 0"), "{e}");
    }

    #[test]
    fn call_builder_sets_callee() {
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let (_f, entry) = create_func(&mut ctx, body, "main", vec![], vec![]);
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        let c = call(&mut b, "load_data", vec![], vec![]);
        ret(&mut b, vec![]);
        assert_eq!(callee(&ctx, c), Some("load_data"));
    }
}
