//! `hls` dialect: the paper's contribution (1) — a vendor-agnostic MLIR
//! dialect abstracting the high-level-synthesis features of AMD Xilinx
//! Vitis (Listings 2 and 3 of the paper).
//!
//! The ten operations:
//!
//! | op | meaning |
//! |---|---|
//! | `hls.create_stream` | create a FIFO stream of the result's element type |
//! | `hls.read` | blocking pop from a stream |
//! | `hls.write` | blocking push into a stream |
//! | `hls.empty` | non-blocking emptiness test |
//! | `hls.full` | non-blocking fullness test |
//! | `hls.pipeline` | request a pipelined loop with the given II |
//! | `hls.unroll` | request loop unrolling with the given factor |
//! | `hls.array_partition` | partition a local array across BRAMs |
//! | `hls.dataflow` | a region whose top-level stages run concurrently |
//! | `hls.interface` | bind a kernel argument to an AXI bundle/port |
//!
//! The paper's `hls.streamtype` attribute is realised as the
//! `!hls.stream<T>` type; `hls.axi_protocol` as the `protocol` attribute of
//! `hls.interface`.

use shmls_ir::ir_ensure;
use shmls_ir::prelude::*;

/// `hls.create_stream` op name.
pub const CREATE_STREAM: &str = "hls.create_stream";
/// `hls.read` op name.
pub const READ: &str = "hls.read";
/// `hls.write` op name.
pub const WRITE: &str = "hls.write";
/// `hls.empty` op name.
pub const EMPTY: &str = "hls.empty";
/// `hls.full` op name.
pub const FULL: &str = "hls.full";
/// `hls.pipeline` op name.
pub const PIPELINE: &str = "hls.pipeline";
/// `hls.unroll` op name.
pub const UNROLL: &str = "hls.unroll";
/// `hls.array_partition` op name.
pub const ARRAY_PARTITION: &str = "hls.array_partition";
/// `hls.dataflow` op name.
pub const DATAFLOW: &str = "hls.dataflow";
/// `hls.interface` op name.
pub const INTERFACE: &str = "hls.interface";

/// Default stream depth used when none is requested (matches the Vitis
/// default FIFO depth of 2, which the paper's runtime deepens for the
/// shift-buffer streams).
pub const DEFAULT_STREAM_DEPTH: i64 = 2;

/// AXI4 memory-mapped protocol name used by `hls.interface`.
pub const AXI4: &str = "m_axi";

/// Build `hls.create_stream` carrying elements of `elem` with FIFO `depth`.
pub fn create_stream(b: &mut OpBuilder<'_>, elem: Type, depth: i64) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("depth".to_string(), Attribute::int(depth));
    let op = b.build_with_attrs(CREATE_STREAM, vec![], vec![Type::hls_stream(elem)], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build a blocking `hls.read` from `stream`.
pub fn read(b: &mut OpBuilder<'_>, stream: ValueId) -> ValueId {
    let elem = b
        .ctx_ref()
        .value_type(stream)
        .element_type()
        .expect("hls.read on non-stream")
        .clone();
    b.build_value(READ, vec![stream], elem)
}

/// Build a blocking `hls.write` of `value` into `stream`.
pub fn write(b: &mut OpBuilder<'_>, value: ValueId, stream: ValueId) -> OpId {
    b.build(WRITE, vec![value, stream], vec![])
}

/// Build `hls.empty`.
pub fn empty(b: &mut OpBuilder<'_>, stream: ValueId) -> ValueId {
    b.build_value(EMPTY, vec![stream], Type::I1)
}

/// Build `hls.full`.
pub fn full(b: &mut OpBuilder<'_>, stream: ValueId) -> ValueId {
    b.build_value(FULL, vec![stream], Type::I1)
}

/// Build `hls.pipeline` requesting initiation interval `ii` for the
/// enclosing loop.
pub fn pipeline(b: &mut OpBuilder<'_>, ii: i64) -> OpId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("ii".to_string(), Attribute::int(ii));
    b.build_with_attrs(PIPELINE, vec![], vec![], attrs)
}

/// Build `hls.unroll` requesting the given unroll factor (0 = full unroll)
/// for the enclosing loop.
pub fn unroll(b: &mut OpBuilder<'_>, factor: i64) -> OpId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("factor".to_string(), Attribute::int(factor));
    b.build_with_attrs(UNROLL, vec![], vec![], attrs)
}

/// Build `hls.array_partition` on a local memref.
/// `kind` is `"cyclic"`, `"block"` or `"complete"`.
pub fn array_partition(
    b: &mut OpBuilder<'_>,
    memref: ValueId,
    kind: &str,
    factor: i64,
    dim: i64,
) -> OpId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("kind".to_string(), Attribute::string(kind));
    attrs.insert("factor".to_string(), Attribute::int(factor));
    attrs.insert("dim".to_string(), Attribute::int(dim));
    b.build_with_attrs(ARRAY_PARTITION, vec![memref], vec![], attrs)
}

/// Build an `hls.dataflow` region op, returning `(op, body_block)`.
/// All function calls / loops at the top level of the body are separate
/// concurrent dataflow stages connected by streams.
pub fn dataflow(b: &mut OpBuilder<'_>) -> (OpId, BlockId) {
    b.build_with_region(DATAFLOW, vec![], vec![], Default::default(), vec![])
}

/// Build `hls.interface` binding kernel argument `value` to an AXI bundle.
pub fn interface(b: &mut OpBuilder<'_>, value: ValueId, protocol: &str, bundle: &str) -> OpId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("protocol".to_string(), Attribute::string(protocol));
    attrs.insert("bundle".to_string(), Attribute::string(bundle));
    b.build_with_attrs(INTERFACE, vec![value], vec![], attrs)
}

/// The `ii` of an `hls.pipeline`.
pub fn pipeline_ii(ctx: &Context, op: OpId) -> Option<i64> {
    ctx.attr(op, "ii").and_then(Attribute::as_int)
}

/// The `depth` of an `hls.create_stream`.
pub fn stream_depth(ctx: &Context, op: OpId) -> i64 {
    ctx.attr(op, "depth")
        .and_then(Attribute::as_int)
        .unwrap_or(DEFAULT_STREAM_DEPTH)
}

/// The `(protocol, bundle)` of an `hls.interface`.
pub fn interface_binding(ctx: &Context, op: OpId) -> Option<(&str, &str)> {
    let protocol = ctx.attr(op, "protocol")?.as_str()?;
    let bundle = ctx.attr(op, "bundle")?.as_str()?;
    Some((protocol, bundle))
}

/// Verifier rules for the hls dialect.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    v.register(CREATE_STREAM, |ctx, op| {
        ir_ensure!(
            ctx.results(op).len() == 1,
            "hls.create_stream has one result"
        );
        let ty = ctx.value_type(ctx.result(op, 0));
        ir_ensure!(
            matches!(ty, Type::HlsStream(_)),
            "hls.create_stream result must be !hls.stream, got {ty}"
        );
        let depth = stream_depth(ctx, op);
        ir_ensure!(depth >= 1, "stream depth must be >= 1, got {depth}");
        Ok(())
    });
    v.register(READ, |ctx, op| {
        shmls_ir::verifier::expect_counts(ctx, op, 1, 1)?;
        let ty = ctx.value_type(ctx.operands(op)[0]);
        let Type::HlsStream(elem) = ty else {
            shmls_ir::ir_bail!("hls.read operand must be a stream, got {ty}");
        };
        ir_ensure!(
            ctx.value_type(ctx.result(op, 0)) == elem.as_ref(),
            "hls.read result type must equal stream element type"
        );
        Ok(())
    });
    v.register(WRITE, |ctx, op| {
        ir_ensure!(
            ctx.operands(op).len() == 2,
            "hls.write takes value and stream"
        );
        let vty = ctx.value_type(ctx.operands(op)[0]);
        let sty = ctx.value_type(ctx.operands(op)[1]);
        let Type::HlsStream(elem) = sty else {
            shmls_ir::ir_bail!("hls.write target must be a stream, got {sty}");
        };
        ir_ensure!(
            vty == elem.as_ref(),
            "hls.write value type {vty} does not match stream element type {elem}"
        );
        Ok(())
    });
    for name in [EMPTY, FULL] {
        v.register(name, |ctx, op| {
            shmls_ir::verifier::expect_counts(ctx, op, 1, 1)?;
            ir_ensure!(
                matches!(ctx.value_type(ctx.operands(op)[0]), Type::HlsStream(_)),
                "stream query operand must be a stream"
            );
            ir_ensure!(
                ctx.value_type(ctx.result(op, 0)) == &Type::I1,
                "stream query result must be i1"
            );
            Ok(())
        });
    }
    v.register(PIPELINE, |ctx, op| {
        let ii = pipeline_ii(ctx, op)
            .ok_or_else(|| shmls_ir::ir_error!("hls.pipeline needs an ii attribute"))?;
        ir_ensure!(ii >= 1, "pipeline II must be >= 1, got {ii}");
        Ok(())
    });
    v.register(UNROLL, |ctx, op| {
        let f = ctx
            .attr(op, "factor")
            .and_then(Attribute::as_int)
            .ok_or_else(|| shmls_ir::ir_error!("hls.unroll needs a factor attribute"))?;
        ir_ensure!(f >= 0, "unroll factor must be >= 0, got {f}");
        Ok(())
    });
    v.register(ARRAY_PARTITION, |ctx, op| {
        shmls_ir::verifier::expect_counts(ctx, op, 1, 0)?;
        let kind = ctx
            .attr(op, "kind")
            .and_then(Attribute::as_str)
            .ok_or_else(|| shmls_ir::ir_error!("hls.array_partition needs a kind"))?;
        ir_ensure!(
            matches!(kind, "cyclic" | "block" | "complete"),
            "unknown array_partition kind `{kind}`"
        );
        ir_ensure!(
            matches!(ctx.value_type(ctx.operands(op)[0]), Type::MemRef { .. }),
            "hls.array_partition operates on a memref"
        );
        Ok(())
    });
    v.register(DATAFLOW, |ctx, op| {
        ir_ensure!(ctx.regions(op).len() == 1, "hls.dataflow has one region");
        ir_ensure!(ctx.results(op).is_empty(), "hls.dataflow has no results");
        Ok(())
    });
    v.register(INTERFACE, |ctx, op| {
        ir_ensure!(ctx.operands(op).len() == 1, "hls.interface binds one value");
        let (protocol, bundle) = interface_binding(ctx, op)
            .ok_or_else(|| shmls_ir::ir_error!("hls.interface needs protocol and bundle"))?;
        ir_ensure!(
            !bundle.is_empty(),
            "hls.interface bundle name must not be empty"
        );
        ir_ensure!(
            protocol == AXI4 || protocol == "s_axilite",
            "unknown interface protocol `{protocol}`"
        );
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    fn verifiers() -> OpVerifiers {
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        v
    }

    #[test]
    fn stream_round_trip_types() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let s = create_stream(&mut b, Type::F64, 8);
        let v = read(&mut b, s);
        write(&mut b, v, s);
        let e = empty(&mut b, s);
        let f = full(&mut b, s);
        assert_eq!(ctx.value_type(v), &Type::F64);
        assert_eq!(ctx.value_type(e), &Type::I1);
        assert_eq!(ctx.value_type(f), &Type::I1);
        assert_eq!(stream_depth(&ctx, ctx.defining_op(s).unwrap()), 8);
        verify_with(&ctx, module, &verifiers()).unwrap();
    }

    #[test]
    fn write_type_mismatch_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let s = create_stream(&mut b, Type::F64, 2);
        let i = crate::arith::constant_index(&mut b, 1);
        b.build(WRITE, vec![i, s], vec![]);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(
            e.to_string().contains("does not match stream element"),
            "{e}"
        );
    }

    #[test]
    fn pipeline_ii_validated() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let p = pipeline(&mut b, 1);
        assert_eq!(pipeline_ii(&ctx, p), Some(1));
        verify_with(&ctx, module, &verifiers()).unwrap();
        ctx.set_attr(p, "ii", Attribute::int(0));
        assert!(verify_with(&ctx, module, &verifiers()).is_err());
    }

    #[test]
    fn dataflow_and_interface() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let (_df, inner) = dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(&mut ctx, inner);
        let m = crate::memref::alloc(&mut ib, vec![16], Type::F64);
        array_partition(&mut ib, m, "cyclic", 4, 0);
        let iface = interface(&mut ib, m, AXI4, "gmem0");
        assert_eq!(interface_binding(&ctx, iface), Some((AXI4, "gmem0")));
        verify_with(&ctx, module, &verifiers()).unwrap();
    }

    #[test]
    fn bad_partition_kind_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let m = crate::memref::alloc(&mut b, vec![16], Type::F64);
        let p = array_partition(&mut b, m, "cyclic", 4, 0);
        ctx.set_attr(p, "kind", Attribute::string("diagonal"));
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(
            e.to_string().contains("unknown array_partition kind"),
            "{e}"
        );
    }
}
