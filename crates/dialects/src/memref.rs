//! `memref` dialect: buffer allocation and element access.

use shmls_ir::ir_ensure;
use shmls_ir::prelude::*;

/// `memref.alloc` op name.
pub const ALLOC: &str = "memref.alloc";
/// `memref.alloca` op name (stack/BRAM-local allocation).
pub const ALLOCA: &str = "memref.alloca";
/// `memref.load` op name.
pub const LOAD: &str = "memref.load";
/// `memref.store` op name.
pub const STORE: &str = "memref.store";
/// `memref.dealloc` op name.
pub const DEALLOC: &str = "memref.dealloc";

/// Allocate a static-shaped buffer.
pub fn alloc(b: &mut OpBuilder<'_>, shape: Vec<i64>, elem: Type) -> ValueId {
    b.build_value(ALLOC, vec![], Type::memref(shape, elem))
}

/// Allocate a static-shaped local (BRAM/URAM-resident) buffer.
pub fn alloca(b: &mut OpBuilder<'_>, shape: Vec<i64>, elem: Type) -> ValueId {
    b.build_value(ALLOCA, vec![], Type::memref(shape, elem))
}

/// Load an element.
pub fn load(b: &mut OpBuilder<'_>, memref: ValueId, indices: Vec<ValueId>) -> ValueId {
    let elem = b
        .ctx_ref()
        .value_type(memref)
        .element_type()
        .expect("memref.load on non-memref")
        .clone();
    let mut operands = vec![memref];
    operands.extend(indices);
    b.build_value(LOAD, operands, elem)
}

/// Store an element.
pub fn store(
    b: &mut OpBuilder<'_>,
    value: ValueId,
    memref: ValueId,
    indices: Vec<ValueId>,
) -> OpId {
    let mut operands = vec![value, memref];
    operands.extend(indices);
    b.build(STORE, operands, vec![])
}

/// Verifier rules for the memref dialect.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    for name in [ALLOC, ALLOCA] {
        v.register(name, |ctx, op| {
            ir_ensure!(ctx.results(op).len() == 1, "alloc has one result");
            let ty = ctx.value_type(ctx.result(op, 0));
            let Type::MemRef { shape, .. } = ty else {
                shmls_ir::ir_bail!("alloc result must be a memref, got {ty}");
            };
            ir_ensure!(
                shape.iter().all(|&d| d >= 0),
                "alloc of dynamic shape requires operands (unsupported)"
            );
            Ok(())
        });
    }
    v.register(LOAD, |ctx, op| {
        ir_ensure!(
            !ctx.operands(op).is_empty(),
            "memref.load needs a memref operand"
        );
        let ty = ctx.value_type(ctx.operands(op)[0]);
        let Type::MemRef { shape, elem } = ty else {
            shmls_ir::ir_bail!("memref.load operand must be a memref, got {ty}");
        };
        ir_ensure!(
            ctx.operands(op).len() == 1 + shape.len(),
            "memref.load needs {} indices for rank-{} memref",
            shape.len(),
            shape.len()
        );
        ir_ensure!(
            ctx.value_type(ctx.result(op, 0)) == elem.as_ref(),
            "memref.load result type must match element type"
        );
        Ok(())
    });
    v.register(STORE, |ctx, op| {
        ir_ensure!(
            ctx.operands(op).len() >= 2,
            "memref.store needs value and memref"
        );
        let ty = ctx.value_type(ctx.operands(op)[1]);
        let Type::MemRef { shape, elem } = ty else {
            shmls_ir::ir_bail!("memref.store target must be a memref, got {ty}");
        };
        ir_ensure!(
            ctx.operands(op).len() == 2 + shape.len(),
            "memref.store needs {} indices for rank-{} memref",
            shape.len(),
            shape.len()
        );
        ir_ensure!(
            ctx.value_type(ctx.operands(op)[0]) == elem.as_ref(),
            "memref.store value type must match element type"
        );
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{constant_f64, constant_index};
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    fn verifiers() -> OpVerifiers {
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        v
    }

    #[test]
    fn alloc_load_store_verify() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let m = alloc(&mut b, vec![8, 8], Type::F64);
        let i = constant_index(&mut b, 1);
        let j = constant_index(&mut b, 2);
        let v = constant_f64(&mut b, 3.0);
        store(&mut b, v, m, vec![i, j]);
        let l = load(&mut b, m, vec![i, j]);
        assert_eq!(ctx.value_type(l), &Type::F64);
        verify_with(&ctx, module, &verifiers()).unwrap();
    }

    #[test]
    fn wrong_index_count_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let m = alloc(&mut b, vec![8, 8], Type::F64);
        let i = constant_index(&mut b, 1);
        b.build("memref.load", vec![m, i], vec![Type::F64]);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("indices"), "{e}");
    }

    #[test]
    fn store_type_mismatch_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let m = alloc(&mut b, vec![4], Type::F64);
        let i = constant_index(&mut b, 0);
        b.build("memref.store", vec![i, m, i], vec![]);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("value type"), "{e}");
    }
}
