//! `builtin` dialect: the `builtin.module` container op.

use shmls_ir::prelude::*;

/// Op name of the module container.
pub const MODULE: &str = "builtin.module";

/// Create an empty `builtin.module` with one region and one block,
/// returning `(module_op, body_block)`.
pub fn create_module(ctx: &mut Context) -> (OpId, BlockId) {
    let module = ctx.create_op(MODULE, vec![], vec![], Default::default());
    let region = ctx.add_region(module);
    let block = ctx.add_block(region, vec![]);
    (module, block)
}

/// The single body block of a module.
pub fn module_body(ctx: &Context, module: OpId) -> BlockId {
    ctx.entry_block(module)
        .expect("builtin.module must have a body block")
}

/// Verifier rules for the builtin dialect.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    v.register(MODULE, |ctx, op| {
        shmls_ir::ir_ensure!(ctx.operands(op).is_empty(), "module takes no operands");
        shmls_ir::ir_ensure!(ctx.results(op).is_empty(), "module has no results");
        shmls_ir::ir_ensure!(ctx.regions(op).len() == 1, "module has exactly one region");
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    #[test]
    fn create_and_verify() {
        let mut ctx = Context::new();
        let (module, block) = create_module(&mut ctx);
        assert_eq!(module_body(&ctx, module), block);
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        verify_with(&ctx, module, &v).unwrap();
    }

    #[test]
    fn module_with_results_rejected() {
        let mut ctx = Context::new();
        let module = ctx.create_op(MODULE, vec![], vec![Type::I64], Default::default());
        ctx.add_region(module);
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        assert!(verify_with(&ctx, module, &v).is_err());
    }
}
