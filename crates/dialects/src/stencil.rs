//! `stencil` dialect: the high-level stencil IR the paper's transformations
//! consume (a faithful subset of the open MLIR/xDSL stencil dialect).
//!
//! Op vocabulary (cf. Listing 1 of the paper):
//!
//! - `stencil.external_load(%ptr) -> !stencil.field<…>` — bind an external
//!   buffer to a stencil field.
//! - `stencil.load(%field) -> !stencil.temp<…>` — make a field readable in
//!   value semantics.
//! - `stencil.apply(%temps…) -> !stencil.temp<…>` — the per-point stencil
//!   computation; its region receives the operands as block arguments and
//!   terminates with `stencil.return`.
//! - `stencil.access(%temp) {offset = <[…]>}` — read a neighbouring value.
//! - `stencil.index {dim}` — the current grid index along `dim`.
//! - `stencil.store(%temp, %field) {bounds = <[lb…, ub…]>}` — write results.
//! - `stencil.external_store(%field, %ptr)` — flush a field to the external
//!   buffer.

use shmls_ir::ir_ensure;
use shmls_ir::prelude::*;
use shmls_ir::verifier::check_terminator;

/// `stencil.external_load` op name.
pub const EXTERNAL_LOAD: &str = "stencil.external_load";
/// `stencil.load` op name.
pub const LOAD: &str = "stencil.load";
/// `stencil.apply` op name.
pub const APPLY: &str = "stencil.apply";
/// `stencil.access` op name.
pub const ACCESS: &str = "stencil.access";
/// `stencil.index` op name.
pub const INDEX: &str = "stencil.index";
/// `stencil.return` op name.
pub const RETURN: &str = "stencil.return";
/// `stencil.store` op name.
pub const STORE: &str = "stencil.store";
/// `stencil.external_store` op name.
pub const EXTERNAL_STORE: &str = "stencil.external_store";

/// Build `stencil.external_load`.
pub fn external_load(b: &mut OpBuilder<'_>, ptr: ValueId, field_ty: Type) -> ValueId {
    b.build_value(EXTERNAL_LOAD, vec![ptr], field_ty)
}

/// Build `stencil.load`, deriving the temp type from the field type.
pub fn load(b: &mut OpBuilder<'_>, field: ValueId) -> ValueId {
    let ty = b.ctx_ref().value_type(field).clone();
    let Type::StencilField { bounds, elem } = ty else {
        panic!("stencil.load on non-field type {ty}");
    };
    b.build_value(LOAD, vec![field], Type::StencilTemp { bounds, elem })
}

/// Build `stencil.apply` over `inputs`, producing temps with `result_types`.
/// Returns `(op, region_block)`; the block receives one argument per input
/// with the same type.
pub fn apply(
    b: &mut OpBuilder<'_>,
    inputs: Vec<ValueId>,
    result_types: Vec<Type>,
) -> (OpId, BlockId) {
    let arg_types: Vec<Type> = inputs
        .iter()
        .map(|&v| b.ctx_ref().value_type(v).clone())
        .collect();
    b.build_with_region(APPLY, inputs, result_types, Default::default(), arg_types)
}

/// Build `stencil.access` at a relative `offset`.
pub fn access(b: &mut OpBuilder<'_>, temp: ValueId, offset: &[i64]) -> ValueId {
    let elem = b
        .ctx_ref()
        .value_type(temp)
        .element_type()
        .expect("stencil.access on non-temp")
        .clone();
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("offset".to_string(), Attribute::IndexArray(offset.to_vec()));
    let op = b.build_with_attrs(ACCESS, vec![temp], vec![elem], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build `stencil.index` for dimension `dim`.
pub fn index(b: &mut OpBuilder<'_>, dim: i64) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("dim".to_string(), Attribute::int(dim));
    let op = b.build_with_attrs(INDEX, vec![], vec![Type::Index], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build the `stencil.return` terminator.
pub fn return_op(b: &mut OpBuilder<'_>, values: Vec<ValueId>) -> OpId {
    b.build(RETURN, values, vec![])
}

/// Build `stencil.store` writing `temp` into `field` over `[lb, ub)`.
pub fn store(b: &mut OpBuilder<'_>, temp: ValueId, field: ValueId, lb: &[i64], ub: &[i64]) -> OpId {
    let mut flat = lb.to_vec();
    flat.extend_from_slice(ub);
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("bounds".to_string(), Attribute::IndexArray(flat));
    b.build_with_attrs(STORE, vec![temp, field], vec![], attrs)
}

/// Build `stencil.external_store`.
pub fn external_store(b: &mut OpBuilder<'_>, field: ValueId, ptr: ValueId) -> OpId {
    b.build(EXTERNAL_STORE, vec![field, ptr], vec![])
}

/// The `offset` of a `stencil.access`.
pub fn access_offset(ctx: &Context, op: OpId) -> Option<&[i64]> {
    ctx.attr(op, "offset").and_then(Attribute::as_index_array)
}

/// The `(lb, ub)` of a `stencil.store`.
pub fn store_bounds(ctx: &Context, op: OpId) -> Option<(Vec<i64>, Vec<i64>)> {
    let flat = ctx.attr(op, "bounds")?.as_index_array()?;
    shmls_ir::interp::split_bounds(flat).ok()
}

/// Maximum absolute access offset (halo radius) used by all
/// `stencil.access` ops nested under `op`, per dimension.
pub fn halo_radius(ctx: &Context, op: OpId, rank: usize) -> Vec<i64> {
    let mut radius = vec![0i64; rank];
    for a in ctx.find_ops(op, ACCESS) {
        if let Some(offset) = access_offset(ctx, a) {
            for (d, &o) in offset.iter().enumerate() {
                if d < rank {
                    radius[d] = radius[d].max(o.abs());
                }
            }
        }
    }
    radius
}

/// Verifier rules for the stencil dialect.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    v.register(APPLY, |ctx, op| {
        ir_ensure!(
            !ctx.results(op).is_empty(),
            "stencil.apply must produce results"
        );
        for &r in ctx.results(op) {
            ir_ensure!(
                matches!(ctx.value_type(r), Type::StencilTemp { .. }),
                "stencil.apply results must be !stencil.temp, got {}",
                ctx.value_type(r)
            );
        }
        let block = ctx
            .entry_block(op)
            .ok_or_else(|| shmls_ir::ir_error!("stencil.apply needs a region"))?;
        ir_ensure!(
            ctx.block_args(block).len() == ctx.operands(op).len(),
            "stencil.apply region must take one argument per operand"
        );
        for (i, (&a, &o)) in ctx
            .block_args(block)
            .iter()
            .zip(ctx.operands(op))
            .enumerate()
        {
            ir_ensure!(
                ctx.value_type(a) == ctx.value_type(o),
                "stencil.apply region arg {i} type mismatch"
            );
        }
        check_terminator(ctx, op, RETURN)?;
        let term = ctx.terminator(block).expect("checked");
        ir_ensure!(
            ctx.operands(term).len() == ctx.results(op).len(),
            "stencil.return must yield one value per stencil.apply result"
        );
        Ok(())
    });
    v.register(ACCESS, |ctx, op| {
        shmls_ir::verifier::expect_counts(ctx, op, 1, 1)?;
        let offset = access_offset(ctx, op)
            .ok_or_else(|| shmls_ir::ir_error!("stencil.access needs an offset attribute"))?;
        let ty = ctx.value_type(ctx.operands(op)[0]);
        let Some(bounds) = ty.stencil_bounds() else {
            shmls_ir::ir_bail!("stencil.access operand must be a stencil temp, got {ty}");
        };
        ir_ensure!(
            offset.len() == bounds.rank(),
            "stencil.access offset rank {} does not match temp rank {}",
            offset.len(),
            bounds.rank()
        );
        Ok(())
    });
    v.register(LOAD, |ctx, op| {
        shmls_ir::verifier::expect_counts(ctx, op, 1, 1)?;
        let in_ty = ctx.value_type(ctx.operands(op)[0]);
        ir_ensure!(
            matches!(in_ty, Type::StencilField { .. }),
            "stencil.load operand must be a field, got {in_ty}"
        );
        let out_ty = ctx.value_type(ctx.result(op, 0));
        ir_ensure!(
            matches!(out_ty, Type::StencilTemp { .. }),
            "stencil.load result must be a temp, got {out_ty}"
        );
        Ok(())
    });
    v.register(STORE, |ctx, op| {
        ir_ensure!(
            ctx.operands(op).len() == 2,
            "stencil.store takes temp and field"
        );
        let (lb, ub) = store_bounds(ctx, op)
            .ok_or_else(|| shmls_ir::ir_error!("stencil.store needs a bounds attribute"))?;
        let field_ty = ctx.value_type(ctx.operands(op)[1]);
        let Some(field_bounds) = field_ty.stencil_bounds() else {
            shmls_ir::ir_bail!("stencil.store target must be a field, got {field_ty}");
        };
        ir_ensure!(
            lb.len() == field_bounds.rank(),
            "stencil.store bounds rank mismatch"
        );
        for d in 0..lb.len() {
            ir_ensure!(
                lb[d] >= field_bounds.lb[d] && ub[d] <= field_bounds.ub[d],
                "stencil.store bounds [{},{}) exceed field bounds [{},{}) in dim {d}",
                lb[d],
                ub[d],
                field_bounds.lb[d],
                field_bounds.ub[d]
            );
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    fn verifiers() -> OpVerifiers {
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        v
    }

    fn field_ty(halo: i64, n: i64) -> Type {
        Type::stencil_field(StencilBounds::new(vec![-halo], vec![n + halo]), Type::F64)
    }

    /// Build the paper's Listing-1 example: out[i] = in[i-1] + in[i+1].
    fn build_listing1(ctx: &mut Context) -> OpId {
        let (module, body) = create_module(ctx);
        let fty = field_ty(1, 64);
        let (_f, entry) =
            crate::func::create_func(ctx, body, "kernel", vec![fty.clone(), fty.clone()], vec![]);
        let fin = ctx.block_args(entry)[0];
        let fout = ctx.block_args(entry)[1];
        let mut b = OpBuilder::at_block_end(ctx, entry);
        let t = load(&mut b, fin);
        let out_ty = Type::stencil_temp(StencilBounds::new(vec![0], vec![64]), Type::F64);
        let (apply_op, ab) = apply(&mut b, vec![t], vec![out_ty]);
        let arg = ctx.block_args(ab)[0];
        let mut ib = OpBuilder::at_block_end(ctx, ab);
        let l = access(&mut ib, arg, &[-1]);
        let r = access(&mut ib, arg, &[1]);
        let s = crate::arith::addf(&mut ib, l, r);
        return_op(&mut ib, vec![s]);
        let res = ctx.result(apply_op, 0);
        let mut b = OpBuilder::at_block_end(ctx, entry);
        store(&mut b, res, fout, &[0], &[64]);
        crate::func::ret(&mut b, vec![]);
        module
    }

    #[test]
    fn listing1_verifies() {
        let mut ctx = Context::new();
        let module = build_listing1(&mut ctx);
        let mut v = verifiers();
        crate::func::register_verifiers(&mut v);
        verify_with(&ctx, module, &v).unwrap();
    }

    #[test]
    fn halo_radius_computed() {
        let mut ctx = Context::new();
        let module = build_listing1(&mut ctx);
        assert_eq!(halo_radius(&ctx, module, 1), vec![1]);
    }

    #[test]
    fn access_rank_mismatch_rejected() {
        let mut ctx = Context::new();
        let module = build_listing1(&mut ctx);
        let a = ctx.find_ops(module, ACCESS)[0];
        ctx.set_attr(a, "offset", Attribute::IndexArray(vec![-1, 0]));
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("offset rank"), "{e}");
    }

    #[test]
    fn store_out_of_field_bounds_rejected() {
        let mut ctx = Context::new();
        let module = build_listing1(&mut ctx);
        let s = ctx.find_ops(module, STORE)[0];
        ctx.set_attr(s, "bounds", Attribute::IndexArray(vec![0, 99]));
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("exceed field bounds"), "{e}");
    }

    #[test]
    fn apply_return_arity_enforced() {
        let mut ctx = Context::new();
        let module = build_listing1(&mut ctx);
        let apply_op = ctx.find_ops(module, APPLY)[0];
        let block = ctx.entry_block(apply_op).unwrap();
        let term = ctx.terminator(block).unwrap();
        // Drop the returned value.
        ctx.clear_operands(term);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("one value per"), "{e}");
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    /// Malformed ops (wrong counts) must be *rejected* by verification,
    /// not crash it.
    #[test]
    fn zero_operand_access_is_verifier_error() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let op = b.build(ACCESS, vec![], vec![Type::F64]);
        ctx.set_attr(op, "offset", Attribute::IndexArray(vec![0]));
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        let e = verify_with(&ctx, module, &v).unwrap_err();
        assert!(e.to_string().contains("expected 1 operand"), "{e}");
    }
}
