//! # shmls-dialects — dialect definitions for the Stencil-HMLS reproduction
//!
//! One module per dialect, each providing op-name constants, typed builder
//! helpers, attribute accessors, and verifier rules:
//!
//! - [`builtin`] — the module container.
//! - [`func`] — functions, calls, returns.
//! - [`arith`] — constants, arithmetic, comparisons (plus `math.*` names,
//!   which need no dedicated builders).
//! - [`scf`] — structured control flow.
//! - [`memref`] — buffers.
//! - [`llvm`] — the subset used as the HLS-dialect lowering target.
//! - [`stencil`] — the high-level stencil IR (pipeline input).
//! - [`hls`] — the paper's new HLS dialect (pipeline intermediate).

#![warn(missing_docs)]

pub mod arith;
pub mod builtin;
pub mod func;
pub mod hls;
pub mod llvm;
pub mod memref;
pub mod scf;
pub mod stencil;
pub mod window;

use shmls_ir::verifier::OpVerifiers;

/// Build the verifier registry covering every dialect in this crate.
pub fn registry() -> OpVerifiers {
    let mut v = OpVerifiers::new();
    builtin::register_verifiers(&mut v);
    func::register_verifiers(&mut v);
    arith::register_verifiers(&mut v);
    scf::register_verifiers(&mut v);
    memref::register_verifiers(&mut v);
    llvm::register_verifiers(&mut v);
    stencil::register_verifiers(&mut v);
    hls::register_verifiers(&mut v);
    v
}

/// True for op names without side effects — safe to erase when unused.
pub fn is_pure(name: &str) -> bool {
    arith::is_pure(name)
        || matches!(
            name,
            stencil::ACCESS
                | stencil::INDEX
                | stencil::LOAD
                | llvm::GEP
                | llvm::EXTRACTVALUE
                | llvm::INSERTVALUE
                | llvm::UNDEF
                | llvm::CONSTANT
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_dialects() {
        let v = registry();
        assert!(!v.is_empty());
        for name in [
            builtin::MODULE,
            func::FUNC,
            arith::CONSTANT,
            scf::FOR,
            memref::LOAD,
            llvm::CALL,
            stencil::APPLY,
            hls::CREATE_STREAM,
        ] {
            assert!(!v.rules_for(name).is_empty(), "no rule for {name}");
        }
    }

    #[test]
    fn purity_table() {
        assert!(is_pure("arith.addf"));
        assert!(is_pure(stencil::ACCESS));
        assert!(is_pure(llvm::GEP));
        assert!(!is_pure(hls::READ)); // consumes from a FIFO
        assert!(!is_pure(hls::WRITE));
        assert!(!is_pure(memref::STORE));
        assert!(!is_pure(func::CALL));
    }
}
