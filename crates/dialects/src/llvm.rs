//! `llvm` dialect subset: the lowering *target* of the HLS dialect.
//!
//! The paper lowers the HLS dialect to LLVM-IR in which
//!
//! 1. HLS directives are encoded as calls to argument-less void functions
//!    (so they ride through LLVM without perturbing the IR structure), and
//! 2. streams are legalised into pointers-to-structs with an
//!    `@llvm.fpga.set.stream.depth` intrinsic call on the first element.
//!
//! We reproduce that encoding at the `llvm` *dialect* level: loops stay
//! structured (`scf.for`) — our substitute for the loop-tree analysis the
//! paper's `f++` tool performs on LLVM loops — while every value-level
//! operation and every directive uses the ops below. The `fpp` module in
//! `stencil-hmls` then pattern-matches the marker calls exactly as `f++`
//! does.

use shmls_ir::ir_ensure;
use shmls_ir::prelude::*;

/// `llvm.call` op name.
pub const CALL: &str = "llvm.call";
/// `llvm.alloca` op name.
pub const ALLOCA: &str = "llvm.alloca";
/// `llvm.getelementptr` op name.
pub const GEP: &str = "llvm.getelementptr";
/// `llvm.load` op name.
pub const LOAD: &str = "llvm.load";
/// `llvm.store` op name.
pub const STORE: &str = "llvm.store";
/// `llvm.mlir.constant` op name.
pub const CONSTANT: &str = "llvm.mlir.constant";
/// `llvm.extractvalue` op name.
pub const EXTRACTVALUE: &str = "llvm.extractvalue";
/// `llvm.insertvalue` op name.
pub const INSERTVALUE: &str = "llvm.insertvalue";
/// `llvm.mlir.undef` op name.
pub const UNDEF: &str = "llvm.mlir.undef";

/// The stream-depth intrinsic recognised by the AMD Xilinx HLS backend.
pub const SET_STREAM_DEPTH: &str = "llvm.fpga.set.stream.depth";

/// Prefix for the void marker functions that encode HLS directives in the
/// generated LLVM-IR (consumed by the `fpp` pass).
pub const MARKER_PREFIX: &str = "_shmls_";

/// Build an `llvm.call` to `callee`.
pub fn call(b: &mut OpBuilder<'_>, callee: &str, args: Vec<ValueId>, results: Vec<Type>) -> OpId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert("callee".to_string(), Attribute::symbol(callee));
    b.build_with_attrs(CALL, args, results, attrs)
}

/// Build an `llvm.alloca` of one `pointee` element, returning the pointer.
pub fn alloca(b: &mut OpBuilder<'_>, pointee: Type) -> ValueId {
    b.build_value(ALLOCA, vec![], Type::llvm_ptr(pointee))
}

/// Build a constant-index `llvm.getelementptr`.
pub fn gep(b: &mut OpBuilder<'_>, ptr: ValueId, indices: &[i64], result: Type) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert(
        "indices".to_string(),
        Attribute::IndexArray(indices.to_vec()),
    );
    let op = b.build_with_attrs(GEP, vec![ptr], vec![result], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build an `llvm.load` through `ptr`.
pub fn load(b: &mut OpBuilder<'_>, ptr: ValueId) -> ValueId {
    let pointee = match b.ctx_ref().value_type(ptr) {
        Type::LlvmPtr(p) => p.as_ref().clone(),
        other => panic!("llvm.load through non-pointer {other}"),
    };
    b.build_value(LOAD, vec![ptr], pointee)
}

/// Build an `llvm.store` of `value` through `ptr`.
pub fn store(b: &mut OpBuilder<'_>, value: ValueId, ptr: ValueId) -> OpId {
    b.build(STORE, vec![value, ptr], vec![])
}

/// Build an `llvm.extractvalue` at `position`.
pub fn extractvalue(
    b: &mut OpBuilder<'_>,
    agg: ValueId,
    position: &[i64],
    result: Type,
) -> ValueId {
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert(
        "position".to_string(),
        Attribute::IndexArray(position.to_vec()),
    );
    let op = b.build_with_attrs(EXTRACTVALUE, vec![agg], vec![result], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build an `llvm.insertvalue` at `position`.
pub fn insertvalue(
    b: &mut OpBuilder<'_>,
    agg: ValueId,
    value: ValueId,
    position: &[i64],
) -> ValueId {
    let ty = b.ctx_ref().value_type(agg).clone();
    let mut attrs = std::collections::BTreeMap::new();
    attrs.insert(
        "position".to_string(),
        Attribute::IndexArray(position.to_vec()),
    );
    let op = b.build_with_attrs(INSERTVALUE, vec![agg, value], vec![ty], attrs);
    b.ctx_ref().result(op, 0)
}

/// Build an `llvm.mlir.undef` of `ty`.
pub fn undef(b: &mut OpBuilder<'_>, ty: Type) -> ValueId {
    b.build_value(UNDEF, vec![], ty)
}

/// The callee of an `llvm.call`.
pub fn callee(ctx: &Context, op: OpId) -> Option<&str> {
    ctx.attr(op, "callee").and_then(Attribute::as_str)
}

/// True when `op` is a marker call (`llvm.call` to a `_shmls_*` function).
pub fn is_marker_call(ctx: &Context, op: OpId) -> bool {
    ctx.op_name(op) == CALL && callee(ctx, op).is_some_and(|c| c.starts_with(MARKER_PREFIX))
}

/// The canonical *legal stream type* required by the AMD Xilinx HLS
/// backend: a pointer to a struct wrapping the element type
/// (`!llvm.ptr<!llvm.struct<(T)>>`).
pub fn legal_stream_type(elem: Type) -> Type {
    Type::llvm_ptr(Type::LlvmStruct(vec![elem]))
}

/// Verifier rules for the llvm dialect subset.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    v.register(CALL, |ctx, op| {
        ir_ensure!(callee(ctx, op).is_some(), "llvm.call needs a callee symbol");
        Ok(())
    });
    v.register(GEP, |ctx, op| {
        shmls_ir::verifier::expect_counts(ctx, op, 1, 1)?;
        ir_ensure!(
            ctx.attr(op, "indices")
                .and_then(Attribute::as_index_array)
                .is_some(),
            "llvm.getelementptr needs an indices attribute"
        );
        ir_ensure!(
            matches!(ctx.value_type(ctx.operands(op)[0]), Type::LlvmPtr(_)),
            "llvm.getelementptr operand must be a pointer"
        );
        Ok(())
    });
    v.register(LOAD, |ctx, op| {
        shmls_ir::verifier::expect_counts(ctx, op, 1, 1)?;
        let ty = ctx.value_type(ctx.operands(op)[0]);
        let Type::LlvmPtr(pointee) = ty else {
            shmls_ir::ir_bail!("llvm.load operand must be a pointer, got {ty}");
        };
        ir_ensure!(
            ctx.value_type(ctx.result(op, 0)) == pointee.as_ref(),
            "llvm.load result must match pointee type"
        );
        Ok(())
    });
    v.register(STORE, |ctx, op| {
        shmls_ir::verifier::expect_counts(ctx, op, 2, 0)?;
        let ty = ctx.value_type(ctx.operands(op)[1]);
        let Type::LlvmPtr(pointee) = ty else {
            shmls_ir::ir_bail!("llvm.store target must be a pointer, got {ty}");
        };
        ir_ensure!(
            ctx.value_type(ctx.operands(op)[0]) == pointee.as_ref(),
            "llvm.store value must match pointee type"
        );
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    fn verifiers() -> OpVerifiers {
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        v
    }

    #[test]
    fn stream_legalisation_shape() {
        // The two legality conditions of §3.2: ptr-to-struct stream type and
        // a set.stream.depth intrinsic on the first element (gep [0,0]).
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let stream_ty = legal_stream_type(Type::F64);
        assert_eq!(stream_ty.to_string(), "!llvm.ptr<!llvm.struct<(f64)>>");
        let s = alloca(&mut b, Type::LlvmStruct(vec![Type::F64]));
        let first = gep(&mut b, s, &[0, 0], Type::llvm_ptr(Type::F64));
        call(&mut b, SET_STREAM_DEPTH, vec![first], vec![]);
        verify_with(&ctx, module, &verifiers()).unwrap();
        assert_eq!(ctx.value_type(s), &stream_ty);
    }

    #[test]
    fn marker_call_detection() {
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let m = call(&mut b, "_shmls_pipeline_ii_1", vec![], vec![]);
        let n = call(&mut b, "load_data", vec![], vec![]);
        assert!(is_marker_call(&ctx, m));
        assert!(!is_marker_call(&ctx, n));
    }

    #[test]
    fn load_store_types_enforced() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let p = alloca(&mut b, Type::F64);
        let v = load(&mut b, p);
        store(&mut b, v, p);
        verify_with(&ctx, module, &verifiers()).unwrap();
        // Mismatched store.
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let i = crate::arith::constant_index(&mut b, 0);
        b.build(STORE, vec![i, p], vec![]);
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("must match pointee"), "{e}");
    }

    #[test]
    fn insert_extract_round_trip_types() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let packed = Type::LlvmStruct(vec![Type::llvm_array(8, Type::F64)]);
        let u = undef(&mut b, packed.clone());
        let x = crate::arith::constant_f64(&mut b, 1.0);
        let filled = insertvalue(&mut b, u, x, &[0, 3]);
        let back = extractvalue(&mut b, filled, &[0, 3], Type::F64);
        assert_eq!(ctx.value_type(filled), &packed);
        assert_eq!(ctx.value_type(back), &Type::F64);
        verify_with(&ctx, module, &verifiers()).unwrap();
    }
}
