//! `scf` dialect: structured control flow (`for`, `if`, `yield`).

use shmls_ir::ir_ensure;
use shmls_ir::prelude::*;
use shmls_ir::verifier::check_terminator;

/// `scf.for` op name.
pub const FOR: &str = "scf.for";
/// `scf.if` op name.
pub const IF: &str = "scf.if";
/// `scf.yield` op name.
pub const YIELD: &str = "scf.yield";

/// Build an `scf.for lb..ub step` with optional loop-carried values.
/// Returns `(for_op, body_block)`; the body block's first argument is the
/// induction variable, followed by the iteration arguments.
pub fn for_loop(
    b: &mut OpBuilder<'_>,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
    iter_init: Vec<ValueId>,
) -> (OpId, BlockId) {
    let result_types: Vec<Type> = iter_init
        .iter()
        .map(|&v| b.ctx_ref().value_type(v).clone())
        .collect();
    let mut block_args = vec![Type::Index];
    block_args.extend(result_types.clone());
    let mut operands = vec![lb, ub, step];
    operands.extend(iter_init);
    b.build_with_region(FOR, operands, result_types, Default::default(), block_args)
}

/// Build an `scf.yield`.
pub fn yield_op(b: &mut OpBuilder<'_>, values: Vec<ValueId>) -> OpId {
    b.build(YIELD, values, vec![])
}

/// Build an `scf.if` with then/else regions, returning
/// `(if_op, then_block, else_block)`.
pub fn if_op(
    b: &mut OpBuilder<'_>,
    cond: ValueId,
    result_types: Vec<Type>,
) -> (OpId, BlockId, BlockId) {
    let (op, then_block) =
        b.build_with_region(IF, vec![cond], result_types, Default::default(), vec![]);
    let else_region = b.ctx().add_region(op);
    let else_block = b.ctx().add_block(else_region, vec![]);
    (op, then_block, else_block)
}

/// The induction variable of an `scf.for`.
pub fn induction_var(ctx: &Context, for_op: OpId) -> ValueId {
    let block = ctx.entry_block(for_op).expect("scf.for has a body");
    ctx.block_args(block)[0]
}

/// `(lb, ub, step)` operands of an `scf.for`.
pub fn loop_bounds(ctx: &Context, for_op: OpId) -> (ValueId, ValueId, ValueId) {
    let ops = ctx.operands(for_op);
    (ops[0], ops[1], ops[2])
}

/// Verifier rules for the scf dialect.
pub fn register_verifiers(v: &mut shmls_ir::verifier::OpVerifiers) {
    v.register(FOR, |ctx, op| {
        ir_ensure!(ctx.operands(op).len() >= 3, "scf.for takes lb, ub, step");
        let iter_count = ctx.operands(op).len() - 3;
        ir_ensure!(
            ctx.results(op).len() == iter_count,
            "scf.for with {iter_count} iter args must have {iter_count} results"
        );
        let block = ctx
            .entry_block(op)
            .ok_or_else(|| shmls_ir::ir_error!("scf.for needs a body"))?;
        ir_ensure!(
            ctx.block_args(block).len() == 1 + iter_count,
            "scf.for body must take 1 + {iter_count} arguments"
        );
        ir_ensure!(
            ctx.value_type(ctx.block_args(block)[0]) == &Type::Index,
            "scf.for induction variable must be index"
        );
        check_terminator(ctx, op, YIELD)?;
        let term = ctx.terminator(block).expect("checked");
        ir_ensure!(
            ctx.operands(term).len() == iter_count,
            "scf.yield must pass {iter_count} loop-carried values"
        );
        Ok(())
    });
    v.register(IF, |ctx, op| {
        ir_ensure!(ctx.operands(op).len() == 1, "scf.if takes one condition");
        ir_ensure!(
            ctx.value_type(ctx.operands(op)[0]) == &Type::I1,
            "scf.if condition must be i1"
        );
        let nregions = ctx.regions(op).len();
        ir_ensure!(
            nregions == 1 || nregions == 2,
            "scf.if has a then region and an optional else region"
        );
        for &region in ctx.regions(op) {
            ir_ensure!(
                !ctx.region_blocks(region).is_empty(),
                "scf.if regions must contain a block"
            );
        }
        if !ctx.results(op).is_empty() {
            ir_ensure!(nregions == 2, "scf.if with results needs both branches");
        }
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{constant_f64, constant_index};
    use crate::builtin::create_module;
    use shmls_ir::verifier::{verify_with, OpVerifiers};

    fn verifiers() -> OpVerifiers {
        let mut v = OpVerifiers::new();
        register_verifiers(&mut v);
        v
    }

    #[test]
    fn for_loop_shape() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let lb = constant_index(&mut b, 0);
        let ub = constant_index(&mut b, 8);
        let st = constant_index(&mut b, 1);
        let init = constant_f64(&mut b, 0.0);
        let (for_op, loop_body) = for_loop(&mut b, lb, ub, st, vec![init]);
        let acc = ctx.block_args(loop_body)[1];
        let mut ib = OpBuilder::at_block_end(&mut ctx, loop_body);
        yield_op(&mut ib, vec![acc]);
        verify_with(&ctx, module, &verifiers()).unwrap();
        assert_eq!(ctx.results(for_op).len(), 1);
        assert_eq!(ctx.value_type(induction_var(&ctx, for_op)), &Type::Index);
        let (l, u, s) = loop_bounds(&ctx, for_op);
        assert_eq!((l, u, s), (lb, ub, st));
    }

    #[test]
    fn yield_arity_mismatch_rejected() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let lb = constant_index(&mut b, 0);
        let ub = constant_index(&mut b, 8);
        let st = constant_index(&mut b, 1);
        let init = constant_f64(&mut b, 0.0);
        let (_for_op, loop_body) = for_loop(&mut b, lb, ub, st, vec![init]);
        let mut ib = OpBuilder::at_block_end(&mut ctx, loop_body);
        yield_op(&mut ib, vec![]); // wrong arity
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("loop-carried"), "{e}");
    }

    #[test]
    fn if_needs_else_for_results() {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let c = b.build_value("arith.constant", vec![], Type::I1);
        let (op, then_b) =
            b.build_with_region(IF, vec![c], vec![Type::F64], Default::default(), vec![]);
        let mut ib = OpBuilder::at_block_end(&mut ctx, then_b);
        let v = constant_f64(&mut ib, 1.0);
        yield_op(&mut ib, vec![v]);
        let _ = op;
        let e = verify_with(&ctx, module, &verifiers()).unwrap_err();
        assert!(e.to_string().contains("both branches"), "{e}");
    }
}
