//! The fuzzing loop: generate → compile → differential-check → shrink →
//! persist. This is what `repro fuzz` drives.

use std::path::PathBuf;

use shmls_frontend::{kernel_to_source, KernelDef};
use stencil_hmls::cache::Fnv64;

use crate::corpus::{write_reproducer, ReproMeta};
use crate::generator::{generate, GenOptions};
use crate::harness::{check_kernel, CheckOptions, Failure, ScaleConfig};
use crate::rng::Rng;
use crate::shrink::shrink;

/// Fuzzing-run configuration.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of kernels to generate and check.
    pub cases: u64,
    /// Master seed: fixes the exact kernel sequence.
    pub seed: u64,
    /// Harness configuration (engines, tolerance, injection, …).
    pub check: CheckOptions,
    /// Generator shape limits.
    pub gen: GenOptions,
    /// Where to write minimized reproducers (`None` disables writing).
    pub corpus_dir: Option<PathBuf>,
    /// Predicate-evaluation budget per shrink.
    pub shrink_budget: usize,
    /// Stop after this many failures (each one compiles and runs hundreds
    /// of shrink candidates; a broken build fails everywhere).
    pub max_failures: usize,
    /// Also run each case through one multi-CU/time-marching
    /// configuration ([`rotated_scale`]) unless [`CheckOptions::scale`]
    /// already pins one. On by default; `repro fuzz --no-scale` disables.
    pub scale: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            cases: 200,
            seed: 1,
            check: CheckOptions::default(),
            gen: GenOptions::default(),
            corpus_dir: None,
            shrink_budget: 400,
            max_failures: 5,
            scale: true,
        }
    }
}

/// The scale configuration case `case` is fuzzed with: `cus ∈ {1, 2, 3}`
/// rotates fastest and `steps ∈ {1, 2, 4}` next, so nine consecutive
/// cases cover the full product without multiplying per-case cost by
/// nine. Deterministic in the case index — the same seed replays the
/// same configurations.
pub fn rotated_scale(case: u64) -> ScaleConfig {
    const CUS: [usize; 3] = [1, 2, 3];
    const STEPS: [usize; 3] = [1, 2, 4];
    ScaleConfig {
        cus: CUS[(case % 3) as usize],
        steps: STEPS[((case / 3) % 3) as usize],
    }
}

/// One failing case, original and minimized.
#[derive(Debug)]
pub struct FuzzFailure {
    /// Case index under the run's seed.
    pub case: u64,
    /// The kernel as generated.
    pub kernel: KernelDef,
    /// The original failure.
    pub failure: Failure,
    /// The minimized kernel (same failure kind).
    pub shrunk: KernelDef,
    /// The failure the minimized kernel produces.
    pub shrunk_failure: Failure,
    /// Where the reproducer was written, when a corpus dir was given.
    pub reproducer: Option<PathBuf>,
}

/// Outcome of a whole fuzzing run.
#[derive(Debug)]
pub struct FuzzSummary {
    /// Cases checked.
    pub cases: u64,
    /// Cases where the requested fault was actually injected.
    pub injected: u64,
    /// FNV-1a digest over every generated kernel's DSL source — two runs
    /// with the same seed and case count must print the same digest
    /// (the CLI surfaces it so determinism is checkable from the shell).
    pub digest: u64,
    /// All failures, in case order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzSummary {
    /// True when every case agreed on every engine.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the fuzzer. `log` receives one line per failure and occasional
/// progress notes (pass `|_| ()` to silence).
pub fn run_fuzz(opts: &FuzzOptions, log: &mut dyn FnMut(&str)) -> FuzzSummary {
    let root = Rng::new(opts.seed);
    let mut digest = Fnv64::new();
    let mut injected = 0u64;
    let mut failures = Vec::new();
    let mut checked = 0u64;

    for case in 0..opts.cases {
        let mut rng = root.fork(case);
        let kernel = generate(&mut rng, case, &opts.gen);
        digest.update(kernel_to_source(&kernel).as_bytes());
        checked += 1;

        let mut check = opts.check.clone();
        if opts.scale && check.scale.is_empty() {
            check.scale = vec![rotated_scale(case)];
        }
        let report = check_kernel(&kernel, &check);
        if report.injected {
            injected += 1;
        }
        let Some(failure) = report.failure else {
            continue;
        };
        log(&format!("case {case}: {failure}"));

        // Shrink, preserving the failure *kind* (an offset flip that
        // mismatches must still mismatch, not merely fail somehow). For a
        // scale failure, the configuration is minimized first — fewest
        // total slab-runs, then fewest steps — and pinned before the
        // kernel itself shrinks.
        let kind = failure.kind();
        if let Some(orig) = failure.scale() {
            check.scale = vec![minimize_scale(&kernel, &check, orig, kind, log)];
        }
        let mut still_fails = |candidate: &KernelDef| {
            check_kernel(candidate, &check)
                .failure
                .map(|f| f.kind() == kind)
                .unwrap_or(false)
        };
        let shrunk = shrink(&kernel, opts.shrink_budget, &mut still_fails);
        let shrunk_failure = check_kernel(&shrunk, &check)
            .failure
            .expect("shrunk kernel no longer fails");
        log(&format!(
            "case {case}: shrunk {} -> {} DSL lines",
            kernel_to_source(&kernel).lines().count(),
            kernel_to_source(&shrunk).lines().count()
        ));

        let reproducer = opts.corpus_dir.as_ref().and_then(|dir| {
            let meta = ReproMeta {
                seed: opts.seed,
                case,
                kind: kind.to_string(),
                detail: shrunk_failure.to_string(),
                engines: opts
                    .check
                    .engines
                    .iter()
                    .map(|e| e.name())
                    .collect::<Vec<_>>()
                    .join(","),
                inject: opts.check.inject,
                data_seed: opts.check.data_seed,
                scale: shrunk_failure.scale().map(|s| (s.cus, s.steps)),
            };
            match write_reproducer(dir, &shrunk, &meta) {
                Ok(path) => {
                    log(&format!("case {case}: reproducer -> {}", path.display()));
                    Some(path)
                }
                Err(e) => {
                    log(&format!("case {case}: cannot write reproducer: {e}"));
                    None
                }
            }
        });

        failures.push(FuzzFailure {
            case,
            kernel,
            failure,
            shrunk,
            shrunk_failure,
            reproducer,
        });
        if failures.len() >= opts.max_failures {
            log(&format!(
                "stopping after {} failures ({} of {} cases checked)",
                failures.len(),
                checked,
                opts.cases
            ));
            break;
        }
    }

    FuzzSummary {
        cases: checked,
        injected,
        digest: digest.finish(),
        failures,
    }
}

/// Find the smallest `(cus, steps)` at or below `orig` that still
/// produces a failure of the same kind on `kernel`: candidates are
/// ordered by total slab-runs (`cus × steps`), then by `steps`, so the
/// reproducer pins the cheapest configuration that exhibits the bug.
/// Falls back to `orig` when nothing smaller fails.
fn minimize_scale(
    kernel: &KernelDef,
    check: &CheckOptions,
    orig: ScaleConfig,
    kind: &str,
    log: &mut dyn FnMut(&str),
) -> ScaleConfig {
    let mut candidates: Vec<ScaleConfig> = Vec::new();
    for cus in [1usize, 2, 3] {
        for steps in [1usize, 2, 4] {
            if cus <= orig.cus && steps <= orig.steps && (cus, steps) != (orig.cus, orig.steps) {
                candidates.push(ScaleConfig { cus, steps });
            }
        }
    }
    candidates.sort_by_key(|c| (c.cus * c.steps, c.steps));
    for cand in candidates {
        let mut probe = check.clone();
        probe.scale = vec![cand];
        let fails_same = check_kernel(kernel, &probe)
            .failure
            .map(|f| f.kind() == kind)
            .unwrap_or(false);
        if fails_same {
            log(&format!("scale config minimized: ({orig}) -> ({cand})"));
            return cand;
        }
    }
    orig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Fault;

    /// Small clean run: every generated kernel must agree on every
    /// engine. This is the in-tree version of the CI smoke pass.
    #[test]
    fn small_clean_run_has_no_failures() {
        let opts = FuzzOptions {
            cases: 12,
            seed: 1,
            ..Default::default()
        };
        let summary = run_fuzz(&opts, &mut |_| ());
        assert_eq!(summary.cases, 12);
        assert!(
            summary.clean(),
            "differential failures: {:?}",
            summary
                .failures
                .iter()
                .map(|f| f.failure.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn rotation_covers_the_full_scale_product() {
        let mut seen: Vec<(usize, usize)> = (0..9)
            .map(rotated_scale)
            .map(|s| (s.cus, s.steps))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 9, "nine cases must cover all nine configs");
        // And the rotation is purely case-indexed.
        assert_eq!(rotated_scale(4), rotated_scale(13));
    }

    /// The scale dimension runs by default and stays clean: slab
    /// time-marching agrees with the iterated oracle on generated
    /// kernels. `--no-scale` (scale: false) must skip it.
    #[test]
    fn scale_dimension_is_clean_on_generated_kernels() {
        let opts = FuzzOptions {
            cases: 9, // one full rotation of (cus, steps)
            seed: 3,
            check: CheckOptions {
                engines: vec![crate::harness::Engine::Hls],
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(opts.scale, "scale dimension must default on");
        let summary = run_fuzz(&opts, &mut |_| ());
        assert!(
            summary.clean(),
            "scale failures: {:?}",
            summary
                .failures
                .iter()
                .map(|f| f.failure.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn digest_is_seed_deterministic() {
        let run = |seed| {
            let opts = FuzzOptions {
                cases: 8,
                seed,
                // Generation is independent of the engine set; prove it
                // by checking nothing (cases still generate + digest).
                check: CheckOptions {
                    engines: vec![],
                    ..Default::default()
                },
                ..Default::default()
            };
            run_fuzz(&opts, &mut |_| ()).digest
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    /// The acceptance-criteria loop in miniature: an injected miscompile
    /// must be caught and shrink to a tiny reproducer.
    #[test]
    fn injected_fault_is_caught_and_shrunk() {
        let opts = FuzzOptions {
            cases: 10,
            seed: 1,
            check: CheckOptions {
                inject: Some(Fault::OffsetFlip),
                ..Default::default()
            },
            max_failures: 1,
            ..Default::default()
        };
        let summary = run_fuzz(&opts, &mut |_| ());
        assert!(summary.injected > 0, "fault never applied");
        assert!(
            !summary.failures.is_empty(),
            "injected miscompile went undetected"
        );
        let f = &summary.failures[0];
        assert_eq!(f.shrunk_failure.kind(), f.failure.kind());
        let lines = kernel_to_source(&f.shrunk).lines().count();
        assert!(lines <= 15, "reproducer too large: {lines} lines");
    }
}
