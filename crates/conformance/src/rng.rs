//! A tiny deterministic PRNG (SplitMix64).
//!
//! The fuzzer's contract is *same seed → same kernels, on every host and
//! every build of this crate*. Library generators do not promise
//! cross-version stream stability, so the conformance suite carries its
//! own: SplitMix64 is 9 lines, passes BigCrush, and its output sequence
//! is fixed by the algorithm, not by a crate version.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Derive an independent stream for item `index` — used so every fuzz
    /// case gets its own generator and shrinking/replaying one case never
    /// shifts the kernels of the cases after it.
    pub fn fork(&self, index: u64) -> Rng {
        let mut r = Rng::new(self.state ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        r.next_u64(); // decorrelate nearby indices
        Rng::new(r.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Modulo bias is
    /// irrelevant at fuzzer range sizes.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Pick an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len() - 1)]
    }

    /// Uniform float in `[lo, hi)` with ~3 decimal digits — coarse on
    /// purpose, so generated literals print compactly and round-trip
    /// exactly through the DSL printer/parser.
    pub fn coarse_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let steps = 2000.0;
        let t = (self.next_u64() % steps as u64) as f64 / steps;
        let raw = lo + t * (hi - lo);
        (raw * 1000.0).round() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn forks_are_stable_and_distinct() {
        let root = Rng::new(7);
        let mut f0 = root.fork(0);
        let mut f0b = root.fork(0);
        let mut f1 = root.fork(1);
        let x = f0.next_u64();
        assert_eq!(x, f0b.next_u64());
        assert_ne!(x, f1.next_u64());
    }

    #[test]
    fn ranges_are_inclusive() {
        let mut r = Rng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = r.range_i64(-1, 1);
            assert!((-1..=1).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 3);
    }
}
