//! The differential harness: compile one kernel, run it on every engine,
//! compare against the interpreter oracle.
//!
//! The oracle is the pure IR interpreter executing the *stencil-dialect*
//! function in sequential program order. That is a valid reference for
//! every dataflow engine because the generated design is a Kahn process
//! network: each stage is a deterministic sequential process and the
//! streams are unbounded-in-principle FIFOs, so by the Kahn principle the
//! network's history is independent of scheduling — sequential order is
//! one legal schedule, and every engine must produce its values.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use shmls_fpga_sim::cycle::simulate;
use shmls_fpga_sim::design::DesignDescriptor;
use shmls_frontend::{FieldKind, KernelDef};
use shmls_ir::attributes::Attribute;
use shmls_ir::bytecode::ApplyMode;
use shmls_ir::interp::Buffer;
use stencil_hmls::runner::{
    run_cpu, run_hls, run_hls_threaded, run_stencil, run_stencil_bytecode_with, KernelData,
};
use stencil_hmls::scale::{run_time_marched, time_march_reference};
use stencil_hmls::{compile_kernel, CompileOptions, CompiledKernel, TargetPath};

use crate::rng::Rng;

/// One engine under test (the oracle itself is not listed: every check is
/// *against* it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Bytecode tier, scalar dispatch: the stencil function with every
    /// `stencil.apply` executed as a compiled register program, one point
    /// per program dispatch. Checked at zero ULPs — the tier's contract
    /// is bitwise equality with the tree-walker.
    Bytecode,
    /// Bytecode tier, vector dispatch: the same register programs
    /// executed over [`shmls_ir::bytecode::LANES`]-point chunks with the
    /// interior/halo row split, threaded over the axis-0 slab partition.
    /// Also checked at zero ULPs: chunking and threading are pure
    /// scheduling — no reassociation, no cross-lane arithmetic.
    Simd,
    /// Von-Neumann loop-nest lowering, interpreted.
    Cpu,
    /// Sequential Kahn executor over the HLS dataflow design.
    Hls,
    /// Threaded engine: one OS thread per stage, bounded FIFOs.
    Threaded,
    /// Cycle-stepped token simulator (checked for deadlock-free
    /// completion and full drain — it models time, not values).
    Cycle,
}

impl Engine {
    /// Every engine, in check order.
    pub const ALL: [Engine; 6] = [
        Engine::Bytecode,
        Engine::Simd,
        Engine::Cpu,
        Engine::Hls,
        Engine::Threaded,
        Engine::Cycle,
    ];

    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Bytecode => "bytecode",
            Engine::Simd => "simd",
            Engine::Cpu => "cpu",
            Engine::Hls => "hls",
            Engine::Threaded => "threaded",
            Engine::Cycle => "cycle",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<Engine> {
        Engine::ALL.iter().copied().find(|e| e.name() == name)
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deliberate miscompile, injected into the *compiled* design after the
/// oracle's IR is fixed — the debug hook that proves the harness can see
/// real bugs (ISSUE 3 acceptance: an injected fault must be caught and
/// shrunk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Flip one window access: bump the first compute-stage
    /// `llvm.extractvalue` position by one window slot — exactly the
    /// "flipped access offset" class of stencil miscompile.
    OffsetFlip,
    /// Swap the first `arith.addf` in the HLS function to `arith.subf`.
    OpSwap,
}

impl Fault {
    /// CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::OffsetFlip => "offset-flip",
            Fault::OpSwap => "op-swap",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<Fault> {
        [Fault::OffsetFlip, Fault::OpSwap]
            .into_iter()
            .find(|f| f.name() == name)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scale-out configuration to check differentially: the kernel is
/// time-marched over `steps` steps on `cus` parallel compute units and
/// compared against the sequential interpreter oracle iterated the same
/// number of steps. Configurations are clamped per kernel (see
/// [`clamp_scale`]) so generated kernels with tiny grids stay runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Compute units (slabs along axis 0).
    pub cus: usize,
    /// Timesteps.
    pub steps: usize,
}

impl fmt::Display for ScaleConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cus={} steps={}", self.cus, self.steps)
    }
}

/// Clamp a scale configuration to what `kernel`'s grid supports: at most
/// one CU per row, and, for multi-step runs, few enough CUs that every
/// slab is at least a halo tall (otherwise the exchange cannot supply a
/// full halo and the runner rejects the split).
pub fn clamp_scale(kernel: &KernelDef, cfg: ScaleConfig) -> ScaleConfig {
    let n0 = kernel.grid[0];
    let mut cus = cfg.cus.max(1).min(n0.max(1) as usize);
    if cfg.steps > 1 {
        while cus > 1 && n0 / (cus as i64) < kernel.halo {
            cus -= 1;
        }
    }
    ScaleConfig {
        cus,
        steps: cfg.steps.max(1),
    }
}

/// How a case failed. Carries enough context to be actionable without the
/// full IR (which `CompiledKernel::snapshots` provides when enabled).
#[derive(Debug, Clone)]
pub enum Failure {
    /// The pipeline rejected a valid generated kernel.
    Compile(String),
    /// The oracle itself failed to execute.
    Oracle(String),
    /// An engine returned an error.
    Engine {
        /// Which engine.
        engine: Engine,
        /// Its error text.
        error: String,
    },
    /// An engine completed with values disagreeing with the oracle.
    Mismatch {
        /// Which engine.
        engine: Engine,
        /// Output field with the worst disagreement.
        field: String,
        /// Interior point of the worst disagreement.
        point: Vec<i64>,
        /// Oracle value there.
        expect: f64,
        /// Engine value there.
        got: f64,
        /// ULP distance (`u64::MAX` when only one side is NaN).
        ulps: u64,
    },
    /// An engine deadlocked.
    Deadlock {
        /// Which engine.
        engine: Engine,
        /// The engine's structured report, rendered.
        report: String,
    },
    /// The scale-out path (multi-CU time-marching) returned an error.
    ScaleError {
        /// The (clamped) configuration that failed.
        scale: ScaleConfig,
        /// Its error text.
        error: String,
    },
    /// The scale-out path disagrees with the iterated sequential oracle.
    ScaleMismatch {
        /// The (clamped) configuration that failed.
        scale: ScaleConfig,
        /// Output field with the worst disagreement.
        field: String,
        /// Interior point of the worst disagreement.
        point: Vec<i64>,
        /// Oracle value there.
        expect: f64,
        /// Scale-path value there.
        got: f64,
        /// ULP distance (`u64::MAX` when only one side is NaN).
        ulps: u64,
    },
}

impl Failure {
    /// Stable one-word class, used by the shrinker to preserve the
    /// failure kind and by reproducer headers.
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Compile(_) => "compile-error",
            Failure::Oracle(_) => "oracle-error",
            Failure::Engine { .. } => "engine-error",
            Failure::Mismatch { .. } => "mismatch",
            Failure::Deadlock { .. } => "deadlock",
            Failure::ScaleError { .. } => "scale-error",
            Failure::ScaleMismatch { .. } => "scale-mismatch",
        }
    }

    /// The scale configuration involved, for scale failures.
    pub fn scale(&self) -> Option<ScaleConfig> {
        match self {
            Failure::ScaleError { scale, .. } | Failure::ScaleMismatch { scale, .. } => {
                Some(*scale)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Compile(e) => write!(f, "compile error: {e}"),
            Failure::Oracle(e) => write!(f, "oracle error: {e}"),
            Failure::Engine { engine, error } => write!(f, "engine `{engine}` error: {error}"),
            Failure::Mismatch {
                engine,
                field,
                point,
                expect,
                got,
                ulps,
            } => write!(
                f,
                "engine `{engine}` disagrees with oracle on `{field}` at {point:?}: \
                 expected {expect:e}, got {got:e} ({ulps} ulps)"
            ),
            Failure::Deadlock { engine, report } => {
                write!(f, "engine `{engine}` deadlocked:\n{report}")
            }
            Failure::ScaleError { scale, error } => {
                write!(f, "scale run ({scale}) error: {error}")
            }
            Failure::ScaleMismatch {
                scale,
                field,
                point,
                expect,
                got,
                ulps,
            } => write!(
                f,
                "scale run ({scale}) disagrees with the iterated oracle on `{field}` \
                 at {point:?}: expected {expect:e}, got {got:e} ({ulps} ulps)"
            ),
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Engines to check (the oracle always runs).
    pub engines: Vec<Engine>,
    /// Largest tolerated ULP distance per point. The engines execute the
    /// same f64 operation sequence, so the default is exact agreement.
    pub max_ulps: u64,
    /// Threaded-engine watchdog before a run is declared deadlocked.
    pub watchdog: Duration,
    /// Inject this fault into the compiled design before the engine runs.
    pub inject: Option<Fault>,
    /// Seed for the generated input data.
    pub data_seed: u64,
    /// Capture per-stage IR snapshots on the compiled kernel.
    pub snapshots: bool,
    /// Scale-out configurations to check after the engines pass: each is
    /// clamped per kernel ([`clamp_scale`]), time-marched on parallel
    /// CUs, and compared against the iterated sequential oracle at the
    /// same [`CheckOptions::max_ulps`]. Empty by default.
    pub scale: Vec<ScaleConfig>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            engines: Engine::ALL.to_vec(),
            max_ulps: 0,
            watchdog: Duration::from_secs(20),
            inject: None,
            data_seed: 1,
            snapshots: false,
            scale: Vec::new(),
        }
    }
}

/// Result of checking one kernel.
#[derive(Debug)]
pub struct CheckReport {
    /// The first failure, if any.
    pub failure: Option<Failure>,
    /// Whether a requested fault was actually injected (a fault can be
    /// inapplicable, e.g. `offset-flip` on a halo-0 single-slot window).
    pub injected: bool,
    /// Per-stage IR snapshots when [`CheckOptions::snapshots`] is set.
    pub snapshots: Vec<(String, String)>,
}

/// Compile `kernel` and check every configured engine against the oracle.
pub fn check_kernel(kernel: &KernelDef, opts: &CheckOptions) -> CheckReport {
    let needs_cpu = opts.engines.contains(&Engine::Cpu);
    let compile_opts = CompileOptions {
        paths: if needs_cpu {
            TargetPath::HlsAndCpu
        } else {
            TargetPath::HlsOnly
        },
        time_passes: false,
        snapshots: opts.snapshots,
        ..Default::default()
    };
    let mut compiled = match compile_kernel(kernel.clone(), &compile_opts) {
        Ok(c) => c,
        Err(e) => {
            return CheckReport {
                failure: Some(Failure::Compile(e.to_string())),
                injected: false,
                snapshots: Vec::new(),
            }
        }
    };

    let data = make_data(kernel, opts.data_seed);

    // The oracle runs on the pristine design; faults are injected after,
    // so only the engines see the miscompile.
    let oracle = match run_stencil(&compiled, &data) {
        Ok(o) => o,
        Err(e) => {
            return CheckReport {
                failure: Some(Failure::Oracle(e.to_string())),
                injected: false,
                snapshots: std::mem::take(&mut compiled.snapshots),
            }
        }
    };

    let injected = match opts.inject {
        Some(fault) => inject_fault(&mut compiled, fault),
        None => false,
    };

    let mut failure = None;
    for &engine in &opts.engines {
        if let Some(f) = check_engine(engine, &compiled, &data, &oracle, opts) {
            failure = Some(f);
            break;
        }
    }
    if failure.is_none() {
        for &cfg in &opts.scale {
            // The scale path compiles its own pristine slab designs, so
            // an injected engine fault cannot leak in here; the oracle
            // side iterates the unmutated stencil function.
            if let Some(f) = check_scale(kernel, &compiled, &data, cfg, opts.max_ulps) {
                failure = Some(f);
                break;
            }
        }
    }
    CheckReport {
        failure,
        injected,
        snapshots: std::mem::take(&mut compiled.snapshots),
    }
}

fn check_engine(
    engine: Engine,
    compiled: &CompiledKernel,
    data: &KernelData,
    oracle: &BTreeMap<String, Buffer>,
    opts: &CheckOptions,
) -> Option<Failure> {
    let compare = |out: &BTreeMap<String, Buffer>| {
        compare_outputs(engine, &compiled.kernel, oracle, out, opts.max_ulps)
    };
    match engine {
        Engine::Bytecode => {
            // Bitwise contract: the bytecode tier is checked at zero
            // ULPs, whatever tolerance the other engines run under.
            // Scalar mode is pinned so this engine keeps covering the
            // per-point dispatch path now that the default is chunked.
            match run_stencil_bytecode_with(compiled, data, ApplyMode::Scalar) {
                Ok(out) => compare_outputs(engine, &compiled.kernel, oracle, &out, 0),
                Err(e) => Some(Failure::Engine {
                    engine,
                    error: e.to_string(),
                }),
            }
        }
        Engine::Simd => {
            // The vector tier under its most adversarial schedule:
            // chunked rows *and* a slab thread fan-out. Still zero ULPs —
            // mode changes scheduling, never arithmetic.
            match run_stencil_bytecode_with(compiled, data, ApplyMode::Chunked { threads: 3 }) {
                Ok(out) => compare_outputs(engine, &compiled.kernel, oracle, &out, 0),
                Err(e) => Some(Failure::Engine {
                    engine,
                    error: e.to_string(),
                }),
            }
        }
        Engine::Cpu => match run_cpu(compiled, data) {
            Ok(out) => compare(&out),
            Err(e) => Some(Failure::Engine {
                engine,
                error: e.to_string(),
            }),
        },
        Engine::Hls => match run_hls(compiled, data) {
            Ok((out, _stats)) => compare(&out),
            Err(e) => Some(Failure::Engine {
                engine,
                error: e.to_string(),
            }),
        },
        Engine::Threaded => match run_hls_threaded(compiled, data, opts.watchdog) {
            Ok(Ok(out)) => compare(&out),
            Ok(Err(report)) => Some(Failure::Deadlock {
                engine,
                report: report.to_string(),
            }),
            Err(e) => Some(Failure::Engine {
                engine,
                error: e.to_string(),
            }),
        },
        Engine::Cycle => {
            let design = match DesignDescriptor::from_hls_func(&compiled.ctx, compiled.hls_func) {
                Ok(d) => d,
                Err(e) => {
                    return Some(Failure::Engine {
                        engine,
                        error: e.to_string(),
                    })
                }
            };
            match simulate(&design, None) {
                // `simulate` only returns Ok when every stage finished:
                // the design drains completely at declared FIFO depths.
                Ok(_report) => None,
                Err(report) => Some(Failure::Deadlock {
                    engine,
                    report: report.to_string(),
                }),
            }
        }
    }
}

/// Check one (clamped) scale configuration: time-march the kernel over
/// parallel CU slabs and compare against the sequential interpreter
/// oracle iterated the same number of steps with the same feedback
/// pairing.
fn check_scale(
    kernel: &KernelDef,
    compiled: &CompiledKernel,
    data: &KernelData,
    cfg: ScaleConfig,
    max_ulps: u64,
) -> Option<Failure> {
    let scale = clamp_scale(kernel, cfg);
    let oracle = match time_march_reference(kernel, data, scale.steps, |d| run_stencil(compiled, d))
    {
        Ok(o) => o,
        Err(e) => {
            return Some(Failure::ScaleError {
                scale,
                error: format!("iterated oracle: {e}"),
            })
        }
    };
    let slab_opts = CompileOptions {
        paths: TargetPath::HlsOnly,
        time_passes: false,
        ..Default::default()
    };
    let marched = match run_time_marched(kernel, data, scale.steps, scale.cus, &slab_opts) {
        Ok((out, _report)) => out,
        Err(e) => {
            return Some(Failure::ScaleError {
                scale,
                error: e.to_string(),
            })
        }
    };
    let lb = vec![0i64; kernel.rank()];
    let mut worst: Option<(u64, String, Vec<i64>, f64, f64)> = None;
    for (name, expect_buf) in &oracle {
        let Some(got_buf) = marched.get(name) else {
            return Some(Failure::ScaleError {
                scale,
                error: format!("output `{name}` missing from scale-run results"),
            });
        };
        for p in shmls_ir::interp::iter_box(&lb, &kernel.grid) {
            let expect = expect_buf.load(&p).unwrap_or(f64::NAN);
            let got = got_buf.load(&p).unwrap_or(f64::NAN);
            let d = ulp_distance(expect, got);
            if d > max_ulps && worst.as_ref().is_none_or(|(w, ..)| d > *w) {
                worst = Some((d, name.clone(), p, expect, got));
            }
        }
    }
    worst.map(|(ulps, field, point, expect, got)| Failure::ScaleMismatch {
        scale,
        field,
        point,
        expect,
        got,
        ulps,
    })
}

/// Deterministic input data for a kernel: every input/inout field, every
/// axis parameter, every scalar constant. Values are small and irregular
/// so a flipped access or dropped term moves some interior point.
pub fn make_data(kernel: &KernelDef, data_seed: u64) -> KernelData {
    let bounds = shmls_ir::types::StencilBounds::from_extents(&kernel.grid).grown(kernel.halo);
    let mut data = KernelData::default();
    let root = Rng::new(data_seed);
    let mut stream = 0u64;
    for field in &kernel.fields {
        if matches!(field.kind, FieldKind::Input | FieldKind::InOut) {
            let mut rng = root.fork(stream);
            let mut buf = Buffer::zeroed(bounds.extents(), bounds.lb.clone());
            for v in buf.data.iter_mut() {
                *v = rng.coarse_f64(-4.0, 4.0);
            }
            data = data.buffer(&field.name, buf);
        }
        stream += 1;
    }
    for p in &kernel.params {
        let mut rng = root.fork(stream);
        let extent = kernel.grid[p.axis] + 2 * kernel.halo;
        let mut buf = Buffer::zeroed(vec![extent], vec![0]);
        for v in buf.data.iter_mut() {
            *v = rng.coarse_f64(-2.0, 2.0);
        }
        data = data.buffer(&p.name, buf);
        stream += 1;
    }
    for c in &kernel.consts {
        let mut rng = root.fork(stream);
        data = data.scalar(&c.name, rng.coarse_f64(-2.0, 2.0));
        stream += 1;
    }
    data
}

/// Compare engine outputs to the oracle over the grid interior (neither
/// side produces halo values). Returns the worst-offending point.
fn compare_outputs(
    engine: Engine,
    kernel: &KernelDef,
    oracle: &BTreeMap<String, Buffer>,
    out: &BTreeMap<String, Buffer>,
    max_ulps: u64,
) -> Option<Failure> {
    let lb = vec![0i64; kernel.rank()];
    let mut worst: Option<(u64, String, Vec<i64>, f64, f64)> = None;
    for (name, expect_buf) in oracle {
        let Some(got_buf) = out.get(name) else {
            return Some(Failure::Engine {
                engine,
                error: format!("output `{name}` missing from engine results"),
            });
        };
        for p in shmls_ir::interp::iter_box(&lb, &kernel.grid) {
            let expect = expect_buf.load(&p).unwrap_or(f64::NAN);
            let got = got_buf.load(&p).unwrap_or(f64::NAN);
            let d = ulp_distance(expect, got);
            if d > max_ulps && worst.as_ref().is_none_or(|(w, ..)| d > *w) {
                worst = Some((d, name.clone(), p, expect, got));
            }
        }
    }
    worst.map(|(ulps, field, point, expect, got)| Failure::Mismatch {
        engine,
        field,
        point,
        expect,
        got,
        ulps,
    })
}

/// ULP distance between two doubles. Equal values (including
/// `-0.0 == 0.0`) and NaN-vs-NaN are distance 0; NaN against a number is
/// `u64::MAX`.
///
/// Finite values are compared through the standard sign-magnitude
/// mapping: reinterpret the bits as `i64` and reflect negative values
/// through `i64::MIN - bits`, which sends *both* zeros to 0 and makes
/// the integer line monotone in the float line. The previous mapping
/// (flip negatives, set the sign bit on positives) kept `-0.0` and
/// `+0.0` as two distinct codes, so any pair straddling zero measured
/// one ULP too wide — `(-ε, +ε)` reported 3 instead of 2, which matters
/// when the harness's tolerance is a small ULP budget.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN - bits
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

/// Inject `fault` into the compiled design's HLS function. Returns
/// whether anything was mutated (the fault may be inapplicable).
pub fn inject_fault(compiled: &mut CompiledKernel, fault: Fault) -> bool {
    match fault {
        Fault::OffsetFlip => {
            let window = compiled.report.window_elems as i64;
            if window <= 1 {
                return false; // single-slot window: no offset to flip
            }
            for op in compiled.ctx.walk_collect(compiled.hls_func) {
                if compiled.ctx.op_name(op) != "llvm.extractvalue" {
                    continue;
                }
                if let Some(Attribute::IndexArray(pos)) = compiled.ctx.attr(op, "position") {
                    if pos.len() == 2 && pos[1] < window {
                        let mut flipped = pos.clone();
                        flipped[1] = (flipped[1] + 1) % window;
                        compiled
                            .ctx
                            .set_attr(op, "position", Attribute::IndexArray(flipped));
                        return true;
                    }
                }
            }
            false
        }
        Fault::OpSwap => {
            for op in compiled.ctx.walk_collect(compiled.hls_func) {
                if compiled.ctx.op_name(op) == "arith.addf" {
                    compiled.ctx.set_op_name(op, "arith.subf");
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_frontend::parse_kernel;

    const SRC: &str = r#"
kernel h {
  grid(6, 5)
  halo 1
  field a : input
  field b : output
  compute b { b = a[-1,0] + a[1,0] + a[0,-1] }
}
"#;

    #[test]
    fn clean_kernel_passes_all_engines() {
        let k = parse_kernel(SRC).unwrap();
        let report = check_kernel(&k, &CheckOptions::default());
        assert!(report.failure.is_none(), "{}", report.failure.unwrap());
        assert!(!report.injected);
    }

    #[test]
    fn offset_flip_is_caught() {
        let k = parse_kernel(SRC).unwrap();
        let opts = CheckOptions {
            inject: Some(Fault::OffsetFlip),
            ..Default::default()
        };
        let report = check_kernel(&k, &opts);
        assert!(report.injected);
        match report.failure {
            Some(Failure::Mismatch { .. }) => {}
            other => panic!("expected a mismatch, got {other:?}"),
        }
    }

    #[test]
    fn op_swap_is_caught() {
        let k = parse_kernel(SRC).unwrap();
        let opts = CheckOptions {
            inject: Some(Fault::OpSwap),
            ..Default::default()
        };
        let report = check_kernel(&k, &opts);
        assert!(report.injected);
        match report.failure {
            Some(Failure::Mismatch { .. }) => {}
            other => panic!("expected a mismatch, got {other:?}"),
        }
    }

    #[test]
    fn cpu_engine_unaffected_by_hls_fault() {
        // The fault mutates only the HLS function: the CPU lowering must
        // still agree with the oracle, localising the blame.
        let k = parse_kernel(SRC).unwrap();
        let opts = CheckOptions {
            engines: vec![Engine::Cpu],
            inject: Some(Fault::OffsetFlip),
            ..Default::default()
        };
        let report = check_kernel(&k, &opts);
        assert!(report.injected);
        assert!(report.failure.is_none());
    }

    #[test]
    fn clean_kernel_passes_scale_configs() {
        let k = parse_kernel(SRC).unwrap();
        let opts = CheckOptions {
            engines: vec![Engine::Hls],
            scale: vec![
                ScaleConfig { cus: 1, steps: 1 },
                ScaleConfig { cus: 2, steps: 2 },
                ScaleConfig { cus: 3, steps: 4 },
            ],
            ..Default::default()
        };
        let report = check_kernel(&k, &opts);
        assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    }

    #[test]
    fn scale_configs_are_clamped_to_the_grid() {
        let k = parse_kernel(SRC).unwrap(); // grid(6, 5), halo 1
        let c = clamp_scale(&k, ScaleConfig { cus: 9, steps: 0 });
        assert_eq!(c, ScaleConfig { cus: 6, steps: 1 });
        // Multi-step: 6 rows over 4 CUs gives 1-row slabs — fine at halo
        // 1; a halo-2 kernel would need the CU count reduced.
        let c = clamp_scale(&k, ScaleConfig { cus: 4, steps: 2 });
        assert_eq!(c, ScaleConfig { cus: 4, steps: 2 });
        let deep = parse_kernel(
            "kernel d { grid(5, 6) halo 2 field a : input field b : output \
             compute b { b = a[-2,0] + a[0,2] } }",
        )
        .unwrap();
        let c = clamp_scale(&deep, ScaleConfig { cus: 3, steps: 2 });
        assert_eq!(c, ScaleConfig { cus: 2, steps: 2 });
        let c = clamp_scale(&deep, ScaleConfig { cus: 3, steps: 1 });
        assert_eq!(
            c,
            ScaleConfig { cus: 3, steps: 1 },
            "one step needs no exchange"
        );
    }

    #[test]
    fn scale_check_runs_even_with_an_injected_engine_fault_on_cpu_only() {
        // The fault lives in the compiled HLS function; the scale path
        // compiles its own designs and the oracle iterates the stencil
        // function, so neither side sees it and the check still passes.
        let k = parse_kernel(SRC).unwrap();
        let opts = CheckOptions {
            engines: vec![Engine::Cpu],
            inject: Some(Fault::OffsetFlip),
            scale: vec![ScaleConfig { cus: 2, steps: 2 }],
            ..Default::default()
        };
        let report = check_kernel(&k, &opts);
        assert!(report.injected);
        assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(f64::NAN, f64::NAN), 0);
        assert_eq!(ulp_distance(1.0, f64::NAN), u64::MAX);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0_f64.to_bits() + 1)), 1);
        assert_eq!(
            ulp_distance(-1.0, f64::from_bits((-1.0_f64).to_bits() + 1)),
            1
        );
        assert!(ulp_distance(-1.0, 1.0) > 1 << 60);
    }

    #[test]
    fn ulp_distance_zero_straddle_regression() {
        // The ±0.0 sign boundary: both zeros must map to the same code,
        // so a pair straddling zero is exactly the sum of each side's
        // distance to zero — not one wider.
        let eps = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(-0.0, 0.0), 0);
        assert_eq!(ulp_distance(0.0, eps), 1);
        assert_eq!(ulp_distance(-0.0, eps), 1);
        assert_eq!(ulp_distance(-eps, 0.0), 1);
        assert_eq!(ulp_distance(-eps, eps), 2, "was 3 under the old mapping");
        let two_eps = f64::from_bits(2);
        assert_eq!(ulp_distance(-eps, two_eps), 3);
        assert_eq!(ulp_distance(-two_eps, two_eps), 4);
    }
}
