//! Kernel minimisation: given a failing kernel and a predicate that
//! re-checks the failure, produce the smallest kernel (greedy, to a
//! fixpoint) that still fails.
//!
//! Reductions, largest first:
//! 1. drop a compute together with its target field,
//! 2. drop unreferenced declarations (fields/params/consts),
//! 3. drop the last grid axis,
//! 4. shrink grid extents,
//! 5. reduce the halo,
//! 6. simplify compute expressions (hoist children, zero offsets,
//!    collapse subtrees to a literal).
//!
//! Every candidate must pass [`KernelDef::validate`] *and* the caller's
//! predicate; the predicate is charged against a budget so shrinking a
//! pathological case cannot run away (each predicate call compiles and
//! executes the kernel on every engine).

use shmls_frontend::ast::{build, Expr, KernelDef};

/// Minimise `kernel` under `still_fails`, spending at most `budget`
/// predicate evaluations. `kernel` itself is assumed to fail.
pub fn shrink(
    kernel: &KernelDef,
    budget: usize,
    still_fails: &mut dyn FnMut(&KernelDef) -> bool,
) -> KernelDef {
    let mut best = kernel.clone();
    let mut remaining = budget;
    let mut accept = |candidate: &KernelDef, remaining: &mut usize| -> bool {
        if *remaining == 0 || candidate.validate().is_err() {
            return false;
        }
        *remaining -= 1;
        still_fails(candidate)
    };

    loop {
        let mut progressed = false;
        for candidate in candidates(&best) {
            if accept(&candidate, &mut remaining) {
                best = candidate;
                progressed = true;
                break; // restart: earlier (larger) reductions may now apply
            }
        }
        if !progressed || remaining == 0 {
            return best;
        }
    }
}

/// All single-step reductions of `kernel`, largest first. Invalid
/// candidates are cheap to produce and filtered by the caller.
fn candidates(k: &KernelDef) -> Vec<KernelDef> {
    let mut out = Vec::new();

    // 1. Drop a compute and its target field (later computes first: they
    // are never depended upon by earlier ones).
    for i in (0..k.computes.len()).rev() {
        let mut c = k.clone();
        let target = c.computes.remove(i).target;
        c.fields.retain(|f| f.name != target);
        out.push(c);
    }

    // 2. Drop unreferenced declarations.
    {
        let mut c = k.clone();
        let mut referenced = std::collections::BTreeSet::new();
        for compute in &c.computes {
            collect_refs(&compute.expr, &mut referenced);
            referenced.insert(compute.target.clone());
        }
        let before = (c.fields.len(), c.params.len(), c.consts.len());
        c.fields.retain(|f| referenced.contains(&f.name));
        c.params.retain(|p| referenced.contains(&p.name));
        c.consts.retain(|d| referenced.contains(&d.name));
        if (c.fields.len(), c.params.len(), c.consts.len()) != before {
            out.push(c);
        }
    }

    // 3. Drop the last grid axis (truncating accesses to the new rank).
    if k.rank() > 1 {
        let mut c = k.clone();
        c.grid.pop();
        let rank = c.grid.len();
        c.params.retain(|p| p.axis < rank);
        for compute in c.computes.iter_mut() {
            truncate_offsets(&mut compute.expr, rank);
        }
        out.push(c);
    }

    // 4. Shrink grid extents: jump to the minimum, then halve, then step.
    let min_extent = (2 * k.halo + 1).max(1);
    for axis in 0..k.rank() {
        let e = k.grid[axis];
        for target in [min_extent, (e + min_extent) / 2, e - 1] {
            if target < e && target >= min_extent {
                let mut c = k.clone();
                c.grid[axis] = target;
                out.push(c);
            }
        }
    }

    // 5. Reduce the halo to the largest offset actually used.
    {
        let mut used = 0i64;
        for compute in &k.computes {
            max_offset(&compute.expr, &mut used);
        }
        if used < k.halo {
            let mut c = k.clone();
            c.halo = used;
            out.push(c);
        }
    }

    // 6. Simplify expressions, one subtree at a time.
    for (ci, compute) in k.computes.iter().enumerate() {
        let n = subtree_count(&compute.expr);
        for idx in 0..n {
            for replacement in reductions_at(&compute.expr, idx) {
                let mut c = k.clone();
                c.computes[ci].expr = replace_subtree(&compute.expr, idx, &replacement);
                out.push(c);
            }
        }
    }

    out
}

/// Collect every field/param/const name an expression references.
fn collect_refs(e: &Expr, out: &mut std::collections::BTreeSet<String>) {
    match e {
        Expr::Num(_) => {}
        Expr::ConstRef(name) => {
            out.insert(name.clone());
        }
        Expr::FieldRef { name, .. } | Expr::ParamRef { name, .. } => {
            out.insert(name.clone());
        }
        Expr::Neg(inner) => collect_refs(inner, out),
        Expr::Bin { lhs, rhs, .. } => {
            collect_refs(lhs, out);
            collect_refs(rhs, out);
        }
        Expr::Call { args, .. } => args.iter().for_each(|a| collect_refs(a, out)),
    }
}

/// Truncate every field access to `rank` offsets.
fn truncate_offsets(e: &mut Expr, rank: usize) {
    match e {
        Expr::FieldRef { offsets, .. } => offsets.truncate(rank),
        Expr::Neg(inner) => truncate_offsets(inner, rank),
        Expr::Bin { lhs, rhs, .. } => {
            truncate_offsets(lhs, rank);
            truncate_offsets(rhs, rank);
        }
        Expr::Call { args, .. } => args.iter_mut().for_each(|a| truncate_offsets(a, rank)),
        Expr::Num(_) | Expr::ConstRef(_) | Expr::ParamRef { .. } => {}
    }
}

/// Track the largest |offset| used by any access.
fn max_offset(e: &Expr, worst: &mut i64) {
    match e {
        Expr::FieldRef { offsets, .. } => {
            for &o in offsets {
                *worst = (*worst).max(o.abs());
            }
        }
        Expr::ParamRef { offset, .. } => *worst = (*worst).max(offset.abs()),
        Expr::Neg(inner) => max_offset(inner, worst),
        Expr::Bin { lhs, rhs, .. } => {
            max_offset(lhs, worst);
            max_offset(rhs, worst);
        }
        Expr::Call { args, .. } => args.iter().for_each(|a| max_offset(a, worst)),
        Expr::Num(_) | Expr::ConstRef(_) => {}
    }
}

/// Number of nodes, preorder.
fn subtree_count(e: &Expr) -> usize {
    1 + match e {
        Expr::Neg(inner) => subtree_count(inner),
        Expr::Bin { lhs, rhs, .. } => subtree_count(lhs) + subtree_count(rhs),
        Expr::Call { args, .. } => args.iter().map(subtree_count).sum(),
        _ => 0,
    }
}

/// The subtree at preorder index `idx`.
fn subtree_at(e: &Expr, idx: usize) -> &Expr {
    fn walk<'a>(e: &'a Expr, idx: &mut usize) -> Option<&'a Expr> {
        if *idx == 0 {
            return Some(e);
        }
        *idx -= 1;
        match e {
            Expr::Neg(inner) => walk(inner, idx),
            Expr::Bin { lhs, rhs, .. } => walk(lhs, idx).or_else(|| walk(rhs, idx)),
            Expr::Call { args, .. } => args.iter().find_map(|a| walk(a, idx)),
            _ => None,
        }
    }
    let mut i = idx;
    walk(e, &mut i).expect("subtree index in range")
}

/// Copy of `e` with the subtree at preorder index `idx` replaced.
fn replace_subtree(e: &Expr, idx: usize, new: &Expr) -> Expr {
    fn walk(e: &Expr, idx: &mut usize, new: &Expr) -> Expr {
        if *idx == 0 {
            *idx = usize::MAX; // consumed
            return new.clone();
        }
        *idx -= 1;
        match e {
            Expr::Neg(inner) => Expr::Neg(Box::new(walk(inner, idx, new))),
            Expr::Bin { op, lhs, rhs } => {
                let l = walk(lhs, idx, new);
                let r = if *idx == usize::MAX {
                    rhs.as_ref().clone()
                } else {
                    walk(rhs, idx, new)
                };
                Expr::Bin {
                    op: *op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            }
            Expr::Call { f, args } => {
                let mut done = false;
                let args = args
                    .iter()
                    .map(|a| {
                        if done || *idx == usize::MAX {
                            done = true;
                            a.clone()
                        } else {
                            walk(a, idx, new)
                        }
                    })
                    .collect();
                Expr::Call { f: *f, args }
            }
            other => other.clone(),
        }
    }
    let mut i = idx;
    walk(e, &mut i, new)
}

/// Smaller expressions to try in place of the subtree at `idx`: its
/// children (hoisting), a centre-point copy of an access, then `1.0`.
fn reductions_at(root: &Expr, idx: usize) -> Vec<Expr> {
    let node = subtree_at(root, idx);
    let mut out = Vec::new();
    match node {
        Expr::Neg(inner) => out.push(inner.as_ref().clone()),
        Expr::Bin { lhs, rhs, .. } => {
            out.push(lhs.as_ref().clone());
            out.push(rhs.as_ref().clone());
        }
        Expr::Call { args, .. } => out.extend(args.iter().cloned()),
        Expr::FieldRef { name, offsets } if offsets.iter().any(|&o| o != 0) => {
            out.push(Expr::FieldRef {
                name: name.clone(),
                offsets: vec![0; offsets.len()],
            });
        }
        _ => {}
    }
    if !matches!(node, Expr::Num(_)) {
        out.push(build::num(1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_frontend::{kernel_to_source, parse_kernel};

    const WIDE: &str = r#"
kernel wide {
  grid(7, 7)
  halo 2
  field a : input
  field b : input
  field t0 : temp
  field out0 : output
  field out1 : output
  const c0
  compute t0 { t0 = a[-2,0] * 0.5 + b[0,2] }
  compute out0 { out0 = t0[0,0] + c0 * a[1,1] }
  compute out1 { out1 = b[0,-1] - a[2,0] / 2.0 }
}
"#;

    #[test]
    fn shrinks_to_single_access_when_anything_fails() {
        // Predicate: "fails" whenever the kernel still reads field `a`
        // anywhere — the shrinker should strip everything else.
        let k = parse_kernel(WIDE).unwrap();
        let mut pred = |c: &KernelDef| {
            let mut refs = std::collections::BTreeSet::new();
            for comp in &c.computes {
                collect_refs(&comp.expr, &mut refs);
            }
            refs.contains("a")
        };
        let small = shrink(&k, 2000, &mut pred);
        assert!(pred(&small));
        small.validate().unwrap();
        let src = kernel_to_source(&small);
        assert!(
            src.lines().count() <= 8,
            "expected a minimal kernel, got:\n{src}"
        );
        assert_eq!(small.computes.len(), 1);
        assert!(small.consts.is_empty());
        assert_eq!(small.rank(), 1, "axis dropping should reach 1D:\n{src}");
    }

    #[test]
    fn subtree_surgery_round_trips() {
        let k = parse_kernel(WIDE).unwrap();
        let e = &k.computes[0].expr;
        let n = subtree_count(e);
        assert!(n >= 5);
        for idx in 0..n {
            // Replacing a subtree with itself is the identity.
            let same = replace_subtree(e, idx, &subtree_at(e, idx).clone());
            assert_eq!(&same, e, "idx {idx}");
        }
    }

    #[test]
    fn budget_is_respected() {
        let k = parse_kernel(WIDE).unwrap();
        let mut calls = 0usize;
        let mut pred = |_: &KernelDef| {
            calls += 1;
            true
        };
        let _ = shrink(&k, 10, &mut pred);
        assert!(calls <= 10, "predicate called {calls} times");
    }
}
