//! Structured kernel generator: random-but-valid-by-construction
//! [`KernelDef`]s for differential testing.
//!
//! The generator targets the frontend AST directly (not DSL text), so
//! every emitted kernel satisfies [`KernelDef::validate`] by construction:
//! access offsets stay within the halo, temporaries are computed before
//! they are read and only read at offset 0, every output/temp has a
//! compute, and names are unique. Coverage knobs mirror the paper's
//! kernel shapes: 1–3D grids, star *and* box neighbourhoods, multi-field
//! kernels with temporaries, axis-parameter arrays and scalar constants,
//! and the full intrinsic set.

use shmls_frontend::ast::{
    build, ComputeDef, ConstDecl, Expr, FieldDecl, FieldKind, Intrinsic, KernelDef, ParamDecl,
};

use crate::rng::Rng;

/// Tunables for kernel generation. The defaults keep grids tiny (the
/// sequential/threaded engines interpret every stream element) while
/// still covering every structural feature.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Largest grid extent per axis.
    pub max_extent: i64,
    /// Largest halo (and therefore largest access offset).
    pub max_halo: i64,
    /// Maximum expression depth.
    pub max_depth: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_extent: 7,
            max_halo: 2,
            max_depth: 4,
        }
    }
}

/// What a compute expression may read: the context threaded through
/// expression generation.
struct Scope<'a> {
    /// Fields readable with arbitrary in-halo offsets (inputs).
    offset_fields: &'a [String],
    /// Fields readable only at offset 0 (already-computed temps).
    centre_fields: &'a [String],
    params: &'a [ParamDecl],
    consts: &'a [ConstDecl],
    rank: usize,
    halo: i64,
}

/// Generate one kernel. `case` names the kernel (`fuzz_<case>`); all
/// structure is drawn from `rng`.
pub fn generate(rng: &mut Rng, case: u64, opts: &GenOptions) -> KernelDef {
    let rank = rng.range(1, 3);
    // Halo 1 dominates (the paper's kernels); halo 2 stresses the deeper
    // shift registers; halo 0 degenerates to a pointwise map.
    let halo = match rng.range(0, 7) {
        0 => 0,
        1..=5 => 1,
        _ => 2,
    }
    .min(opts.max_halo);
    let min_extent = (2 * halo + 1).max(3);
    let grid: Vec<i64> = (0..rank)
        .map(|_| rng.range_i64(min_extent, opts.max_extent.max(min_extent)))
        .collect();

    let n_inputs = rng.range(1, 3);
    let n_temps = rng.range(0, 2);
    let n_outputs = rng.range(1, 2);
    let mut fields = Vec::new();
    let mut inputs = Vec::new();
    for i in 0..n_inputs {
        let name = format!("in{i}");
        inputs.push(name.clone());
        fields.push(FieldDecl {
            name,
            kind: FieldKind::Input,
        });
    }
    let mut temps = Vec::new();
    for i in 0..n_temps {
        let name = format!("t{i}");
        temps.push(name.clone());
        fields.push(FieldDecl {
            name,
            kind: FieldKind::Temp,
        });
    }
    let mut outputs = Vec::new();
    for i in 0..n_outputs {
        let name = format!("out{i}");
        outputs.push(name.clone());
        fields.push(FieldDecl {
            name,
            kind: FieldKind::Output,
        });
    }

    let params: Vec<ParamDecl> = (0..rng.range(0, 2))
        .map(|i| ParamDecl {
            name: format!("p{i}"),
            axis: rng.range(0, rank - 1),
        })
        .collect();
    let consts: Vec<ConstDecl> = (0..rng.range(0, 2))
        .map(|i| ConstDecl {
            name: format!("c{i}"),
        })
        .collect();

    // Temps are computed first (in declaration order), outputs after, so
    // every temp is readable (at offset 0) by everything downstream.
    let mut computes = Vec::new();
    let mut computed_temps: Vec<String> = Vec::new();
    for target in temps.iter().chain(outputs.iter()) {
        let scope = Scope {
            offset_fields: &inputs,
            centre_fields: &computed_temps,
            params: &params,
            consts: &consts,
            rank,
            halo,
        };
        let depth = rng.range(1, opts.max_depth);
        let mut expr = gen_expr(rng, &scope, depth);
        // A compute stage must consume at least one grid value, or the
        // kernel degenerates to a constant map; splice an access in.
        if !reads_field(&expr) {
            expr = build::add(expr, gen_field_access(rng, &scope));
        }
        computes.push(ComputeDef {
            target: target.clone(),
            expr,
        });
        if temps.contains(target) {
            computed_temps.push(target.clone());
        }
    }

    let k = KernelDef {
        name: format!("fuzz_{case}"),
        grid,
        halo,
        fields,
        params,
        consts,
        computes,
    };
    debug_assert!(k.validate().is_ok(), "generator emitted invalid kernel");
    k
}

/// Does the expression read any field?
fn reads_field(e: &Expr) -> bool {
    match e {
        Expr::FieldRef { .. } => true,
        Expr::Num(_) | Expr::ConstRef(_) | Expr::ParamRef { .. } => false,
        Expr::Neg(inner) => reads_field(inner),
        Expr::Bin { lhs, rhs, .. } => reads_field(lhs) || reads_field(rhs),
        Expr::Call { args, .. } => args.iter().any(reads_field),
    }
}

/// A random field access: star (one non-zero axis) or box (independent
/// offsets per axis) neighbourhood, bounded by the halo.
fn gen_field_access(rng: &mut Rng, scope: &Scope<'_>) -> Expr {
    // Prefer offsettable inputs; fall back to centre reads of temps.
    if !scope.offset_fields.is_empty() && (scope.centre_fields.is_empty() || rng.chance(3, 4)) {
        let name = rng.pick(scope.offset_fields).clone();
        let mut offsets = vec![0i64; scope.rank];
        if scope.halo > 0 {
            if rng.chance(1, 2) {
                // Star: one axis displaced.
                let axis = rng.range(0, scope.rank - 1);
                offsets[axis] = nonzero_offset(rng, scope.halo);
            } else {
                // Box: every axis displaced independently (possibly 0).
                for o in offsets.iter_mut() {
                    *o = rng.range_i64(-scope.halo, scope.halo);
                }
            }
        }
        Expr::FieldRef { name, offsets }
    } else {
        let name = rng.pick(scope.centre_fields).clone();
        Expr::FieldRef {
            name,
            offsets: vec![0; scope.rank],
        }
    }
}

fn nonzero_offset(rng: &mut Rng, halo: i64) -> i64 {
    let magnitude = rng.range_i64(1, halo);
    if rng.chance(1, 2) {
        magnitude
    } else {
        -magnitude
    }
}

/// A random leaf: field access, param/const reference, or literal.
fn gen_leaf(rng: &mut Rng, scope: &Scope<'_>) -> Expr {
    match rng.range(0, 9) {
        0..=4 => gen_field_access(rng, scope),
        5 if !scope.params.is_empty() => {
            let p = rng.pick(scope.params).clone();
            let offset = rng.range_i64(-scope.halo, scope.halo);
            Expr::ParamRef {
                name: p.name,
                offset,
            }
        }
        6 if !scope.consts.is_empty() => Expr::ConstRef(rng.pick(scope.consts).name.clone()),
        // Literals stay non-negative: the parser represents `-3.0` as
        // `Neg(Num(3.0))`, so a negative `Num` would not round-trip
        // through the DSL printer AST-exactly.
        _ => {
            let lit = build::num(rng.coarse_f64(0.0, 2.0));
            if rng.chance(1, 4) {
                build::neg(lit)
            } else {
                lit
            }
        }
    }
}

/// A random expression of at most `depth` further levels.
fn gen_expr(rng: &mut Rng, scope: &Scope<'_>, depth: usize) -> Expr {
    if depth == 0 {
        return gen_leaf(rng, scope);
    }
    match rng.range(0, 9) {
        // Binary arithmetic dominates, like real stencils.
        0..=2 => build::add(
            gen_expr(rng, scope, depth - 1),
            gen_expr(rng, scope, depth - 1),
        ),
        3..=4 => build::sub(
            gen_expr(rng, scope, depth - 1),
            gen_expr(rng, scope, depth - 1),
        ),
        5..=6 => build::mul(
            gen_expr(rng, scope, depth - 1),
            gen_expr(rng, scope, depth - 1),
        ),
        // Division by a non-zero literal only: all engines execute the
        // same IEEE ops so even inf/NaN would agree bitwise, but a NaN
        // that floods an output field masks genuine single-point
        // mismatches (NaN == NaN here), gutting the oracle's power.
        7 => {
            let denom = build::num(rng.coarse_f64(0.5, 2.5));
            let denom = if rng.chance(1, 2) {
                build::neg(denom)
            } else {
                denom
            };
            build::div(gen_expr(rng, scope, depth - 1), denom)
        }
        8 => build::neg(gen_expr(rng, scope, depth - 1)),
        _ => {
            let f = *rng.pick(&[
                Intrinsic::Abs,
                Intrinsic::Min,
                Intrinsic::Max,
                Intrinsic::Sign,
                Intrinsic::Sqrt,
            ]);
            let args: Vec<Expr> = match f {
                // sqrt over |x| keeps NaN out (see the division note).
                Intrinsic::Sqrt => vec![build::call(
                    Intrinsic::Abs,
                    vec![gen_expr(rng, scope, depth - 1)],
                )],
                _ => (0..f.arity())
                    .map(|_| gen_expr(rng, scope, depth - 1))
                    .collect(),
            };
            build::call(f, args)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_kernels_validate() {
        let root = Rng::new(1);
        for case in 0..200 {
            let mut rng = root.fork(case);
            let k = generate(&mut rng, case, &GenOptions::default());
            k.validate()
                .unwrap_or_else(|e| panic!("case {case} invalid: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_all = || -> Vec<String> {
            let root = Rng::new(99);
            (0..50)
                .map(|case| {
                    let mut rng = root.fork(case);
                    shmls_frontend::kernel_to_source(&generate(
                        &mut rng,
                        case,
                        &GenOptions::default(),
                    ))
                })
                .collect()
        };
        assert_eq!(gen_all(), gen_all());
    }

    #[test]
    fn coverage_reaches_every_feature() {
        let root = Rng::new(1);
        let (mut ranks, mut halos) = (
            std::collections::BTreeSet::new(),
            std::collections::BTreeSet::new(),
        );
        let (mut saw_temp, mut saw_param, mut saw_const) = (false, false, false);
        for case in 0..300 {
            let mut rng = root.fork(case);
            let k = generate(&mut rng, case, &GenOptions::default());
            ranks.insert(k.rank());
            halos.insert(k.halo);
            saw_temp |= k.fields.iter().any(|f| f.kind == FieldKind::Temp);
            saw_param |= !k.params.is_empty();
            saw_const |= !k.consts.is_empty();
        }
        assert_eq!(ranks.len(), 3, "all ranks 1–3 generated");
        assert!(halos.len() >= 2, "multiple halos generated: {halos:?}");
        assert!(saw_temp && saw_param && saw_const);
    }

    #[test]
    fn generated_kernels_round_trip_through_dsl() {
        let root = Rng::new(5);
        for case in 0..100 {
            let mut rng = root.fork(case);
            let k = generate(&mut rng, case, &GenOptions::default());
            let src = shmls_frontend::kernel_to_source(&k);
            let reparsed = shmls_frontend::parse_kernel(&src)
                .unwrap_or_else(|e| panic!("case {case} does not re-parse: {e}\n{src}"));
            assert_eq!(
                k, reparsed,
                "case {case} round-trip changed the AST:\n{src}"
            );
        }
    }
}
