//! # shmls-conformance — cross-engine differential conformance
//!
//! The pipeline can execute one stencil program four ways: the pure IR
//! interpreter on the stencil dialect (the **oracle**), the CPU loop-nest
//! lowering, the sequential Kahn executor and the threaded engine on the
//! HLS dataflow design, and the cycle-stepped simulator on the extracted
//! [`DesignDescriptor`](shmls_fpga_sim::design::DesignDescriptor). The
//! paper's claim is that the stencil→HLS restructuring is
//! semantics-preserving; this crate checks that claim on *generated*
//! programs, not just the two curated paper kernels:
//!
//! - [`generator`] — a seeded structured generator emitting
//!   random-but-valid frontend kernels (1–3 fields, star/box
//!   neighbourhoods, temporaries, params/consts, 1–3D grids),
//! - [`harness`] — compiles each kernel once and compares every engine
//!   against the oracle with a configurable ULP tolerance, with a
//!   fault-injection hook ([`harness::Fault`]) that proves the harness
//!   detects real miscompiles; a scale dimension
//!   ([`harness::ScaleConfig`]) additionally time-marches each kernel
//!   over parallel CU slabs and compares against the iterated oracle,
//! - [`mod@shrink`] — minimizes a failing kernel (dropping computes and
//!   fields, shrinking grids and halos, simplifying expressions) while
//!   the failure kind reproduces,
//! - [`corpus`] — persists minimized reproducers as committed `.knl`
//!   files that `tests/corpus_replay.rs` re-checks on every `cargo test`,
//! - [`fuzz`] — the loop tying it together, driven by `repro fuzz`.
//!
//! Determinism is load-bearing: the same `--seed` produces byte-identical
//! kernels on every host (the crate carries its own SplitMix64 [`rng`]),
//! and [`fuzz::FuzzSummary::digest`] lets CI prove it.

#![warn(missing_docs)]

pub mod corpus;
pub mod fuzz;
pub mod generator;
pub mod harness;
pub mod rng;
pub mod shrink;

pub use fuzz::{rotated_scale, run_fuzz, FuzzOptions, FuzzSummary};
pub use generator::{generate, GenOptions};
pub use harness::{check_kernel, clamp_scale, CheckOptions, Engine, Failure, Fault, ScaleConfig};
pub use shrink::shrink;
