//! Reproducer corpus: minimized failing kernels as DSL text files.
//!
//! Each reproducer is a plain `.knl` DSL file with a `//`-comment header
//! recording how it was found (seed, case, engines, failure, injected
//! fault). The DSL lexer skips comments, so a corpus file parses with
//! [`shmls_frontend::parse_kernel`] as-is. The committed corpus under
//! `crates/conformance/corpus/` is replayed by `tests/corpus_replay.rs`
//! on every `cargo test`: every kernel that ever exposed a divergence is
//! re-checked against all engines forever.

use std::io;
use std::path::{Path, PathBuf};

use shmls_frontend::{kernel_to_source, KernelDef};

use crate::harness::Fault;

/// Provenance recorded in a reproducer header.
#[derive(Debug, Clone)]
pub struct ReproMeta {
    /// Fuzzer seed that found the failure.
    pub seed: u64,
    /// Case index under that seed.
    pub case: u64,
    /// Failure class (`mismatch`, `deadlock`, …).
    pub kind: String,
    /// Human-readable failure description (first line only is kept).
    pub detail: String,
    /// Engines that were checked.
    pub engines: String,
    /// Fault injected, if the run was a self-test of the harness.
    pub inject: Option<Fault>,
    /// Data seed the failure reproduces under.
    pub data_seed: u64,
    /// `(cus, steps)` for failures found by the multi-CU/time-marching
    /// dimension (`None` for plain engine failures).
    pub scale: Option<(usize, usize)>,
}

/// Render a reproducer file: header comments + DSL source.
pub fn reproducer_text(kernel: &KernelDef, meta: &ReproMeta) -> String {
    let mut out = String::new();
    out.push_str("// conformance reproducer (minimized by the fuzzer's shrinker)\n");
    out.push_str(&format!(
        "// found-by: repro fuzz --seed {} (case {}), engines: {}\n",
        meta.seed, meta.case, meta.engines
    ));
    out.push_str(&format!(
        "// failure: {}: {}\n",
        meta.kind,
        meta.detail.lines().next().unwrap_or("")
    ));
    if let Some(fault) = meta.inject {
        out.push_str(&format!(
            "// injected-fault: {fault} (a harness self-test, not a real miscompile)\n"
        ));
    }
    if let Some((cus, steps)) = meta.scale {
        out.push_str(&format!("// scale: cus={cus} steps={steps}\n"));
    }
    out.push_str(&format!("// data-seed: {}\n", meta.data_seed));
    out.push_str(&kernel_to_source(kernel));
    out
}

/// Write a reproducer into `dir` (created if missing). The file is named
/// after the kernel and failure kind so repeated runs overwrite rather
/// than accumulate: `fuzz_17-mismatch.knl`.
pub fn write_reproducer(dir: &Path, kernel: &KernelDef, meta: &ReproMeta) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-{}.knl", kernel.name, meta.kind));
    std::fs::write(&path, reproducer_text(kernel, meta))?;
    Ok(path)
}

/// Load every `.knl` kernel in `dir`, sorted by file name. A missing
/// directory is an empty corpus.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(PathBuf, KernelDef)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "knl"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let kernel = shmls_frontend::parse_kernel(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        out.push((path, kernel));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_frontend::parse_kernel;

    #[test]
    fn reproducers_parse_back() {
        let k = parse_kernel(
            "kernel r { grid(4) halo 1 field a : input field b : output \
             compute b { b = a[-1] } }",
        )
        .unwrap();
        let meta = ReproMeta {
            seed: 1,
            case: 17,
            kind: "mismatch".into(),
            detail: "engine `hls` disagrees with oracle".into(),
            engines: "cpu,hls,threaded,cycle".into(),
            inject: Some(Fault::OffsetFlip),
            data_seed: 1,
            scale: Some((2, 4)),
        };
        let text = reproducer_text(&k, &meta);
        let reparsed = parse_kernel(&text).unwrap();
        assert_eq!(k, reparsed);
        assert!(text.contains("injected-fault: offset-flip"));
        assert!(text.contains("scale: cus=2 steps=4"));
    }

    #[test]
    fn corpus_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("shmls-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let k = parse_kernel(
            "kernel w { grid(3) halo 0 field a : input field b : output \
             compute b { b = a[0] } }",
        )
        .unwrap();
        let meta = ReproMeta {
            seed: 2,
            case: 0,
            kind: "deadlock".into(),
            detail: "stage0 blocked".into(),
            engines: "threaded".into(),
            inject: None,
            data_seed: 1,
            scale: None,
        };
        let path = write_reproducer(&dir, &k, &meta).unwrap();
        assert!(path.ends_with("w-deadlock.knl"));
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, k);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_corpus_is_empty() {
        let loaded = load_corpus(Path::new("/nonexistent/shmls-corpus")).unwrap();
        assert!(loaded.is_empty());
    }
}
