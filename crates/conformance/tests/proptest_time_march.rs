//! Property test for the scale-out path: for generated kernels, random
//! slab splits, and random step counts, halo-exchange time-marching over
//! parallel compute units must equal the monolithic run — bit-for-bit
//! for one step, and within a small ULP tolerance for multi-step marches
//! (in practice the slab path executes the identical f64 operation
//! sequence per point, so the tolerance is headroom, not an excuse).
//!
//! The deterministic sweep below covers a full rotation of the
//! configuration space and runs everywhere; the proptest property widens
//! the seed space in CI. Any regression found here should be pinned as a
//! `pinned_*` test with its exact (seed, case, cus, steps, data seed).

use proptest::prelude::*;
use shmls_conformance::generator::generate;
use shmls_conformance::harness::{clamp_scale, make_data, ulp_distance};
use shmls_conformance::rng::Rng;
use shmls_conformance::{GenOptions, ScaleConfig};
use stencil_hmls::runner::run_hls;
use stencil_hmls::scale::{run_time_marched, time_march_reference};
use stencil_hmls::{compile_kernel, CompileOptions, TargetPath};

/// Generate kernel (`seed`, `case`), clamp `(cus, steps)` to its grid,
/// and compare the slab march against the iterated monolithic run.
/// Panics with a point-level description on any divergence.
fn check_slab_march(seed: u64, case: u64, cus: usize, steps: usize, data_seed: u64) {
    let mut rng = Rng::new(seed).fork(case);
    let kernel = generate(&mut rng, case, &GenOptions::default());
    let cfg = clamp_scale(&kernel, ScaleConfig { cus, steps });
    let data = make_data(&kernel, data_seed);
    let opts = CompileOptions {
        paths: TargetPath::HlsOnly,
        time_passes: false,
        ..Default::default()
    };

    let monolithic = compile_kernel(kernel.clone(), &opts).expect("monolithic compile");
    let reference = time_march_reference(&kernel, &data, cfg.steps, |d| {
        run_hls(&monolithic, d).map(|(out, _)| out)
    })
    .expect("monolithic march");
    let (marched, report) =
        run_time_marched(&kernel, &data, cfg.steps, cfg.cus, &opts).expect("slab march");
    assert_eq!(report.cus, cfg.cus);
    assert_eq!(report.steps, cfg.steps);

    let max_ulps = if cfg.steps == 1 { 0 } else { 4 };
    let lb = vec![0i64; kernel.rank()];
    for (name, mono) in &reference {
        let slab = marched
            .get(name)
            .unwrap_or_else(|| panic!("output `{name}` missing from slab march"));
        for p in shmls_ir::interp::iter_box(&lb, &kernel.grid) {
            let expect = mono.load(&p).unwrap();
            let got = slab.load(&p).unwrap();
            let d = ulp_distance(expect, got);
            assert!(
                d <= max_ulps,
                "seed {seed} case {case} ({cfg}): `{name}` at {p:?}: \
                 monolithic {expect:e} vs slab {got:e} ({d} ulps)"
            );
        }
    }
}

/// Deterministic sweep: three full rotations of `(cus, steps)` over
/// distinct generated kernels and data seeds. This is the part of the
/// property that runs even without a proptest runner.
#[test]
fn slab_march_matches_monolithic_sweep() {
    const CUS: [usize; 3] = [1, 2, 3];
    const STEPS: [usize; 3] = [1, 2, 4];
    for case in 0u64..27 {
        check_slab_march(
            7,
            case,
            CUS[(case % 3) as usize],
            STEPS[((case / 3) % 3) as usize],
            case + 1,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn slab_march_matches_monolithic(
        (seed, case, (cus, steps_pick), data_seed) in
            (any::<u64>(), 0u64..256, (1usize..=3, 0usize..3), 1u64..1_000_000)
    ) {
        check_slab_march(seed, case, cus, [1, 2, 4][steps_pick], data_seed);
    }
}
