//! Property test for the bytecode tier: for generated kernels, the flat
//! register programs compiled from every `stencil.apply` must reproduce
//! the tree-walking interpreter **bit for bit** — the bytecode emits the
//! exact same f64 operation sequence, so any ULP of drift is a compile
//! bug, not rounding. The same holds one layer down: the threaded
//! engine's stage plans (shmls-fpga-sim's `stageplan`) must leave the
//! dataflow results bitwise-identical to the sequential Kahn engine,
//! which still tree-walks every stage body.
//!
//! The deterministic sweep runs everywhere; the proptest property widens
//! the seed space in CI. The fault-injection test closes the loop: a
//! single flipped opcode in a compiled plan must be caught by the same
//! differential that the sweep relies on, proving the harness can see
//! miscompiles at all.
//!
//! Regression note: this differential is what exposed the input-register
//! recycling bug (a scalar constant's register was reused as a temp
//! destination, so every grid point after the first read the previous
//! point's result) — pinned as `input_registers_survive_repeated_runs`
//! in `shmls_ir::bytecode`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use shmls_conformance::generator::generate;
use shmls_conformance::harness::make_data;
use shmls_conformance::rng::Rng;
use shmls_conformance::GenOptions;
use shmls_ir::bytecode::{BinOp, Instr, UnOp};
use shmls_ir::interp::iter_box;
use stencil_hmls::runner::{
    run_hls, run_hls_threaded, run_stencil, run_stencil_bytecode,
};
use stencil_hmls::{compile_kernel, CompileOptions, CompiledKernel, TargetPath};

fn compile_opts() -> CompileOptions {
    CompileOptions {
        paths: TargetPath::HlsOnly,
        time_passes: false,
        ..Default::default()
    }
}

/// Generate kernel (`seed`, `case`), compile it, and require bitwise
/// agreement between the tree-walking oracle and (a) the bytecode tier,
/// (b) the threaded engine's stage-plan execution. Panics with a
/// point-level description on any divergence. Returns the number of
/// compiled apply plans so callers can assert coverage.
fn check_bytecode_bitwise(seed: u64, case: u64, data_seed: u64) -> usize {
    let mut rng = Rng::new(seed).fork(case);
    let kernel = generate(&mut rng, case, &GenOptions::default());
    let compiled = compile_kernel(kernel.clone(), &compile_opts()).expect("compile");
    let data = make_data(&kernel, data_seed);

    let oracle = run_stencil(&compiled, &data).expect("tree-walker oracle");
    let fast = run_stencil_bytecode(&compiled, &data).expect("bytecode tier");
    assert_bitwise(seed, case, "bytecode", &oracle, &fast, &kernel.grid);

    // One layer down: sequential Kahn engine (tree-walks stage bodies)
    // vs the threaded engine (executes planned stages as bytecode).
    let (kahn, _) = run_hls(&compiled, &data).expect("sequential engine");
    let threaded = run_hls_threaded(&compiled, &data, Duration::from_secs(20))
        .expect("threaded engine")
        .unwrap_or_else(|report| panic!("seed {seed} case {case}: deadlock: {report}"));
    assert_bitwise(seed, case, "threaded", &kahn, &threaded, &kernel.grid);

    compiled.apply_plans.len()
}

fn assert_bitwise(
    seed: u64,
    case: u64,
    engine: &str,
    oracle: &std::collections::BTreeMap<String, shmls_ir::interp::Buffer>,
    got: &std::collections::BTreeMap<String, shmls_ir::interp::Buffer>,
    grid: &[i64],
) {
    let lb = vec![0i64; grid.len()];
    for (name, expect) in oracle {
        let out = got
            .get(name)
            .unwrap_or_else(|| panic!("output `{name}` missing from {engine} run"));
        for p in iter_box(&lb, grid) {
            let e = expect.load(&p).unwrap();
            let g = out.load(&p).unwrap();
            assert_eq!(
                e.to_bits(),
                g.to_bits(),
                "seed {seed} case {case}: `{engine}` disagrees with oracle on \
                 `{name}` at {p:?}: expected {e:e}, got {g:e}"
            );
        }
    }
}

/// Deterministic sweep over the PR 3 generator. Every generated kernel
/// must execute bitwise-identically on the bytecode tier, and every one
/// must actually get compiled plans — a sweep where the tier silently
/// fell back to the tree-walker would "pass" without testing anything.
#[test]
fn bytecode_matches_tree_walker_sweep() {
    let mut planned = 0usize;
    for case in 0u64..24 {
        let n = check_bytecode_bitwise(11, case, case + 1);
        assert!(n > 0, "case {case}: no apply compiled to bytecode");
        planned += n;
    }
    assert!(planned >= 24, "suspiciously low plan coverage: {planned}");
}

/// Flip one opcode in a compiled plan and require the differential to
/// notice. If this test ever passes with the mutation in place, the
/// bitwise harness has lost its teeth.
#[test]
fn mutated_opcode_is_detected() {
    let kernel = shmls_frontend::parse_kernel(&shmls_kernels::laplace::source_1d(24))
        .expect("parse laplace");
    let mut compiled = compile_kernel(kernel.clone(), &compile_opts()).expect("compile");
    assert!(
        !compiled.apply_plans.is_empty(),
        "laplace must compile to bytecode for this test to mean anything"
    );

    let mutated = mutate_one_opcode(&mut compiled);
    assert!(mutated, "no mutable instruction found in any plan");

    let data = make_data(&kernel, 3);
    let oracle = run_stencil(&compiled, &data).expect("oracle");
    let fast = run_stencil_bytecode(&compiled, &data).expect("mutated bytecode");
    let lb = vec![0i64; kernel.grid.len()];
    let detected = oracle.iter().any(|(name, expect)| {
        let out = &fast[name];
        iter_box(&lb, &kernel.grid)
            .into_iter()
            .any(|p| expect.load(&p).unwrap().to_bits() != out.load(&p).unwrap().to_bits())
    });
    assert!(
        detected,
        "flipped opcode produced bitwise-identical output; the differential is blind"
    );
}

/// Flip the first flippable opcode in the first plan that has one:
/// `Add<->Sub`, `Mul<->Div`, `Max<->Min`, `Abs->Neg`. Returns whether a
/// mutation was applied.
fn mutate_one_opcode(compiled: &mut CompiledKernel) -> bool {
    for plan in compiled.apply_plans.values_mut() {
        let mut prog = (**plan).clone();
        for instr in &mut prog.instrs {
            let flipped = match instr {
                Instr::Binary { op, .. } => {
                    *op = match *op {
                        BinOp::Add => BinOp::Sub,
                        BinOp::Sub => BinOp::Add,
                        BinOp::Mul => BinOp::Div,
                        BinOp::Div => BinOp::Mul,
                        BinOp::Max => BinOp::Min,
                        BinOp::Min => BinOp::Max,
                        BinOp::Pow => BinOp::Mul,
                        BinOp::Copysign => BinOp::Add,
                    };
                    true
                }
                Instr::Unary { op, .. } => {
                    *op = match *op {
                        UnOp::Abs | UnOp::Sqrt | UnOp::Exp => UnOp::Neg,
                        UnOp::Neg => UnOp::Abs,
                    };
                    true
                }
                _ => false,
            };
            if flipped {
                *plan = Arc::new(prog);
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bytecode_matches_tree_walker(
        (seed, case, data_seed) in (any::<u64>(), 0u64..256, 1u64..1_000_000)
    ) {
        check_bytecode_bitwise(seed, case, data_seed);
    }
}
