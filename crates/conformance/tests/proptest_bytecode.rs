//! Property test for the bytecode tier: for generated kernels, the flat
//! register programs compiled from every `stencil.apply` must reproduce
//! the tree-walking interpreter **bit for bit** — the bytecode emits the
//! exact same f64 operation sequence, so any ULP of drift is a compile
//! bug, not rounding. The same holds one layer down: the threaded
//! engine's stage plans (shmls-fpga-sim's `stageplan`) must leave the
//! dataflow results bitwise-identical to the sequential Kahn engine,
//! which still tree-walks every stage body.
//!
//! The deterministic sweep runs everywhere; the proptest property widens
//! the seed space in CI. The fault-injection test closes the loop: a
//! single flipped opcode in a compiled plan must be caught by the same
//! differential that the sweep relies on, proving the harness can see
//! miscompiles at all.
//!
//! Regression note: this differential is what exposed the input-register
//! recycling bug (a scalar constant's register was reused as a temp
//! destination, so every grid point after the first read the previous
//! point's result) — pinned as `input_registers_survive_repeated_runs`
//! in `shmls_ir::bytecode`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use shmls_conformance::generator::generate;
use shmls_conformance::harness::make_data;
use shmls_conformance::rng::Rng;
use shmls_conformance::GenOptions;
use shmls_ir::bytecode::{ApplyMode, BinOp, Instr, UnOp, LANES};
use shmls_ir::interp::iter_box;
use stencil_hmls::runner::{
    run_hls, run_hls_threaded, run_stencil, run_stencil_bytecode, run_stencil_bytecode_with,
};
use stencil_hmls::{compile_kernel, CompileOptions, CompiledKernel, TargetPath};

fn compile_opts() -> CompileOptions {
    CompileOptions {
        paths: TargetPath::HlsOnly,
        time_passes: false,
        ..Default::default()
    }
}

/// Generate kernel (`seed`, `case`), compile it, and require bitwise
/// agreement between the tree-walking oracle and (a) the bytecode tier,
/// (b) the threaded engine's stage-plan execution. Panics with a
/// point-level description on any divergence. Returns the number of
/// compiled apply plans so callers can assert coverage.
fn check_bytecode_bitwise(seed: u64, case: u64, data_seed: u64) -> usize {
    let mut rng = Rng::new(seed).fork(case);
    let kernel = generate(&mut rng, case, &GenOptions::default());
    let compiled = compile_kernel(kernel.clone(), &compile_opts()).expect("compile");
    let data = make_data(&kernel, data_seed);

    let oracle = run_stencil(&compiled, &data).expect("tree-walker oracle");
    let fast = run_stencil_bytecode_with(&compiled, &data, ApplyMode::Scalar)
        .expect("bytecode tier (scalar)");
    assert_bitwise(seed, case, "bytecode", &oracle, &fast, &kernel.grid);
    // The vector tier, in both its serial-chunked and threaded schedules:
    // still zero drift — chunking moves points between dispatches, never
    // operations between points.
    let simd = run_stencil_bytecode_with(&compiled, &data, ApplyMode::Chunked { threads: 1 })
        .expect("bytecode tier (chunked)");
    assert_bitwise(seed, case, "simd", &oracle, &simd, &kernel.grid);
    let threaded_simd =
        run_stencil_bytecode_with(&compiled, &data, ApplyMode::Chunked { threads: 3 })
            .expect("bytecode tier (chunked+threaded)");
    assert_bitwise(
        seed,
        case,
        "simd-threaded",
        &oracle,
        &threaded_simd,
        &kernel.grid,
    );

    // One layer down: sequential Kahn engine (tree-walks stage bodies)
    // vs the threaded engine (executes planned stages as bytecode).
    let (kahn, _) = run_hls(&compiled, &data).expect("sequential engine");
    let threaded = run_hls_threaded(&compiled, &data, Duration::from_secs(20))
        .expect("threaded engine")
        .unwrap_or_else(|report| panic!("seed {seed} case {case}: deadlock: {report}"));
    assert_bitwise(seed, case, "threaded", &kahn, &threaded, &kernel.grid);

    compiled.apply_plans.len()
}

fn assert_bitwise(
    seed: u64,
    case: u64,
    engine: &str,
    oracle: &std::collections::BTreeMap<String, shmls_ir::interp::Buffer>,
    got: &std::collections::BTreeMap<String, shmls_ir::interp::Buffer>,
    grid: &[i64],
) {
    let lb = vec![0i64; grid.len()];
    for (name, expect) in oracle {
        let out = got
            .get(name)
            .unwrap_or_else(|| panic!("output `{name}` missing from {engine} run"));
        for p in iter_box(&lb, grid) {
            let e = expect.load(&p).unwrap();
            let g = out.load(&p).unwrap();
            assert_eq!(
                e.to_bits(),
                g.to_bits(),
                "seed {seed} case {case}: `{engine}` disagrees with oracle on \
                 `{name}` at {p:?}: expected {e:e}, got {g:e}"
            );
        }
    }
}

/// Deterministic sweep over the PR 3 generator. Every generated kernel
/// must execute bitwise-identically on the bytecode tier, and every one
/// must actually get compiled plans — a sweep where the tier silently
/// fell back to the tree-walker would "pass" without testing anything.
#[test]
fn bytecode_matches_tree_walker_sweep() {
    let mut planned = 0usize;
    for case in 0u64..24 {
        let n = check_bytecode_bitwise(11, case, case + 1);
        assert!(n > 0, "case {case}: no apply compiled to bytecode");
        planned += n;
    }
    assert!(planned >= 24, "suspiciously low plan coverage: {planned}");
}

/// Run laplace over an inner extent of exactly `n` in every apply mode
/// and require bitwise agreement with the tree-walker. `threads` also
/// varies so the axis-0 slab split and the inner-axis chunk split are
/// exercised together.
fn check_chunk_seam(source: &str, label: &str, max_threads: usize) {
    let kernel = shmls_frontend::parse_kernel(source).expect("parse seam kernel");
    let compiled = compile_kernel(kernel.clone(), &compile_opts()).expect("compile");
    assert!(
        !compiled.apply_plans.is_empty(),
        "{label}: no apply compiled to bytecode"
    );
    let data = make_data(&kernel, 5);
    let oracle = run_stencil(&compiled, &data).expect("oracle");
    for threads in 1..=max_threads {
        let got = run_stencil_bytecode_with(&compiled, &data, ApplyMode::Chunked { threads })
            .unwrap_or_else(|e| panic!("{label} threads={threads}: {e}"));
        let lb = vec![0i64; kernel.grid.len()];
        for (name, expect) in &oracle {
            let out = &got[name];
            for p in iter_box(&lb, &kernel.grid) {
                let e = expect.load(&p).unwrap();
                let g = out.load(&p).unwrap();
                assert_eq!(
                    e.to_bits(),
                    g.to_bits(),
                    "{label} threads={threads}: `{name}` at {p:?}: {e:e} vs {g:e}"
                );
            }
        }
    }
}

/// The chunk-grid seams, deterministically: inner extents of W−1 (tail
/// only), W (one full chunk, no tail), W+1 and 2W+1 (full chunks plus a
/// one-point tail) for the vector tier's chunk width W = [`LANES`] —
/// plus a 3-D case where the seam runs along every row of a threaded
/// slab split. These are exactly the off-by-one shapes a chunked
/// interior/halo split gets wrong first.
#[test]
fn chunk_boundary_extents_are_bitwise_exact() {
    let w = LANES as i64;
    for n in [w - 1, w, w + 1, 2 * w + 1] {
        check_chunk_seam(
            &shmls_kernels::laplace::source_1d(n),
            &format!("laplace1d n={n}"),
            4,
        );
    }
    // Rank 3: inner extent W+1, a handful of axis-0 rows to split across
    // more threads than rows (the clamp path), and an interior halo.
    check_chunk_seam(
        &shmls_kernels::laplace::source_3d(3, 4, w + 1),
        "laplace3d inner=W+1",
        5,
    );
}

/// Flip one opcode in a compiled plan and require the differential to
/// notice. If this test ever passes with the mutation in place, the
/// bitwise harness has lost its teeth.
#[test]
fn mutated_opcode_is_detected() {
    let kernel = shmls_frontend::parse_kernel(&shmls_kernels::laplace::source_1d(24))
        .expect("parse laplace");
    let mut compiled = compile_kernel(kernel.clone(), &compile_opts()).expect("compile");
    assert!(
        !compiled.apply_plans.is_empty(),
        "laplace must compile to bytecode for this test to mean anything"
    );

    let mutated = mutate_one_opcode(&mut compiled);
    assert!(mutated, "no mutable instruction found in any plan");

    let data = make_data(&kernel, 3);
    let oracle = run_stencil(&compiled, &data).expect("oracle");
    let fast = run_stencil_bytecode(&compiled, &data).expect("mutated bytecode");
    let lb = vec![0i64; kernel.grid.len()];
    let detected = oracle.iter().any(|(name, expect)| {
        let out = &fast[name];
        iter_box(&lb, &kernel.grid)
            .into_iter()
            .any(|p| expect.load(&p).unwrap().to_bits() != out.load(&p).unwrap().to_bits())
    });
    assert!(
        detected,
        "flipped opcode produced bitwise-identical output; the differential is blind"
    );
}

/// Flip the first flippable opcode in the first plan that has one:
/// `Add<->Sub`, `Mul<->Div`, `Max<->Min`, `Abs->Neg`. Returns whether a
/// mutation was applied.
fn mutate_one_opcode(compiled: &mut CompiledKernel) -> bool {
    for plan in compiled.apply_plans.values_mut() {
        let mut prog = (**plan).clone();
        for instr in &mut prog.instrs {
            let flipped = match instr {
                Instr::Binary { op, .. } => {
                    *op = match *op {
                        BinOp::Add => BinOp::Sub,
                        BinOp::Sub => BinOp::Add,
                        BinOp::Mul => BinOp::Div,
                        BinOp::Div => BinOp::Mul,
                        BinOp::Max => BinOp::Min,
                        BinOp::Min => BinOp::Max,
                        BinOp::Pow => BinOp::Mul,
                        BinOp::Copysign => BinOp::Add,
                    };
                    true
                }
                Instr::Unary { op, .. } => {
                    *op = match *op {
                        UnOp::Abs | UnOp::Sqrt | UnOp::Exp => UnOp::Neg,
                        UnOp::Neg => UnOp::Abs,
                    };
                    true
                }
                _ => false,
            };
            if flipped {
                *plan = Arc::new(prog);
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bytecode_matches_tree_walker(
        (seed, case, data_seed) in (any::<u64>(), 0u64..256, 1u64..1_000_000)
    ) {
        check_bytecode_bitwise(seed, case, data_seed);
    }

    /// Interior/halo split property: for a random inner extent straddling
    /// the chunk grid and a random thread count, the chunked executor's
    /// full-chunk interior + per-point tail must partition the row with
    /// no gap, no overlap, and no arithmetic difference — checked by
    /// bitwise comparison against the tree-walker at every point.
    #[test]
    fn interior_halo_split_is_exact(
        (extra, threads, data_seed) in (0i64..(2 * LANES as i64 + 2), 1usize..5, 1u64..1_000)
    ) {
        let n = LANES as i64 - 1 + extra;
        let kernel = shmls_frontend::parse_kernel(&shmls_kernels::laplace::source_1d(n))
            .expect("parse");
        let compiled = compile_kernel(kernel.clone(), &compile_opts()).expect("compile");
        let data = make_data(&kernel, data_seed);
        let oracle = run_stencil(&compiled, &data).expect("oracle");
        let got = run_stencil_bytecode_with(&compiled, &data, ApplyMode::Chunked { threads })
            .expect("chunked");
        let lb = vec![0i64; kernel.grid.len()];
        for (name, expect) in &oracle {
            let out = &got[name];
            for p in iter_box(&lb, &kernel.grid) {
                let e = expect.load(&p).unwrap();
                let g = out.load(&p).unwrap();
                prop_assert_eq!(
                    e.to_bits(), g.to_bits(),
                    "n={} threads={} `{}` at {:?}: {:e} vs {:e}",
                    n, threads, name, p, e, g
                );
            }
        }
    }
}
