//! Replay the committed reproducer corpus on every `cargo test`.
//!
//! Every `.knl` file under `crates/conformance/corpus/` is a kernel that
//! once exposed a cross-engine divergence (or was written by a harness
//! self-test with an injected fault). Replaying them *without* injection
//! asserts the corresponding bugs stay fixed: each kernel must compile
//! and agree on every engine.

use std::path::Path;

use shmls_conformance::corpus::load_corpus;
use shmls_conformance::{check_kernel, CheckOptions};

#[test]
fn committed_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let corpus = load_corpus(&dir).expect("corpus directory readable");
    assert!(
        !corpus.is_empty(),
        "committed corpus is empty — expected at least the seeded \
         offset-flip reproducer in {}",
        dir.display()
    );
    for (path, kernel) in &corpus {
        let report = check_kernel(kernel, &CheckOptions::default());
        if let Some(failure) = report.failure {
            panic!(
                "corpus reproducer {} fails again: {failure}",
                path.display()
            );
        }
    }
}
