//! The framework models of the paper's comparison (§2.1, §4).
//!
//! Each comparator is modelled by its *published, structural*
//! characteristics — the same facts the paper uses to explain its
//! measurements — evaluated through the shared device/performance/power
//! models of `shmls-fpga-sim`:
//!
//! | framework | execution structure | key parameters (source) |
//! |---|---|---|
//! | Stencil-HMLS | concurrent dataflow, II 1, CU-replicated | the actual compiled design |
//! | DaCe | fused dataflow SDFG, II 9, 1 CU | II measured in §4; serialisation = the paper's "3 (split)" factor |
//! | SODA-opt | Von-Neumann pipeline, unroll & buffers disabled | II ≈ 2 cycles/external access (calibrated to the measured 164) |
//! | Vitis HLS | Von-Neumann pipeline, unoptimised | II ≈ 2 cycles/external access (calibrated to the measured 163) |
//! | StencilFlow | II-1 dataflow, deadlocks at runtime on PW, cannot express tracer | §4's reported outcomes |
//!
//! Calibration notes live in EXPERIMENTS.md.

use serde::Serialize;
use shmls_fpga_sim::design::Stage;
use shmls_fpga_sim::device::{CostTable, Device, PowerCoefficients};
use shmls_fpga_sim::perf::{hmls_estimate, pipeline_estimate, PerfEstimate, PipelineModel};
use shmls_fpga_sim::power;
use shmls_fpga_sim::resources::{self, ResourceUsage};

use crate::profile::KernelProfile;

/// Cycles of initiation interval contributed by one external-memory access
/// in an unoptimised Von-Neumann pipeline. Calibrated so the tracer
/// advection critical-path IIs land at the paper's measurements
/// (Vitis HLS: 163, SODA-opt: 164).
pub const ACCESS_II_CYCLES: f64 = 2.0;

/// DaCe's measured initiation interval (§4: "the DaCe generated code
/// having an II of 9").
pub const DACE_II: f64 = 9.0;

/// Largest single buffer DaCe can place without automatic multi-bank
/// assignment (two HBM pseudo-channels through the manual connectivity
/// file): beyond this, "the largest problem size … can not be handled".
pub const DACE_MAX_BUFFER_BYTES: u64 = 512 * 1024 * 1024;

/// Shared evaluation context.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// The target device.
    pub device: Device,
    /// Operator cost table.
    pub costs: CostTable,
    /// Power coefficients.
    pub power: PowerCoefficients,
}

impl Default for EvalContext {
    fn default() -> Self {
        Self {
            device: Device::u280(),
            costs: CostTable::default_f64(),
            power: PowerCoefficients::default_u280(),
        }
    }
}

/// One framework's result for one kernel/size.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Throughput (the paper's Figure-4 metric).
    pub mpts: f64,
    /// Kernel runtime in seconds.
    pub seconds: f64,
    /// Average power draw in watts (Figures 5/6).
    pub watts: f64,
    /// Energy in joules (Figures 5/6).
    pub joules: f64,
    /// Resource usage (Tables 1/2).
    pub resources: ResourceUsage,
    /// Resource percentages in table order (%LUT, %FF, %BRAM, %DSP).
    pub resource_pct: [f64; 4],
    /// Compute units deployed.
    pub cus: u32,
    /// Achieved initiation interval of the critical loop.
    pub ii: f64,
    /// Total kernel cycles.
    pub cycles: u64,
}

/// Outcome of evaluating a framework on a kernel/size.
#[derive(Debug, Clone, Serialize)]
pub enum Outcome {
    /// Ran to completion.
    Completed(Measurement),
    /// Failed to build a bitstream.
    CompileError(String),
    /// Built but did not finish executing (the paper's ">10 minutes,
    /// likely deadlock").
    RuntimeDeadlock {
        /// Explanation.
        reason: String,
        /// Resource usage of the built bitstream (still reported in
        /// Table 1).
        resources: ResourceUsage,
        /// Percentages in table order.
        resource_pct: [f64; 4],
    },
    /// The kernel cannot be expressed in the framework's input language.
    Inexpressible(String),
}

impl Outcome {
    /// The measurement, if the run completed.
    pub fn measurement(&self) -> Option<&Measurement> {
        match self {
            Outcome::Completed(m) => Some(m),
            _ => None,
        }
    }

    /// Resource percentages, when a bitstream exists.
    pub fn resource_pct(&self) -> Option<[f64; 4]> {
        match self {
            Outcome::Completed(m) => Some(m.resource_pct),
            Outcome::RuntimeDeadlock { resource_pct, .. } => Some(*resource_pct),
            _ => None,
        }
    }
}

/// A modelled FPGA programming framework.
pub trait FrameworkModel {
    /// Display name (as in the paper's figures).
    fn name(&self) -> &'static str;

    /// Evaluate the framework on a kernel profile.
    fn evaluate(&self, profile: &KernelProfile, eval: &EvalContext) -> Outcome;
}

fn finish(
    perf: PerfEstimate,
    resources: ResourceUsage,
    bytes_moved: u64,
    cus: u32,
    ii: f64,
    eval: &EvalContext,
) -> Outcome {
    let p = power::estimate(
        &eval.device,
        &eval.power,
        &resources,
        bytes_moved,
        perf.seconds,
    );
    Outcome::Completed(Measurement {
        mpts: perf.mpts,
        seconds: perf.seconds,
        watts: p.watts,
        joules: p.joules,
        resource_pct: resources.percentages(&eval.device),
        resources,
        cus,
        ii,
        cycles: perf.cycles,
    })
}

// ---------------------------------------------------------------------
// Stencil-HMLS
// ---------------------------------------------------------------------

/// The paper's own flow: the compiled dataflow design, replicated over as
/// many compute units as the shell's AXI-port budget allows.
#[derive(Debug, Clone, Default)]
pub struct StencilHmlsModel {
    /// Override the CU count (None = derive from the port budget, as §4
    /// does: 4 CUs for PW advection, 1 for tracer advection).
    pub cus: Option<u32>,
}

impl StencilHmlsModel {
    /// CU count the port budget allows.
    pub fn derive_cus(profile: &KernelProfile, device: &Device) -> u32 {
        (device.max_axi_ports as usize / profile.ports_per_cu.max(1)).max(1) as u32
    }
}

impl FrameworkModel for StencilHmlsModel {
    fn name(&self) -> &'static str {
        "Stencil-HMLS"
    }

    fn evaluate(&self, profile: &KernelProfile, eval: &EvalContext) -> Outcome {
        let cus = self
            .cus
            .unwrap_or_else(|| Self::derive_cus(profile, &eval.device));
        // Every AXI bundle of every CU needs its own HBM pseudo-channel
        // (step 9); the connectivity generator enforces the bank budget.
        if let Err(e) = shmls_fpga_sim::memory::assign_banks(&profile.design, &eval.device, cus) {
            return Outcome::CompileError(e.to_string());
        }
        let resources = resources::estimate(&profile.design, &eval.costs, cus);
        if !resources.fits(&eval.device) {
            return Outcome::CompileError(format!(
                "design with {cus} CUs exceeds the device: {resources:?}"
            ));
        }
        let perf = hmls_estimate(&profile.design, &eval.device, cus);
        let bytes = profile.design.total_beats() * 64;
        finish(perf, resources, bytes, cus, 1.0, eval)
    }
}

// ---------------------------------------------------------------------
// DaCe
// ---------------------------------------------------------------------

/// DaCe (§2.1): dataflow SDFG, correct but fused — II 9, one CU, no
/// automatic multi-bank assignment.
#[derive(Debug, Clone, Default)]
pub struct DaceModel;

impl DaceModel {
    /// The fused pipeline's serialisation factor: independent stencil
    /// groups execute back-to-back (the paper's "3 (split)" for PW
    /// advection); dependency chains add roughly one pass per three chain
    /// levels (calibrated — see EXPERIMENTS.md).
    pub fn serial_factor(profile: &KernelProfile) -> f64 {
        (profile.split_groups as f64).max((profile.chain_depth as f64 / 3.0).ceil())
    }
}

impl FrameworkModel for DaceModel {
    fn name(&self) -> &'static str {
        "DaCe"
    }

    fn evaluate(&self, profile: &KernelProfile, eval: &EvalContext) -> Outcome {
        let field_bytes = (profile.bounded_points / profile.points.max(1))
            .max(1)
            .saturating_mul(profile.points)
            .saturating_mul(8);
        if field_bytes > DACE_MAX_BUFFER_BYTES {
            return Outcome::CompileError(
                "no automatic multi-bank assignment: a field exceeds the manually \
                 connectable HBM region (the paper's missing 134M data point)"
                    .to_string(),
            );
        }
        let serial = Self::serial_factor(profile);
        let model = PipelineModel {
            points: profile.points,
            ii: DACE_II,
            serial_factor: serial,
            cus: 1,
            mem_accesses_per_point: (profile.fields_in + profile.fields_out) as f64,
            elements_per_beat: 8.0,
            mem_ports: (profile.fields_in + profile.fields_out) as u32,
            startup_cycles: 10_000,
        };
        let perf = pipeline_estimate(&model, &eval.device);
        let resources = self.resources(profile);
        let bytes = profile.points * (profile.fields_in + profile.fields_out) as u64 * 8;
        finish(perf, resources, bytes, 1, DACE_II, eval)
    }
}

impl DaceModel {
    /// Resource profile of the generated SDFG bitstream: control-heavy
    /// LUT usage, shallow fixed-size tiling buffers (flat BRAM), shared
    /// operators (low DSP) — the shape of the DaCe rows of Tables 1/2.
    pub fn resources(&self, profile: &KernelProfile) -> ResourceUsage {
        let flops = profile.ops.flops();
        ResourceUsage {
            luts: 72_000 + flops * 1_100,
            ffs: 26_000 + flops * 780,
            bram36: 64 + profile.fields_in as u64 * 16,
            uram: 0,
            dsps: 20 + flops / 2,
        }
    }
}

// ---------------------------------------------------------------------
// SODA-opt
// ---------------------------------------------------------------------

/// SODA-opt (§2.1/§4): MLIR DSE flow, but on the U280 unrolling had to be
/// disabled (pipelines too large) and its memory buffers removed (malloc
/// incompatible with the Vitis backend) — leaving an unoptimised
/// Von-Neumann pipeline whose II is set by external-memory accesses,
/// including re-reads of the small data.
#[derive(Debug, Clone, Default)]
pub struct SodaOptModel;

impl SodaOptModel {
    /// Critical-path II (§4 measures 164 on tracer advection).
    pub fn ii(profile: &KernelProfile) -> f64 {
        let param_reads = small_data_reads(profile);
        ACCESS_II_CYCLES * (profile.external_accesses_per_point() + param_reads) as f64
    }
}

impl FrameworkModel for SodaOptModel {
    fn name(&self) -> &'static str {
        "SODA-opt"
    }

    fn evaluate(&self, profile: &KernelProfile, eval: &EvalContext) -> Outcome {
        let ii = Self::ii(profile);
        let model = PipelineModel {
            points: profile.points,
            ii,
            serial_factor: 1.0,
            cus: 1,
            mem_accesses_per_point: (profile.external_accesses_per_point()
                + small_data_reads(profile)) as f64,
            elements_per_beat: 1.0,
            mem_ports: 2,
            startup_cycles: 1_000,
        };
        let perf = pipeline_estimate(&model, &eval.device);
        // No local buffers at all (they were translated into malloc calls
        // and removed): tiny BRAM, plain shared datapath.
        let flops = profile.ops.flops();
        let resources = ResourceUsage {
            luts: 9_000 + flops * 80,
            ffs: 11_000 + flops * 90,
            bram36: 2,
            uram: 0,
            dsps: 14 + flops / 8,
        };
        let bytes = profile.points
            * (profile.external_accesses_per_point() + small_data_reads(profile))
            * 8;
        finish(perf, resources, bytes, 1, ii, eval)
    }
}

// ---------------------------------------------------------------------
// Vitis HLS
// ---------------------------------------------------------------------

/// Plain AMD Xilinx Vitis HLS on the unoptimised C port: correct by
/// construction but Von-Neumann — per-element external accesses dominate
/// the achieved II (§4 measures 163 on tracer advection).
#[derive(Debug, Clone, Default)]
pub struct VitisHlsModel;

impl VitisHlsModel {
    /// Critical-path II.
    pub fn ii(profile: &KernelProfile) -> f64 {
        ACCESS_II_CYCLES * profile.external_accesses_per_point() as f64
    }
}

impl FrameworkModel for VitisHlsModel {
    fn name(&self) -> &'static str {
        "Vitis HLS"
    }

    fn evaluate(&self, profile: &KernelProfile, eval: &EvalContext) -> Outcome {
        let ii = Self::ii(profile);
        let model = PipelineModel {
            points: profile.points,
            ii,
            serial_factor: 1.0,
            cus: 1,
            mem_accesses_per_point: profile.external_accesses_per_point() as f64,
            elements_per_beat: 1.0,
            mem_ports: 2,
            startup_cycles: 1_000,
        };
        let perf = pipeline_estimate(&model, &eval.device);
        // "roughly no variation in resource utilisation … since there are
        // no local arrays of size dependent of the problem size".
        let flops = profile.ops.flops();
        let resources = ResourceUsage {
            luts: 12_000 + flops * 70,
            ffs: 11_500 + flops * 75,
            bram36: 2,
            uram: 0,
            dsps: 10 + flops / 8,
        };
        let bytes = profile.points * profile.external_accesses_per_point() * 8;
        finish(perf, resources, bytes, 1, ii, eval)
    }
}

// ---------------------------------------------------------------------
// StencilFlow
// ---------------------------------------------------------------------

/// StencilFlow (§2.1/§4): reaches II 1 through its own dataflow mapping,
/// but on these benchmarks "did not complete … a likely indicator of
/// deadlock" (PW advection) or "could not be expressed … due to the lack
/// of support for subselections" (tracer advection).
#[derive(Debug, Clone, Default)]
pub struct StencilFlowModel;

impl FrameworkModel for StencilFlowModel {
    fn name(&self) -> &'static str {
        "StencilFlow"
    }

    fn evaluate(&self, profile: &KernelProfile, eval: &EvalContext) -> Outcome {
        // Tracer advection's small-data sub-selections are inexpressible.
        if profile.small_data_elements > 0 && profile.computations > 3 {
            return Outcome::Inexpressible(
                "subselections (per-level small-data indexing) are not supported".to_string(),
            );
        }
        let field_bytes = profile.bounded_points * 8;
        if field_bytes > DACE_MAX_BUFFER_BYTES {
            return Outcome::CompileError(
                "built atop DaCe: same multi-bank limitation at the largest size".to_string(),
            );
        }
        // The bitstream builds (Table 1 reports its resources: close to
        // Stencil-HMLS, with heavier DSP usage from its replicated
        // operator trees) but execution deadlocks.
        let cus = StencilHmlsModel::derive_cus(profile, &eval.device);
        let base = resources::estimate(&profile.design, &eval.costs, cus);
        let resources = ResourceUsage {
            luts: base.luts + base.luts / 8,
            ffs: base.ffs + base.ffs / 50,
            bram36: base.bram36 + base.bram36 / 6,
            uram: base.uram + base.uram / 6,
            dsps: base.dsps * 3 - base.dsps / 5,
        };
        Outcome::RuntimeDeadlock {
            reason: "no completion within 10 minutes — channel sizing deadlock \
                     on the multi-field shift-buffer graph"
                .to_string(),
            resource_pct: resources.percentages(&eval.device),
            resources,
        }
    }
}

/// Small-data (param) reads per point: `memref.load` count inside the
/// compute stages.
fn small_data_reads(profile: &KernelProfile) -> u64 {
    profile
        .design
        .stages
        .iter()
        .map(|s| match s {
            Stage::Compute { ops, .. } => {
                // Each param read contributed index arithmetic; the load
                // itself is not in OpMix, so approximate from the local
                // copies: one read per consuming stage.
                let _ = ops;
                0
            }
            _ => 0,
        })
        .sum::<u64>()
        + profile.design.local_buffer_bytes.len() as u64
}

/// All framework models in the paper's comparison order.
pub fn all_frameworks() -> Vec<Box<dyn FrameworkModel>> {
    vec![
        Box::new(StencilHmlsModel::default()),
        Box::new(DaceModel),
        Box::new(SodaOptModel),
        Box::new(VitisHlsModel),
        Box::new(StencilFlowModel),
    ]
}

#[cfg(test)]
mod model_unit_tests {
    use super::*;
    use crate::profile::KernelProfile;
    use stencil_hmls::{compile, CompileOptions, TargetPath};

    fn profile(src: &str) -> KernelProfile {
        let opts = CompileOptions {
            paths: TargetPath::HlsOnly,
            ..Default::default()
        };
        let compiled = compile(src, &opts).unwrap();
        KernelProfile::from_compiled(&compiled).unwrap()
    }

    #[test]
    fn dace_serial_factor_follows_structure() {
        let pw = profile(&shmls_kernels::pw_advection::source(16, 12, 8));
        assert_eq!(
            DaceModel::serial_factor(&pw),
            3.0,
            "the paper's '3 (split)'"
        );
        let tracer = profile(&shmls_kernels::tracer_advection::source(10, 8, 6));
        assert_eq!(
            DaceModel::serial_factor(&tracer),
            2.0,
            "chain-limited fusion"
        );
    }

    #[test]
    fn von_neumann_iis_derive_from_accesses() {
        let tracer = profile(&shmls_kernels::tracer_advection::source(10, 8, 6));
        let vitis = VitisHlsModel::ii(&tracer);
        let soda = SodaOptModel::ii(&tracer);
        assert_eq!(
            vitis,
            ACCESS_II_CYCLES * tracer.external_accesses_per_point() as f64
        );
        assert!(soda > vitis, "SODA re-reads the small data");
    }

    #[test]
    fn hmls_cu_derivation_matches_paper() {
        let device = Device::u280();
        let pw = profile(&shmls_kernels::pw_advection::source(16, 12, 8));
        assert_eq!(StencilHmlsModel::derive_cus(&pw, &device), 4);
        let tracer = profile(&shmls_kernels::tracer_advection::source(10, 8, 6));
        assert_eq!(StencilHmlsModel::derive_cus(&tracer, &device), 1);
    }

    #[test]
    fn forced_cu_override_respects_bank_budget() {
        let eval = EvalContext::default();
        let pw = profile(&shmls_kernels::pw_advection::source(16, 12, 8));
        // 5 CUs × 7 ports = 35 > 32 banks: must fail to "compile".
        let outcome = StencilHmlsModel { cus: Some(5) }.evaluate(&pw, &eval);
        assert!(matches!(outcome, Outcome::CompileError(_)), "{outcome:?}");
    }

    #[test]
    fn outcome_accessors() {
        let eval = EvalContext::default();
        let pw = profile(&shmls_kernels::pw_advection::source(16, 12, 8));
        let ok = StencilHmlsModel::default().evaluate(&pw, &eval);
        assert!(ok.measurement().is_some());
        assert!(ok.resource_pct().is_some());
        let fail = Outcome::Inexpressible("x".into());
        assert!(fail.measurement().is_none());
        assert!(fail.resource_pct().is_none());
    }

    #[test]
    fn all_frameworks_ordering() {
        let names: Vec<&str> = all_frameworks().iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec![
                "Stencil-HMLS",
                "DaCe",
                "SODA-opt",
                "Vitis HLS",
                "StencilFlow"
            ]
        );
    }
}
