//! # shmls-baselines — the comparator frameworks of the paper's evaluation
//!
//! Models of DaCe, SODA-opt, AMD Xilinx Vitis HLS and StencilFlow — plus
//! the Stencil-HMLS deployment itself — evaluated through the shared
//! device/performance/resource/power models of `shmls-fpga-sim`. See
//! [`models`] for what each framework's model encodes and DESIGN.md for
//! why this substitution preserves the paper's comparison.

#![warn(missing_docs)]

pub mod models;
pub mod profile;

pub use models::{
    all_frameworks, DaceModel, EvalContext, FrameworkModel, Measurement, Outcome, SodaOptModel,
    StencilFlowModel, StencilHmlsModel, VitisHlsModel, ACCESS_II_CYCLES, DACE_II,
};
pub use profile::KernelProfile;
