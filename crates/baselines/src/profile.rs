//! Kernel profiling: the framework models consume a [`KernelProfile`]
//! summarising the structural facts every tool in the paper's comparison
//! would see — problem size, access counts, operation mix, dependency
//! structure, port requirements — extracted from the compiled kernel.

use std::collections::BTreeMap;

use shmls_dialects::stencil;
use shmls_fpga_sim::design::{DesignDescriptor, OpMix};
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use stencil_hmls::CompiledKernel;

/// Structural profile of a kernel at a specific problem size.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Interior points.
    pub points: u64,
    /// Halo-padded points.
    pub bounded_points: u64,
    /// External fields read.
    pub fields_in: usize,
    /// External fields written.
    pub fields_out: usize,
    /// `stencil.access` reads per point (across all computations).
    pub reads_per_point: u64,
    /// External writes per point (one per written field).
    pub writes_per_point: u64,
    /// Total operation mix per point.
    pub ops: OpMix,
    /// Stencil computations (stencil.apply count).
    pub computations: usize,
    /// Independent computation groups (connected components of the
    /// producer→consumer graph) — the paper's "split" opportunity.
    pub split_groups: usize,
    /// Longest producer→consumer chain (serialisation depth).
    pub chain_depth: usize,
    /// AXI ports one compute unit needs (fields + small-data bundle).
    pub ports_per_cu: usize,
    /// Small-data elements copied to BRAM.
    pub small_data_elements: u64,
    /// The full Stencil-HMLS design descriptor.
    pub design: DesignDescriptor,
}

impl KernelProfile {
    /// Build the profile from a compiled kernel.
    pub fn from_compiled(compiled: &CompiledKernel) -> IrResult<Self> {
        let ctx = &compiled.ctx;
        let design = DesignDescriptor::from_hls_func(ctx, compiled.hls_func)?;

        let applies = ctx.find_ops(compiled.stencil_func, stencil::APPLY);
        let reads_per_point = applies
            .iter()
            .map(|&a| ctx.find_ops(a, stencil::ACCESS).len() as u64)
            .sum();

        // Producer→consumer graph over the applies.
        let result_of: BTreeMap<ValueId, usize> = applies
            .iter()
            .enumerate()
            .map(|(i, &a)| (ctx.result(a, 0), i))
            .collect();
        let mut parents: Vec<usize> = (0..applies.len()).collect();
        fn find(parents: &mut Vec<usize>, x: usize) -> usize {
            if parents[x] != x {
                let root = find(parents, parents[x]);
                parents[x] = root;
            }
            parents[x]
        }
        let mut depth = vec![1usize; applies.len()];
        for (i, &a) in applies.iter().enumerate() {
            for &operand in ctx.operands(a) {
                if let Some(&p) = result_of.get(&operand) {
                    let (ra, rb) = (find(&mut parents, p), find(&mut parents, i));
                    if ra != rb {
                        parents[ra] = rb;
                    }
                    depth[i] = depth[i].max(depth[p] + 1);
                }
            }
        }
        let mut roots: Vec<usize> = (0..applies.len()).map(|i| find(&mut parents, i)).collect();
        roots.sort_unstable();
        roots.dedup();

        let m_axi_ports = design.axi_ports();
        Ok(Self {
            name: compiled.kernel.name.clone(),
            points: design.interior_points,
            bounded_points: design.bounded_points,
            fields_in: compiled.report.inputs,
            fields_out: compiled.report.outputs,
            reads_per_point,
            writes_per_point: compiled.report.outputs as u64,
            ops: design.total_ops(),
            computations: applies.len(),
            split_groups: roots.len(),
            chain_depth: depth.iter().copied().max().unwrap_or(1),
            ports_per_cu: m_axi_ports,
            small_data_elements: design.init_copy_elements,
            design,
        })
    }

    /// External memory accesses per point (reads of distinct field values
    /// plus writes), used by the Von-Neumann baseline models.
    pub fn external_accesses_per_point(&self) -> u64 {
        self.reads_per_point + self.writes_per_point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_hmls::{compile, CompileOptions};

    #[test]
    fn pw_profile_shape() {
        let compiled = compile(
            &shmls_kernels::pw_advection::source(16, 12, 8),
            &CompileOptions::default(),
        )
        .unwrap();
        let p = KernelProfile::from_compiled(&compiled).unwrap();
        assert_eq!(p.computations, 3);
        assert_eq!(p.split_groups, 3, "PW's three computations are independent");
        assert_eq!(p.chain_depth, 1);
        assert_eq!(p.ports_per_cu, 7, "6 fields + 1 small-data bundle");
        assert_eq!(p.points, 16 * 12 * 8);
        assert!(
            p.reads_per_point >= 30,
            "PW reads many neighbours: {}",
            p.reads_per_point
        );
        assert_eq!(p.writes_per_point, 3);
        assert!(p.small_data_elements > 0);
    }

    #[test]
    fn tracer_profile_shape() {
        let compiled = compile(
            &shmls_kernels::tracer_advection::source(10, 8, 6),
            &CompileOptions::default(),
        )
        .unwrap();
        let p = KernelProfile::from_compiled(&compiled).unwrap();
        assert_eq!(p.computations, 24);
        assert_eq!(p.ports_per_cu, 17, "tracer advection maps 17 memory ports");
        assert!(
            p.split_groups < p.computations / 4,
            "tracer computations are dependency-chained: {} groups",
            p.split_groups
        );
        assert!(
            p.chain_depth >= 5,
            "deep MUSCL chain, got {}",
            p.chain_depth
        );
    }
}
