//! HBM bank model: port→bank connectivity and contention.
//!
//! The paper wires each AXI bundle to its own HBM pseudo-channel through a
//! hand-written Vitis connectivity file ("The connectivity to HBM was done
//! manually for our approach"). This module generates that assignment (and
//! the `.cfg` text a real Vitis run would consume), and models what happens
//! when assignments collide: beats queued on the same bank are served
//! round-robin at the bank's rate.
//!
//! Two implementations are provided and property-tested against each other:
//! an analytic bound and an exact cycle-stepped arbitration simulation.

use serde::Serialize;

use crate::design::DesignDescriptor;
use crate::device::Device;
use shmls_ir::error::IrResult;
use shmls_ir::ir_ensure;

/// One AXI port's bank assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PortAssignment {
    /// Compute-unit instance (1-based, like Vitis `kernel_1`).
    pub cu: u32,
    /// Bundle name (`gmem0`, `gmem_small`, …).
    pub bundle: String,
    /// HBM pseudo-channel index.
    pub bank: u32,
}

/// A full connectivity map for a replicated deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Connectivity {
    /// Kernel name.
    pub kernel: String,
    /// All port assignments.
    pub ports: Vec<PortAssignment>,
}

impl Connectivity {
    /// Render as a Vitis `--config` connectivity section:
    ///
    /// ```text
    /// [connectivity]
    /// sp=pw_advection_1.gmem0:HBM[0]
    /// …
    /// ```
    pub fn to_cfg(&self) -> String {
        let mut out = String::from("[connectivity]\n");
        for p in &self.ports {
            out.push_str(&format!(
                "sp={}_{}.{}:HBM[{}]\n",
                self.kernel, p.cu, p.bundle, p.bank
            ));
        }
        out
    }

    /// Number of distinct banks used.
    pub fn banks_used(&self) -> usize {
        let mut banks: Vec<u32> = self.ports.iter().map(|p| p.bank).collect();
        banks.sort_unstable();
        banks.dedup();
        banks.len()
    }
}

/// Assign every `m_axi` bundle of every CU to its own HBM bank (step 9's
/// "each of these ports is connected to a separate bank of HBM"). Errors
/// when the deployment needs more banks than the device has — the paper's
/// hard constraint that capped PW advection at 4 CUs.
pub fn assign_banks(
    design: &DesignDescriptor,
    device: &Device,
    cus: u32,
) -> IrResult<Connectivity> {
    let mut bundles: Vec<&str> = design
        .interfaces
        .iter()
        .filter(|(p, _)| p == "m_axi")
        .map(|(_, b)| b.as_str())
        .collect();
    bundles.sort_unstable();
    bundles.dedup();
    let needed = bundles.len() * cus as usize;
    ir_ensure!(
        needed <= device.hbm_banks as usize,
        "deployment needs {needed} HBM banks but {} has {}",
        device.name,
        device.hbm_banks
    );
    let mut ports = Vec::with_capacity(needed);
    let mut bank = 0u32;
    for cu in 1..=cus {
        for bundle in &bundles {
            ports.push(PortAssignment {
                cu,
                bundle: (*bundle).to_string(),
                bank,
            });
            bank += 1;
        }
    }
    Ok(Connectivity {
        kernel: design.name.clone(),
        ports,
    })
}

/// A traffic demand: `beats` 512-bit beats through the port on `bank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traffic {
    /// Bank the port is wired to.
    pub bank: u32,
    /// Beats to move.
    pub beats: u64,
}

/// Analytic contention bound: each bank serves its queued beats at
/// `beats_per_cycle`; total cycles = the slowest bank.
pub fn contention_cycles_analytic(traffic: &[Traffic], beats_per_cycle: f64) -> u64 {
    let mut per_bank = std::collections::BTreeMap::<u32, u64>::new();
    for t in traffic {
        *per_bank.entry(t.bank).or_default() += t.beats;
    }
    per_bank
        .values()
        .map(|&beats| (beats as f64 / beats_per_cycle).ceil() as u64)
        .max()
        .unwrap_or(0)
}

/// Exact round-robin arbitration: step cycles, each bank serving up to
/// `beats_per_cycle` (accumulated fractionally) among its pending ports in
/// round-robin order. Returns `(total_cycles, per-port completion cycle)`.
pub fn simulate_arbitration(traffic: &[Traffic], beats_per_cycle: f64) -> (u64, Vec<u64>) {
    ir_assert_positive(beats_per_cycle);
    let mut remaining: Vec<u64> = traffic.iter().map(|t| t.beats).collect();
    let mut done_at = vec![0u64; traffic.len()];
    let mut credit = std::collections::BTreeMap::<u32, f64>::new();
    let mut rr_cursor = std::collections::BTreeMap::<u32, usize>::new();
    let mut cycle: u64 = 0;
    while remaining.iter().any(|&r| r > 0) {
        cycle += 1;
        let banks: std::collections::BTreeSet<u32> = traffic
            .iter()
            .enumerate()
            .filter(|(i, _)| remaining[*i] > 0)
            .map(|(_, t)| t.bank)
            .collect();
        for bank in banks {
            let c = credit.entry(bank).or_insert(0.0);
            *c += beats_per_cycle;
            let mut budget = c.floor() as u64;
            *c -= budget as f64;
            // Ports on this bank with pending beats, round-robin.
            let members: Vec<usize> = traffic
                .iter()
                .enumerate()
                .filter(|(i, t)| t.bank == bank && remaining[*i] > 0)
                .map(|(i, _)| i)
                .collect();
            let cursor = rr_cursor.entry(bank).or_insert(0);
            let mut idx = 0;
            while budget > 0 && members.iter().any(|&m| remaining[m] > 0) {
                let m = members[(*cursor + idx) % members.len()];
                if remaining[m] > 0 {
                    remaining[m] -= 1;
                    budget -= 1;
                    if remaining[m] == 0 {
                        done_at[m] = cycle;
                    }
                }
                idx += 1;
                if idx >= members.len() {
                    idx = 0;
                }
            }
            *cursor = (*cursor + 1) % members.len().max(1);
        }
    }
    (cycle, done_at)
}

fn ir_assert_positive(rate: f64) {
    assert!(rate > 0.0, "bank rate must be positive");
}

/// Contention factor of a connectivity under uniform per-port traffic: the
/// slowdown versus a conflict-free assignment (1.0 = no contention).
pub fn contention_factor(connectivity: &Connectivity, beats_per_port: u64, device: &Device) -> f64 {
    if connectivity.ports.is_empty() || beats_per_port == 0 {
        return 1.0;
    }
    let traffic: Vec<Traffic> = connectivity
        .ports
        .iter()
        .map(|p| Traffic {
            bank: p.bank,
            beats: beats_per_port,
        })
        .collect();
    let rate = device.beats_per_cycle_per_bank();
    let actual = contention_cycles_analytic(&traffic, rate);
    let ideal = (beats_per_port as f64 / rate).ceil() as u64;
    actual as f64 / ideal.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignDescriptor, Stage, StreamDesc};

    fn toy_design(fields: usize) -> DesignDescriptor {
        DesignDescriptor {
            name: "pw_advection".into(),
            interior_points: 1000,
            bounded_points: 1100,
            stages: vec![Stage::Load {
                fields,
                beats_per_field: 138,
                elements_per_field: 1100,
            }],
            streams: vec![StreamDesc {
                depth: 8,
                elem_bytes: 8,
            }],
            wiring: Vec::new(),
            interfaces: (0..fields)
                .map(|i| ("m_axi".to_string(), format!("gmem{i}")))
                .chain(std::iter::once((
                    "m_axi".to_string(),
                    "gmem_small".to_string(),
                )))
                .chain(std::iter::once((
                    "s_axilite".to_string(),
                    "control".to_string(),
                )))
                .collect(),
            local_buffer_bytes: vec![],
            init_copy_elements: 0,
        }
    }

    #[test]
    fn connectivity_is_one_bank_per_port() {
        let design = toy_design(6);
        let device = Device::u280();
        let c = assign_banks(&design, &device, 4).unwrap();
        // 7 bundles × 4 CUs = 28 ports, all on distinct banks.
        assert_eq!(c.ports.len(), 28);
        assert_eq!(c.banks_used(), 28);
        // The Vitis config names instances kernel_1..kernel_4.
        let cfg = c.to_cfg();
        assert!(cfg.starts_with("[connectivity]\n"), "{cfg}");
        assert!(cfg.contains("sp=pw_advection_1.gmem0:HBM[0]"), "{cfg}");
        assert!(cfg.contains("sp=pw_advection_4.gmem_small:HBM["), "{cfg}");
        assert_eq!(cfg.lines().count(), 1 + 28);
    }

    #[test]
    fn bank_budget_enforced() {
        let design = toy_design(6); // 7 m_axi bundles per CU
        let device = Device::u280();
        // 5 CUs × 7 = 35 > 32 banks: exactly the paper's 4-CU cap.
        assert!(assign_banks(&design, &device, 4).is_ok());
        let e = assign_banks(&design, &device, 5).unwrap_err();
        assert!(e.to_string().contains("HBM banks"), "{e}");
    }

    #[test]
    fn analytic_matches_stepped_simulation() {
        let rate = 0.75;
        for traffic in [
            vec![Traffic {
                bank: 0,
                beats: 100,
            }],
            vec![
                Traffic {
                    bank: 0,
                    beats: 100,
                },
                Traffic {
                    bank: 0,
                    beats: 100,
                },
            ],
            vec![
                Traffic { bank: 0, beats: 64 },
                Traffic { bank: 0, beats: 32 },
                Traffic {
                    bank: 1,
                    beats: 200,
                },
            ],
            vec![
                Traffic { bank: 2, beats: 17 },
                Traffic { bank: 2, beats: 3 },
                Traffic { bank: 2, beats: 55 },
            ],
        ] {
            let analytic = contention_cycles_analytic(&traffic, rate);
            let (stepped, done) = simulate_arbitration(&traffic, rate);
            // The stepped simulation can finish at most one cycle later
            // (fractional credit rounding).
            assert!(
                stepped >= analytic && stepped <= analytic + 1,
                "analytic {analytic} vs stepped {stepped} for {traffic:?}"
            );
            assert_eq!(done.len(), traffic.len());
            assert_eq!(done.iter().copied().max().unwrap(), stepped);
        }
    }

    #[test]
    fn round_robin_is_fair() {
        // Two equal ports on one bank finish within a cycle of each other.
        let traffic = vec![
            Traffic {
                bank: 0,
                beats: 500,
            },
            Traffic {
                bank: 0,
                beats: 500,
            },
        ];
        let (_, done) = simulate_arbitration(&traffic, 1.0);
        assert!((done[0] as i64 - done[1] as i64).abs() <= 1, "{done:?}");
    }

    #[test]
    fn contention_factor_scales_with_sharing() {
        let device = Device::u280();
        let design = toy_design(3);
        let conflict_free = assign_banks(&design, &device, 1).unwrap();
        assert!((contention_factor(&conflict_free, 1000, &device) - 1.0).abs() < 0.01);
        // Force all ports onto one bank: factor = number of ports.
        let mut shared = conflict_free.clone();
        for p in &mut shared.ports {
            p.bank = 0;
        }
        let f = contention_factor(&shared, 1000, &device);
        assert!((f - shared.ports.len() as f64).abs() < 0.05, "{f}");
    }
}
