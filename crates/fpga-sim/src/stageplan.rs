//! Bytecode plans for dataflow stages.
//!
//! The threaded engine's default stage executor is the tree-walking
//! [`Machine`](shmls_ir::interp::Machine): every loop iteration re-walks
//! the stage body op by op, paying hash-map traffic per operand. This
//! module compiles the *shape the HMLS lowering actually generates* — a
//! single pipelined `scf.for` whose body is stream reads, straight-line
//! `f64` arithmetic, index reconstruction and stream writes — into a flat
//! [`StagePlan`] executed with nothing but slice indexing and the stream
//! transport. Stages that do not match (the `load_data` / `write_data` /
//! `shift_buffer` runtime stages, or anything with control flow) return
//! `None` from [`plan_stage`] and keep the tree-walker; the interpreter
//! remains the oracle.
//!
//! The float work reuses the shared bytecode ISA
//! ([`shmls_ir::bytecode::Program`]); the stream-facing
//! [`InputRef::PackElem`] / [`InputRef::ReadScalar`] variants index into
//! the plan's per-iteration read list. Every opcode executes the same
//! Rust expression the tree-walker uses — [`Program::run`] routes each
//! instruction through the single-source `un_op` / `bin_op` semantics
//! that the vector tier's chunked executor also calls — so a planned
//! stage is bitwise-identical to the interpreted one, and any future
//! opcode change lands in every execution tier at once.
//!
//! Stage plans deliberately stay *scalar* (one loop iteration per
//! [`Program::run`] dispatch) rather than borrowing the apply tier's
//! [`LANES`](shmls_ir::bytecode::LANES)-wide chunking: a stage's reads
//! and writes interleave with other stages through bounded FIFOs, and
//! batching N iterations' pops before their pushes would change the
//! occupancy pattern the deadlock and cycle models are validating. The
//! sharing is the opcode *semantics*, not the traversal schedule.

use std::collections::HashMap;

use shmls_dialects::{hls, scf};
use shmls_ir::attributes::Attribute;
use shmls_ir::bytecode::{BinOp, InputRef, Program, ProgramBuilder, UnOp, VReg};
use shmls_ir::error::IrResult;
use shmls_ir::interp::{Buffer, RtValue, Store};
use shmls_ir::ir::{Context, OpId, ValueId};
use shmls_ir::types::Type;
use shmls_ir::{ir_bail, ir_ensure, ir_error};

use crate::design::OpMix;
use crate::executor::StreamIo;

/// One integer micro-instruction, evaluated once per loop iteration.
/// Register 0 always holds the induction variable. Semantics mirror the
/// interpreter's `arith.*` integer ops exactly (wrapping add/mul,
/// truncating signed div/rem with a zero check).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntInstr {
    /// `int[dst] = value`.
    Const {
        /// Destination register.
        dst: usize,
        /// Immediate.
        value: i64,
    },
    /// `int[dst] = int[lhs].wrapping_add(int[rhs])` (`arith.addi`).
    Add {
        /// Destination register.
        dst: usize,
        /// Left operand.
        lhs: usize,
        /// Right operand.
        rhs: usize,
    },
    /// `int[dst] = int[lhs].wrapping_mul(int[rhs])` (`arith.muli`).
    Mul {
        /// Destination register.
        dst: usize,
        /// Left operand.
        lhs: usize,
        /// Right operand.
        rhs: usize,
    },
    /// `int[dst] = int[lhs] / int[rhs]` (`arith.divsi`, zero-checked).
    Div {
        /// Destination register.
        dst: usize,
        /// Left operand.
        lhs: usize,
        /// Right operand.
        rhs: usize,
    },
    /// `int[dst] = int[lhs] % int[rhs]` (`arith.remsi`, zero-checked).
    Rem {
        /// Destination register.
        dst: usize,
        /// Left operand.
        lhs: usize,
        /// Right operand.
        rhs: usize,
    },
}

/// Where a stream write takes its value from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteSrc {
    /// The result of the `Eval` that filled value slot `n`.
    Eval(usize),
    /// Forward read slot `n` verbatim (scalar *or* window pack — this is
    /// how dup stages replicate).
    Read(usize),
    /// A scalar resolved from the stage environment (slot into
    /// [`StagePlan::scalars`]).
    Env(usize),
}

/// One step of a loop iteration, in original op order. Order is
/// preserved exactly — with bounded FIFOs, interleaving of blocking reads
/// and writes is part of the design's deadlock behaviour, not a detail.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Pop stream slot `stream` into read slot `slot`.
    Read {
        /// Destination read slot.
        slot: usize,
        /// Index into [`StagePlan::streams`].
        stream: usize,
    },
    /// Run a float program; its single result lands in value slot `dst`.
    Eval {
        /// Straight-line float code (shared bytecode ISA).
        prog: Program,
        /// Destination value slot.
        dst: usize,
    },
    /// Push a value onto stream slot `stream`.
    Write {
        /// Value source.
        src: WriteSrc,
        /// Index into [`StagePlan::streams`].
        stream: usize,
    },
}

/// A compiled dataflow stage: `trips` iterations of a fixed action list.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Loop trip count (`lb = 0`, `step = 1`).
    pub trips: i64,
    /// Stream SSA values used by reads/writes, resolved from the stage
    /// environment at run start.
    pub streams: Vec<ValueId>,
    /// Scalar `f64` SSA values resolved from the environment
    /// ([`InputRef::Scalar`] / [`WriteSrc::Env`] index into this).
    pub scalars: Vec<ValueId>,
    /// 1-D parameter memrefs resolved from the environment
    /// ([`InputRef::ParamLoad::operand`] indexes into this).
    pub params: Vec<ValueId>,
    /// Integer code run once per iteration (register 0 = induction var).
    /// [`InputRef::ParamLoad::dim`] names a register here.
    pub int_prog: Vec<IntInstr>,
    /// Integer register file size.
    pub n_int_regs: usize,
    /// The per-iteration steps, in op order.
    pub actions: Vec<Action>,
    /// Read slot count per iteration.
    pub n_reads: usize,
    /// Value slot count per iteration.
    pub n_evals: usize,
}

/// Try to compile a `hls.dataflow` stage into a [`StagePlan`]. Returns
/// `None` for any stage outside the planned vocabulary (runtime calls,
/// nested control flow, non-canonical loop bounds, …) — the caller falls
/// back to the tree-walking interpreter.
pub fn plan_stage(ctx: &Context, stage: OpId) -> Option<StagePlan> {
    try_plan_stage(ctx, stage).ok()
}

fn try_plan_stage(ctx: &Context, stage: OpId) -> IrResult<StagePlan> {
    ir_ensure!(
        ctx.op_name(stage) == hls::DATAFLOW,
        "stage plan: not a dataflow op"
    );
    let body = ctx
        .entry_block(stage)
        .ok_or_else(|| ir_error!("stage plan: dataflow without body"))?;

    // The stage body must be `constants…, one scf.for` — nothing else.
    let mut consts: HashMap<ValueId, i64> = HashMap::new();
    let mut for_op = None;
    for &op in ctx.block_ops(body) {
        match ctx.op_name(op) {
            "arith.constant" => {
                if let Some(Attribute::Int(v, _)) = ctx.attr(op, "value") {
                    consts.insert(ctx.result(op, 0), *v);
                } else {
                    ir_bail!("stage plan: non-integer stage constant");
                }
            }
            scf::FOR => {
                ir_ensure!(for_op.is_none(), "stage plan: multiple loops");
                for_op = Some(op);
            }
            other => ir_bail!("stage plan: unsupported stage op `{other}`"),
        }
    }
    let for_op = for_op.ok_or_else(|| ir_error!("stage plan: no loop"))?;
    let bounds = ctx.operands(for_op).to_vec();
    ir_ensure!(bounds.len() == 3, "stage plan: non-canonical loop operands");
    let c = |v: ValueId| consts.get(&v).copied();
    let (lb, ub, step) = (c(bounds[0]), c(bounds[1]), c(bounds[2]));
    ir_ensure!(
        lb == Some(0) && step == Some(1),
        "stage plan: loop is not 0..n by 1"
    );
    let trips = ub.ok_or_else(|| ir_error!("stage plan: non-constant trip count"))?;
    ir_ensure!(trips >= 0, "stage plan: negative trip count");

    let loop_body = ctx
        .entry_block(for_op)
        .ok_or_else(|| ir_error!("stage plan: loop without body"))?;
    let induction = scf::induction_var(ctx, for_op);

    let mut plan = StagePlan {
        trips,
        streams: Vec::new(),
        scalars: Vec::new(),
        params: Vec::new(),
        int_prog: Vec::new(),
        n_int_regs: 1, // register 0 = induction variable
        actions: Vec::new(),
        n_reads: 0,
        n_evals: 0,
    };

    let mut ints: HashMap<ValueId, usize> = HashMap::new();
    ints.insert(induction, 0);
    let mut read_slot: HashMap<ValueId, usize> = HashMap::new();
    let mut scalar_slot: HashMap<ValueId, usize> = HashMap::new();
    let mut param_slot: HashMap<ValueId, usize> = HashMap::new();
    let mut stream_slot: HashMap<ValueId, usize> = HashMap::new();

    // Current float segment (flushed into an `Eval` at each write).
    let mut builder = ProgramBuilder::new();
    let mut floats: HashMap<ValueId, VReg> = HashMap::new();

    fn slot_of(table: &mut Vec<ValueId>, map: &mut HashMap<ValueId, usize>, v: ValueId) -> usize {
        *map.entry(v).or_insert_with(|| {
            table.push(v);
            table.len() - 1
        })
    }

    fn int_reg(plan: &mut StagePlan) -> usize {
        let r = plan.n_int_regs;
        plan.n_int_regs += 1;
        r
    }

    for &op in ctx.block_ops(loop_body) {
        let name = ctx.op_name(op).to_string();
        let operands = ctx.operands(op).to_vec();
        match name.as_str() {
            n if n == hls::PIPELINE || n == hls::UNROLL => {}
            n if n == scf::YIELD => break,
            n if n == hls::READ => {
                let s = slot_of(&mut plan.streams, &mut stream_slot, operands[0]);
                let slot = plan.n_reads;
                plan.n_reads += 1;
                plan.actions.push(Action::Read { slot, stream: s });
                read_slot.insert(ctx.result(op, 0), slot);
            }
            n if n == hls::WRITE => {
                let s = slot_of(&mut plan.streams, &mut stream_slot, operands[1]);
                let v = operands[0];
                let src = if let Some(&r) = floats.get(&v) {
                    // Flush the pending float segment; its result is what
                    // this write sends.
                    let prog = std::mem::take(&mut builder).finish(&[r])?;
                    floats.clear();
                    let dst = plan.n_evals;
                    plan.n_evals += 1;
                    plan.actions.push(Action::Eval { prog, dst });
                    WriteSrc::Eval(dst)
                } else if let Some(&slot) = read_slot.get(&v) {
                    WriteSrc::Read(slot)
                } else if is_env_scalar(ctx, loop_body, &v) {
                    WriteSrc::Env(slot_of(&mut plan.scalars, &mut scalar_slot, v))
                } else {
                    ir_bail!("stage plan: write of unsupported value");
                };
                plan.actions.push(Action::Write { src, stream: s });
            }
            "arith.constant" => {
                let attr = ctx
                    .attr(op, "value")
                    .ok_or_else(|| ir_error!("arith.constant without value"))?;
                match attr {
                    Attribute::Float(v, _) => {
                        let r = builder.constant(*v);
                        floats.insert(ctx.result(op, 0), r);
                    }
                    Attribute::Int(v, _) => {
                        let dst = int_reg(&mut plan);
                        plan.int_prog.push(IntInstr::Const { dst, value: *v });
                        ints.insert(ctx.result(op, 0), dst);
                    }
                    other => ir_bail!("stage plan: unsupported constant {other}"),
                }
            }
            "arith.addi" | "arith.muli" | "arith.divsi" | "arith.remsi" => {
                let lhs = *ints
                    .get(&operands[0])
                    .ok_or_else(|| ir_error!("stage plan: non-planned integer operand"))?;
                let rhs = *ints
                    .get(&operands[1])
                    .ok_or_else(|| ir_error!("stage plan: non-planned integer operand"))?;
                let dst = int_reg(&mut plan);
                plan.int_prog.push(match name.as_str() {
                    "arith.addi" => IntInstr::Add { dst, lhs, rhs },
                    "arith.muli" => IntInstr::Mul { dst, lhs, rhs },
                    "arith.divsi" => IntInstr::Div { dst, lhs, rhs },
                    _ => IntInstr::Rem { dst, lhs, rhs },
                });
                ints.insert(ctx.result(op, 0), dst);
            }
            "llvm.extractvalue" => {
                let &slot = read_slot
                    .get(&operands[0])
                    .ok_or_else(|| ir_error!("stage plan: extract from non-read value"))?;
                let position = ctx
                    .attr(op, "position")
                    .and_then(Attribute::as_index_array)
                    .ok_or_else(|| ir_error!("llvm.extractvalue without position"))?;
                let elem = *position
                    .last()
                    .ok_or_else(|| ir_error!("empty extractvalue position"))?;
                ir_ensure!(elem >= 0, "stage plan: negative pack position");
                let r = builder.input(InputRef::PackElem {
                    read: u16::try_from(slot)
                        .map_err(|_| ir_error!("stage plan: read slot overflow"))?,
                    elem: u32::try_from(elem)
                        .map_err(|_| ir_error!("stage plan: pack position overflow"))?,
                });
                floats.insert(ctx.result(op, 0), r);
            }
            "memref.load" => {
                ir_ensure!(
                    operands.len() == 2,
                    "stage plan: only 1-D parameter loads supported"
                );
                ir_ensure!(
                    ctx.defining_op(operands[0])
                        .map(|d| !op_in_block(ctx, d, loop_body))
                        .unwrap_or(true),
                    "stage plan: load from loop-local memref"
                );
                let p = slot_of(&mut plan.params, &mut param_slot, operands[0]);
                let &idx = ints
                    .get(&operands[1])
                    .ok_or_else(|| ir_error!("stage plan: non-planned load index"))?;
                let r = builder.input(InputRef::ParamLoad {
                    operand: u16::try_from(p)
                        .map_err(|_| ir_error!("stage plan: param slot overflow"))?,
                    dim: u8::try_from(idx)
                        .map_err(|_| ir_error!("stage plan: int register overflow"))?,
                    shift: 0,
                });
                floats.insert(ctx.result(op, 0), r);
            }
            "arith.negf" | "math.absf" | "math.sqrt" | "math.exp" => {
                let src = float_use(
                    ctx,
                    loop_body,
                    &mut builder,
                    &mut floats,
                    &read_slot,
                    &mut plan.scalars,
                    &mut scalar_slot,
                    operands[0],
                )?;
                let opc = match name.as_str() {
                    "arith.negf" => UnOp::Neg,
                    "math.absf" => UnOp::Abs,
                    "math.sqrt" => UnOp::Sqrt,
                    _ => UnOp::Exp,
                };
                let r = builder.unary(opc, src);
                floats.insert(ctx.result(op, 0), r);
            }
            "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maximumf"
            | "arith.minimumf" | "math.powf" | "math.copysign" => {
                let lhs = float_use(
                    ctx,
                    loop_body,
                    &mut builder,
                    &mut floats,
                    &read_slot,
                    &mut plan.scalars,
                    &mut scalar_slot,
                    operands[0],
                )?;
                let rhs = float_use(
                    ctx,
                    loop_body,
                    &mut builder,
                    &mut floats,
                    &read_slot,
                    &mut plan.scalars,
                    &mut scalar_slot,
                    operands[1],
                )?;
                let opc = match name.as_str() {
                    "arith.addf" => BinOp::Add,
                    "arith.subf" => BinOp::Sub,
                    "arith.mulf" => BinOp::Mul,
                    "arith.divf" => BinOp::Div,
                    "arith.maximumf" => BinOp::Max,
                    "arith.minimumf" => BinOp::Min,
                    "math.powf" => BinOp::Pow,
                    _ => BinOp::Copysign,
                };
                let r = builder.binary(opc, lhs, rhs);
                floats.insert(ctx.result(op, 0), r);
            }
            "math.fma" => {
                let mut arg = |v| {
                    float_use(
                        ctx,
                        loop_body,
                        &mut builder,
                        &mut floats,
                        &read_slot,
                        &mut plan.scalars,
                        &mut scalar_slot,
                        v,
                    )
                };
                let (a, b2, c2) = (arg(operands[0])?, arg(operands[1])?, arg(operands[2])?);
                let r = builder.fma(a, b2, c2);
                floats.insert(ctx.result(op, 0), r);
            }
            other => ir_bail!("stage plan: unsupported loop op `{other}`"),
        }
    }
    Ok(plan)
}

/// Is `v` a scalar `f64` defined outside `block` (a kernel constant or
/// other environment value)?
fn is_env_scalar(ctx: &Context, block: shmls_ir::ir::BlockId, v: &ValueId) -> bool {
    matches!(ctx.value_type(*v), Type::F64)
        && ctx
            .defining_op(*v)
            .map(|d| !op_in_block(ctx, d, block))
            .unwrap_or(true)
}

fn op_in_block(ctx: &Context, op: OpId, block: shmls_ir::ir::BlockId) -> bool {
    ctx.block_ops(block).contains(&op)
}

/// Resolve a float operand inside the current segment: a computed value,
/// a scalar stream read, or an environment scalar promoted to an input.
#[allow(clippy::too_many_arguments)]
fn float_use(
    ctx: &Context,
    loop_body: shmls_ir::ir::BlockId,
    builder: &mut ProgramBuilder,
    floats: &mut HashMap<ValueId, VReg>,
    read_slot: &HashMap<ValueId, usize>,
    scalars: &mut Vec<ValueId>,
    scalar_slot: &mut HashMap<ValueId, usize>,
    v: ValueId,
) -> IrResult<VReg> {
    if let Some(&r) = floats.get(&v) {
        return Ok(r);
    }
    if let Some(&slot) = read_slot.get(&v) {
        let r = builder.input(InputRef::ReadScalar {
            read: u16::try_from(slot).map_err(|_| ir_error!("stage plan: read slot overflow"))?,
        });
        floats.insert(v, r);
        return Ok(r);
    }
    if is_env_scalar(ctx, loop_body, &v) {
        let slot = *scalar_slot.entry(v).or_insert_with(|| {
            scalars.push(v);
            scalars.len() - 1
        });
        let r = builder.input(InputRef::Scalar {
            operand: u16::try_from(slot)
                .map_err(|_| ir_error!("stage plan: scalar slot overflow"))?,
        });
        floats.insert(v, r);
        return Ok(r);
    }
    Err(ir_error!("stage plan: unresolvable float operand"))
}

// ---- execution -----------------------------------------------------------

/// Execute a [`StagePlan`] against the stage's environment and store,
/// using `io` for all stream traffic (so the threaded engine's stall
/// detection and deadlock reporting work unchanged).
pub fn run_stage_plan(
    plan: &StagePlan,
    env: &HashMap<ValueId, RtValue>,
    store: &Store,
    io: &mut impl StreamIo,
) -> IrResult<()> {
    let get = |v: &ValueId| {
        env.get(v)
            .ok_or_else(|| ir_error!("stage plan: unbound environment value"))
    };
    let streams = plan
        .streams
        .iter()
        .map(|v| get(v)?.as_stream())
        .collect::<IrResult<Vec<_>>>()?;
    let scalars = plan
        .scalars
        .iter()
        .map(|v| get(v)?.as_f64())
        .collect::<IrResult<Vec<_>>>()?;
    let params = plan
        .params
        .iter()
        .map(|v| -> IrResult<&Buffer> {
            let buf = store.get(get(v)?.as_memref()?)?;
            ir_ensure!(buf.shape.len() == 1, "stage plan: parameter is not 1-D");
            Ok(buf)
        })
        .collect::<IrResult<Vec<_>>>()?;

    let mut int_regs = vec![0i64; plan.n_int_regs];
    let max_regs = plan
        .actions
        .iter()
        .map(|a| match a {
            Action::Eval { prog, .. } => prog.n_regs as usize,
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    let mut regs = vec![0.0f64; max_regs];
    let mut reads: Vec<RtValue> = vec![RtValue::Unit; plan.n_reads];
    let mut evals = vec![0.0f64; plan.n_evals];

    for iter in 0..plan.trips {
        int_regs[0] = iter;
        for instr in &plan.int_prog {
            match *instr {
                IntInstr::Const { dst, value } => int_regs[dst] = value,
                IntInstr::Add { dst, lhs, rhs } => {
                    int_regs[dst] = int_regs[lhs].wrapping_add(int_regs[rhs]);
                }
                IntInstr::Mul { dst, lhs, rhs } => {
                    int_regs[dst] = int_regs[lhs].wrapping_mul(int_regs[rhs]);
                }
                IntInstr::Div { dst, lhs, rhs } => {
                    ir_ensure!(int_regs[rhs] != 0, "division by zero in arith.divsi");
                    int_regs[dst] = int_regs[lhs] / int_regs[rhs];
                }
                IntInstr::Rem { dst, lhs, rhs } => {
                    ir_ensure!(int_regs[rhs] != 0, "division by zero in arith.remsi");
                    int_regs[dst] = int_regs[lhs] % int_regs[rhs];
                }
            }
        }
        for action in &plan.actions {
            match action {
                Action::Read { slot, stream } => {
                    reads[*slot] = io.pop(streams[*stream])?;
                }
                Action::Eval { prog, dst } => {
                    for (i, input) in prog.inputs.iter().enumerate() {
                        regs[i] = match input {
                            InputRef::Scalar { operand } => scalars[*operand as usize],
                            InputRef::ReadScalar { read } => reads[*read as usize].as_f64()?,
                            InputRef::PackElem { read, elem } => {
                                let pack = reads[*read as usize].as_pack()?;
                                let at = *elem as usize;
                                ir_ensure!(
                                    at < pack.len(),
                                    "stage plan: pack position {at} out of range"
                                );
                                pack[at]
                            }
                            InputRef::ParamLoad {
                                operand,
                                dim,
                                shift,
                            } => {
                                let buf = params[*operand as usize];
                                let pos = int_regs[*dim as usize] + shift - buf.origin[0];
                                ir_ensure!(
                                    pos >= 0 && pos < buf.shape[0],
                                    "stage plan: parameter index out of bounds"
                                );
                                buf.data[pos as usize]
                            }
                            InputRef::Access { .. } => {
                                ir_bail!("stage plan: stencil access is not valid in a stage")
                            }
                        };
                    }
                    prog.run(&mut regs);
                    evals[*dst] = regs[prog.results[0] as usize];
                }
                Action::Write { src, stream } => {
                    let value = match src {
                        WriteSrc::Eval(slot) => RtValue::F64(evals[*slot]),
                        WriteSrc::Read(slot) => reads[*slot].clone(),
                        WriteSrc::Env(slot) => RtValue::F64(scalars[*slot]),
                    };
                    io.push(streams[*stream], value)?;
                }
            }
        }
    }
    Ok(())
}

/// The plan's operation mix, counted with exactly the same table
/// [`crate::design`] uses when it extracts a
/// [`Stage::Compute`](crate::design::Stage) descriptor from the IR — so
/// the cycle model's per-iteration work and the bytecode that actually
/// executes can be cross-checked against each other. Ops the descriptor
/// walk ignores (`math.exp`, `math.powf`, `math.fma`, constants) are
/// ignored here too.
pub fn plan_op_mix(plan: &StagePlan) -> OpMix {
    use shmls_ir::bytecode::Instr;
    let mut mix = OpMix::default();
    for instr in &plan.int_prog {
        if !matches!(instr, IntInstr::Const { .. }) {
            mix.ialu += 1;
        }
    }
    for action in &plan.actions {
        if let Action::Eval { prog, .. } = action {
            for instr in &prog.instrs {
                match instr {
                    Instr::Unary { op, .. } => match op {
                        UnOp::Neg => mix.fadd += 1,
                        UnOp::Abs | UnOp::Sqrt => mix.fmisc += 1,
                        UnOp::Exp => {}
                    },
                    Instr::Binary { op, .. } => match op {
                        BinOp::Add | BinOp::Sub => mix.fadd += 1,
                        BinOp::Mul => mix.fmul += 1,
                        BinOp::Div => mix.fdiv += 1,
                        BinOp::Max | BinOp::Min | BinOp::Copysign => mix.fmisc += 1,
                        BinOp::Pow => {}
                    },
                    Instr::Const { .. } | Instr::Fma { .. } => {}
                }
            }
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_dialects::{arith, func as fdial};
    use shmls_ir::builder::OpBuilder;

    /// In-memory FIFO transport for direct plan tests.
    #[derive(Default)]
    struct VecIo {
        queues: Vec<std::collections::VecDeque<RtValue>>,
    }

    impl StreamIo for VecIo {
        fn pop(&mut self, handle: usize) -> IrResult<RtValue> {
            self.queues[handle]
                .pop_front()
                .ok_or_else(|| ir_error!("pop from empty test stream {handle}"))
        }
        fn push(&mut self, handle: usize, value: RtValue) -> IrResult<()> {
            self.queues[handle].push_back(value);
            Ok(())
        }
    }

    /// Build a module with one dataflow stage:
    /// `for i in 0..4 { v = read(s0); write(v * 2.0 + w, s1) }`
    /// where `w` is a function argument.
    fn compute_stage_module() -> (Context, OpId, OpId, ValueId, ValueId, ValueId) {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let (_f, entry) = fdial::create_func(&mut ctx, body, "k", vec![Type::F64], vec![]);
        let w = ctx.block_args(entry)[0];
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        let s0 = hls::create_stream(&mut b, Type::F64, 4);
        let s1 = hls::create_stream(&mut b, Type::F64, 4);
        let (df, dfb) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(&mut ctx, dfb);
        let lb = arith::constant_index(&mut ib, 0);
        let ub = arith::constant_index(&mut ib, 4);
        let st = arith::constant_index(&mut ib, 1);
        let (_for_op, lbody) = shmls_dialects::scf::for_loop(&mut ib, lb, ub, st, vec![]);
        let mut lb2 = OpBuilder::at_block_end(&mut ctx, lbody);
        hls::pipeline(&mut lb2, 1);
        let v = hls::read(&mut lb2, s0);
        let two = arith::constant_f64(&mut lb2, 2.0);
        let scaled = arith::mulf(&mut lb2, v, two);
        let shifted = arith::addf(&mut lb2, scaled, w);
        hls::write(&mut lb2, shifted, s1);
        shmls_dialects::scf::yield_op(&mut lb2, vec![]);
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        fdial::ret(&mut b, vec![]);
        (ctx, module, df, s0, s1, w)
    }

    #[test]
    fn compute_stage_plans_and_runs() {
        let (ctx, _m, df, s0, s1, w) = compute_stage_module();
        let plan = plan_stage(&ctx, df).expect("stage should plan");
        assert_eq!(plan.trips, 4);
        assert_eq!(plan.n_reads, 1);
        assert_eq!(plan.n_evals, 1);

        let mut env: HashMap<ValueId, RtValue> = HashMap::new();
        env.insert(s0, RtValue::Stream(0));
        env.insert(s1, RtValue::Stream(1));
        env.insert(w, RtValue::F64(0.25));
        let store = Store::default();
        let mut io = VecIo {
            queues: vec![Default::default(), Default::default()],
        };
        for i in 0..4 {
            io.queues[0].push_back(RtValue::F64(i as f64 + 0.5));
        }
        run_stage_plan(&plan, &env, &store, &mut io).unwrap();
        let out: Vec<f64> = io.queues[1].iter().map(|v| v.as_f64().unwrap()).collect();
        assert_eq!(out, vec![1.25, 3.25, 5.25, 7.25]);
    }

    #[test]
    fn plan_op_mix_matches_hand_count() {
        let (ctx, _m, df, ..) = compute_stage_module();
        let plan = plan_stage(&ctx, df).unwrap();
        let mix = plan_op_mix(&plan);
        assert_eq!((mix.fadd, mix.fmul, mix.fdiv, mix.ialu), (1, 1, 0, 0));
    }

    #[test]
    fn runtime_call_stage_does_not_plan() {
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let (_f, entry) = fdial::create_func(&mut ctx, body, "k", vec![], vec![]);
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        let (df, dfb) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(&mut ctx, dfb);
        fdial::call(&mut ib, "load_data", vec![], vec![]);
        assert!(plan_stage(&ctx, df).is_none());
    }

    #[test]
    fn dup_stage_forwards_packs_verbatim() {
        // read s0 → write to both s1 and s2, including Pack values.
        let mut ctx = Context::new();
        let (_module, body) = create_module(&mut ctx);
        let (_f, entry) = fdial::create_func(&mut ctx, body, "k", vec![], vec![]);
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        let s0 = hls::create_stream(&mut b, Type::F64, 2);
        let s1 = hls::create_stream(&mut b, Type::F64, 2);
        let s2 = hls::create_stream(&mut b, Type::F64, 2);
        let (df, dfb) = hls::dataflow(&mut b);
        let mut ib = OpBuilder::at_block_end(&mut ctx, dfb);
        let lb = arith::constant_index(&mut ib, 0);
        let ub = arith::constant_index(&mut ib, 2);
        let st = arith::constant_index(&mut ib, 1);
        let (_for_op, lbody) = shmls_dialects::scf::for_loop(&mut ib, lb, ub, st, vec![]);
        let mut lb2 = OpBuilder::at_block_end(&mut ctx, lbody);
        hls::pipeline(&mut lb2, 1);
        let v = hls::read(&mut lb2, s0);
        hls::write(&mut lb2, v, s1);
        hls::write(&mut lb2, v, s2);
        shmls_dialects::scf::yield_op(&mut lb2, vec![]);
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        fdial::ret(&mut b, vec![]);

        let plan = plan_stage(&ctx, df).expect("dup stage should plan");
        let mut env: HashMap<ValueId, RtValue> = HashMap::new();
        env.insert(s0, RtValue::Stream(0));
        env.insert(s1, RtValue::Stream(1));
        env.insert(s2, RtValue::Stream(2));
        let mut io = VecIo {
            queues: vec![Default::default(), Default::default(), Default::default()],
        };
        io.queues[0].push_back(RtValue::pack(vec![1.0, 2.0]));
        io.queues[0].push_back(RtValue::F64(9.0));
        run_stage_plan(&plan, &env, &Store::default(), &mut io).unwrap();
        assert_eq!(io.queues[1].len(), 2);
        assert_eq!(io.queues[2].len(), 2);
        assert_eq!(io.queues[1][0].as_pack().unwrap(), &[1.0, 2.0]);
        assert_eq!(io.queues[2][1].as_f64().unwrap(), 9.0);
    }
}
