//! FIFO streams: the simulator's realisation of `hls.create_stream`.
//!
//! Two capacity regimes:
//!
//! - **Unbounded** — used by the sequential (Kahn-network) engine, where a
//!   producer stage runs to completion before its consumers; occupancy
//!   statistics are still recorded.
//! - **Bounded** — used by the threaded engine, where `push` fails on a
//!   full FIFO (the caller blocks/retries) exactly like a hardware FIFO
//!   back-pressures its producer.

use std::collections::VecDeque;

use shmls_ir::interp::RtValue;

/// A single FIFO stream.
#[derive(Debug)]
pub struct Fifo {
    /// Declared hardware depth (from `hls.create_stream`'s `depth` attr).
    pub depth: usize,
    /// Whether `push` enforces `depth`.
    pub bounded: bool,
    queue: VecDeque<RtValue>,
    /// Total elements ever pushed.
    pub total_pushed: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
}

impl Fifo {
    /// A new FIFO with the given declared depth.
    pub fn new(depth: usize, bounded: bool) -> Self {
        Self {
            depth,
            bounded,
            queue: VecDeque::new(),
            total_pushed: 0,
            max_occupancy: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when a bounded FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.bounded && self.queue.len() >= self.depth
    }

    /// Push an element. Returns `false` (without pushing) when bounded and
    /// full — hardware back-pressure.
    pub fn push(&mut self, value: RtValue) -> bool {
        if self.is_full() {
            return false;
        }
        self.queue.push_back(value);
        self.total_pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.queue.len());
        true
    }

    /// Pop the oldest element, if any.
    pub fn pop(&mut self) -> Option<RtValue> {
        self.queue.pop_front()
    }
}

/// The stream table owned by an execution engine.
#[derive(Debug, Default)]
pub struct StreamTable {
    fifos: Vec<Fifo>,
    /// When true, new FIFOs enforce their declared depth.
    pub bounded: bool,
}

impl StreamTable {
    /// An empty table in unbounded (sequential) mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table in bounded (hardware back-pressure) mode.
    pub fn bounded() -> Self {
        Self {
            fifos: Vec::new(),
            bounded: true,
        }
    }

    /// Create a stream, returning its handle.
    pub fn create(&mut self, depth: usize) -> usize {
        self.fifos.push(Fifo::new(depth, self.bounded));
        self.fifos.len() - 1
    }

    /// Borrow a FIFO.
    pub fn get(&self, handle: usize) -> Option<&Fifo> {
        self.fifos.get(handle)
    }

    /// Borrow a FIFO mutably.
    pub fn get_mut(&mut self, handle: usize) -> Option<&mut Fifo> {
        self.fifos.get_mut(handle)
    }

    /// Number of streams created.
    pub fn len(&self) -> usize {
        self.fifos.len()
    }

    /// True when no stream exists.
    pub fn is_empty(&self) -> bool {
        self.fifos.is_empty()
    }

    /// Aggregate statistics: (streams, total elements pushed, max occupancy
    /// over all streams).
    pub fn stats(&self) -> (usize, u64, usize) {
        let pushed = self.fifos.iter().map(|f| f.total_pushed).sum();
        let max = self
            .fifos
            .iter()
            .map(|f| f.max_occupancy)
            .max()
            .unwrap_or(0);
        (self.fifos.len(), pushed, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_stats() {
        let mut f = Fifo::new(4, false);
        assert!(f.is_empty());
        for i in 0..3 {
            assert!(f.push(RtValue::I64(i)));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.max_occupancy, 3);
        assert_eq!(f.pop(), Some(RtValue::I64(0)));
        assert_eq!(f.pop(), Some(RtValue::I64(1)));
        assert!(f.push(RtValue::I64(3)));
        assert_eq!(f.pop(), Some(RtValue::I64(2)));
        assert_eq!(f.pop(), Some(RtValue::I64(3)));
        assert_eq!(f.pop(), None);
        assert_eq!(f.total_pushed, 4);
    }

    #[test]
    fn bounded_backpressure() {
        let mut f = Fifo::new(2, true);
        assert!(f.push(RtValue::F64(1.0)));
        assert!(f.push(RtValue::F64(2.0)));
        assert!(f.is_full());
        assert!(
            !f.push(RtValue::F64(3.0)),
            "push into a full FIFO must fail"
        );
        assert_eq!(f.len(), 2);
        f.pop();
        assert!(f.push(RtValue::F64(3.0)));
    }

    #[test]
    fn unbounded_ignores_depth() {
        let mut f = Fifo::new(2, false);
        for i in 0..100 {
            assert!(f.push(RtValue::I64(i)));
        }
        assert_eq!(f.max_occupancy, 100);
    }

    #[test]
    fn table_create_and_stats() {
        let mut t = StreamTable::new();
        let a = t.create(8);
        let b = t.create(2);
        assert_ne!(a, b);
        t.get_mut(a).unwrap().push(RtValue::F64(0.0));
        t.get_mut(a).unwrap().push(RtValue::F64(0.0));
        t.get_mut(b).unwrap().push(RtValue::F64(0.0));
        let (n, pushed, max) = t.stats();
        assert_eq!((n, pushed, max), (2, 3, 2));
    }
}
