//! Concurrent execution engine: one OS thread per dataflow stage, bounded
//! channels as FIFOs, and a watchdog that converts stalls into deadlock
//! reports.
//!
//! The sequential engine ([`crate::executor`]) validates *values*; this
//! engine validates *concurrency*: that the generated design really is a
//! deadlock-free Kahn network under hardware-like bounded FIFOs. It is
//! also how we reproduce the paper's StencilFlow observation — runs that
//! "did not complete their execution under 10 minutes, a likely indicator
//! of deadlock" — as a first-class outcome rather than a hang.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use parking_lot::Mutex;
use shmls_dialects::hls;
use shmls_ir::error::{IrError, IrResult};
use shmls_ir::interp::{ExternOps, Machine, RtValue, Store};
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_error};

use crate::deadlock::{DeadlockReport, StageSnapshot, StageStatus, StreamSnapshot};
use crate::executor::{dispatch_runtime_call, StreamIo};

/// Outcome of a threaded run.
#[derive(Debug)]
pub enum ThreadedOutcome {
    /// All stages completed; the store contains the written outputs.
    Completed {
        /// Final memory state (from the stage that performed the writes).
        store: Store,
        /// Total 512-bit beats moved.
        mem_beats: u64,
    },
    /// At least one stage stalled past the watchdog — a deadlock (or an
    /// unbalanced producer/consumer pair). The report snapshots every
    /// stage's state and every FIFO's occupancy vs. declared depth.
    Deadlock {
        /// Structured diagnosis naming the blocked stages and streams.
        report: Box<DeadlockReport>,
    },
}

/// One bounded channel plus its declared depth (for occupancy reporting).
struct Channel {
    tx: Sender<RtValue>,
    rx: Receiver<RtValue>,
    depth: usize,
}

/// A channel-backed stream table shared by all stage threads.
struct ChannelTable {
    channels: Mutex<Vec<Channel>>,
    watchdog: Duration,
}

impl ChannelTable {
    fn create(&self, depth: usize) -> usize {
        let mut guard = self.channels.lock();
        let depth = depth.max(1);
        let (tx, rx) = bounded(depth);
        guard.push(Channel { tx, rx, depth });
        guard.len() - 1
    }

    fn endpoints(&self, handle: usize) -> IrResult<(Sender<RtValue>, Receiver<RtValue>)> {
        self.channels
            .lock()
            .get(handle)
            .map(|c| (c.tx.clone(), c.rx.clone()))
            .ok_or_else(|| ir_error!("invalid stream handle {handle}"))
    }

    /// Occupancy vs. declared depth for every FIFO, creation order.
    fn snapshot(&self) -> Vec<StreamSnapshot> {
        self.channels
            .lock()
            .iter()
            .enumerate()
            .map(|(i, c)| StreamSnapshot {
                stream: i,
                occupancy: c.rx.len(),
                depth: c.depth,
                full_stall_cycles: None,
            })
            .collect()
    }
}

/// Stream transport over bounded channels with stall detection. Records
/// the last blocking operation that timed out so the deadlock report can
/// name the stream the owning stage was stuck on.
struct ChannelIo {
    table: Arc<ChannelTable>,
    last_stall: Option<StageStatus>,
}

impl StreamIo for ChannelIo {
    fn pop(&mut self, handle: usize) -> IrResult<RtValue> {
        let (_, rx) = self.table.endpoints(handle)?;
        match rx.recv_timeout(self.table.watchdog) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Timeout) => {
                self.last_stall = Some(StageStatus::BlockedOnPop { stream: handle });
                Err(stall_error("read", handle))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(ir_error!("stream {handle} closed with reader pending"))
            }
        }
    }

    fn push(&mut self, handle: usize, value: RtValue) -> IrResult<()> {
        let (tx, _) = self.table.endpoints(handle)?;
        match tx.send_timeout(value, self.table.watchdog) {
            Ok(()) => Ok(()),
            Err(SendTimeoutError::Timeout(_)) => {
                self.last_stall = Some(StageStatus::BlockedOnPush { stream: handle });
                Err(stall_error("write", handle))
            }
            Err(SendTimeoutError::Disconnected(_)) => {
                Err(ir_error!("stream {handle} closed with writer pending"))
            }
        }
    }
}

/// Marker prefix recognised when classifying stage failures as deadlock.
const STALL_PREFIX: &str = "stalled:";

fn stall_error(what: &str, handle: usize) -> IrError {
    ir_error!("{STALL_PREFIX} blocking {what} on stream {handle} exceeded the watchdog")
}

/// Role hint for a stage, derived from the runtime calls it makes.
fn stage_role(ctx: &Context, stage: OpId) -> &'static str {
    for call in ctx.find_ops(stage, "func.call") {
        match shmls_dialects::func::callee(ctx, call) {
            Some("write_data") => return "write_data",
            Some("load_data") | Some("dummy_load_data") => return "load_data",
            Some("shift_buffer") => return "shift_buffer",
            _ => {}
        }
    }
    "compute"
}

/// Extern hook for stage threads and for the init phase.
struct ChannelExtern {
    io: ChannelIo,
    mem_beats: u64,
}

impl ExternOps for ChannelExtern {
    fn exec(
        &mut self,
        ctx: &Context,
        op: OpId,
        args: &[RtValue],
        store: &mut Store,
    ) -> IrResult<Option<Vec<RtValue>>> {
        match ctx.op_name(op) {
            hls::CREATE_STREAM => {
                let depth = hls::stream_depth(ctx, op).max(1) as usize;
                Ok(Some(vec![RtValue::Stream(self.io.table.create(depth))]))
            }
            hls::READ => Ok(Some(vec![self.io.pop(args[0].as_stream()?)?])),
            hls::WRITE => {
                self.io.push(args[1].as_stream()?, args[0].clone())?;
                Ok(Some(vec![]))
            }
            hls::EMPTY | hls::FULL => {
                ir_bail!("hls.empty/full are not supported by the threaded engine")
            }
            hls::PIPELINE | hls::UNROLL | hls::ARRAY_PARTITION | hls::INTERFACE => Ok(Some(vec![])),
            "func.call" => {
                let mut beats = 0u64;
                let r = dispatch_runtime_call(&mut self.io, &mut beats, ctx, op, args, store);
                self.mem_beats += beats;
                r
            }
            _ => Ok(None),
        }
    }
}

/// Execute the HLS kernel `func_name` with one thread per dataflow stage
/// and bounded FIFOs. `setup` allocates buffers and returns the argument
/// values; `watchdog` bounds how long any single blocking stream operation
/// may stall before the run is declared deadlocked.
pub fn execute_threaded(
    ctx: &Context,
    module: OpId,
    func_name: &str,
    setup: impl FnOnce(&mut Store) -> Vec<RtValue>,
    watchdog: Duration,
) -> IrResult<ThreadedOutcome> {
    let table = Arc::new(ChannelTable {
        channels: Mutex::new(Vec::new()),
        watchdog,
    });

    // ---- init phase: run everything except dataflow regions -------------
    let mut init_extern = ChannelExtern {
        io: ChannelIo {
            table: Arc::clone(&table),
            last_stall: None,
        },
        mem_beats: 0,
    };
    let mut machine = Machine::new(ctx, module, &mut init_extern);
    let func = *machine
        .functions
        .get(func_name)
        .ok_or_else(|| ir_error!("unknown function `{func_name}`"))?;
    let entry = ctx
        .entry_block(func)
        .ok_or_else(|| ir_error!("function `{func_name}` has no body"))?;
    let params = ctx.block_args(entry).to_vec();
    let args = setup(&mut machine.store);
    for (p, a) in params.iter().zip(&args) {
        machine.bind(*p, a.clone());
    }

    let mut stages: Vec<OpId> = Vec::new();
    for &op in ctx.block_ops(entry) {
        match ctx.op_name(op) {
            hls::DATAFLOW => stages.push(op),
            shmls_dialects::func::RETURN => break,
            _ => {
                machine.exec_op(op)?;
            }
        }
    }
    let env = machine.env.clone();
    let init_store = std::mem::take(&mut machine.store);
    drop(machine);
    let init_beats = init_extern.mem_beats;

    // Identify the stage doing external writes — its store is the result.
    let write_stage = stages.iter().position(|&s| {
        ctx.find_ops(s, "func.call")
            .into_iter()
            .any(|c| shmls_dialects::func::callee(ctx, c) == Some("write_data"))
    });

    // ---- concurrent phase ------------------------------------------------
    enum StageResult {
        Done(Store, u64),
        /// The stage timed out blocking on the named stream operation.
        Stalled(StageStatus),
        Failed(IrError),
    }

    // Bytecode tier: stages matching the generated compute/dup shape run
    // as flat register programs; everything else (runtime-call stages,
    // unplanned shapes) keeps the tree-walking interpreter.
    let plans: Vec<Option<crate::stageplan::StagePlan>> = stages
        .iter()
        .map(|&s| crate::stageplan::plan_stage(ctx, s))
        .collect();

    let results: Vec<StageResult> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (&stage, plan) in stages.iter().zip(plans) {
            let env = env.clone();
            let store = init_store.clone();
            let table = Arc::clone(&table);
            handles.push(scope.spawn(move || -> StageResult {
                let mut ext = ChannelExtern {
                    io: ChannelIo {
                        table,
                        last_stall: None,
                    },
                    mem_beats: 0,
                };
                let (run, store, beats) = if let Some(plan) = plan {
                    let run = crate::stageplan::run_stage_plan(&plan, &env, &store, &mut ext.io);
                    (run, store, 0)
                } else {
                    let mut m = Machine::new(ctx, module, &mut ext);
                    m.env = env;
                    m.store = store;
                    let Some(body) = ctx.entry_block(stage) else {
                        return StageResult::Failed(ir_error!("dataflow stage without body"));
                    };
                    let run = m.run_block(body).map(|_| ());
                    let store = std::mem::take(&mut m.store);
                    drop(m);
                    (run, store, ext.mem_beats)
                };
                match run {
                    Ok(()) => StageResult::Done(store, beats),
                    Err(e) => match ext.io.last_stall {
                        Some(status) if e.to_string().contains(STALL_PREFIX) => {
                            StageResult::Stalled(status)
                        }
                        _ => StageResult::Failed(e),
                    },
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("stage thread panicked"))
            .collect()
    });

    // Non-stall errors take precedence: a failing stage is a bug in the
    // program, not a deadlock, even if its failure starved the others.
    let mut stalled = false;
    let mut stores: Vec<Option<(Store, u64)>> = Vec::new();
    let mut stage_snaps: Vec<StageSnapshot> = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        let label = format!("stage{i}:{}", stage_role(ctx, stages[i]));
        match r {
            StageResult::Done(store, beats) => {
                stage_snaps.push(StageSnapshot {
                    stage: label,
                    status: StageStatus::Finished,
                });
                stores.push(Some((store, beats)));
            }
            StageResult::Stalled(status) => {
                stalled = true;
                stage_snaps.push(StageSnapshot {
                    stage: label,
                    status,
                });
                stores.push(None);
            }
            StageResult::Failed(e) => return Err(e),
        }
    }
    if stalled {
        let report = DeadlockReport {
            stages: stage_snaps,
            streams: table.snapshot(),
            cycles: None,
        };
        return Ok(ThreadedOutcome::Deadlock {
            report: Box::new(report),
        });
    }
    let mem_beats: u64 = init_beats + stores.iter().flatten().map(|(_, b)| *b).sum::<u64>();
    let store = match write_stage {
        Some(i) => stores.into_iter().nth(i).flatten().map(|(s, _)| s),
        None => None,
    }
    .unwrap_or(init_store);
    Ok(ThreadedOutcome::Completed { store, mem_beats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_dialects::builtin::create_module;
    use shmls_dialects::{arith, func as fdial, scf};
    use shmls_ir::builder::OpBuilder;

    /// Build a module with one function containing `n` dataflow stages
    /// produced by `build`, for hand-made concurrency tests.
    fn stage_module(build: impl FnOnce(&mut Context, BlockId)) -> (Context, OpId) {
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let (_f, entry) = fdial::create_func(&mut ctx, body, "k", vec![], vec![]);
        build(&mut ctx, entry);
        let mut b = OpBuilder::at_block_end(&mut ctx, entry);
        fdial::ret(&mut b, vec![]);
        (ctx, module)
    }

    /// Producer writes `n_produce` values; consumer reads `n_consume`.
    fn producer_consumer(n_produce: i64, n_consume: i64, depth: i64) -> (Context, OpId) {
        stage_module(move |ctx, entry| {
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let s = hls::create_stream(&mut b, Type::F64, depth);
            // Producer stage.
            let (_df, pbody) = hls::dataflow(&mut b);
            let mut pb = OpBuilder::at_block_end(ctx, pbody);
            let lb = arith::constant_index(&mut pb, 0);
            let ub = arith::constant_index(&mut pb, n_produce);
            let st = arith::constant_index(&mut pb, 1);
            let (_for1, l1) = scf::for_loop(&mut pb, lb, ub, st, vec![]);
            let mut ib = OpBuilder::at_block_end(ctx, l1);
            let v = arith::constant_f64(&mut ib, 1.5);
            hls::write(&mut ib, v, s);
            scf::yield_op(&mut ib, vec![]);
            // Consumer stage.
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let (_df2, cbody) = hls::dataflow(&mut b);
            let mut cb = OpBuilder::at_block_end(ctx, cbody);
            let lb = arith::constant_index(&mut cb, 0);
            let ub = arith::constant_index(&mut cb, n_consume);
            let st = arith::constant_index(&mut cb, 1);
            let (_for2, l2) = scf::for_loop(&mut cb, lb, ub, st, vec![]);
            let mut ib = OpBuilder::at_block_end(ctx, l2);
            let _ = hls::read(&mut ib, s);
            scf::yield_op(&mut ib, vec![]);
        })
    }

    #[test]
    fn balanced_pipeline_completes() {
        let (ctx, module) = producer_consumer(1000, 1000, 2);
        let out = execute_threaded(&ctx, module, "k", |_| vec![], Duration::from_secs(5)).unwrap();
        assert!(matches!(out, ThreadedOutcome::Completed { .. }));
    }

    #[test]
    fn starved_consumer_is_deadlock() {
        // Consumer wants more than the producer sends: blocking read stalls.
        let (ctx, module) = producer_consumer(10, 11, 2);
        let out =
            execute_threaded(&ctx, module, "k", |_| vec![], Duration::from_millis(200)).unwrap();
        match out {
            ThreadedOutcome::Deadlock { report } => {
                // The consumer (stage 1) is blocked popping the empty
                // stream 0; the producer finished.
                assert_eq!(report.stages.len(), 2);
                assert_eq!(report.stages[0].status, StageStatus::Finished);
                assert_eq!(
                    report.stages[1].status,
                    StageStatus::BlockedOnPop { stream: 0 }
                );
                assert_eq!(report.streams.len(), 1);
                assert_eq!(report.streams[0].occupancy, 0);
                assert_eq!(report.streams[0].depth, 2);
                let text = report.to_string();
                assert!(text.contains("blocked popping stream 0"), "{text}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn stage_errors_propagate_as_errors_not_deadlock() {
        // A stage that *fails* (unknown function) must surface as an
        // error, not be misclassified as a deadlock.
        let (ctx, module) = stage_module(|ctx, entry| {
            let mut b = OpBuilder::at_block_end(ctx, entry);
            let (_df, body) = hls::dataflow(&mut b);
            let mut ib = OpBuilder::at_block_end(ctx, body);
            fdial::call(&mut ib, "does_not_exist", vec![], vec![]);
        });
        let e = execute_threaded(&ctx, module, "k", |_| vec![], Duration::from_millis(200))
            .unwrap_err();
        assert!(e.to_string().contains("does_not_exist"), "{e}");
    }

    #[test]
    fn blocked_producer_is_deadlock() {
        // Producer sends more than the consumer drains: bounded FIFO fills,
        // the blocking write stalls — the StencilFlow failure mode.
        let (ctx, module) = producer_consumer(100, 10, 2);
        let out =
            execute_threaded(&ctx, module, "k", |_| vec![], Duration::from_millis(200)).unwrap();
        match out {
            ThreadedOutcome::Deadlock { report } => {
                // The producer (stage 0) is blocked pushing the full
                // stream 0; the consumer drained its 10 and finished.
                assert_eq!(
                    report.stages[0].status,
                    StageStatus::BlockedOnPush { stream: 0 }
                );
                assert_eq!(report.stages[1].status, StageStatus::Finished);
                let s0 = &report.streams[0];
                assert_eq!((s0.occupancy, s0.depth), (2, 2), "FIFO must be full");
                assert!(s0.is_full());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
