//! Power and energy model (reproducing the shape of Figures 5 and 6).
//!
//! Following the measurement methodology of the paper (\[13\]: average of the
//! card's instantaneous power over the kernel run, energy = average power ×
//! execution time), we model average power as
//!
//! ```text
//! P = P_static + Σ_class usage_class · coeff_class + BW · coeff_bw
//! ```
//!
//! The resource terms capture the leakage+clocking cost of the configured
//! logic; the bandwidth term captures HBM/PHY activity, which is why the
//! fastest design (Stencil-HMLS, saturating its ports) draws *slightly
//! more* power yet consumes far less energy — the paper's headline
//! energy-efficiency result.

use serde::Serialize;

use crate::device::{Device, PowerCoefficients};
use crate::resources::ResourceUsage;

/// A power/energy estimate for one kernel execution.
#[derive(Debug, Clone, Serialize)]
pub struct PowerEstimate {
    /// Average power draw in watts.
    pub watts: f64,
    /// Energy in joules for the given runtime.
    pub joules: f64,
    /// The bandwidth actually sustained, GB/s (for reporting).
    pub bandwidth_gbps: f64,
}

/// Estimate average power and energy.
///
/// * `usage` — configured resources (all CUs).
/// * `total_bytes_moved` — external memory traffic of one kernel run.
/// * `seconds` — kernel runtime.
pub fn estimate(
    device: &Device,
    coeffs: &PowerCoefficients,
    usage: &ResourceUsage,
    total_bytes_moved: u64,
    seconds: f64,
) -> PowerEstimate {
    let bandwidth_gbps = if seconds > 0.0 {
        total_bytes_moved as f64 / seconds / 1.0e9
    } else {
        0.0
    };
    let watts = device.static_power_w
        + usage.luts as f64 * coeffs.per_lut
        + usage.ffs as f64 * coeffs.per_ff
        + usage.bram36 as f64 * coeffs.per_bram
        + usage.uram as f64 * coeffs.per_uram
        + usage.dsps as f64 * coeffs.per_dsp
        + bandwidth_gbps * coeffs.per_gbps;
    PowerEstimate {
        watts,
        joules: watts * seconds,
        bandwidth_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Device, PowerCoefficients) {
        (Device::u280(), PowerCoefficients::default_u280())
    }

    #[test]
    fn static_floor() {
        let (d, c) = setup();
        let e = estimate(&d, &c, &ResourceUsage::default(), 0, 1.0);
        assert!((e.watts - d.static_power_w).abs() < 1e-9);
        assert!((e.joules - d.static_power_w).abs() < 1e-9);
    }

    #[test]
    fn more_resources_more_power() {
        let (d, c) = setup();
        let small = ResourceUsage {
            luts: 10_000,
            ffs: 15_000,
            bram36: 20,
            uram: 0,
            dsps: 30,
        };
        let large = ResourceUsage {
            luts: 300_000,
            ffs: 450_000,
            bram36: 1200,
            uram: 0,
            dsps: 400,
        };
        let ps = estimate(&d, &c, &small, 0, 1.0);
        let pl = estimate(&d, &c, &large, 0, 1.0);
        assert!(pl.watts > ps.watts);
    }

    #[test]
    fn fast_run_saves_energy_despite_higher_power() {
        // The paper's central energy result: a design that draws a bit more
        // power but finishes 90x faster consumes ~85x less energy.
        let (d, c) = setup();
        let hmls = ResourceUsage {
            luts: 56_000,
            ffs: 79_000,
            bram36: 288,
            uram: 0,
            dsps: 118,
        };
        let dace = ResourceUsage {
            luts: 108_000,
            ffs: 52_000,
            bram36: 111,
            uram: 0,
            dsps: 44,
        };
        let bytes = 8_000_000u64 * 7 * 8;
        let fast = estimate(&d, &c, &hmls, bytes, 0.007);
        let slow = estimate(&d, &c, &dace, bytes, 0.7);
        assert!(
            fast.watts > slow.watts * 0.8,
            "{} vs {}",
            fast.watts,
            slow.watts
        );
        let energy_ratio = slow.joules / fast.joules;
        assert!(energy_ratio > 50.0, "energy ratio {energy_ratio}");
    }

    #[test]
    fn power_magnitudes_match_paper_band() {
        // Paper power draws sit roughly between 23 W and 45 W.
        let (d, c) = setup();
        let typical = ResourceUsage {
            luts: 60_000,
            ffs: 80_000,
            bram36: 300,
            uram: 0,
            dsps: 120,
        };
        let e = estimate(&d, &c, &typical, 4_000_000_000, 1.0);
        assert!(e.watts > 23.0 && e.watts < 45.0, "{}", e.watts);
    }

    #[test]
    fn zero_runtime_guard() {
        let (d, c) = setup();
        let e = estimate(&d, &c, &ResourceUsage::default(), 1_000_000, 0.0);
        assert_eq!(e.bandwidth_gbps, 0.0);
        assert_eq!(e.joules, 0.0);
    }
}
