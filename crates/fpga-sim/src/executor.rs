//! Functional execution of HLS-dialect kernels (sequential Kahn engine).
//!
//! Implements the [`ExternOps`] hook for the `hls` dialect and for the
//! runtime functions the paper links against the generated LLVM-IR
//! (`load_data`, `shift_buffer`, `write_data`, `copy_small_data`): the Rust
//! equivalent of the paper's C++ runtime.
//!
//! The sequential engine relies on Kahn-network determinism: dataflow
//! stages execute in program order with unbounded FIFOs and produce exactly
//! the values any concurrent schedule would. Use
//! [`crate::threaded`] for true concurrency with bounded FIFOs and
//! deadlock detection.

use shmls_dialects::hls;
use shmls_ir::attributes::Attribute;
use shmls_ir::error::IrResult;
use shmls_ir::interp::{iter_box, ExternOps, Machine, RtValue, Store};
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_ensure, ir_error};

use crate::stream::StreamTable;

/// Stream transport abstraction shared by the sequential engine (FIFO
/// table) and the threaded engine (bounded channels): the runtime
/// functions below are written against this trait.
pub trait StreamIo {
    /// Blocking pop from stream `handle`.
    fn pop(&mut self, handle: usize) -> IrResult<RtValue>;
    /// Blocking push into stream `handle`.
    fn push(&mut self, handle: usize, value: RtValue) -> IrResult<()>;
}

/// Runtime + `hls` dialect semantics for the interpreter.
#[derive(Debug, Default)]
pub struct HlsRuntime {
    /// The FIFO table (inspect after execution for stream statistics).
    pub streams: StreamTable,
    /// Total 512-bit memory beats moved by `load_data`/`write_data`
    /// (for cross-checking the analytic memory model).
    pub mem_beats: u64,
}

impl HlsRuntime {
    /// A runtime with unbounded FIFOs (sequential engine).
    pub fn new() -> Self {
        Self::default()
    }
}

impl StreamIo for HlsRuntime {
    fn pop(&mut self, handle: usize) -> IrResult<RtValue> {
        let fifo = self
            .streams
            .get_mut(handle)
            .ok_or_else(|| ir_error!("invalid stream handle {handle}"))?;
        fifo.pop().ok_or_else(|| {
            ir_error!(
                "read from empty stream {handle} — stage ordering violates \
                 producer-before-consumer (sequential engine)"
            )
        })
    }

    fn push(&mut self, handle: usize, value: RtValue) -> IrResult<()> {
        let fifo = self
            .streams
            .get_mut(handle)
            .ok_or_else(|| ir_error!("invalid stream handle {handle}"))?;
        ir_ensure!(fifo.push(value), "write to full bounded stream {handle}");
        Ok(())
    }
}

impl ExternOps for HlsRuntime {
    fn exec(
        &mut self,
        ctx: &Context,
        op: OpId,
        args: &[RtValue],
        store: &mut Store,
    ) -> IrResult<Option<Vec<RtValue>>> {
        match ctx.op_name(op) {
            hls::CREATE_STREAM => {
                let depth = hls::stream_depth(ctx, op).max(1) as usize;
                let handle = self.streams.create(depth);
                Ok(Some(vec![RtValue::Stream(handle)]))
            }
            hls::READ => {
                let v = self.pop(args[0].as_stream()?)?;
                Ok(Some(vec![v]))
            }
            hls::WRITE => {
                self.push(args[1].as_stream()?, args[0].clone())?;
                Ok(Some(vec![]))
            }
            hls::EMPTY => {
                let f = self
                    .streams
                    .get(args[0].as_stream()?)
                    .ok_or_else(|| ir_error!("invalid stream handle"))?;
                Ok(Some(vec![RtValue::Bool(f.is_empty())]))
            }
            hls::FULL => {
                let f = self
                    .streams
                    .get(args[0].as_stream()?)
                    .ok_or_else(|| ir_error!("invalid stream handle"))?;
                Ok(Some(vec![RtValue::Bool(f.is_full())]))
            }
            // Directive ops are structural no-ops at functional level.
            hls::PIPELINE | hls::UNROLL | hls::ARRAY_PARTITION | hls::INTERFACE => Ok(Some(vec![])),
            "func.call" => {
                let mut beats = 0u64;
                let result = dispatch_runtime_call(self, &mut beats, ctx, op, args, store);
                self.mem_beats += beats;
                result
            }
            _ => Ok(None),
        }
    }
}

/// Dispatch a runtime `func.call` (the paper's linked C++ runtime) over
/// any stream transport. Returns `Ok(None)` when the callee is not a
/// runtime function.
pub fn dispatch_runtime_call(
    io: &mut dyn StreamIo,
    mem_beats: &mut u64,
    ctx: &Context,
    op: OpId,
    args: &[RtValue],
    store: &mut Store,
) -> IrResult<Option<Vec<RtValue>>> {
    let callee = ctx
        .attr(op, "callee")
        .and_then(Attribute::as_str)
        .unwrap_or_default();
    match callee {
        "load_data" => rt_load_data(io, mem_beats, ctx, op, args, store).map(Some),
        "dummy_load_data" => {
            ir_ensure!(args.len() == 2, "dummy_load_data takes one ptr/stream pair");
            rt_load_data(io, mem_beats, ctx, op, args, store).map(Some)
        }
        "shift_buffer" => rt_shift_buffer(io, ctx, op, args).map(Some),
        "write_data" => rt_write_data(io, mem_beats, ctx, op, args, store).map(Some),
        "copy_small_data" => rt_copy_small_data(mem_beats, args, store).map(Some),
        _ => Ok(None),
    }
}

fn call_geometry(ctx: &Context, op: OpId) -> IrResult<(Vec<i64>, i64)> {
    let extents = ctx
        .attr(op, "extents")
        .and_then(Attribute::as_index_array)
        .ok_or_else(|| ir_error!("runtime call without extents attribute"))?
        .to_vec();
    let halo = ctx
        .attr(op, "halo")
        .and_then(Attribute::as_int)
        .unwrap_or(0);
    Ok((extents, halo))
}

/// `load_data(ptrs…, streams…) {extents, halo, fields}` — stream every
/// element of each (halo-padded) field, row-major, counting 512-bit beats
/// for the memory model.
fn rt_load_data(
    io: &mut dyn StreamIo,
    mem_beats: &mut u64,
    ctx: &Context,
    op: OpId,
    args: &[RtValue],
    store: &mut Store,
) -> IrResult<Vec<RtValue>> {
    let (extents, halo) = call_geometry(ctx, op)?;
    ir_ensure!(
        args.len().is_multiple_of(2),
        "load_data takes ptr/stream pairs"
    );
    let n_fields = args.len() / 2;
    let lb: Vec<i64> = extents.iter().map(|_| -halo).collect();
    let ub: Vec<i64> = extents.iter().zip(&lb).map(|(&e, &l)| l + e).collect();
    let buffers: Vec<_> = (0..n_fields)
        .map(|f| store.get(args[f].as_memref()?).cloned())
        .collect::<IrResult<_>>()?;
    let streams: Vec<usize> = (0..n_fields)
        .map(|f| args[n_fields + f].as_stream())
        .collect::<IrResult<_>>()?;
    // Round-robin across fields: each field rides its own AXI port, so the
    // hardware load stage advances all element streams in lockstep. (A
    // field-at-a-time order would deadlock the downstream shift buffers
    // under bounded FIFOs — consumers need all fields' windows together.)
    let mut count = 0u64;
    for p in iter_box(&lb, &ub) {
        for f in 0..n_fields {
            io.push(streams[f], RtValue::F64(buffers[f].load(&p)?))?;
        }
        count += 1;
    }
    *mem_beats += n_fields as u64 * count.div_ceil(8);
    Ok(vec![])
}

/// `shift_buffer(elem_in, window_out) {extents, halo}` — the true streaming
/// shift register (§3.3, Figure 2): consumes the (padded) field's elements
/// in row-major order through a ring buffer of exactly the shift-register
/// length, emitting for each interior point the full `(2h+1)^rank` window
/// the moment its last element arrives.
fn rt_shift_buffer(
    io: &mut dyn StreamIo,
    ctx: &Context,
    op: OpId,
    args: &[RtValue],
) -> IrResult<Vec<RtValue>> {
    let (extents, halo) = call_geometry(ctx, op)?;
    let rank = extents.len();
    let input = args[0].as_stream()?;
    let output = args[1].as_stream()?;

    let lb: Vec<i64> = vec![-halo; rank];
    let interior_lb = vec![0i64; rank];
    let interior_ub: Vec<i64> = extents.iter().map(|&e| e - 2 * halo).collect();
    let offsets = window_offsets_cached(rank, halo);

    // Ring buffer of exactly the hardware shift-register length.
    let ring_len = shmls_dialects::window::shift_register_len(&extents, halo) as usize;
    let mut ring = vec![0.0f64; ring_len];
    let mut consumed: i64 = 0;
    let total: i64 = extents.iter().product();

    let interior_points = iter_box(&interior_lb, &interior_ub);
    let mut emit_cursor = 0usize;
    let linearize = |p: &[i64], off: &[i64]| -> i64 {
        let mut lin = 0;
        for d in 0..rank {
            lin = lin * extents[d] + (p[d] + off[d] - lb[d]);
        }
        lin
    };

    while consumed < total || emit_cursor < interior_points.len() {
        if consumed < total {
            let v = io.pop(input)?.as_f64()?;
            ring[(consumed as usize) % ring_len] = v;
            consumed += 1;
        } else if emit_cursor < interior_points.len() {
            ir_bail!(
                "shift_buffer: input exhausted with {} windows pending",
                interior_points.len() - emit_cursor
            );
        }
        // Emit every window whose last element has now arrived.
        while emit_cursor < interior_points.len() {
            let p = &interior_points[emit_cursor];
            let last_needed = linearize(p, &vec![halo; rank]);
            if last_needed >= consumed {
                break;
            }
            let first_needed = linearize(p, &vec![-halo; rank]);
            ir_ensure!(
                first_needed > consumed - ring_len as i64 - 1,
                "shift_buffer: window element already evicted (ring too short)"
            );
            let mut window = Vec::with_capacity(offsets.len());
            for off in &offsets {
                let q = linearize(p, off);
                window.push(ring[(q as usize) % ring_len]);
            }
            io.push(output, RtValue::pack(window))?;
            emit_cursor += 1;
        }
    }
    Ok(vec![])
}

/// `write_data(streams…, ptrs…) {extents, fields}` — drain each result
/// stream (interior, row-major) into its output buffer, counting 512-bit
/// beats.
fn rt_write_data(
    io: &mut dyn StreamIo,
    mem_beats: &mut u64,
    ctx: &Context,
    op: OpId,
    args: &[RtValue],
    store: &mut Store,
) -> IrResult<Vec<RtValue>> {
    let extents = ctx
        .attr(op, "extents")
        .and_then(Attribute::as_index_array)
        .ok_or_else(|| ir_error!("write_data without extents"))?
        .to_vec();
    let n_fields = ctx
        .attr(op, "fields")
        .and_then(Attribute::as_int)
        .ok_or_else(|| ir_error!("write_data without fields count"))? as usize;
    ir_ensure!(
        args.len() == 2 * n_fields,
        "write_data takes stream/ptr pairs"
    );
    let lb = vec![0i64; extents.len()];
    // Round-robin across fields, matching the hardware draining all result
    // streams concurrently (essential under bounded FIFOs: field-major
    // draining would deadlock producers that emit in lockstep).
    let points = iter_box(&lb, &extents);
    let mut counts = vec![0u64; n_fields];
    for p in &points {
        for f in 0..n_fields {
            let stream = args[f].as_stream()?;
            let handle = args[n_fields + f].as_memref()?;
            let v = io.pop(stream)?.as_f64()?;
            store.get_mut(handle)?.store(p, v)?;
            counts[f] += 1;
        }
    }
    for c in counts {
        *mem_beats += c.div_ceil(8);
    }
    Ok(vec![])
}

/// `copy_small_data(src, dst)` — the kernel-init BRAM copy of step 8.
fn rt_copy_small_data(
    mem_beats: &mut u64,
    args: &[RtValue],
    store: &mut Store,
) -> IrResult<Vec<RtValue>> {
    let src = store.get(args[0].as_memref()?)?.clone();
    let dst = store.get_mut(args[1].as_memref()?)?;
    ir_ensure!(
        src.data.len() == dst.data.len(),
        "copy_small_data size mismatch: {} vs {}",
        src.data.len(),
        dst.data.len()
    );
    dst.data.copy_from_slice(&src.data);
    *mem_beats += (src.data.len() as u64).div_ceil(8);
    Ok(vec![])
}

fn window_offsets_cached(rank: usize, halo: i64) -> Vec<Vec<i64>> {
    let lb = vec![-halo; rank];
    let ub = vec![halo + 1; rank];
    iter_box(&lb, &ub)
}

/// Execute the HLS kernel `func_name` in `module`.
///
/// `setup` allocates the kernel's buffers in the store and returns the
/// argument values in signature order. Returns the final [`Store`] plus the
/// runtime (for stream/memory statistics).
pub fn execute_hls_kernel(
    ctx: &Context,
    module: OpId,
    func_name: &str,
    setup: impl FnOnce(&mut Store) -> Vec<RtValue>,
) -> IrResult<(Store, HlsRuntime)> {
    let mut runtime = HlsRuntime::new();
    let mut machine = Machine::new(ctx, module, &mut runtime);
    let args = setup(&mut machine.store);
    machine.call(func_name, &args)?;
    let store = std::mem::take(&mut machine.store);
    drop(machine);
    Ok((store, runtime))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmls_ir::interp::Buffer;

    /// Drive shift_buffer directly through a hand-built IR call.
    fn run_shift(extents: &[i64], halo: i64, data: &[f64]) -> Vec<Vec<f64>> {
        let mut ctx = Context::new();
        let (module, body) = shmls_dialects::builtin::create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let input = hls::create_stream(&mut b, Type::F64, 2);
        let window_ty = Type::LlvmStruct(vec![Type::llvm_array(
            (2 * halo + 1).pow(extents.len() as u32) as u64,
            Type::F64,
        )]);
        let output = hls::create_stream(&mut b, window_ty, 2);
        let call = shmls_dialects::func::call(&mut b, "shift_buffer", vec![input, output], vec![]);
        ctx.set_attr(call, "extents", Attribute::IndexArray(extents.to_vec()));
        ctx.set_attr(call, "halo", Attribute::int(halo));

        // Pre-create the FIFOs on the runtime so the input can be preloaded
        // before execution, then bind the IR stream values to the handles.
        let mut runtime = HlsRuntime::new();
        let in_handle = runtime.streams.create(2);
        let out_handle = runtime.streams.create(2);
        for &v in data {
            assert!(runtime
                .streams
                .get_mut(in_handle)
                .unwrap()
                .push(RtValue::F64(v)));
        }
        let mut machine = Machine::new(&ctx, module, &mut runtime);
        machine.bind(input, RtValue::Stream(in_handle));
        machine.bind(output, RtValue::Stream(out_handle));
        machine.exec_op(call).unwrap();
        drop(machine);
        let mut out = Vec::new();
        while let Some(v) = runtime.streams.get_mut(out_handle).unwrap().pop() {
            out.push(v.as_pack().unwrap().to_vec());
        }
        out
    }

    #[test]
    fn shift_buffer_1d_windows() {
        // 1D field of bounded extent 6 (interior 4, halo 1), values 0..6.
        let data: Vec<f64> = (0..6).map(|v| v as f64).collect();
        let windows = run_shift(&[6], 1, &data);
        assert_eq!(windows.len(), 4);
        for (i, w) in windows.iter().enumerate() {
            let c = i as f64 + 1.0; // centre value (interior point i ↦ padded idx i+1)
            assert_eq!(w, &vec![c - 1.0, c, c + 1.0], "window {i}");
        }
    }

    #[test]
    fn shift_buffer_2d_windows() {
        // 2D bounded 5x6 (interior 3x4, halo 1), value = row*10 + col.
        let mut data = Vec::new();
        for r in 0..5 {
            for c in 0..6 {
                data.push((r * 10 + c) as f64);
            }
        }
        let windows = run_shift(&[5, 6], 1, &data);
        assert_eq!(windows.len(), 3 * 4);
        // First interior point (0,0) is padded (1,1) = value 11; its window
        // rows are 0,1,2 and cols 0,1,2.
        let expect: Vec<f64> = vec![0., 1., 2., 10., 11., 12., 20., 21., 22.];
        assert_eq!(windows[0], expect);
        // Last interior point (2,3) is padded (3,4) = 34.
        let last = windows.last().unwrap();
        assert_eq!(last[4], 34.0);
    }

    #[test]
    fn copy_small_data_round_trip() {
        let runtime = HlsRuntime::new();
        let mut store = Store::new();
        let src = store.alloc(Buffer {
            shape: vec![4],
            origin: vec![0],
            data: vec![1., 2., 3., 4.],
        });
        let dst = store.alloc(Buffer::zeroed(vec![4], vec![0]));
        let mut beats = 0u64;
        rt_copy_small_data(
            &mut beats,
            &[RtValue::MemRef(src), RtValue::MemRef(dst)],
            &mut store,
        )
        .unwrap();
        assert_eq!(store.get(dst).unwrap().data, vec![1., 2., 3., 4.]);
        assert_eq!(beats, 1);
        let _ = runtime;
    }

    #[test]
    fn read_from_empty_stream_is_error() {
        let mut runtime = HlsRuntime::new();
        let h = runtime.streams.create(2);
        let e = runtime.pop(h).unwrap_err();
        assert!(e.to_string().contains("empty stream"), "{e}");
    }
}

#[cfg(test)]
mod query_tests {
    use super::*;
    use shmls_dialects::builtin;
    use shmls_ir::builder::OpBuilder;
    use shmls_ir::types::Type;

    /// `hls.empty` / `hls.full` observe FIFO state through the extern hook.
    #[test]
    fn empty_and_full_queries() {
        let mut ctx = Context::new();
        let (module, body) = builtin::create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let s = hls::create_stream(&mut b, Type::F64, 2);
        let v = shmls_dialects::arith::constant_f64(&mut b, 1.0);
        let w1 = hls::write(&mut b, v, s);
        let w2 = hls::write(&mut b, v, s);
        let e = hls::empty(&mut b, s);
        let f = hls::full(&mut b, s);

        let mut runtime = HlsRuntime::new();
        runtime.streams.bounded = true;
        let mut machine = Machine::new(&ctx, module, &mut runtime);
        for op in ctx.block_ops(body).to_vec() {
            machine.exec_op(op).unwrap();
        }
        assert_eq!(machine.lookup(e).unwrap(), RtValue::Bool(false));
        assert_eq!(machine.lookup(f).unwrap(), RtValue::Bool(true));
        let _ = (w1, w2, module);
    }

    /// Writing into a full bounded FIFO through the sequential hook is a
    /// hard error (the sequential engine has no way to block).
    #[test]
    fn bounded_overflow_is_error() {
        let mut ctx = Context::new();
        let (module, body) = builtin::create_module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, body);
        let s = hls::create_stream(&mut b, Type::F64, 1);
        let v = shmls_dialects::arith::constant_f64(&mut b, 1.0);
        hls::write(&mut b, v, s);
        hls::write(&mut b, v, s);

        let mut runtime = HlsRuntime::new();
        runtime.streams.bounded = true;
        let mut machine = Machine::new(&ctx, module, &mut runtime);
        let ops = ctx.block_ops(body).to_vec();
        machine.exec_op(ops[0]).unwrap();
        machine.exec_op(ops[1]).unwrap();
        machine.exec_op(ops[2]).unwrap();
        let e = machine.exec_op(ops[3]).unwrap_err();
        assert!(e.to_string().contains("full bounded stream"), "{e}");
    }
}
