//! Device description: the AMD Xilinx Alveo U280 and the calibration
//! constants behind the performance, resource and power models.
//!
//! Resource totals come from the public U280 data sheet; the per-operator
//! cost table and the power coefficients are calibrated so the *relative*
//! results of the paper's evaluation (Figures 4–6, Tables 1–2) are
//! reproduced — see EXPERIMENTS.md for the calibration notes. Absolute
//! agreement with physical hardware is explicitly out of scope.

use serde::Serialize;

/// A reconfigurable device (defaults describe the Alveo U280).
#[derive(Debug, Clone, Serialize)]
pub struct Device {
    /// Marketing name.
    pub name: String,
    /// Total 6-input LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Total BRAM36 blocks (36 Kbit each).
    pub bram36: u64,
    /// Total UltraRAM blocks (288 Kbit each).
    pub uram: u64,
    /// Total DSP48E2 slices.
    pub dsps: u64,
    /// Number of HBM pseudo-channels (banks).
    pub hbm_banks: u32,
    /// Usable bandwidth per HBM bank in bytes/second.
    pub hbm_bank_bandwidth: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: u64,
    /// Maximum AXI4 master ports supported by the shell (the paper: the
    /// U280 shell caps at 32, which limits PW advection to 4 CUs).
    pub max_axi_ports: u32,
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Shell + HBM static power draw in watts.
    pub static_power_w: f64,
}

impl Device {
    /// The AMD Xilinx Alveo U280 used throughout the paper's evaluation.
    pub fn u280() -> Self {
        Self {
            name: "Alveo U280".to_string(),
            luts: 1_303_680,
            ffs: 2_607_360,
            bram36: 2016,
            uram: 960,
            dsps: 9024,
            hbm_banks: 32,
            // 460 GB/s aggregate over 32 banks.
            hbm_bank_bandwidth: 460.0e9 / 32.0,
            hbm_capacity: 8 * 1024 * 1024 * 1024,
            max_axi_ports: 32,
            clock_hz: 300.0e6,
            static_power_w: 22.0,
        }
    }

    /// Seconds for the given number of cycles at the device clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Peak 512-bit beats per cycle a single HBM bank can sustain
    /// (fraction ≤ 1; 64 bytes per beat).
    pub fn beats_per_cycle_per_bank(&self) -> f64 {
        (self.hbm_bank_bandwidth / 64.0) / self.clock_hz
    }
}

/// Per-operator implementation cost used by the resource estimator
/// (double-precision floating point on UltraScale+; representative
/// figures from Vitis HLS operator library reports).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OpCost {
    /// LUTs consumed.
    pub luts: u64,
    /// Flip-flops consumed.
    pub ffs: u64,
    /// DSP slices consumed.
    pub dsps: u64,
}

/// Cost table for double-precision operators and infrastructure blocks.
#[derive(Debug, Clone, Serialize)]
pub struct CostTable {
    /// f64 add/sub.
    pub fadd: OpCost,
    /// f64 multiply.
    pub fmul: OpCost,
    /// f64 divide.
    pub fdiv: OpCost,
    /// f64 miscellaneous (abs/min/max/select/compare).
    pub fmisc: OpCost,
    /// Integer/index ALU op.
    pub ialu: OpCost,
    /// Per-FIFO control logic (excluding storage).
    pub fifo_ctrl: OpCost,
    /// Per AXI4 master port (protocol engine).
    pub axi_port: OpCost,
    /// Per dataflow stage control FSM.
    pub stage_ctrl: OpCost,
}

impl CostTable {
    /// Default calibration (see module docs).
    pub fn default_f64() -> Self {
        Self {
            fadd: OpCost {
                luts: 180,
                ffs: 330,
                dsps: 3,
            },
            fmul: OpCost {
                luts: 110,
                ffs: 240,
                dsps: 10,
            },
            fdiv: OpCost {
                luts: 3000,
                ffs: 4200,
                dsps: 0,
            },
            fmisc: OpCost {
                luts: 90,
                ffs: 130,
                dsps: 0,
            },
            ialu: OpCost {
                luts: 40,
                ffs: 40,
                dsps: 0,
            },
            fifo_ctrl: OpCost {
                luts: 50,
                ffs: 80,
                dsps: 0,
            },
            axi_port: OpCost {
                luts: 1500,
                ffs: 2300,
                dsps: 0,
            },
            stage_ctrl: OpCost {
                luts: 300,
                ffs: 440,
                dsps: 0,
            },
        }
    }
}

/// Power-model coefficients: `P = static + Σ class · coefficient`.
#[derive(Debug, Clone, Serialize)]
pub struct PowerCoefficients {
    /// Watts per active LUT.
    pub per_lut: f64,
    /// Watts per active flip-flop.
    pub per_ff: f64,
    /// Watts per BRAM36 in use.
    pub per_bram: f64,
    /// Watts per URAM block in use.
    pub per_uram: f64,
    /// Watts per DSP in use.
    pub per_dsp: f64,
    /// Watts per GB/s of HBM traffic actually moved.
    pub per_gbps: f64,
}

impl PowerCoefficients {
    /// Default calibration producing paper-magnitude power draws
    /// (≈ 25–40 W across the evaluated designs).
    pub fn default_u280() -> Self {
        Self {
            per_lut: 5.0e-5,
            per_ff: 1.2e-5,
            per_bram: 8.0e-3,
            per_uram: 1.2e-2,
            per_dsp: 1.8e-3,
            per_gbps: 0.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_headline_numbers() {
        let d = Device::u280();
        assert_eq!(d.max_axi_ports, 32);
        assert_eq!(d.hbm_banks, 32);
        assert_eq!(d.bram36, 2016);
        assert_eq!(d.dsps, 9024);
        assert_eq!(d.hbm_capacity, 8 << 30);
    }

    #[test]
    fn timing_helpers() {
        let d = Device::u280();
        assert!((d.cycles_to_seconds(300_000_000) - 1.0).abs() < 1e-12);
        // A bank sustains less than one 64-byte beat per 300 MHz cycle.
        let bpc = d.beats_per_cycle_per_bank();
        assert!(bpc > 0.5 && bpc < 1.0, "{bpc}");
    }

    #[test]
    fn cost_table_sane() {
        let t = CostTable::default_f64();
        assert!(t.fdiv.luts > t.fadd.luts);
        assert!(t.fmul.dsps > t.fadd.dsps);
    }
}
