//! # shmls-fpga-sim — the Alveo U280 substitute
//!
//! A cycle-approximate dataflow FPGA simulator standing in for the paper's
//! hardware: bounded FIFO streams, concurrently scheduled dataflow stages,
//! HBM banks behind AXI ports, BRAM-resident local buffers, and calibrated
//! resource / performance / power models.
//!
//! Layers:
//!
//! - [`stream`] — FIFO semantics with back-pressure and statistics.
//! - [`deadlock`] — structured stall diagnosis ([`deadlock::DeadlockReport`])
//!   shared by the threaded and cycle engines.
//! - [`executor`] — functional execution of HLS-dialect kernels
//!   (sequential Kahn engine + the paper's linked runtime functions).
//! - [`threaded`] — true concurrent execution with bounded FIFOs and
//!   deadlock detection (one thread per dataflow stage).
//! - [`stageplan`] — bytecode compilation of dataflow stage bodies, so
//!   the threaded engine executes compute/dup stages as flat register
//!   programs instead of re-entering the tree-walking interpreter per
//!   element (the interpreter stays the oracle and the fallback).
//! - [`cycle`] — cycle-stepped token-level Kahn simulation used to
//!   validate the analytic model against FIFO dynamics.
//! - [`design`] — extraction of a [`design::DesignDescriptor`] from
//!   HLS-dialect IR: the structural facts the models consume.
//! - [`memory`] — HBM bank connectivity (Vitis-style `.cfg` generation)
//!   and round-robin contention modelling.
//! - [`device`] — the Alveo U280 description and calibration constants.
//! - [`perf`] — the analytic cycle/throughput model.
//! - [`resources`] — LUT/FF/BRAM/DSP estimation (Tables 1 and 2).
//! - [`power`] — power draw and energy (Figures 5 and 6).

#![warn(missing_docs)]

pub mod cycle;
pub mod deadlock;
pub mod design;
pub mod device;
pub mod executor;
pub mod memory;
pub mod perf;
pub mod power;
pub mod resources;
pub mod stageplan;
pub mod stream;
pub mod threaded;
