//! Resource estimation: LUT / FF / BRAM / DSP usage of a design
//! (reproducing the shape of Tables 1 and 2).
//!
//! The estimator prices each compute operator as a dedicated hardware
//! instance (dataflow stages are spatially replicated, never shared),
//! sizes shift registers / FIFOs / local copies into BRAM36 blocks, and
//! charges infrastructure per AXI port, per stream and per stage. The
//! per-operator cost table lives in [`crate::device::CostTable`].

use serde::Serialize;

use crate::design::{DesignDescriptor, Stage};
use crate::device::{CostTable, Device};

/// Bytes of one BRAM36 block (36 Kbit).
pub const BRAM36_BYTES: u64 = 4608;
/// Bytes of one UltraRAM block (288 Kbit).
pub const URAM_BYTES: u64 = 36 * 1024;
/// Storage below this many bytes is implemented in LUTRAM, not BRAM.
pub const LUTRAM_THRESHOLD_BYTES: u64 = 1024;
/// Storage above this is placed in UltraRAM instead of BRAM (the paper's
/// step 8: "copied into local FPGA BRAM or URAM if it will fit") — the
/// large-plane shift registers of the 134M problem size would otherwise
/// exhaust the 2016 BRAM36 blocks.
pub const URAM_THRESHOLD_BYTES: u64 = 512 * 1024;

/// Absolute resource usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ResourceUsage {
    /// LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// BRAM36 blocks.
    pub bram36: u64,
    /// UltraRAM blocks.
    pub uram: u64,
    /// DSP slices.
    pub dsps: u64,
}

impl ResourceUsage {
    /// Element-wise sum.
    pub fn add(&mut self, other: ResourceUsage) {
        self.luts += other.luts;
        self.ffs += other.ffs;
        self.bram36 += other.bram36;
        self.uram += other.uram;
        self.dsps += other.dsps;
    }

    /// Scale by a replication factor (CU count).
    #[must_use]
    pub fn scaled(&self, factor: u64) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts * factor,
            ffs: self.ffs * factor,
            bram36: self.bram36 * factor,
            uram: self.uram * factor,
            dsps: self.dsps * factor,
        }
    }

    /// Percentages of the device totals, in the paper's table order
    /// (%LUTs, %FFs, %BRAM, %DSPs).
    pub fn percentages(&self, device: &Device) -> [f64; 4] {
        [
            100.0 * self.luts as f64 / device.luts as f64,
            100.0 * self.ffs as f64 / device.ffs as f64,
            100.0 * self.bram36 as f64 / device.bram36 as f64,
            100.0 * self.dsps as f64 / device.dsps as f64,
        ]
    }

    /// URAM utilisation percentage.
    pub fn uram_pct(&self, device: &Device) -> f64 {
        100.0 * self.uram as f64 / device.uram as f64
    }

    /// True when the design fits the device.
    pub fn fits(&self, device: &Device) -> bool {
        self.luts <= device.luts
            && self.ffs <= device.ffs
            && self.bram36 <= device.bram36
            && self.uram <= device.uram
            && self.dsps <= device.dsps
    }
}

/// BRAM36 blocks needed for `bytes` of storage (0 when small enough for
/// LUTRAM).
pub fn bram_blocks(bytes: u64) -> u64 {
    if bytes < LUTRAM_THRESHOLD_BYTES {
        0
    } else {
        bytes.div_ceil(BRAM36_BYTES)
    }
}

/// Place `bytes` of storage: returns `(bram36, uram)` blocks.
pub fn place_storage(bytes: u64) -> (u64, u64) {
    if bytes > URAM_THRESHOLD_BYTES {
        (0, bytes.div_ceil(URAM_BYTES))
    } else {
        (bram_blocks(bytes), 0)
    }
}

/// Estimate the resources of one compute unit of `design` when the domain
/// is decomposed over `cus` compute units (each CU's shift registers span
/// `1/cus` of the plane).
pub fn estimate_cu(design: &DesignDescriptor, costs: &CostTable, cus: u64) -> ResourceUsage {
    let mut total = ResourceUsage::default();
    let cus = cus.max(1);

    // Compute operators: one hardware instance per op per stage.
    for stage in &design.stages {
        // Per-stage control.
        total.luts += costs.stage_ctrl.luts;
        total.ffs += costs.stage_ctrl.ffs;
        if let Stage::Compute { ops, .. } = stage {
            for (count, cost) in [
                (ops.fadd, costs.fadd),
                (ops.fmul, costs.fmul),
                (ops.fdiv, costs.fdiv),
                (ops.fmisc, costs.fmisc),
                (ops.ialu, costs.ialu),
            ] {
                total.luts += count * cost.luts;
                total.ffs += count * cost.ffs;
                total.dsps += count * cost.dsps;
            }
        }
        if let Stage::Shift { register_len, .. } = stage {
            let bytes = (*register_len as u64 * 8).div_ceil(cus);
            let (bram, uram) = place_storage(bytes);
            total.bram36 += if uram == 0 { bram.max(1) } else { 0 };
            total.uram += uram;
            // Address/shift logic.
            total.luts += 2 * costs.ialu.luts + costs.stage_ctrl.luts;
            total.ffs += 2 * costs.ialu.ffs + costs.stage_ctrl.ffs;
        }
    }

    // FIFO storage and control.
    for s in &design.streams {
        let bytes = s.depth as u64 * s.elem_bytes;
        total.bram36 += bram_blocks(bytes);
        total.luts += costs.fifo_ctrl.luts + bytes.min(LUTRAM_THRESHOLD_BYTES) / 8;
        total.ffs += costs.fifo_ctrl.ffs;
    }

    // Step-8 local copies ("into local FPGA BRAM or URAM if it will fit").
    for &bytes in &design.local_buffer_bytes {
        let (bram, uram) = place_storage(bytes);
        total.bram36 += if uram == 0 { bram.max(1) } else { 0 };
        total.uram += uram;
    }

    // AXI ports (one protocol engine per distinct m_axi bundle).
    let ports = design.axi_ports() as u64;
    total.luts += ports * costs.axi_port.luts;
    total.ffs += ports * costs.axi_port.ffs;

    total
}

/// Estimate the whole deployment: one CU's resources replicated `cus`
/// times.
pub fn estimate(design: &DesignDescriptor, costs: &CostTable, cus: u32) -> ResourceUsage {
    estimate_cu(design, costs, cus as u64).scaled(cus as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{OpMix, StreamDesc};

    fn toy(shift_len: i64, local_bytes: Vec<u64>) -> DesignDescriptor {
        DesignDescriptor {
            name: "toy".into(),
            interior_points: 1000,
            bounded_points: 1100,
            stages: vec![
                Stage::Load {
                    fields: 1,
                    beats_per_field: 138,
                    elements_per_field: 1100,
                },
                Stage::Shift {
                    register_len: shift_len,
                    elements: 1100,
                    windows: 1000,
                },
                Stage::Compute {
                    ii: 1,
                    trips: 1000,
                    reads: 1,
                    writes: 1,
                    ops: OpMix {
                        fadd: 4,
                        fmul: 2,
                        fdiv: 1,
                        ..Default::default()
                    },
                },
                Stage::Write {
                    fields: 1,
                    beats_per_field: 125,
                    elements_per_field: 1000,
                },
            ],
            streams: vec![
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 216,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
            ],
            wiring: Vec::new(),
            interfaces: vec![
                ("m_axi".into(), "gmem0".into()),
                ("m_axi".into(), "gmem1".into()),
                ("s_axilite".into(), "control".into()),
            ],
            local_buffer_bytes: local_bytes,
            init_copy_elements: 0,
        }
    }

    #[test]
    fn operators_price_dsps() {
        let u = estimate_cu(&toy(100, vec![]), &CostTable::default_f64(), 1);
        // 4 fadd × 3 + 2 fmul × 10 = 32 DSPs.
        assert_eq!(u.dsps, 32);
        assert!(u.luts > 0 && u.ffs > 0);
    }

    #[test]
    fn bigger_shift_register_needs_more_memory() {
        let costs = CostTable::default_f64();
        let small = estimate_cu(&toy(100, vec![]), &costs, 1);
        let medium = estimate_cu(&toy(5_000, vec![]), &costs, 1);
        let large = estimate_cu(&toy(100_000, vec![]), &costs, 1);
        // Mid-sized registers grow BRAM; past the URAM threshold the
        // storage moves wholesale to UltraRAM (step 8's "BRAM or URAM").
        assert!(medium.bram36 > small.bram36, "{medium:?} vs {small:?}");
        assert!(large.uram > 0 && large.uram > medium.uram, "{large:?}");
    }

    #[test]
    fn local_copies_add_bram() {
        let costs = CostTable::default_f64();
        let without = estimate_cu(&toy(100, vec![]), &costs, 1);
        let with = estimate_cu(&toy(100, vec![40_000, 40_000]), &costs, 1);
        assert_eq!(
            with.bram36 - without.bram36,
            2 * 40_000u64.div_ceil(BRAM36_BYTES)
        );
    }

    #[test]
    fn cu_scaling_replicates_logic_but_splits_buffers() {
        let costs = CostTable::default_f64();
        let d = toy(1000, vec![]);
        let one = estimate(&d, &costs, 1);
        let four = estimate(&d, &costs, 4);
        // Logic replicates linearly.
        assert_eq!(four.luts, 4 * one.luts);
        assert_eq!(four.dsps, 4 * one.dsps);
        // Shift-register storage is domain-decomposed: total BRAM grows
        // sublinearly (each CU buffers 1/4 of the plane).
        assert!(four.bram36 >= one.bram36);
        assert!(four.bram36 <= 4 * one.bram36);
    }

    #[test]
    fn percentages_and_fit() {
        let device = Device::u280();
        let u = ResourceUsage {
            luts: 130_368,
            ffs: 260_736,
            bram36: 504,
            uram: 0,
            dsps: 902,
        };
        let p = u.percentages(&device);
        assert!((p[0] - 10.0).abs() < 0.01);
        assert!((p[1] - 10.0).abs() < 0.01);
        assert!((p[2] - 25.0).abs() < 0.01);
        assert!((p[3] - 10.0).abs() < 0.05);
        assert!(u.fits(&device));
        let too_big = ResourceUsage {
            luts: 2_000_000,
            ..u
        };
        assert!(!too_big.fits(&device));
    }

    #[test]
    fn small_storage_stays_in_lutram() {
        assert_eq!(bram_blocks(512), 0);
        assert_eq!(bram_blocks(4608), 1);
        assert_eq!(bram_blocks(4609), 2);
    }
}
