//! Structured deadlock diagnosis shared by the execution engines.
//!
//! When a bounded-FIFO run stalls (the StencilFlow failure mode the paper
//! cites: runs that "did not complete their execution under 10 minutes, a
//! likely indicator of deadlock"), the engines no longer report a bare
//! timeout: they snapshot every stage's state (blocked on a push, blocked
//! on a pop, finished) and every FIFO's occupancy against its declared
//! depth, so the offending stream and stage can be read straight off the
//! report.

use std::fmt;

use serde::Serialize;

/// What a stage was doing when the run was declared deadlocked.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum StageStatus {
    /// The stage ran to completion.
    Finished,
    /// The stage was blocked pushing into a full stream.
    BlockedOnPush {
        /// Stream handle (creation order).
        stream: usize,
    },
    /// The stage was blocked popping from an empty stream.
    BlockedOnPop {
        /// Stream handle (creation order).
        stream: usize,
    },
    /// The stage had not finished but was not blocked on a stream when the
    /// snapshot was taken (e.g. it was still mid-computation).
    Running,
}

/// One stage's state at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StageSnapshot {
    /// Stage label (program order plus a role hint, e.g. `stage2:compute`).
    pub stage: String,
    /// What the stage was doing.
    pub status: StageStatus,
}

/// One FIFO's state at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StreamSnapshot {
    /// Stream handle (creation order).
    pub stream: usize,
    /// Elements queued when the snapshot was taken.
    pub occupancy: usize,
    /// Declared FIFO depth.
    pub depth: usize,
    /// Cycles the stream spent back-pressuring a producer (cycle engine
    /// only; the threaded engine has no cycle clock).
    pub full_stall_cycles: Option<u64>,
}

impl StreamSnapshot {
    /// True when the FIFO was at capacity.
    pub fn is_full(&self) -> bool {
        self.occupancy >= self.depth
    }
}

/// A full deadlock diagnosis: every stage's state and every FIFO's
/// occupancy versus declared depth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct DeadlockReport {
    /// Per-stage state, program order.
    pub stages: Vec<StageSnapshot>,
    /// Per-FIFO state, creation order.
    pub streams: Vec<StreamSnapshot>,
    /// Simulated cycles elapsed before the run was declared stuck (cycle
    /// engine only).
    pub cycles: Option<u64>,
}

impl DeadlockReport {
    /// The stages blocked on a stream operation.
    pub fn blocked_stages(&self) -> impl Iterator<Item = &StageSnapshot> {
        self.stages.iter().filter(|s| {
            matches!(
                s.status,
                StageStatus::BlockedOnPush { .. } | StageStatus::BlockedOnPop { .. }
            )
        })
    }

    /// The streams at capacity (back-pressuring their producers).
    pub fn full_streams(&self) -> impl Iterator<Item = &StreamSnapshot> {
        self.streams.iter().filter(|s| s.is_full())
    }

    /// The stream a stage is blocked on, if any.
    pub fn blocked_stream(&self, stage: &StageSnapshot) -> Option<&StreamSnapshot> {
        let handle = match stage.status {
            StageStatus::BlockedOnPush { stream } | StageStatus::BlockedOnPop { stream } => stream,
            _ => return None,
        };
        self.streams.iter().find(|s| s.stream == handle)
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataflow deadlock:")?;
        for s in &self.stages {
            match &s.status {
                StageStatus::Finished => writeln!(f, "  {}: finished", s.stage)?,
                StageStatus::Running => writeln!(f, "  {}: running (not blocked)", s.stage)?,
                StageStatus::BlockedOnPush { stream } => {
                    let occ = self
                        .streams
                        .iter()
                        .find(|t| t.stream == *stream)
                        .map(|t| format!(" ({}/{} full)", t.occupancy, t.depth))
                        .unwrap_or_default();
                    writeln!(f, "  {}: blocked pushing stream {stream}{occ}", s.stage)?;
                }
                StageStatus::BlockedOnPop { stream } => {
                    let occ = self
                        .streams
                        .iter()
                        .find(|t| t.stream == *stream)
                        .map(|t| format!(" ({}/{} queued)", t.occupancy, t.depth))
                        .unwrap_or_default();
                    writeln!(f, "  {}: blocked popping stream {stream}{occ}", s.stage)?;
                }
            }
        }
        for t in &self.streams {
            write!(f, "  stream {}: {}/{}", t.stream, t.occupancy, t.depth)?;
            if let Some(c) = t.full_stall_cycles {
                if c > 0 {
                    write!(f, " (back-pressured {c} cycles)")?;
                }
            }
            writeln!(f)?;
        }
        if let Some(c) = self.cycles {
            writeln!(f, "  declared stuck after {c} cycles")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeadlockReport {
        DeadlockReport {
            stages: vec![
                StageSnapshot {
                    stage: "stage0:load_data".into(),
                    status: StageStatus::Finished,
                },
                StageSnapshot {
                    stage: "stage1:compute".into(),
                    status: StageStatus::BlockedOnPush { stream: 2 },
                },
                StageSnapshot {
                    stage: "stage2:write_data".into(),
                    status: StageStatus::BlockedOnPop { stream: 3 },
                },
            ],
            streams: vec![
                StreamSnapshot {
                    stream: 2,
                    occupancy: 8,
                    depth: 8,
                    full_stall_cycles: Some(40),
                },
                StreamSnapshot {
                    stream: 3,
                    occupancy: 0,
                    depth: 8,
                    full_stall_cycles: None,
                },
            ],
            cycles: Some(1234),
        }
    }

    #[test]
    fn accessors_pick_out_blocked_state() {
        let r = sample();
        let blocked: Vec<_> = r.blocked_stages().collect();
        assert_eq!(blocked.len(), 2);
        let full: Vec<_> = r.full_streams().collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].stream, 2);
        let s = r.blocked_stream(blocked[0]).unwrap();
        assert!(s.is_full());
    }

    /// A report for a one-stage design must be coherent: the only stage's
    /// blocked stream resolves, and nothing else is implicated.
    #[test]
    fn single_stage_report_is_coherent() {
        let r = DeadlockReport {
            stages: vec![StageSnapshot {
                stage: "stage0:compute".into(),
                status: StageStatus::BlockedOnPop { stream: 0 },
            }],
            streams: vec![StreamSnapshot {
                stream: 0,
                occupancy: 0,
                depth: 4,
                full_stall_cycles: None,
            }],
            cycles: None,
        };
        assert_eq!(r.blocked_stages().count(), 1);
        assert_eq!(r.full_streams().count(), 0);
        let s = r.blocked_stream(&r.stages[0]).unwrap();
        assert_eq!(s.stream, 0);
        let text = r.to_string();
        assert!(
            text.contains("blocked popping stream 0 (0/4 queued)"),
            "{text}"
        );
    }

    /// Declared depth 0 means the stream can never hold anything: by the
    /// `occupancy >= depth` rule it counts as full even when empty, so a
    /// producer push-blocked on it is always accounted for. (The engines
    /// clamp executable capacity to 1, but a report built from declared
    /// depths must not divide blame by zero.)
    #[test]
    fn zero_depth_stream_is_always_full() {
        let s = StreamSnapshot {
            stream: 7,
            occupancy: 0,
            depth: 0,
            full_stall_cycles: Some(0),
        };
        assert!(s.is_full());
        let r = DeadlockReport {
            stages: vec![StageSnapshot {
                stage: "stage0:load_data".into(),
                status: StageStatus::BlockedOnPush { stream: 7 },
            }],
            streams: vec![s],
            cycles: Some(1),
        };
        assert_eq!(r.full_streams().count(), 1);
        assert!(r.to_string().contains("0/0"), "{r}");
    }

    #[test]
    fn display_names_stage_and_stream() {
        let text = sample().to_string();
        assert!(text.contains("stage1:compute"), "{text}");
        assert!(text.contains("blocked pushing stream 2"), "{text}");
        assert!(text.contains("8/8"), "{text}");
        assert!(text.contains("back-pressured 40 cycles"), "{text}");
        assert!(text.contains("1234 cycles"), "{text}");
    }
}
