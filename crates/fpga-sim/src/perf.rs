//! Analytic performance model: cycles → seconds → MPt/s.
//!
//! Two entry points:
//!
//! - [`hmls_estimate`] — for Stencil-HMLS designs, driven entirely by the
//!   extracted [`DesignDescriptor`]: all dataflow stages stream
//!   concurrently, so the steady-state makespan is the *maximum* stage
//!   time plus pipeline fill (shift-register warm-up dominates).
//! - [`pipeline_estimate`] — a generic single-pipeline model
//!   parameterised by II, serial stage factor, CU count and memory
//!   behaviour; the comparator frameworks (DaCe, SODA-opt, Vitis HLS,
//!   StencilFlow) are expressed through it with their published
//!   characteristics (see `shmls-baselines`).
//!
//! The model is validated against the cycle counts implied by the
//! functional simulator's stream statistics on small grids (integration
//! tests), and the absolute scale is set by the device clock.

use serde::Serialize;

use crate::design::{DesignDescriptor, Stage};
use crate::device::Device;

/// Pipeline fill overhead charged per dataflow stage (FIFOs, FSM, operator
/// latency) in cycles.
pub const STAGE_FILL_CYCLES: u64 = 64;

/// A performance estimate.
#[derive(Debug, Clone, Serialize)]
pub struct PerfEstimate {
    /// Total kernel cycles (per compute unit, all CUs run concurrently).
    pub cycles: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Throughput in million points per second (the paper's metric).
    pub mpts: f64,
    /// Which stage bounds the makespan.
    pub bottleneck: String,
    /// Steady-state cycles (excluding fill).
    pub steady_cycles: u64,
    /// Fill/drain cycles.
    pub fill_cycles: u64,
}

/// Estimate a Stencil-HMLS dataflow design on `device` replicated over
/// `cus` compute units (domain-decomposed).
pub fn hmls_estimate(design: &DesignDescriptor, device: &Device, cus: u32) -> PerfEstimate {
    assert!(cus >= 1, "at least one compute unit");
    let cus_u64 = cus as u64;
    let bank_rate = device.beats_per_cycle_per_bank();

    let mut steady: u64 = 0;
    let mut bottleneck = String::from("none");
    for (i, stage) in design.stages.iter().enumerate() {
        let cycles = match stage {
            Stage::Load {
                beats_per_field,
                elements_per_field,
                ..
            } => {
                // Each field rides its own AXI port/bank; the element
                // stream side must also feed the shift buffer at one
                // element per cycle.
                let mem = (*beats_per_field as f64 / bank_rate).ceil() as u64;
                mem.max(*elements_per_field).div_ceil(cus_u64)
            }
            // The shift buffer's warm-up is part of streaming its padded
            // elements — it overlaps the load, so it contributes stage
            // time, not extra fill.
            Stage::Shift { elements, .. } => elements.div_ceil(cus_u64),
            Stage::Dup { trips, .. } => trips.div_ceil(cus_u64),
            Stage::Compute { ii, trips, .. } => (trips * (*ii as u64)).div_ceil(cus_u64),
            Stage::Write {
                beats_per_field,
                elements_per_field,
                ..
            } => {
                let mem = (*beats_per_field as f64 / bank_rate).ceil() as u64;
                mem.max(*elements_per_field).div_ceil(cus_u64)
            }
        };
        if cycles > steady {
            steady = cycles;
            bottleneck = stage_name(stage, i);
        }
    }
    // Fill/drain: one pipeline latency per stage along the longest
    // producer→consumer chain (concurrent siblings overlap).
    let fill: u64 = STAGE_FILL_CYCLES * design.critical_path_stages();
    let cycles = steady + fill;
    let seconds = device.cycles_to_seconds(cycles);
    let mpts = design.interior_points as f64 / seconds / 1.0e6;
    PerfEstimate {
        cycles,
        seconds,
        mpts,
        bottleneck,
        steady_cycles: steady,
        fill_cycles: fill,
    }
}

/// Aggregate estimate for a set of compute units executing concurrently
/// over a domain decomposition (possibly with unequal slab heights).
#[derive(Debug, Clone, Serialize)]
pub struct ScaleEstimate {
    /// Modelled cycles per compute unit, in CU order.
    pub per_cu_cycles: Vec<u64>,
    /// Concurrent makespan: the slowest CU bounds the step.
    pub makespan_cycles: u64,
    /// Serial-equivalent work: the sum over CUs (what a one-CU device
    /// iterating the slabs would spend).
    pub sum_cycles: u64,
    /// Load imbalance: slowest CU over the mean, `1.0` = perfectly even.
    pub load_imbalance: f64,
}

/// Combine per-CU estimates (one [`hmls_estimate`] per slab design) into
/// a [`ScaleEstimate`] for the concurrent ensemble.
pub fn scale_estimate(per_cu: &[PerfEstimate]) -> ScaleEstimate {
    assert!(!per_cu.is_empty(), "at least one compute unit");
    let per_cu_cycles: Vec<u64> = per_cu.iter().map(|e| e.cycles).collect();
    let makespan_cycles = per_cu_cycles.iter().copied().max().unwrap_or(0);
    let sum_cycles = per_cu_cycles.iter().sum();
    let mean = sum_cycles as f64 / per_cu_cycles.len() as f64;
    let load_imbalance = if mean > 0.0 {
        makespan_cycles as f64 / mean
    } else {
        1.0
    };
    ScaleEstimate {
        per_cu_cycles,
        makespan_cycles,
        sum_cycles,
        load_imbalance,
    }
}

fn stage_name(stage: &Stage, index: usize) -> String {
    match stage {
        Stage::Load { .. } => format!("load[{index}]"),
        Stage::Shift { .. } => format!("shift[{index}]"),
        Stage::Dup { .. } => format!("dup[{index}]"),
        Stage::Compute { .. } => format!("compute[{index}]"),
        Stage::Write { .. } => format!("write[{index}]"),
    }
}

/// A generic single-pipeline (or fused-dataflow) execution model used for
/// the comparator frameworks.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineModel {
    /// Total problem points.
    pub points: u64,
    /// Achieved initiation interval of the critical loop.
    pub ii: f64,
    /// Number of *serialised* passes over the data (fused stencil groups
    /// executing back-to-back instead of concurrently).
    pub serial_factor: f64,
    /// Compute units.
    pub cus: u32,
    /// External memory accesses per point (reads + writes).
    pub mem_accesses_per_point: f64,
    /// Elements per memory beat (8 for 512-bit packed f64, 1 for naive
    /// per-element access).
    pub elements_per_beat: f64,
    /// Memory ports usable in parallel.
    pub mem_ports: u32,
    /// Fixed startup overhead in cycles.
    pub startup_cycles: u64,
}

/// Evaluate a [`PipelineModel`] on `device`.
pub fn pipeline_estimate(model: &PipelineModel, device: &Device) -> PerfEstimate {
    assert!(model.cus >= 1);
    let points_per_cu = (model.points as f64 / model.cus as f64).ceil();
    let compute = points_per_cu * model.ii * model.serial_factor;
    let beats = points_per_cu * model.mem_accesses_per_point / model.elements_per_beat.max(1e-9);
    let bank_rate = device.beats_per_cycle_per_bank();
    let mem = beats / (model.mem_ports.max(1) as f64 * bank_rate);
    let steady = compute.max(mem);
    let cycles = steady.ceil() as u64 + model.startup_cycles;
    let seconds = device.cycles_to_seconds(cycles);
    let mpts = model.points as f64 / seconds / 1.0e6;
    PerfEstimate {
        cycles,
        seconds,
        mpts,
        bottleneck: if compute >= mem {
            "compute".into()
        } else {
            "memory".into()
        },
        steady_cycles: steady.ceil() as u64,
        fill_cycles: model.startup_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{OpMix, StreamDesc};

    fn toy_design(points: u64, bounded: u64) -> DesignDescriptor {
        DesignDescriptor {
            name: "toy".into(),
            interior_points: points,
            bounded_points: bounded,
            stages: vec![
                Stage::Load {
                    fields: 1,
                    beats_per_field: bounded.div_ceil(8),
                    elements_per_field: bounded,
                },
                Stage::Shift {
                    register_len: 100,
                    elements: bounded,
                    windows: points,
                },
                Stage::Compute {
                    ii: 1,
                    trips: points,
                    reads: 1,
                    writes: 1,
                    ops: OpMix {
                        fadd: 4,
                        fmul: 2,
                        ..Default::default()
                    },
                },
                Stage::Write {
                    fields: 1,
                    beats_per_field: points.div_ceil(8),
                    elements_per_field: points,
                },
            ],
            streams: vec![StreamDesc {
                depth: 8,
                elem_bytes: 8,
            }],
            wiring: Vec::new(),
            interfaces: vec![("m_axi".into(), "gmem0".into())],
            local_buffer_bytes: vec![],
            init_copy_elements: 0,
        }
    }

    #[test]
    fn ii1_design_is_about_one_point_per_cycle() {
        let device = Device::u280();
        let d = toy_design(1_000_000, 1_030_301);
        let e = hmls_estimate(&d, &device, 1);
        // Steady state bound by the shift stage streaming the padded field.
        assert!(
            e.bottleneck.starts_with("load") || e.bottleneck.starts_with("shift"),
            "{e:?}"
        );
        let points_per_cycle = d.interior_points as f64 / e.cycles as f64;
        assert!(
            points_per_cycle > 0.9 && points_per_cycle <= 1.0,
            "{points_per_cycle}"
        );
        // ~300 MPt/s at 300 MHz.
        assert!(e.mpts > 270.0 && e.mpts < 300.0, "{}", e.mpts);
    }

    #[test]
    fn cu_replication_scales_throughput() {
        let device = Device::u280();
        let d = toy_design(8_000_000, 8_120_601);
        let one = hmls_estimate(&d, &device, 1);
        let four = hmls_estimate(&d, &device, 4);
        let speedup = four.mpts / one.mpts;
        assert!(speedup > 3.5 && speedup <= 4.1, "speedup {speedup}");
    }

    #[test]
    fn fill_is_critical_path_latency() {
        let device = Device::u280();
        let d = toy_design(1000, 1331);
        let e = hmls_estimate(&d, &device, 1);
        // Four stages in a chain (no wiring recorded → stage-count
        // fallback): 4 × STAGE_FILL_CYCLES.
        assert_eq!(e.fill_cycles, 4 * STAGE_FILL_CYCLES);
        assert_eq!(e.cycles, e.steady_cycles + e.fill_cycles);
    }

    #[test]
    fn scale_estimate_aggregates_uneven_slabs() {
        let device = Device::u280();
        // 7 rows over 2 CUs: slabs of 4 and 3 rows — uneven by design.
        let tall = hmls_estimate(&toy_design(4_000, 4_840), &device, 1);
        let short = hmls_estimate(&toy_design(3_000, 3_630), &device, 1);
        let s = scale_estimate(&[tall.clone(), short.clone()]);
        assert_eq!(s.per_cu_cycles, vec![tall.cycles, short.cycles]);
        assert_eq!(s.makespan_cycles, tall.cycles.max(short.cycles));
        assert_eq!(s.sum_cycles, tall.cycles + short.cycles);
        assert!(s.load_imbalance >= 1.0, "{}", s.load_imbalance);
        // Even slabs: imbalance collapses to exactly 1.
        let even = scale_estimate(&[tall.clone(), tall]);
        assert!((even.load_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pipeline_model_ii_scaling() {
        let device = Device::u280();
        let base = PipelineModel {
            points: 1_000_000,
            ii: 1.0,
            serial_factor: 1.0,
            cus: 1,
            mem_accesses_per_point: 2.0,
            elements_per_beat: 8.0,
            mem_ports: 2,
            startup_cycles: 0,
        };
        let fast = pipeline_estimate(&base, &device);
        let slow = pipeline_estimate(
            &PipelineModel {
                ii: 9.0,
                ..base.clone()
            },
            &device,
        );
        let ratio = fast.mpts / slow.mpts;
        assert!((ratio - 9.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn von_neumann_memory_bound() {
        let device = Device::u280();
        // Per-element accesses through one port: memory becomes the
        // bottleneck even at a nominal II of 1.
        let m = PipelineModel {
            points: 1_000_000,
            ii: 1.0,
            serial_factor: 1.0,
            cus: 1,
            mem_accesses_per_point: 7.0,
            elements_per_beat: 1.0,
            mem_ports: 1,
            startup_cycles: 0,
        };
        let e = pipeline_estimate(&m, &device);
        assert_eq!(e.bottleneck, "memory");
        assert!(e.mpts < 50.0, "{}", e.mpts);
    }
}
