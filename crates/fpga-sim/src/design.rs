//! Design extraction: from HLS-dialect IR to the structural facts the
//! performance, resource and power models consume.
//!
//! The models never look at the IR directly; everything they need —
//! stages, stream depths and widths, shift-register lengths, local buffer
//! sizes, AXI bundles, per-stage operation mix — is summarised in a
//! [`DesignDescriptor`] extracted here. This keeps the models testable in
//! isolation and mirrors how a real HLS report summarises a design.

use std::collections::BTreeMap;

use shmls_dialects::{arith, func, hls, memref, scf};
use shmls_ir::attributes::Attribute;
use shmls_ir::error::IrResult;
use shmls_ir::prelude::*;
use shmls_ir::{ir_bail, ir_ensure, ir_error};

/// Floating/integer operation mix of one compute stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMix {
    /// f64 additions/subtractions.
    pub fadd: u64,
    /// f64 multiplications.
    pub fmul: u64,
    /// f64 divisions.
    pub fdiv: u64,
    /// Other f64 ops (abs/min/max/select/compare/copysign …).
    pub fmisc: u64,
    /// Integer/index ALU operations.
    pub ialu: u64,
}

impl OpMix {
    /// Total floating-point operations per point.
    pub fn flops(&self) -> u64 {
        self.fadd + self.fmul + self.fdiv + self.fmisc
    }
}

/// One dataflow stage of the design.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// The single external-read stage (`load_data`): `fields` streams fed
    /// from memory, `beats` 512-bit beats each.
    Load {
        /// Number of input fields.
        fields: usize,
        /// 512-bit beats per field.
        beats_per_field: u64,
        /// Elements streamed per field.
        elements_per_field: u64,
    },
    /// A shift buffer: element stream → window stream.
    Shift {
        /// Shift-register length in elements.
        register_len: i64,
        /// Elements consumed.
        elements: u64,
        /// Windows produced.
        windows: u64,
    },
    /// A stream-duplication stage.
    Dup {
        /// Fan-out.
        copies: usize,
        /// Trip count.
        trips: u64,
        /// Element width in bytes (windows are wide).
        elem_bytes: u64,
    },
    /// A per-field compute stage (pipelined loop).
    Compute {
        /// Initiation interval requested by `hls.pipeline`.
        ii: i64,
        /// Trip count (interior points).
        trips: u64,
        /// Streams read per iteration.
        reads: usize,
        /// Streams written per iteration.
        writes: usize,
        /// Operation mix per iteration.
        ops: OpMix,
    },
    /// The single external-write stage (`write_data`).
    Write {
        /// Output fields drained.
        fields: usize,
        /// 512-bit beats per field.
        beats_per_field: u64,
        /// Elements per field.
        elements_per_field: u64,
    },
}

/// One FIFO stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDesc {
    /// Declared depth.
    pub depth: i64,
    /// Element width in bytes.
    pub elem_bytes: u64,
}

/// Stream connections of one dataflow stage (indices into
/// [`DesignDescriptor::streams`], creation order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageWiring {
    /// Streams the stage consumes from.
    pub reads: Vec<usize>,
    /// Streams the stage produces into.
    pub writes: Vec<usize>,
}

/// The extracted design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignDescriptor {
    /// Kernel name (the HLS function's symbol).
    pub name: String,
    /// Interior points per kernel invocation.
    pub interior_points: u64,
    /// Padded (halo-included) points streamed by the load stage.
    pub bounded_points: u64,
    /// Dataflow stages in program order.
    pub stages: Vec<Stage>,
    /// Stream wiring per stage (parallel to `stages`).
    pub wiring: Vec<StageWiring>,
    /// All FIFO streams.
    pub streams: Vec<StreamDesc>,
    /// AXI interface bindings: (protocol, bundle) per kernel argument.
    pub interfaces: Vec<(String, String)>,
    /// Local (BRAM) buffer sizes in bytes (step-8 copies).
    pub local_buffer_bytes: Vec<u64>,
    /// Elements copied into local buffers at kernel init.
    pub init_copy_elements: u64,
}

impl DesignDescriptor {
    /// Number of distinct `m_axi` bundles (physical memory ports per CU).
    pub fn axi_ports(&self) -> usize {
        let mut bundles: Vec<&str> = self
            .interfaces
            .iter()
            .filter(|(p, _)| p == "m_axi")
            .map(|(_, b)| b.as_str())
            .collect();
        bundles.sort_unstable();
        bundles.dedup();
        bundles.len()
    }

    /// Shift-register storage in bytes (8-byte elements).
    pub fn shift_register_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Shift { register_len, .. } => *register_len as u64 * 8,
                _ => 0,
            })
            .sum()
    }

    /// FIFO storage in bytes.
    pub fn fifo_bytes(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| s.depth as u64 * s.elem_bytes)
            .sum()
    }

    /// Total 512-bit beats moved to/from external memory.
    pub fn total_beats(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Load {
                    fields,
                    beats_per_field,
                    ..
                }
                | Stage::Write {
                    fields,
                    beats_per_field,
                    ..
                } => *fields as u64 * beats_per_field,
                _ => 0,
            })
            .sum::<u64>()
            + self.init_copy_elements.div_ceil(8)
    }

    /// The aggregate op mix over all compute stages.
    pub fn total_ops(&self) -> OpMix {
        let mut total = OpMix::default();
        for s in &self.stages {
            if let Stage::Compute { ops, .. } = s {
                total.fadd += ops.fadd;
                total.fmul += ops.fmul;
                total.fdiv += ops.fdiv;
                total.fmisc += ops.fmisc;
                total.ialu += ops.ialu;
            }
        }
        total
    }

    /// Length (in stages) of the longest producer→consumer chain through
    /// the dataflow graph — the depth that determines pipeline fill/drain.
    /// Falls back to the stage count when no wiring was recorded.
    pub fn critical_path_stages(&self) -> u64 {
        if self.wiring.len() != self.stages.len() || self.stages.is_empty() {
            return self.stages.len() as u64;
        }
        // Producer stage per stream.
        let mut producer = vec![usize::MAX; self.streams.len()];
        for (i, w) in self.wiring.iter().enumerate() {
            for &s in &w.writes {
                if s < producer.len() {
                    producer[s] = i;
                }
            }
        }
        // Stages appear in program (topological) order.
        let mut depth = vec![1u64; self.stages.len()];
        for (i, w) in self.wiring.iter().enumerate() {
            for &s in &w.reads {
                if s < producer.len() && producer[s] != usize::MAX && producer[s] < i {
                    depth[i] = depth[i].max(depth[producer[s]] + 1);
                }
            }
        }
        depth.into_iter().max().unwrap_or(1)
    }

    /// Extract the descriptor from an HLS-dialect `func.func`.
    pub fn from_hls_func(ctx: &Context, hls_func: OpId) -> IrResult<Self> {
        ir_ensure!(
            ctx.op_name(hls_func) == func::FUNC,
            "expected func.func, got `{}`",
            ctx.op_name(hls_func)
        );
        let name = func::func_name(ctx, hls_func)
            .ok_or_else(|| ir_error!("HLS function has no name"))?
            .to_string();
        let entry = ctx
            .entry_block(hls_func)
            .ok_or_else(|| ir_error!("HLS function has no body"))?;

        let mut d = DesignDescriptor {
            name,
            interior_points: 0,
            bounded_points: 0,
            stages: Vec::new(),
            wiring: Vec::new(),
            streams: Vec::new(),
            interfaces: Vec::new(),
            local_buffer_bytes: Vec::new(),
            init_copy_elements: 0,
        };

        // Stream handle (value) -> elem bytes, for dup width lookup.
        let mut stream_width: BTreeMap<ValueId, u64> = BTreeMap::new();
        // Stream handle (value) -> creation index, for stage wiring.
        let mut stream_index: BTreeMap<ValueId, usize> = BTreeMap::new();

        for &op in ctx.block_ops(entry) {
            match ctx.op_name(op) {
                hls::INTERFACE => {
                    let (p, b) = hls::interface_binding(ctx, op)
                        .ok_or_else(|| ir_error!("interface without binding"))?;
                    d.interfaces.push((p.to_string(), b.to_string()));
                }
                hls::CREATE_STREAM => {
                    let depth = hls::stream_depth(ctx, op);
                    let elem_bytes = ctx
                        .value_type(ctx.result(op, 0))
                        .element_type()
                        .and_then(Type::byte_size)
                        .unwrap_or(8);
                    stream_width.insert(ctx.result(op, 0), elem_bytes);
                    stream_index.insert(ctx.result(op, 0), d.streams.len());
                    d.streams.push(StreamDesc { depth, elem_bytes });
                }
                memref::ALLOCA => {
                    let bytes = ctx
                        .value_type(ctx.result(op, 0))
                        .byte_size()
                        .ok_or_else(|| ir_error!("alloca of unsized type"))?;
                    d.local_buffer_bytes.push(bytes);
                }
                "func.call" if func::callee(ctx, op) == Some("copy_small_data") => {
                    let elems = ctx
                        .attr(op, "elements")
                        .and_then(Attribute::as_int)
                        .unwrap_or(0);
                    d.init_copy_elements += elems as u64;
                }
                hls::DATAFLOW => {
                    let stage = extract_stage(ctx, op, &stream_width)?;
                    match &stage {
                        Stage::Load {
                            elements_per_field, ..
                        } => {
                            d.bounded_points = *elements_per_field;
                        }
                        Stage::Write {
                            elements_per_field, ..
                        } => {
                            d.interior_points = *elements_per_field;
                        }
                        _ => {}
                    }
                    d.wiring
                        .push(extract_wiring(ctx, op, &stage, &stream_index));
                    d.stages.push(stage);
                }
                _ => {}
            }
        }
        ir_ensure!(!d.stages.is_empty(), "design has no dataflow stages");
        Ok(d)
    }
}

fn extract_stage(
    ctx: &Context,
    dataflow: OpId,
    stream_width: &BTreeMap<ValueId, u64>,
) -> IrResult<Stage> {
    let body = ctx
        .entry_block(dataflow)
        .ok_or_else(|| ir_error!("dataflow without body"))?;
    // Runtime-call stages: a single func.call.
    for &op in ctx.block_ops(body) {
        if ctx.op_name(op) == "func.call" {
            let callee = func::callee(ctx, op).unwrap_or_default();
            let extents = ctx
                .attr(op, "extents")
                .and_then(Attribute::as_index_array)
                .map(<[i64]>::to_vec)
                .unwrap_or_default();
            let halo = ctx
                .attr(op, "halo")
                .and_then(Attribute::as_int)
                .unwrap_or(0);
            let points: i64 = extents.iter().product();
            match callee {
                "load_data" | "dummy_load_data" => {
                    let fields = ctx
                        .attr(op, "fields")
                        .and_then(Attribute::as_int)
                        .unwrap_or(1) as usize;
                    let elements = points.max(0) as u64;
                    return Ok(Stage::Load {
                        fields,
                        beats_per_field: elements.div_ceil(8),
                        elements_per_field: elements,
                    });
                }
                "shift_buffer" => {
                    let register_len = shmls_dialects::window::shift_register_len(&extents, halo);
                    let interior: i64 = extents.iter().map(|&e| (e - 2 * halo).max(0)).product();
                    return Ok(Stage::Shift {
                        register_len,
                        elements: points.max(0) as u64,
                        windows: interior.max(0) as u64,
                    });
                }
                "write_data" => {
                    let fields = ctx
                        .attr(op, "fields")
                        .and_then(Attribute::as_int)
                        .unwrap_or(1) as usize;
                    let elements = points.max(0) as u64;
                    return Ok(Stage::Write {
                        fields,
                        beats_per_field: elements.div_ceil(8),
                        elements_per_field: elements,
                    });
                }
                _ => {}
            }
        }
    }
    // Loop stages: dup or compute.
    for &op in ctx.block_ops(body) {
        if ctx.op_name(op) == scf::FOR {
            return extract_loop_stage(ctx, op, stream_width);
        }
    }
    ir_bail!("unrecognised dataflow stage")
}

fn extract_loop_stage(
    ctx: &Context,
    for_op: OpId,
    stream_width: &BTreeMap<ValueId, u64>,
) -> IrResult<Stage> {
    let trips = loop_trip_count(ctx, for_op)?;
    let mut ii = 1;
    let mut reads = 0usize;
    let mut writes = 0usize;
    let mut written_streams: Vec<ValueId> = Vec::new();
    let mut ops = OpMix::default();
    for op in ctx.walk_collect(for_op) {
        match ctx.op_name(op) {
            hls::PIPELINE => {
                ii = hls::pipeline_ii(ctx, op).unwrap_or(1);
            }
            hls::READ => reads += 1,
            hls::WRITE => {
                writes += 1;
                written_streams.push(ctx.operands(op)[1]);
            }
            "arith.addf" | "arith.subf" | "arith.negf" => ops.fadd += 1,
            "arith.mulf" => ops.fmul += 1,
            "arith.divf" => ops.fdiv += 1,
            "arith.maximumf" | "arith.minimumf" | "arith.select" | "arith.cmpf" | "math.absf"
            | "math.copysign" | "math.sqrt" => ops.fmisc += 1,
            "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi"
            | "arith.index_cast" | "arith.cmpi" => ops.ialu += 1,
            _ => {}
        }
    }
    // A dup stage is a loop with one read fanned out into N identical-width
    // writes and no floating-point work.
    if reads == 1 && writes >= 2 && ops.flops() == 0 {
        let elem_bytes = written_streams
            .first()
            .and_then(|s| stream_width.get(s).copied())
            .unwrap_or(8);
        return Ok(Stage::Dup {
            copies: writes,
            trips,
            elem_bytes,
        });
    }
    Ok(Stage::Compute {
        ii,
        trips,
        reads,
        writes,
        ops,
    })
}

/// Determine which streams a stage reads/writes.
fn extract_wiring(
    ctx: &Context,
    dataflow: OpId,
    stage: &Stage,
    stream_index: &BTreeMap<ValueId, usize>,
) -> StageWiring {
    let mut wiring = StageWiring::default();
    let idx = |v: &ValueId| stream_index.get(v).copied();
    for op in ctx.walk_collect(dataflow) {
        match ctx.op_name(op) {
            hls::READ => {
                if let Some(i) = idx(&ctx.operands(op)[0]) {
                    wiring.reads.push(i);
                }
            }
            hls::WRITE => {
                if let Some(i) = idx(&ctx.operands(op)[1]) {
                    wiring.writes.push(i);
                }
            }
            "func.call" => {
                let operands = ctx.operands(op).to_vec();
                match (func::callee(ctx, op), stage) {
                    (Some("load_data") | Some("dummy_load_data"), Stage::Load { fields, .. }) => {
                        for v in operands.iter().skip(*fields) {
                            if let Some(i) = idx(v) {
                                wiring.writes.push(i);
                            }
                        }
                    }
                    (Some("shift_buffer"), _) => {
                        if let Some(i) = idx(&operands[0]) {
                            wiring.reads.push(i);
                        }
                        if let Some(i) = idx(&operands[1]) {
                            wiring.writes.push(i);
                        }
                    }
                    (Some("write_data"), Stage::Write { fields, .. }) => {
                        for v in operands.iter().take(*fields) {
                            if let Some(i) = idx(v) {
                                wiring.reads.push(i);
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    wiring
}

/// Constant trip count of a normalised loop (`lb`, `ub`, `step` all
/// `arith.constant`).
fn loop_trip_count(ctx: &Context, for_op: OpId) -> IrResult<u64> {
    let (lb, ub, step) = scf::loop_bounds(ctx, for_op);
    let read_const = |v: ValueId| -> IrResult<i64> {
        let def = ctx
            .defining_op(v)
            .ok_or_else(|| ir_error!("loop bound is not a constant"))?;
        arith::constant_value(ctx, def)
            .and_then(Attribute::as_int)
            .ok_or_else(|| ir_error!("loop bound is not a constant integer"))
    };
    let (lb, ub, step) = (read_const(lb)?, read_const(ub)?, read_const(step)?);
    ir_ensure!(step > 0, "non-positive loop step");
    Ok(((ub - lb).max(0) as u64).div_ceil(step as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Descriptor extraction over real transformed kernels is covered by
    // integration tests in the `stencil-hmls` crate (which owns the
    // transform); here we test the arithmetic helpers.

    #[test]
    fn op_mix_totals() {
        let m = OpMix {
            fadd: 3,
            fmul: 2,
            fdiv: 1,
            fmisc: 4,
            ialu: 7,
        };
        assert_eq!(m.flops(), 10);
    }

    #[test]
    fn descriptor_aggregates() {
        let d = DesignDescriptor {
            name: "k".into(),
            interior_points: 100,
            bounded_points: 144,
            stages: vec![
                Stage::Load {
                    fields: 2,
                    beats_per_field: 18,
                    elements_per_field: 144,
                },
                Stage::Shift {
                    register_len: 27,
                    elements: 144,
                    windows: 100,
                },
                Stage::Compute {
                    ii: 1,
                    trips: 100,
                    reads: 1,
                    writes: 1,
                    ops: OpMix {
                        fadd: 2,
                        ..Default::default()
                    },
                },
                Stage::Write {
                    fields: 1,
                    beats_per_field: 13,
                    elements_per_field: 100,
                },
            ],
            streams: vec![
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 72,
                },
            ],
            wiring: Vec::new(),
            interfaces: vec![
                ("m_axi".into(), "gmem0".into()),
                ("m_axi".into(), "gmem1".into()),
                ("m_axi".into(), "gmem1".into()),
                ("s_axilite".into(), "control".into()),
            ],
            local_buffer_bytes: vec![64],
            init_copy_elements: 8,
        };
        assert_eq!(d.axi_ports(), 2);
        assert_eq!(d.shift_register_bytes(), 27 * 8);
        assert_eq!(d.fifo_bytes(), 8 * 8 + 8 * 72);
        assert_eq!(d.total_beats(), 2 * 18 + 13 + 1);
        assert_eq!(d.total_ops().fadd, 2);
    }
}
