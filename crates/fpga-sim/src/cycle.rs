//! Cycle-stepped Kahn-network simulation of a dataflow design.
//!
//! Where [`crate::perf`] computes a closed-form makespan (max stage time +
//! fill) and [`crate::executor`] computes *values* with no notion of time,
//! this engine steps the design cycle by cycle at the *token* level:
//! every stage is a small state machine that fires when its input FIFOs
//! have tokens, its output FIFOs have space, and its initiation interval
//! permits — exactly the discipline a Vitis dataflow region follows in
//! hardware. It reports total cycles plus per-stage busy/stall statistics,
//! and is used to validate the analytic model (they must agree within a
//! few percent — see `tests/model_validation.rs`).
//!
//! Token semantics per stage kind:
//!
//! - **Load** fires once per element per field stream (the 512-bit port
//!   supplies ≥ 1 element/cycle, so the stream side is the rate limit).
//! - **Shift** consumes one element per fire; window `j` becomes
//!   emittable once the consumed count passes the warm-up
//!   (`register_len`) plus the approximately uniform halo-gap spread —
//!   the cycle-approximate part of the simulator.
//! - **Dup** forwards one token to every copy per fire.
//! - **Compute** consumes one token from each input stream and produces
//!   one result every `II` cycles.
//! - **Write** drains one token per result stream per fire.

use serde::Serialize;

use crate::deadlock::{DeadlockReport, StageSnapshot, StageStatus, StreamSnapshot};
use crate::design::{DesignDescriptor, Stage};
use crate::device::Device;

/// Result of a cycle-stepped run.
#[derive(Debug, Clone, Serialize)]
pub struct CycleReport {
    /// Total cycles until every stage completed.
    pub cycles: u64,
    /// Fires per stage.
    pub fires: Vec<u64>,
    /// Cycles each stage spent unable to fire for lack of input tokens.
    pub stalled_empty: Vec<u64>,
    /// Cycles each stage spent unable to fire because an output was full.
    pub stalled_full: Vec<u64>,
    /// Completion cycle per stage.
    pub done_at: Vec<u64>,
}

impl CycleReport {
    /// Throughput in million points per second at the device clock.
    pub fn mpts(&self, points: u64, device: &Device) -> f64 {
        points as f64 / device.cycles_to_seconds(self.cycles) / 1.0e6
    }
}

struct StageState {
    /// Remaining fires.
    remaining: u64,
    /// Tokens consumed so far (shift stages).
    consumed: u64,
    /// Tokens produced so far.
    produced: u64,
    /// Cycle at which the stage may fire next (II pacing).
    ready_at: u64,
    /// Initiation interval.
    ii: u64,
    /// For shift stages: warm-up length and totals for the emit gate.
    shift: Option<(u64, u64, u64)>, // (register_len, elements, windows)
}

/// Step `design` cycle by cycle with the declared FIFO depths
/// (`depth_override` replaces every depth when given). The simulation is
/// deterministic: stages fire in program order within a cycle, consuming
/// the FIFO states left by the previous cycle (writes become visible the
/// next cycle, like registered FIFO outputs).
///
/// A run that exceeds the cycle budget without every stage finishing is
/// deadlocked (no legal design needs that many cycles); instead of
/// panicking, the engine returns a [`DeadlockReport`] naming each blocked
/// stage, the stream it is blocked on, and how many cycles each stream
/// spent back-pressuring its producer.
pub fn simulate(
    design: &DesignDescriptor,
    depth_override: Option<usize>,
) -> Result<CycleReport, Box<DeadlockReport>> {
    assert_eq!(
        design.stages.len(),
        design.wiring.len(),
        "descriptor missing stage wiring"
    );
    let n_stages = design.stages.len();
    let mut fifo_len: Vec<usize> = vec![0; design.streams.len()];
    let fifo_cap: Vec<usize> = design
        .streams
        .iter()
        .map(|s| depth_override.unwrap_or(s.depth.max(1) as usize))
        .collect();

    let mut states: Vec<StageState> = design
        .stages
        .iter()
        .map(|stage| {
            let (remaining, ii, shift) = match stage {
                Stage::Load {
                    elements_per_field, ..
                } => (*elements_per_field, 1, None),
                Stage::Shift {
                    register_len,
                    elements,
                    windows,
                } => (
                    *elements,
                    1,
                    Some((*register_len as u64, *elements, *windows)),
                ),
                Stage::Dup { trips, .. } => (*trips, 1, None),
                Stage::Compute { ii, trips, .. } => (*trips, (*ii).max(1) as u64, None),
                Stage::Write {
                    elements_per_field, ..
                } => (*elements_per_field, 1, None),
            };
            StageState {
                remaining,
                consumed: 0,
                produced: 0,
                ready_at: 0,
                ii,
                shift,
            }
        })
        .collect();

    let mut report = CycleReport {
        cycles: 0,
        fires: vec![0; n_stages],
        stalled_empty: vec![0; n_stages],
        stalled_full: vec![0; n_stages],
        done_at: vec![0; n_stages],
    };

    // Safety valve: no legal design needs more than this.
    let budget: u64 = 64
        + 4 * design
            .stages
            .iter()
            .map(|s| match s {
                Stage::Load {
                    elements_per_field, ..
                } => *elements_per_field,
                Stage::Shift { elements, .. } => *elements,
                Stage::Dup { trips, .. } => *trips,
                Stage::Compute { ii, trips, .. } => *trips * (*ii).max(1) as u64,
                Stage::Write {
                    elements_per_field, ..
                } => *elements_per_field,
            })
            .sum::<u64>();

    // Per-stream back-pressure accounting: cycles a producer spent unable
    // to push because this stream was full.
    let mut stream_full_stalls: Vec<u64> = vec![0; design.streams.len()];

    let mut cycle: u64 = 0;
    while states.iter().any(|s| s.remaining > 0) {
        cycle += 1;
        if cycle >= budget {
            return Err(Box::new(diagnose(
                design,
                &states,
                &fifo_len,
                &fifo_cap,
                &stream_full_stalls,
                cycle,
            )));
        }
        // Snapshot FIFO levels: fires this cycle see last cycle's state.
        let visible = fifo_len.clone();
        let mut delta = vec![0i64; fifo_len.len()];
        for (i, state) in states.iter_mut().enumerate() {
            if state.remaining == 0 || state.ready_at > cycle {
                continue;
            }
            let wiring = &design.wiring[i];
            // Input availability (a stream listed k times — e.g. by an
            // unrolled compute body — needs k tokens).
            let mut need = std::collections::BTreeMap::<usize, usize>::new();
            for &s in &wiring.reads {
                *need.entry(s).or_default() += 1;
            }
            let inputs_ready = need.iter().all(|(&s, &k)| visible[s] >= k);
            if !inputs_ready {
                report.stalled_empty[i] += 1;
                continue;
            }
            // Output availability; a shift stage may fire without emitting.
            let emits = match state.shift {
                Some((register_len, elements, windows)) => {
                    shift_emits(state.consumed + 1, register_len, elements, windows)
                        > state.produced
                }
                None => true,
            };
            let mut room = std::collections::BTreeMap::<usize, usize>::new();
            for &s in &wiring.writes {
                *room.entry(s).or_default() += 1;
            }
            let outputs_ready = !emits || room.iter().all(|(&s, &k)| visible[s] + k <= fifo_cap[s]);
            if !outputs_ready {
                report.stalled_full[i] += 1;
                for (&s, &k) in &room {
                    if visible[s] + k > fifo_cap[s] {
                        stream_full_stalls[s] += 1;
                    }
                }
                continue;
            }
            // Fire.
            for &s in &wiring.reads {
                delta[s] -= 1;
            }
            if emits {
                for &s in &wiring.writes {
                    delta[s] += 1;
                }
                state.produced += 1;
            }
            state.consumed += 1;
            state.remaining -= 1;
            state.ready_at = cycle + state.ii;
            report.fires[i] += 1;
            if state.remaining == 0 {
                report.done_at[i] = cycle;
            }
        }
        for (len, d) in fifo_len.iter_mut().zip(&delta) {
            let next = *len as i64 + d;
            debug_assert!(next >= 0);
            *len = next as usize;
        }
    }
    report.cycles = cycle;
    Ok(report)
}

/// Human-readable role of a stage, for deadlock snapshots.
fn stage_kind(stage: &Stage) -> &'static str {
    match stage {
        Stage::Load { .. } => "load",
        Stage::Shift { .. } => "shift",
        Stage::Dup { .. } => "dup",
        Stage::Compute { .. } => "compute",
        Stage::Write { .. } => "write",
    }
}

/// Snapshot every stage's state and every FIFO's occupancy for a run that
/// exceeded its cycle budget.
fn diagnose(
    design: &DesignDescriptor,
    states: &[StageState],
    fifo_len: &[usize],
    fifo_cap: &[usize],
    stream_full_stalls: &[u64],
    cycle: u64,
) -> DeadlockReport {
    let stages = states
        .iter()
        .enumerate()
        .map(|(i, state)| {
            let stage = format!("stage{i}:{}", stage_kind(&design.stages[i]));
            let status = if state.remaining == 0 {
                StageStatus::Finished
            } else {
                let wiring = &design.wiring[i];
                // Re-evaluate the fire conditions against the final FIFO
                // state: a starved input wins over a full output (the stage
                // checks inputs first), matching the per-cycle logic.
                let mut need = std::collections::BTreeMap::<usize, usize>::new();
                for &s in &wiring.reads {
                    *need.entry(s).or_default() += 1;
                }
                let starved = need.iter().find(|&(&s, &k)| fifo_len[s] < k);
                let mut room = std::collections::BTreeMap::<usize, usize>::new();
                for &s in &wiring.writes {
                    *room.entry(s).or_default() += 1;
                }
                let full = room.iter().find(|&(&s, &k)| fifo_len[s] + k > fifo_cap[s]);
                match (starved, full) {
                    (Some((&s, _)), _) => StageStatus::BlockedOnPop { stream: s },
                    (None, Some((&s, _))) => StageStatus::BlockedOnPush { stream: s },
                    (None, None) => StageStatus::Running,
                }
            };
            StageSnapshot { stage, status }
        })
        .collect();
    let streams = fifo_len
        .iter()
        .enumerate()
        .map(|(s, &occupancy)| StreamSnapshot {
            stream: s,
            occupancy,
            depth: fifo_cap[s],
            full_stall_cycles: Some(stream_full_stalls[s]),
        })
        .collect();
    DeadlockReport {
        stages,
        streams,
        cycles: Some(cycle),
    }
}

/// How many windows are emittable after `consumed` elements: none during
/// the `register_len` warm-up, then the remaining consumption is spread
/// uniformly over the `windows` emissions (the halo rows/planes create the
/// gap between `elements` and `register_len + windows - 1`; spreading them
/// uniformly is the "approximate" in cycle-approximate).
fn shift_emits(consumed: u64, register_len: u64, elements: u64, windows: u64) -> u64 {
    if windows == 0 || consumed < register_len {
        return 0;
    }
    let span = elements.saturating_sub(register_len) + 1;
    let progressed = consumed - register_len + 1;
    ((progressed as u128 * windows as u128) / span as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{OpMix, StageWiring, StreamDesc};

    /// load → shift → compute → write over a 1D field.
    fn linear_design(n: u64, halo: u64, ii: i64) -> DesignDescriptor {
        let bounded = n + 2 * halo;
        let register_len = (2 * halo + 1) as i64;
        DesignDescriptor {
            name: "linear".into(),
            interior_points: n,
            bounded_points: bounded,
            stages: vec![
                Stage::Load {
                    fields: 1,
                    beats_per_field: bounded.div_ceil(8),
                    elements_per_field: bounded,
                },
                Stage::Shift {
                    register_len,
                    elements: bounded,
                    windows: n,
                },
                Stage::Compute {
                    ii,
                    trips: n,
                    reads: 1,
                    writes: 1,
                    ops: OpMix::default(),
                },
                Stage::Write {
                    fields: 1,
                    beats_per_field: n.div_ceil(8),
                    elements_per_field: n,
                },
            ],
            wiring: vec![
                StageWiring {
                    reads: vec![],
                    writes: vec![0],
                },
                StageWiring {
                    reads: vec![0],
                    writes: vec![1],
                },
                StageWiring {
                    reads: vec![1],
                    writes: vec![2],
                },
                StageWiring {
                    reads: vec![2],
                    writes: vec![],
                },
            ],
            streams: vec![
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 24,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
            ],
            interfaces: vec![("m_axi".into(), "gmem0".into())],
            local_buffer_bytes: vec![],
            init_copy_elements: 0,
        }
    }

    #[test]
    fn ii1_linear_pipeline_is_about_n_cycles() {
        let d = linear_design(1000, 1, 1);
        let r = simulate(&d, None).unwrap();
        // Steady state: one point per cycle, small fill.
        assert!(
            r.cycles >= 1002 && r.cycles < 1100,
            "cycles {} for 1000 points",
            r.cycles
        );
        assert_eq!(r.fires[2], 1000, "compute fires once per point");
        assert_eq!(r.fires[1], 1002, "shift consumes every padded element");
    }

    #[test]
    fn ii_scales_cycles() {
        let fast = simulate(&linear_design(500, 1, 1), None).unwrap();
        let slow = simulate(&linear_design(500, 1, 4), None).unwrap();
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!(
            (3.5..4.5).contains(&ratio),
            "II 4 should be ~4x slower: {ratio} ({} vs {})",
            slow.cycles,
            fast.cycles
        );
        // Back-pressure propagates: the load stage stalls on full FIFOs.
        assert!(slow.stalled_full[0] > 0, "{:?}", slow.stalled_full);
    }

    #[test]
    fn tiny_fifos_still_complete() {
        let d = linear_design(300, 1, 1);
        let deep = simulate(&d, None).unwrap();
        let shallow = simulate(&d, Some(1)).unwrap();
        // Depth-1 FIFOs serialise hand-offs but must not deadlock.
        assert!(shallow.cycles >= deep.cycles);
        assert_eq!(shallow.fires[3], 300);
    }

    #[test]
    fn shift_emit_gate() {
        // 1D: bounded 12, halo 1 → reg 3, windows 10: emissions start at
        // consumed = 3 and end exactly at consumed = elements.
        assert_eq!(shift_emits(2, 3, 12, 10), 0);
        assert!(shift_emits(3, 3, 12, 10) >= 1);
        assert_eq!(shift_emits(12, 3, 12, 10), 10);
        // Monotone.
        let mut last = 0;
        for c in 0..=12 {
            let e = shift_emits(c, 3, 12, 10);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn dead_producer_reports_backpressured_stream() {
        // A write stage that drains only stream 2 while the compute stage's
        // output stream has no consumer: the compute stream fills, the
        // compute stage blocks pushing, and everything upstream starves.
        let mut d = linear_design(200, 1, 1);
        d.wiring[3].reads = vec![]; // write stage no longer drains stream 2
        let err = simulate(&d, None).unwrap_err();
        assert!(err.cycles.unwrap_or(0) > 0);
        // The compute stage (index 2) must be reported blocked pushing its
        // full output stream (handle 2, depth 8).
        let compute = &err.stages[2];
        assert_eq!(compute.stage, "stage2:compute");
        assert_eq!(
            compute.status,
            crate::deadlock::StageStatus::BlockedOnPush { stream: 2 }
        );
        let s2 = &err.streams[2];
        assert_eq!((s2.occupancy, s2.depth), (8, 8));
        assert!(s2.full_stall_cycles.unwrap() > 0, "{s2:?}");
        // Display names the offenders.
        let text = err.to_string();
        assert!(text.contains("stage2:compute"), "{text}");
        assert!(text.contains("blocked pushing stream 2"), "{text}");
    }

    #[test]
    fn starved_consumer_reports_blocked_pop() {
        // Nothing ever writes stream 0: the shift stage starves forever.
        let mut d = linear_design(50, 1, 1);
        d.wiring[0].writes = vec![]; // load feeds nothing
        let err = simulate(&d, None).unwrap_err();
        let shift = &err.stages[1];
        assert_eq!(
            shift.status,
            crate::deadlock::StageStatus::BlockedOnPop { stream: 0 }
        );
        assert!(err.blocked_stages().count() >= 1);
    }

    /// A degenerate one-stage design with no streams at all: nothing to
    /// block on, so the run must complete and produce a sane report.
    #[test]
    fn single_stage_design_without_streams_completes() {
        let d = DesignDescriptor {
            name: "solo-load".into(),
            interior_points: 16,
            bounded_points: 16,
            stages: vec![Stage::Load {
                fields: 1,
                beats_per_field: 2,
                elements_per_field: 16,
            }],
            wiring: vec![StageWiring {
                reads: vec![],
                writes: vec![],
            }],
            streams: vec![],
            interfaces: vec![],
            local_buffer_bytes: vec![],
            init_copy_elements: 0,
        };
        let r = simulate(&d, None).unwrap();
        assert!(r.cycles > 0);
        assert_eq!(r.fires.len(), 1);
    }

    /// A single stage starving on a producer-less stream: the report must
    /// stay coherent with exactly one stage and one (empty) stream.
    #[test]
    fn single_stage_design_diagnoses_its_own_starvation() {
        let d = DesignDescriptor {
            name: "solo-compute".into(),
            interior_points: 4,
            bounded_points: 4,
            stages: vec![Stage::Compute {
                ii: 1,
                trips: 4,
                reads: 1,
                writes: 0,
                ops: OpMix::default(),
            }],
            wiring: vec![StageWiring {
                reads: vec![0],
                writes: vec![],
            }],
            streams: vec![StreamDesc {
                depth: 4,
                elem_bytes: 8,
            }],
            interfaces: vec![],
            local_buffer_bytes: vec![],
            init_copy_elements: 0,
        };
        let err = simulate(&d, None).unwrap_err();
        assert_eq!(err.stages.len(), 1);
        assert_eq!(
            err.stages[0].status,
            crate::deadlock::StageStatus::BlockedOnPop { stream: 0 }
        );
        assert_eq!(err.blocked_stages().count(), 1);
        assert_eq!(err.full_streams().count(), 0);
        let snap = err.blocked_stream(&err.stages[0]).unwrap();
        assert_eq!((snap.occupancy, snap.depth), (0, 4));
    }

    /// Declared depth 0 is clamped to capacity 1: hand-offs serialise but
    /// the pipeline still drains completely.
    #[test]
    fn zero_depth_streams_clamp_to_one_and_complete() {
        let mut d = linear_design(100, 1, 1);
        for s in &mut d.streams {
            s.depth = 0;
        }
        let r = simulate(&d, None).unwrap();
        assert_eq!(r.fires[3], 100, "write stage must drain every point");
    }

    /// When a zero-depth design does deadlock, the report must show the
    /// *clamped* capacity (1/1 full), not a nonsensical 1/0 occupancy.
    #[test]
    fn zero_depth_stream_reports_clamped_capacity_on_deadlock() {
        let mut d = linear_design(60, 1, 1);
        for s in &mut d.streams {
            s.depth = 0;
        }
        d.wiring[3].reads = vec![]; // kill the consumer of stream 2
        let err = simulate(&d, None).unwrap_err();
        let s2 = &err.streams[2];
        assert_eq!((s2.occupancy, s2.depth), (1, 1));
        assert!(s2.is_full());
        assert_eq!(
            err.stages[2].status,
            crate::deadlock::StageStatus::BlockedOnPush { stream: 2 }
        );
    }

    /// load → compute forking into two output streams, one consumed.
    fn fork_design(n: u64) -> DesignDescriptor {
        DesignDescriptor {
            name: "fork".into(),
            interior_points: n,
            bounded_points: n,
            stages: vec![
                Stage::Load {
                    fields: 1,
                    beats_per_field: n.div_ceil(8),
                    elements_per_field: n,
                },
                Stage::Compute {
                    ii: 1,
                    trips: n,
                    reads: 1,
                    writes: 2,
                    ops: OpMix::default(),
                },
                Stage::Write {
                    fields: 1,
                    beats_per_field: n.div_ceil(8),
                    elements_per_field: n,
                },
            ],
            wiring: vec![
                StageWiring {
                    reads: vec![],
                    writes: vec![0],
                },
                StageWiring {
                    reads: vec![0],
                    writes: vec![1, 2],
                },
                StageWiring {
                    reads: vec![1],
                    writes: vec![],
                },
            ],
            streams: vec![
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
            ],
            interfaces: vec![],
            local_buffer_bytes: vec![],
            init_copy_elements: 0,
        }
    }

    /// Two candidate output streams, only one actually full: the blame
    /// must land on the full one (stream 2) even though stream 1 has the
    /// lower handle and is checked first.
    #[test]
    fn blame_falls_on_the_actually_full_stream() {
        let d = fork_design(100);
        let err = simulate(&d, None).unwrap_err();
        assert_eq!(
            err.stages[1].status,
            crate::deadlock::StageStatus::BlockedOnPush { stream: 2 }
        );
        let full: Vec<usize> = err.full_streams().map(|s| s.stream).collect();
        assert!(full.contains(&2), "stream 2 must be full: {full:?}");
        assert!(
            !full.contains(&1),
            "stream 1 is drained by the write stage: {full:?}"
        );
        assert!(err.streams[2].full_stall_cycles.unwrap() > 0);
    }

    /// Both output streams full at once: every full stream shows up in the
    /// report, and the blocked push is attributed to a genuinely full one.
    #[test]
    fn two_full_streams_are_both_reported() {
        let mut d = fork_design(80);
        d.wiring[2].reads = vec![]; // now neither compute output drains
        let err = simulate(&d, None).unwrap_err();
        let full: Vec<usize> = err.full_streams().map(|s| s.stream).collect();
        assert!(full.contains(&1) && full.contains(&2), "{full:?}");
        match err.stages[1].status {
            crate::deadlock::StageStatus::BlockedOnPush { stream } => {
                assert!(full.contains(&stream), "blamed non-full stream {stream}")
            }
            ref other => panic!("compute should be push-blocked, got {other:?}"),
        }
    }

    #[test]
    fn report_throughput_helper() {
        let d = linear_design(3000, 1, 1);
        let r = simulate(&d, None).unwrap();
        let device = Device::u280();
        let mpts = r.mpts(d.interior_points, &device);
        // ~300 MPt/s at one point per cycle at 300 MHz.
        assert!(mpts > 270.0 && mpts < 305.0, "{mpts}");
    }
}
