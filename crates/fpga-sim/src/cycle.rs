//! Cycle-stepped Kahn-network simulation of a dataflow design.
//!
//! Where [`crate::perf`] computes a closed-form makespan (max stage time +
//! fill) and [`crate::executor`] computes *values* with no notion of time,
//! this engine steps the design cycle by cycle at the *token* level:
//! every stage is a small state machine that fires when its input FIFOs
//! have tokens, its output FIFOs have space, and its initiation interval
//! permits — exactly the discipline a Vitis dataflow region follows in
//! hardware. It reports total cycles plus per-stage busy/stall statistics,
//! and is used to validate the analytic model (they must agree within a
//! few percent — see `tests/model_validation.rs`).
//!
//! Token semantics per stage kind:
//!
//! - **Load** fires once per element per field stream (the 512-bit port
//!   supplies ≥ 1 element/cycle, so the stream side is the rate limit).
//! - **Shift** consumes one element per fire; window `j` becomes
//!   emittable once the consumed count passes the warm-up
//!   (`register_len`) plus the approximately uniform halo-gap spread —
//!   the cycle-approximate part of the simulator.
//! - **Dup** forwards one token to every copy per fire.
//! - **Compute** consumes one token from each input stream and produces
//!   one result every `II` cycles.
//! - **Write** drains one token per result stream per fire.

use serde::Serialize;

use crate::design::{DesignDescriptor, Stage};
use crate::device::Device;

/// Result of a cycle-stepped run.
#[derive(Debug, Clone, Serialize)]
pub struct CycleReport {
    /// Total cycles until every stage completed.
    pub cycles: u64,
    /// Fires per stage.
    pub fires: Vec<u64>,
    /// Cycles each stage spent unable to fire for lack of input tokens.
    pub stalled_empty: Vec<u64>,
    /// Cycles each stage spent unable to fire because an output was full.
    pub stalled_full: Vec<u64>,
    /// Completion cycle per stage.
    pub done_at: Vec<u64>,
}

impl CycleReport {
    /// Throughput in million points per second at the device clock.
    pub fn mpts(&self, points: u64, device: &Device) -> f64 {
        points as f64 / device.cycles_to_seconds(self.cycles) / 1.0e6
    }
}

struct StageState {
    /// Remaining fires.
    remaining: u64,
    /// Tokens consumed so far (shift stages).
    consumed: u64,
    /// Tokens produced so far.
    produced: u64,
    /// Cycle at which the stage may fire next (II pacing).
    ready_at: u64,
    /// Initiation interval.
    ii: u64,
    /// For shift stages: warm-up length and totals for the emit gate.
    shift: Option<(u64, u64, u64)>, // (register_len, elements, windows)
}

/// Step `design` cycle by cycle with the declared FIFO depths
/// (`depth_override` replaces every depth when given). The simulation is
/// deterministic: stages fire in program order within a cycle, consuming
/// the FIFO states left by the previous cycle (writes become visible the
/// next cycle, like registered FIFO outputs).
pub fn simulate(design: &DesignDescriptor, depth_override: Option<usize>) -> CycleReport {
    assert_eq!(
        design.stages.len(),
        design.wiring.len(),
        "descriptor missing stage wiring"
    );
    let n_stages = design.stages.len();
    let mut fifo_len: Vec<usize> = vec![0; design.streams.len()];
    let fifo_cap: Vec<usize> = design
        .streams
        .iter()
        .map(|s| depth_override.unwrap_or(s.depth.max(1) as usize))
        .collect();

    let mut states: Vec<StageState> = design
        .stages
        .iter()
        .map(|stage| {
            let (remaining, ii, shift) = match stage {
                Stage::Load {
                    elements_per_field, ..
                } => (*elements_per_field, 1, None),
                Stage::Shift {
                    register_len,
                    elements,
                    windows,
                } => (
                    *elements,
                    1,
                    Some((*register_len as u64, *elements, *windows)),
                ),
                Stage::Dup { trips, .. } => (*trips, 1, None),
                Stage::Compute { ii, trips, .. } => (*trips, (*ii).max(1) as u64, None),
                Stage::Write {
                    elements_per_field, ..
                } => (*elements_per_field, 1, None),
            };
            StageState {
                remaining,
                consumed: 0,
                produced: 0,
                ready_at: 0,
                ii,
                shift,
            }
        })
        .collect();

    let mut report = CycleReport {
        cycles: 0,
        fires: vec![0; n_stages],
        stalled_empty: vec![0; n_stages],
        stalled_full: vec![0; n_stages],
        done_at: vec![0; n_stages],
    };

    // Safety valve: no legal design needs more than this.
    let budget: u64 = 64
        + 4 * design
            .stages
            .iter()
            .map(|s| match s {
                Stage::Load {
                    elements_per_field, ..
                } => *elements_per_field,
                Stage::Shift { elements, .. } => *elements,
                Stage::Dup { trips, .. } => *trips,
                Stage::Compute { ii, trips, .. } => *trips * (*ii).max(1) as u64,
                Stage::Write {
                    elements_per_field, ..
                } => *elements_per_field,
            })
            .sum::<u64>();

    let mut cycle: u64 = 0;
    while states.iter().any(|s| s.remaining > 0) {
        cycle += 1;
        assert!(
            cycle < budget,
            "cycle simulation exceeded budget — deadlock?"
        );
        // Snapshot FIFO levels: fires this cycle see last cycle's state.
        let visible = fifo_len.clone();
        let mut delta = vec![0i64; fifo_len.len()];
        for (i, state) in states.iter_mut().enumerate() {
            if state.remaining == 0 || state.ready_at > cycle {
                continue;
            }
            let wiring = &design.wiring[i];
            // Input availability (a stream listed k times — e.g. by an
            // unrolled compute body — needs k tokens).
            let mut need = std::collections::BTreeMap::<usize, usize>::new();
            for &s in &wiring.reads {
                *need.entry(s).or_default() += 1;
            }
            let inputs_ready = need.iter().all(|(&s, &k)| visible[s] >= k);
            if !inputs_ready {
                report.stalled_empty[i] += 1;
                continue;
            }
            // Output availability; a shift stage may fire without emitting.
            let emits = match state.shift {
                Some((register_len, elements, windows)) => {
                    shift_emits(state.consumed + 1, register_len, elements, windows)
                        > state.produced
                }
                None => true,
            };
            let mut room = std::collections::BTreeMap::<usize, usize>::new();
            for &s in &wiring.writes {
                *room.entry(s).or_default() += 1;
            }
            let outputs_ready = !emits || room.iter().all(|(&s, &k)| visible[s] + k <= fifo_cap[s]);
            if !outputs_ready {
                report.stalled_full[i] += 1;
                continue;
            }
            // Fire.
            for &s in &wiring.reads {
                delta[s] -= 1;
            }
            if emits {
                for &s in &wiring.writes {
                    delta[s] += 1;
                }
                state.produced += 1;
            }
            state.consumed += 1;
            state.remaining -= 1;
            state.ready_at = cycle + state.ii;
            report.fires[i] += 1;
            if state.remaining == 0 {
                report.done_at[i] = cycle;
            }
        }
        for (len, d) in fifo_len.iter_mut().zip(&delta) {
            let next = *len as i64 + d;
            debug_assert!(next >= 0);
            *len = next as usize;
        }
    }
    report.cycles = cycle;
    report
}

/// How many windows are emittable after `consumed` elements: none during
/// the `register_len` warm-up, then the remaining consumption is spread
/// uniformly over the `windows` emissions (the halo rows/planes create the
/// gap between `elements` and `register_len + windows - 1`; spreading them
/// uniformly is the "approximate" in cycle-approximate).
fn shift_emits(consumed: u64, register_len: u64, elements: u64, windows: u64) -> u64 {
    if windows == 0 || consumed < register_len {
        return 0;
    }
    let span = elements.saturating_sub(register_len) + 1;
    let progressed = consumed - register_len + 1;
    ((progressed as u128 * windows as u128) / span as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{OpMix, StageWiring, StreamDesc};

    /// load → shift → compute → write over a 1D field.
    fn linear_design(n: u64, halo: u64, ii: i64) -> DesignDescriptor {
        let bounded = n + 2 * halo;
        let register_len = (2 * halo + 1) as i64;
        DesignDescriptor {
            name: "linear".into(),
            interior_points: n,
            bounded_points: bounded,
            stages: vec![
                Stage::Load {
                    fields: 1,
                    beats_per_field: bounded.div_ceil(8),
                    elements_per_field: bounded,
                },
                Stage::Shift {
                    register_len,
                    elements: bounded,
                    windows: n,
                },
                Stage::Compute {
                    ii,
                    trips: n,
                    reads: 1,
                    writes: 1,
                    ops: OpMix::default(),
                },
                Stage::Write {
                    fields: 1,
                    beats_per_field: n.div_ceil(8),
                    elements_per_field: n,
                },
            ],
            wiring: vec![
                StageWiring {
                    reads: vec![],
                    writes: vec![0],
                },
                StageWiring {
                    reads: vec![0],
                    writes: vec![1],
                },
                StageWiring {
                    reads: vec![1],
                    writes: vec![2],
                },
                StageWiring {
                    reads: vec![2],
                    writes: vec![],
                },
            ],
            streams: vec![
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 24,
                },
                StreamDesc {
                    depth: 8,
                    elem_bytes: 8,
                },
            ],
            interfaces: vec![("m_axi".into(), "gmem0".into())],
            local_buffer_bytes: vec![],
            init_copy_elements: 0,
        }
    }

    #[test]
    fn ii1_linear_pipeline_is_about_n_cycles() {
        let d = linear_design(1000, 1, 1);
        let r = simulate(&d, None);
        // Steady state: one point per cycle, small fill.
        assert!(
            r.cycles >= 1002 && r.cycles < 1100,
            "cycles {} for 1000 points",
            r.cycles
        );
        assert_eq!(r.fires[2], 1000, "compute fires once per point");
        assert_eq!(r.fires[1], 1002, "shift consumes every padded element");
    }

    #[test]
    fn ii_scales_cycles() {
        let fast = simulate(&linear_design(500, 1, 1), None);
        let slow = simulate(&linear_design(500, 1, 4), None);
        let ratio = slow.cycles as f64 / fast.cycles as f64;
        assert!(
            (3.5..4.5).contains(&ratio),
            "II 4 should be ~4x slower: {ratio} ({} vs {})",
            slow.cycles,
            fast.cycles
        );
        // Back-pressure propagates: the load stage stalls on full FIFOs.
        assert!(slow.stalled_full[0] > 0, "{:?}", slow.stalled_full);
    }

    #[test]
    fn tiny_fifos_still_complete() {
        let d = linear_design(300, 1, 1);
        let deep = simulate(&d, None);
        let shallow = simulate(&d, Some(1));
        // Depth-1 FIFOs serialise hand-offs but must not deadlock.
        assert!(shallow.cycles >= deep.cycles);
        assert_eq!(shallow.fires[3], 300);
    }

    #[test]
    fn shift_emit_gate() {
        // 1D: bounded 12, halo 1 → reg 3, windows 10: emissions start at
        // consumed = 3 and end exactly at consumed = elements.
        assert_eq!(shift_emits(2, 3, 12, 10), 0);
        assert!(shift_emits(3, 3, 12, 10) >= 1);
        assert_eq!(shift_emits(12, 3, 12, 10), 10);
        // Monotone.
        let mut last = 0;
        for c in 0..=12 {
            let e = shift_emits(c, 3, 12, 10);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn report_throughput_helper() {
        let d = linear_design(3000, 1, 1);
        let r = simulate(&d, None);
        let device = Device::u280();
        let mpts = r.mpts(d.interior_points, &device);
        // ~300 MPt/s at one point per cycle at 300 MHz.
        assert!(mpts > 270.0 && mpts < 305.0, "{mpts}");
    }
}
