//! Property tests for the FIFO stream model and the streaming shift
//! buffer.

use proptest::prelude::*;
use shmls_dialects::window::{offset_to_window_pos, window_offsets};
use shmls_fpga_sim::stream::{Fifo, StreamTable};
use shmls_ir::interp::RtValue;

/// One random FIFO operation.
#[derive(Debug, Clone, Copy)]
enum FifoOp {
    Push(i64),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<FifoOp>> {
    prop::collection::vec(
        prop_oneof![any::<i64>().prop_map(FifoOp::Push), Just(FifoOp::Pop)],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// An unbounded FIFO behaves exactly like a VecDeque (order, length,
    /// and statistics).
    #[test]
    fn unbounded_fifo_matches_model(ops in arb_ops()) {
        let mut fifo = Fifo::new(4, false);
        let mut model = std::collections::VecDeque::new();
        let mut pushed = 0u64;
        let mut high_water = 0usize;
        for op in ops {
            match op {
                FifoOp::Push(v) => {
                    prop_assert!(fifo.push(RtValue::I64(v)));
                    model.push_back(v);
                    pushed += 1;
                    high_water = high_water.max(model.len());
                }
                FifoOp::Pop => {
                    let got = fifo.pop();
                    let want = model.pop_front().map(RtValue::I64);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
        }
        prop_assert_eq!(fifo.total_pushed, pushed);
        prop_assert_eq!(fifo.max_occupancy, high_water);
    }

    /// A bounded FIFO never exceeds its depth, rejects pushes exactly when
    /// full, and preserves order among accepted elements.
    #[test]
    fn bounded_fifo_respects_depth(depth in 1usize..8, ops in arb_ops()) {
        let mut fifo = Fifo::new(depth, true);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                FifoOp::Push(v) => {
                    let accepted = fifo.push(RtValue::I64(v));
                    prop_assert_eq!(accepted, model.len() < depth);
                    if accepted {
                        model.push_back(v);
                    }
                }
                FifoOp::Pop => {
                    let got = fifo.pop();
                    let want = model.pop_front().map(RtValue::I64);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert!(fifo.len() <= depth);
            prop_assert_eq!(fifo.is_full(), model.len() == depth);
        }
    }

    /// Stream tables allocate distinct handles and aggregate statistics.
    #[test]
    fn table_handles_are_distinct(n in 1usize..20) {
        let mut t = StreamTable::new();
        let handles: Vec<usize> = (0..n).map(|i| t.create(i + 1)).collect();
        let mut sorted = handles.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n);
        prop_assert_eq!(t.len(), n);
    }
}

// ---- streaming shift buffer vs direct window gather --------------------

/// The streaming shift buffer (ring buffer, emit-on-arrival) must produce
/// exactly the windows a direct gather over the padded field produces.
fn check_shift_buffer(extents: Vec<i64>, halo: i64, values: Vec<f64>) {
    use shmls_dialects::{builtin, func as fdial, hls};
    use shmls_fpga_sim::executor::HlsRuntime;
    use shmls_ir::builder::OpBuilder;
    use shmls_ir::interp::Machine;
    use shmls_ir::prelude::*;

    let rank = extents.len();
    let total: i64 = extents.iter().product();
    assert_eq!(values.len(), total as usize);

    // IR: a single shift_buffer call.
    let mut ctx = Context::new();
    let (module, body) = builtin::create_module(&mut ctx);
    let mut b = OpBuilder::at_block_end(&mut ctx, body);
    let input = hls::create_stream(&mut b, Type::F64, 2);
    let w = (2 * halo + 1).pow(rank as u32) as u64;
    let output = hls::create_stream(
        &mut b,
        Type::LlvmStruct(vec![Type::llvm_array(w, Type::F64)]),
        2,
    );
    let call = fdial::call(&mut b, "shift_buffer", vec![input, output], vec![]);
    ctx.set_attr(call, "extents", Attribute::IndexArray(extents.clone()));
    ctx.set_attr(call, "halo", Attribute::int(halo));

    let mut runtime = HlsRuntime::new();
    let in_h = runtime.streams.create(2);
    let out_h = runtime.streams.create(2);
    for &v in &values {
        assert!(runtime.streams.get_mut(in_h).unwrap().push(RtValue::F64(v)));
    }
    let mut machine = Machine::new(&ctx, module, &mut runtime);
    machine.bind(input, RtValue::Stream(in_h));
    machine.bind(output, RtValue::Stream(out_h));
    machine.exec_op(call).unwrap();
    drop(machine);

    // Direct gather reference.
    let interior: Vec<i64> = extents.iter().map(|&e| e - 2 * halo).collect();
    let strides: Vec<i64> = {
        let mut s = vec![1i64; rank];
        for d in (0..rank.saturating_sub(1)).rev() {
            s[d] = s[d + 1] * extents[d + 1];
        }
        s
    };
    let offsets = window_offsets(rank, halo);
    let mut expected = Vec::new();
    for p in shmls_ir::interp::iter_box(&vec![0i64; rank], &interior) {
        let mut window = vec![0.0; offsets.len()];
        for o in &offsets {
            let mut lin = 0i64;
            for d in 0..rank {
                lin += (p[d] + o[d] + halo) * strides[d];
            }
            window[offset_to_window_pos(o, halo)] = values[lin as usize];
        }
        expected.push(window);
    }

    let mut got = Vec::new();
    while let Some(v) = runtime.streams.get_mut(out_h).unwrap().pop() {
        got.push(v.as_pack().unwrap().to_vec());
    }
    assert_eq!(got, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shift_buffer_equals_direct_gather_1d(
        n in 1i64..20,
        halo in 1i64..3,
        seed in any::<u64>(),
    ) {
        let extents = vec![n + 2 * halo];
        let total: i64 = extents.iter().product();
        let values: Vec<f64> = (0..total)
            .map(|i| ((seed.wrapping_add(i as u64)).wrapping_mul(2654435761) % 1000) as f64)
            .collect();
        check_shift_buffer(extents, halo, values);
    }

    #[test]
    fn shift_buffer_equals_direct_gather_2d(
        nx in 1i64..10,
        ny in 1i64..10,
        halo in 1i64..3,
        seed in any::<u64>(),
    ) {
        let extents = vec![nx + 2 * halo, ny + 2 * halo];
        let total: i64 = extents.iter().product();
        let values: Vec<f64> = (0..total)
            .map(|i| ((seed.wrapping_add(i as u64)).wrapping_mul(2654435761) % 1000) as f64)
            .collect();
        check_shift_buffer(extents, halo, values);
    }

    #[test]
    fn shift_buffer_equals_direct_gather_3d(
        nx in 1i64..6,
        ny in 1i64..6,
        nz in 1i64..6,
        seed in any::<u64>(),
    ) {
        let halo = 1i64;
        let extents = vec![nx + 2, ny + 2, nz + 2];
        let total: i64 = extents.iter().product();
        let values: Vec<f64> = (0..total)
            .map(|i| ((seed.wrapping_add(i as u64)).wrapping_mul(2654435761) % 1000) as f64)
            .collect();
        check_shift_buffer(extents, halo, values);
    }
}

// ---- HBM arbitration: analytic bound vs exact simulation ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitration_analytic_matches_stepped(
        demands in prop::collection::vec((0u32..4, 1u64..300), 1..8),
        rate_milli in 100u32..1500,
    ) {
        use shmls_fpga_sim::memory::{
            contention_cycles_analytic, simulate_arbitration, Traffic,
        };
        let rate = rate_milli as f64 / 1000.0;
        let traffic: Vec<Traffic> =
            demands.iter().map(|&(bank, beats)| Traffic { bank, beats }).collect();
        let analytic = contention_cycles_analytic(&traffic, rate);
        let (stepped, done) = simulate_arbitration(&traffic, rate);
        // Exact arbitration can round up by at most one cycle per bank's
        // fractional credit; with integer beats the gap stays ≤ 1.
        prop_assert!(stepped >= analytic, "{stepped} < {analytic}");
        prop_assert!(stepped <= analytic + 1, "{stepped} > {analytic}+1");
        // Every port finishes by the end, none after it.
        prop_assert_eq!(done.iter().copied().max().unwrap(), stepped);
        // Conservation: total service time ≥ total beats / rate.
        let total: u64 = traffic.iter().map(|t| t.beats).sum();
        let banks: std::collections::BTreeSet<u32> =
            traffic.iter().map(|t| t.bank).collect();
        let lower = (total as f64 / (rate * banks.len() as f64)).floor() as u64;
        prop_assert!(stepped >= lower);
    }
}
