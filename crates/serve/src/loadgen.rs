//! The load generator and its gate.
//!
//! Replays a mixed cold/warm key set against a live server from N
//! concurrent client connections and checks the service's contract, not
//! just its liveness:
//!
//! - **Zero errors.** Every request must come back `ok` — protocol,
//!   compile and internal errors all fail the gate.
//! - **Exactly-once compilation.** The cold phase sends `requests`
//!   requests over `unique_keys` distinct kernels, so duplicates race
//!   from different connections; each key may report disposition `miss`
//!   at most once — hits, disk hits and coalesced followers must
//!   account for every other response.
//! - **Warm hit rate.** A second pass over the same key set must be
//!   served from cache at `min_warm_hit_rate` or better. Against a
//!   restarted server, `min_cold_hit_rate` gates the *first* pass too,
//!   proving the disk tier made the restart warm.
//! - **Deterministic designs.** Every response for one key must report
//!   the same design fingerprint.
//!
//! Gate violations are collected into [`LoadgenReport::gate_failures`]
//! rather than panicking, so callers (the `repro loadgen` CLI, CI) can
//! print all of them and exit nonzero.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Instant;

use shmls_ir::json::Json;

use crate::protocol::{Request, RequestOptions, Response};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client connections per phase.
    pub clients: usize,
    /// Total requests per phase, spread round-robin over the clients.
    pub requests: usize,
    /// Distinct kernels in the key set; `requests > unique_keys` makes
    /// duplicates race.
    pub unique_keys: usize,
    /// Minimum hit rate the warm phase must reach.
    pub min_warm_hit_rate: f64,
    /// Minimum hit rate the *cold* phase must reach — 0 for a fresh
    /// server; set ≥ 0.9 when replaying against a restarted server to
    /// prove its persisted cache answers without recompiling.
    pub min_cold_hit_rate: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7456".to_string(),
            clients: 8,
            requests: 64,
            unique_keys: 8,
            min_warm_hit_rate: 0.9,
            min_cold_hit_rate: 0.0,
        }
    }
}

/// The canonical DSL source for key index `k` — structurally identical
/// kernels distinguished by grid extent, so every key compiles fast but
/// hashes (and fingerprints) distinctly.
pub fn kernel_source(k: usize) -> String {
    format!(
        "kernel load{k} {{ grid({}, 8) halo 1 field a : input field b : output \
         compute b {{ b = 0.25 * (a[-1,0] + a[1,0] + a[0,-1] + a[0,1]) }} }}",
        8 + 2 * k
    )
}

/// One phase's aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseReport {
    /// Requests sent.
    pub requests: usize,
    /// Requests that failed (transport, protocol, compile or internal).
    pub errors: usize,
    /// Responses with disposition `hit`.
    pub memory_hits: usize,
    /// Responses with disposition `disk-hit`.
    pub disk_hits: usize,
    /// Responses with disposition `miss` (a compilation ran).
    pub misses: usize,
    /// Responses with disposition `coalesced`.
    pub coalesced: usize,
    /// Phase wall time, microseconds.
    pub elapsed_us: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

impl PhaseReport {
    /// Hit fraction of all requests (memory + disk hits; coalesced
    /// followers and misses are not hits). 0 for an empty phase.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.memory_hits + self.disk_hits) as f64 / self.requests as f64
    }

    /// Requests served per second.
    pub fn requests_per_s(&self) -> f64 {
        per_second(self.requests, self.elapsed_us)
    }

    /// Compilations (misses) per second — the cold phase's headline.
    pub fn compiles_per_s(&self) -> f64 {
        per_second(self.misses, self.elapsed_us)
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("requests".to_string(), Json::Num(self.requests as f64)),
            ("errors".to_string(), Json::Num(self.errors as f64)),
            (
                "memory_hits".to_string(),
                Json::Num(self.memory_hits as f64),
            ),
            ("disk_hits".to_string(), Json::Num(self.disk_hits as f64)),
            ("misses".to_string(), Json::Num(self.misses as f64)),
            ("coalesced".to_string(), Json::Num(self.coalesced as f64)),
            ("elapsed_us".to_string(), Json::Num(self.elapsed_us as f64)),
            ("p50_us".to_string(), Json::Num(self.p50_us as f64)),
            ("p99_us".to_string(), Json::Num(self.p99_us as f64)),
            ("hit_rate".to_string(), Json::Num(self.hit_rate())),
            (
                "requests_per_s".to_string(),
                Json::Num(self.requests_per_s()),
            ),
            (
                "compiles_per_s".to_string(),
                Json::Num(self.compiles_per_s()),
            ),
        ])
    }
}

fn per_second(count: usize, elapsed_us: u64) -> f64 {
    if elapsed_us == 0 {
        return 0.0;
    }
    count as f64 / (elapsed_us as f64 / 1e6)
}

/// The full two-phase run: cold pass, warm pass, and the gate verdict.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The configuration the run used.
    pub config: LoadgenConfig,
    /// First pass over the key set.
    pub cold: PhaseReport,
    /// Second pass over the same key set.
    pub warm: PhaseReport,
    /// Every violated invariant, human-readable. Empty means the gate
    /// passed.
    pub gate_failures: Vec<String>,
}

impl LoadgenReport {
    /// Whether every gate held.
    pub fn passed(&self) -> bool {
        self.gate_failures.is_empty()
    }

    /// The report as a JSON document (schema-versioned; written by
    /// `repro loadgen --out` and archived by CI).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::Num(1.0)),
            ("addr".to_string(), Json::Str(self.config.addr.clone())),
            ("clients".to_string(), Json::Num(self.config.clients as f64)),
            (
                "requests".to_string(),
                Json::Num(self.config.requests as f64),
            ),
            (
                "unique_keys".to_string(),
                Json::Num(self.config.unique_keys as f64),
            ),
            ("cold".to_string(), self.cold.to_json()),
            ("warm".to_string(), self.warm.to_json()),
            (
                "gate_failures".to_string(),
                Json::Arr(
                    self.gate_failures
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One request's outcome, as seen by a client thread.
#[derive(Debug, Clone)]
struct Outcome {
    key: usize,
    latency_us: u64,
    /// `Ok(disposition, fingerprint)` or `Err(description)`.
    result: Result<(String, String), String>,
}

/// Run the two-phase load test and evaluate every gate.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let config = LoadgenConfig {
        clients: config.clients.max(1),
        unique_keys: config.unique_keys.max(1),
        ..config.clone()
    };
    let (cold, cold_outcomes) = run_phase(&config)?;
    let (warm, warm_outcomes) = run_phase(&config)?;

    let mut gate_failures = Vec::new();
    for (phase, report) in [("cold", &cold), ("warm", &warm)] {
        if report.errors > 0 {
            gate_failures.push(format!(
                "{phase} phase: {} of {} requests failed",
                report.errors, report.requests
            ));
        }
    }

    // Exactly-once: across BOTH phases each key may miss at most once —
    // a warm-phase miss would mean the cache forgot a key it just
    // compiled. (With eviction-sized key sets callers lower `requests`
    // instead; the loadgen key set is sized to fit.)
    let mut miss_counts = vec![0usize; config.unique_keys];
    let mut fingerprints: Vec<Option<String>> = vec![None; config.unique_keys];
    for outcome in cold_outcomes.iter().chain(&warm_outcomes) {
        let Ok((disposition, fingerprint)) = &outcome.result else {
            continue;
        };
        if disposition == "miss" {
            miss_counts[outcome.key] += 1;
        }
        match &fingerprints[outcome.key] {
            None => fingerprints[outcome.key] = Some(fingerprint.clone()),
            Some(seen) if seen != fingerprint => gate_failures.push(format!(
                "key {}: fingerprint changed across responses ({seen} vs {fingerprint})",
                outcome.key
            )),
            Some(_) => {}
        }
    }
    for (key, count) in miss_counts.iter().enumerate() {
        if *count > 1 {
            gate_failures.push(format!("key {key}: compiled {count} times (expected once)"));
        }
    }

    if cold.hit_rate() < config.min_cold_hit_rate {
        gate_failures.push(format!(
            "cold hit rate {:.3} below required {:.3}",
            cold.hit_rate(),
            config.min_cold_hit_rate
        ));
    }
    if warm.hit_rate() < config.min_warm_hit_rate {
        gate_failures.push(format!(
            "warm hit rate {:.3} below required {:.3}",
            warm.hit_rate(),
            config.min_warm_hit_rate
        ));
    }

    Ok(LoadgenReport {
        config,
        cold,
        warm,
        gate_failures,
    })
}

/// One pass over the key set: `clients` threads, each owning one
/// connection, round-robin over the request indices.
fn run_phase(config: &LoadgenConfig) -> io::Result<(PhaseReport, Vec<Outcome>)> {
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..config.clients {
        let config = config.clone();
        handles.push(thread::spawn(move || client_run(&config, client)));
    }
    let mut outcomes = Vec::new();
    let mut connect_error: Option<io::Error> = None;
    for handle in handles {
        match handle.join().expect("client thread panicked") {
            Ok(mut client_outcomes) => outcomes.append(&mut client_outcomes),
            Err(e) => connect_error = Some(e),
        }
    }
    if let Some(e) = connect_error {
        // A client that could not even connect is a setup problem, not a
        // measurement — surface it as an error rather than a gate entry.
        return Err(e);
    }
    let elapsed_us = started.elapsed().as_micros() as u64;

    let mut report = PhaseReport {
        requests: outcomes.len(),
        elapsed_us,
        ..Default::default()
    };
    let mut latencies: Vec<u64> = Vec::with_capacity(outcomes.len());
    for outcome in &outcomes {
        latencies.push(outcome.latency_us);
        match &outcome.result {
            Ok((disposition, _)) => match disposition.as_str() {
                "hit" => report.memory_hits += 1,
                "disk-hit" => report.disk_hits += 1,
                "miss" => report.misses += 1,
                "coalesced" => report.coalesced += 1,
                _ => report.errors += 1,
            },
            Err(_) => report.errors += 1,
        }
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50);
    report.p99_us = percentile(&latencies, 99);
    Ok((report, outcomes))
}

/// The requests client `c` owns: indices `c, c+clients, c+2·clients, …`
/// mapped onto keys by `index % unique_keys`.
fn client_run(config: &LoadgenConfig, client: usize) -> io::Result<Vec<Outcome>> {
    let stream = TcpStream::connect(&config.addr)?;
    // Request/response over small frames: disable Nagle or every
    // request pays a delayed-ACK round trip.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut outcomes = Vec::new();
    let mut line = String::new();
    for index in (client..config.requests).step_by(config.clients) {
        let key = index % config.unique_keys;
        let request = Request {
            id: Some(index as u64),
            source: kernel_source(key),
            options: RequestOptions {
                paths: Some("hls".to_string()),
                ..Default::default()
            },
        };
        let sent = Instant::now();
        let result = exchange(&mut writer, &mut reader, &mut line, &request);
        outcomes.push(Outcome {
            key,
            latency_us: sent.elapsed().as_micros() as u64,
            result,
        });
    }
    Ok(outcomes)
}

/// Send one request and read its response; classify the outcome.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    request: &Request,
) -> Result<(String, String), String> {
    writer
        .write_all(request.encode().as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("send failed: {e}"))?;
    line.clear();
    match reader.read_line(line) {
        Ok(0) => return Err("server closed the connection".to_string()),
        Ok(_) => {}
        Err(e) => return Err(format!("receive failed: {e}")),
    }
    let response =
        Response::parse(line.trim_end()).map_err(|e| format!("unparseable response: {e}"))?;
    if response.id != request.id {
        return Err(format!(
            "response id {:?} does not match request id {:?}",
            response.id, request.id
        ));
    }
    if !response.ok {
        let (kind, message) = response
            .error
            .as_ref()
            .expect("parser enforces error on failures");
        return Err(format!("{} error: {message}", kind.as_str()));
    }
    match (response.disposition, response.fingerprint) {
        (Some(d), Some(f)) => Ok((d, f)),
        _ => Err("success response missing disposition or fingerprint".to_string()),
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted_us: &[u64], pct: u32) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (pct as usize * sorted_us.len()).div_ceil(100);
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 50), 50);
        assert_eq!(percentile(&us, 99), 99);
        assert_eq!(percentile(&us, 100), 100);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn kernel_sources_are_distinct_and_parse() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..16 {
            let src = kernel_source(k);
            assert!(seen.insert(src.clone()));
            shmls_frontend::parse_kernel(&src).unwrap();
        }
    }

    #[test]
    fn phase_report_rates_are_finite_on_empty_phases() {
        let empty = PhaseReport::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.requests_per_s(), 0.0);
        assert_eq!(empty.compiles_per_s(), 0.0);
    }

    #[test]
    fn report_json_carries_the_gate_verdict() {
        let report = LoadgenReport {
            config: LoadgenConfig::default(),
            cold: PhaseReport {
                requests: 4,
                misses: 2,
                memory_hits: 2,
                elapsed_us: 1000,
                ..Default::default()
            },
            warm: PhaseReport::default(),
            gate_failures: vec!["warm hit rate 0.000 below required 0.900".to_string()],
        };
        let doc = report.to_json();
        assert_eq!(doc.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("cold").unwrap().get("misses").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(doc.get("gate_failures").unwrap().as_arr().unwrap().len(), 1);
        // Round-trips through the writer.
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
