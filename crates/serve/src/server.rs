//! The TCP compile service.
//!
//! Deliberately built on `std` alone: a blocking `TcpListener`, one
//! accept thread, and a bounded pool of worker threads fed over an
//! `mpsc` channel. Each worker owns one connection at a time and runs
//! its newline-delimited request/response loop to completion. The
//! compile cache ([`PersistentCache`]) is shared across workers, so
//! concurrent requests for the same key compile exactly once and — when
//! a cache directory is configured — survive server restarts.
//!
//! Failure containment, layer by layer:
//!
//! - A malformed frame gets a `protocol` error response; the connection
//!   stays up.
//! - A kernel that fails to parse or compile gets a `compile` error
//!   response.
//! - A panic inside the compiler is caught per request
//!   ([`std::panic::catch_unwind`]) and answered as an `internal`
//!   error; the worker, the connection and the server all survive.
//!
//! Shutdown is cooperative: workers poll a shared flag between read
//! timeouts, and [`ServerHandle::shutdown`] unblocks the accept loop
//! with a throwaway connection to itself.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use shmls_frontend::parse_kernel;
use shmls_ir::json::Json;
use stencil_hmls::persist::PersistentCache;

use crate::protocol::{ErrorKind, Request, Response};

/// How long a worker blocks in a read before re-checking the shutdown
/// flag. Bounds shutdown latency; invisible to clients.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind. Port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads — the maximum number of concurrently served
    /// connections. Clamped to at least 1.
    pub workers: usize,
    /// Cache directory for the disk-persistent tier; `None` serves from
    /// memory only and starts cold on every launch.
    pub cache_dir: Option<PathBuf>,
    /// Capacity of the compiled-kernel cache tier (the record tier
    /// keeps 8× as many entries).
    pub capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            cache_dir: None,
            capacity: 64,
        }
    }
}

/// A running server. Dropping the handle shuts the server down; call
/// [`ServerHandle::shutdown`] to do so explicitly.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    cache: Arc<PersistentCache>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared compile cache, for in-process stats reads.
    pub fn cache(&self) -> &Arc<PersistentCache> {
        &self.cache
    }

    /// Stop accepting, drain workers, and join every thread. Open
    /// connections are closed after at most one read-poll interval
    /// (100 ms).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop sits in a blocking `accept`; a throwaway
        // connection to ourselves wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind, spawn the worker pool, and start serving. Returns as soon as
/// the listener is live — the handle's address is immediately
/// connectable.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let cache = match &config.cache_dir {
        Some(dir) => PersistentCache::with_dir(dir, config.capacity)?,
        None => PersistentCache::in_memory(config.capacity),
    };
    let cache = Arc::new(cache);
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            thread::spawn(move || loop {
                // Holding the lock only for the recv keeps the other
                // workers free to pick up queued connections.
                let conn = rx.lock().expect("worker queue poisoned").recv();
                match conn {
                    Ok(stream) => serve_connection(stream, &cache, &stop),
                    // Sender dropped: the accept loop has exited.
                    Err(_) => return,
                }
            })
        })
        .collect();

    let accept = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    return; // drops `tx`, draining the workers
                }
                if let Ok(stream) = stream {
                    if tx.send(stream).is_err() {
                        return;
                    }
                }
            }
        })
    };

    Ok(ServerHandle {
        local_addr,
        stop,
        accept: Some(accept),
        workers,
        cache,
    })
}

/// Run one connection's request/response loop until EOF, a transport
/// error, or server shutdown.
fn serve_connection(stream: TcpStream, cache: &PersistentCache, stop: &AtomicBool) {
    // One small write per response on a request/response protocol:
    // without TCP_NODELAY, Nagle + delayed ACK turns every cache hit
    // into a ~40–200 ms round trip.
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let response = respond(cache, line.trim_end_matches(['\r', '\n']));
                line.clear();
                let frame = response.encode();
                if writer.write_all(frame.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                    || writer.flush().is_err()
                {
                    return;
                }
            }
            // A poll timeout mid-wait (or even mid-line: `read_line`
            // keeps partial bytes in `line`, so resuming is lossless).
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Answer one request line. Never panics out: compiler panics become
/// `internal` error responses.
fn respond(cache: &PersistentCache, line: &str) -> Response {
    let start = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| handle(cache, line, &start))) {
        Ok(response) => response,
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic of unknown type".to_string());
            Response::failure(
                best_effort_id(line),
                ErrorKind::Internal,
                format!("panic while serving request: {message}"),
                wall_us(&start),
            )
        }
    }
}

fn handle(cache: &PersistentCache, line: &str, start: &Instant) -> Response {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            return Response::failure(best_effort_id(line), ErrorKind::Protocol, e, wall_us(start))
        }
    };
    let opts = match request.compile_options() {
        Ok(o) => o,
        Err(e) => return Response::failure(request.id, ErrorKind::Protocol, e, wall_us(start)),
    };
    #[cfg(test)]
    {
        if request.source == "__serve_test_panic__" {
            panic!("injected test panic");
        }
    }
    let kernel = match parse_kernel(&request.source) {
        Ok(k) => k,
        Err(e) => {
            return Response::failure(
                request.id,
                ErrorKind::Compile,
                e.to_string(),
                wall_us(start),
            )
        }
    };
    match cache.get_or_compile_record(&kernel, &opts) {
        Ok((record, disposition)) => {
            Response::success(request.id, &record, disposition, wall_us(start))
        }
        Err(e) => Response::failure(
            request.id,
            ErrorKind::Compile,
            e.to_string(),
            wall_us(start),
        ),
    }
}

/// Echo the client's id even on frames that fail full request parsing,
/// so a pipelined client can still correlate the error.
fn best_effort_id(line: &str) -> Option<u64> {
    Json::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").and_then(Json::as_u64))
}

fn wall_us(start: &Instant) -> u64 {
    start.elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_and_shuts_down_without_traffic() {
        let handle = serve(ServerConfig::default()).unwrap();
        assert_ne!(handle.local_addr().port(), 0);
        handle.shutdown();
    }

    #[test]
    fn drop_shuts_down() {
        let handle = serve(ServerConfig::default()).unwrap();
        let addr = handle.local_addr();
        drop(handle);
        // The port is released: a fresh bind to it succeeds.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn respond_layers_errors_by_kind() {
        let cache = PersistentCache::in_memory(4);
        // Malformed frame → protocol error, id still echoed.
        let r = respond(&cache, r#"{"id": 3, "options": 7}"#);
        assert!(!r.ok);
        assert_eq!(r.id, Some(3));
        assert_eq!(r.error.as_ref().unwrap().0, ErrorKind::Protocol);
        // Well-formed frame, bad kernel → compile error.
        let r = respond(&cache, r#"{"id": 4, "source": "kernel broken {"}"#);
        assert!(!r.ok);
        assert_eq!(r.error.as_ref().unwrap().0, ErrorKind::Compile);
    }

    #[test]
    fn respond_isolates_panics_as_internal_errors() {
        let cache = PersistentCache::in_memory(4);
        let r = respond(&cache, r#"{"id": 5, "source": "__serve_test_panic__"}"#);
        assert!(!r.ok);
        assert_eq!(r.id, Some(5));
        let (kind, message) = r.error.as_ref().unwrap();
        assert_eq!(*kind, ErrorKind::Internal);
        assert!(message.contains("injected test panic"), "{message}");
        // The cache (and thus the server) is still usable afterwards.
        let request = Request {
            id: Some(6),
            source: "kernel k { grid(6, 6) halo 1 field a : input field b : output \
                     compute b { b = a[-1,0] + a[1,0] } }"
                .to_string(),
            options: crate::protocol::RequestOptions {
                paths: Some("hls".to_string()),
                ..Default::default()
            },
        };
        let r = respond(&cache, &request.encode());
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.disposition.as_deref(), Some("miss"));
    }

    #[test]
    fn best_effort_id_survives_partial_frames() {
        assert_eq!(best_effort_id(r#"{"id": 9}"#), Some(9));
        assert_eq!(best_effort_id("not json"), None);
        assert_eq!(best_effort_id(r#"{"id": "x"}"#), None);
    }
}
