//! # shmls-serve — compile-as-a-service for stencil-hmls
//!
//! A long-running compilation server: clients send canonical DSL source
//! plus compile options over a newline-delimited JSON protocol on TCP
//! and receive the compiled design's fingerprint, structural summary,
//! per-pass timings and cache disposition. The server is backed by
//! [`stencil_hmls::PersistentCache`], so concurrent requests for one
//! key compile exactly once (single-flight) and a restarted server
//! answers repeat keys from disk without recompiling.
//!
//! Three modules, one per layer:
//!
//! - [`protocol`] — the wire format: [`protocol::Request`] /
//!   [`protocol::Response`] and their hand-rolled JSON codecs (the
//!   workspace's [`shmls_ir::json::Json`]; no serialisation
//!   dependency).
//! - [`server`] — the TCP service: std `TcpListener`, a bounded worker
//!   pool, per-request panic isolation, cooperative shutdown.
//! - [`loadgen`] — the load generator and gate: N concurrent clients
//!   replaying a mixed cold/warm key set, reporting throughput, hit
//!   rates and latency percentiles, and failing loudly when the
//!   exactly-once or hit-rate invariants do not hold.
//!
//! ## Example
//!
//! ```
//! use shmls_serve::loadgen::{self, LoadgenConfig};
//! use shmls_serve::server::{serve, ServerConfig};
//!
//! let handle = serve(ServerConfig::default()).unwrap();
//! let report = loadgen::run(&LoadgenConfig {
//!     addr: handle.local_addr().to_string(),
//!     clients: 2,
//!     requests: 8,
//!     unique_keys: 2,
//!     ..Default::default()
//! })
//! .unwrap();
//! assert_eq!(report.gate_failures, Vec::<String>::new());
//! assert_eq!(report.cold.misses, 2); // each unique key compiled once
//! assert_eq!(report.warm.hit_rate(), 1.0);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod loadgen;
pub mod protocol;
pub mod server;

pub use loadgen::{LoadgenConfig, LoadgenReport, PhaseReport};
pub use protocol::{ErrorKind, Request, RequestOptions, Response};
pub use server::{serve, ServerConfig, ServerHandle};
