//! The compile server's wire protocol.
//!
//! One JSON document per line in each direction (newline-delimited
//! JSON): a client writes a [`Request`] line, the server answers with
//! exactly one [`Response`] line, in order, per connection. Documents
//! are encoded compactly ([`Json::compact`]), which guarantees no
//! literal newline bytes inside a frame.
//!
//! Requests carry the canonical DSL source plus compile options;
//! responses carry the design fingerprint, the structural summary, the
//! per-pass compile timings and the cache [`Disposition`] — or a
//! structured error ([`ErrorKind`]) instead of a torn connection when
//! anything goes wrong. Unknown request fields are ignored, so older
//! servers tolerate newer clients.

use shmls_ir::json::Json;
use stencil_hmls::persist::{DesignRecord, DesignSummary};
use stencil_hmls::{CompileOptions, Disposition, TargetPath};

/// Which layer a failed request failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not a valid protocol frame (bad JSON,
    /// missing `source`, unknown `paths` value, …).
    Protocol,
    /// The kernel failed to parse or compile.
    Compile,
    /// The server hit an internal fault (a panic) serving the request.
    Internal,
}

impl ErrorKind {
    /// The wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Compile => "compile",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse the wire spelling.
    pub fn from_label(s: &str) -> Option<ErrorKind> {
        match s {
            "protocol" => Some(ErrorKind::Protocol),
            "compile" => Some(ErrorKind::Compile),
            "internal" => Some(ErrorKind::Internal),
            _ => None,
        }
    }
}

/// Compile-option overrides carried by a request. Every field is
/// optional; an absent field keeps the server-side default
/// ([`CompileOptions::default`], with `time_passes` forced on so
/// responses always carry timings).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// FIFO depth for element/result streams.
    pub stream_depth: Option<i64>,
    /// FIFO depth for window streams.
    pub window_stream_depth: Option<i64>,
    /// Target initiation interval for compute loops.
    pub ii: Option<i64>,
    /// Unroll factor for compute loops.
    pub unroll: Option<i64>,
    /// Lowering paths: `"hls"`, `"hls+cpu"` or `"full"`.
    pub paths: Option<String>,
    /// Run canonicalisation before lowering.
    pub optimize: Option<bool>,
    /// Verify the module between stages.
    pub verify: Option<bool>,
}

/// One compile request: a client-chosen id (echoed back verbatim), the
/// canonical DSL source, and option overrides.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen request id, echoed in the response so clients may
    /// correlate. Optional; omitted ids echo as `null`.
    pub id: Option<u64>,
    /// Canonical DSL kernel source.
    pub source: String,
    /// Compile-option overrides.
    pub options: RequestOptions,
}

impl Request {
    /// Encode as one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("id".to_string(), opt_num(self.id)),
            ("source".to_string(), Json::Str(self.source.clone())),
        ];
        let o = &self.options;
        let mut opts = Vec::new();
        let mut push_i64 = |name: &str, v: Option<i64>| {
            if let Some(v) = v {
                opts.push((name.to_string(), Json::Num(v as f64)));
            }
        };
        push_i64("stream_depth", o.stream_depth);
        push_i64("window_stream_depth", o.window_stream_depth);
        push_i64("ii", o.ii);
        push_i64("unroll", o.unroll);
        if let Some(paths) = &o.paths {
            opts.push(("paths".to_string(), Json::Str(paths.clone())));
        }
        if let Some(b) = o.optimize {
            opts.push(("optimize".to_string(), Json::Bool(b)));
        }
        if let Some(b) = o.verify {
            opts.push(("verify".to_string(), Json::Bool(b)));
        }
        if !opts.is_empty() {
            pairs.push(("options".to_string(), Json::Obj(opts)));
        }
        Json::Obj(pairs).compact()
    }

    /// Parse one request line. The error string is a protocol-layer
    /// diagnostic suitable for an [`ErrorKind::Protocol`] response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        if doc.as_obj().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let id = match doc.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`id` must be an unsigned integer")?),
        };
        let source = doc
            .get("source")
            .and_then(Json::as_str)
            .ok_or("missing string field `source`")?
            .to_string();
        let mut options = RequestOptions::default();
        if let Some(opts) = doc.get("options") {
            let pairs = opts.as_obj().ok_or("`options` must be an object")?;
            for (key, value) in pairs {
                match key.as_str() {
                    "stream_depth" => options.stream_depth = Some(req_i64(key, value)?),
                    "window_stream_depth" => {
                        options.window_stream_depth = Some(req_i64(key, value)?)
                    }
                    "ii" => options.ii = Some(req_i64(key, value)?),
                    "unroll" => options.unroll = Some(req_i64(key, value)?),
                    "paths" => {
                        let s = value.as_str().ok_or("`paths` must be a string")?;
                        parse_paths(s)?;
                        options.paths = Some(s.to_string());
                    }
                    "optimize" => options.optimize = Some(req_bool(key, value)?),
                    "verify" => options.verify = Some(req_bool(key, value)?),
                    // Ignore unknown options: an older server must not
                    // reject a newer client's request wholesale.
                    _ => {}
                }
            }
        }
        Ok(Request {
            id,
            source,
            options,
        })
    }

    /// Resolve the overrides against the server defaults. `time_passes`
    /// is forced on — responses always carry timings.
    pub fn compile_options(&self) -> Result<CompileOptions, String> {
        let mut co = CompileOptions {
            time_passes: true,
            ..Default::default()
        };
        let o = &self.options;
        if let Some(v) = o.stream_depth {
            co.hmls.stream_depth = v;
        }
        if let Some(v) = o.window_stream_depth {
            co.hmls.window_stream_depth = v;
        }
        if let Some(v) = o.ii {
            co.hmls.ii = v;
        }
        if let Some(v) = o.unroll {
            co.hmls.unroll = v;
        }
        if let Some(paths) = &o.paths {
            co.paths = parse_paths(paths)?;
        }
        if let Some(b) = o.optimize {
            co.optimize = b;
        }
        if let Some(b) = o.verify {
            co.verify = b;
        }
        Ok(co)
    }
}

fn parse_paths(s: &str) -> Result<TargetPath, String> {
    match s {
        "hls" => Ok(TargetPath::HlsOnly),
        "hls+cpu" => Ok(TargetPath::HlsAndCpu),
        "full" => Ok(TargetPath::Full),
        other => Err(format!(
            "unknown `paths` value `{other}` (expected hls, hls+cpu or full)"
        )),
    }
}

fn req_i64(key: &str, value: &Json) -> Result<i64, String> {
    match value.as_f64() {
        Some(n) if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 => Ok(n as i64),
        _ => Err(format!("`{key}` must be an integer")),
    }
}

fn req_bool(key: &str, value: &Json) -> Result<bool, String> {
    match value {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("`{key}` must be a boolean")),
    }
}

fn opt_num(v: Option<u64>) -> Json {
    match v {
        Some(v) => Json::Num(v as f64),
        None => Json::Null,
    }
}

/// One compile response. Success carries the design record fields and
/// the cache disposition; failure carries a structured error. Both
/// carry the request id and the server-side wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id, echoed.
    pub id: Option<u64>,
    /// Whether the compile succeeded.
    pub ok: bool,
    /// Cache disposition (`hit`, `disk-hit`, `miss`, `coalesced`) on
    /// success.
    pub disposition: Option<String>,
    /// Content-addressed cache key, 16 hex digits, on success.
    pub key: Option<String>,
    /// Design fingerprint, 16 hex digits, on success.
    pub fingerprint: Option<String>,
    /// Structural design summary on success.
    pub design: Option<DesignSummary>,
    /// Per-pass compile timings (microseconds) of the compilation that
    /// produced the design — a warm hit reports the original cost.
    pub timings_us: Vec<(String, u64)>,
    /// Server-side wall time spent on this request, microseconds.
    pub wall_us: u64,
    /// The error, when `ok` is false.
    pub error: Option<(ErrorKind, String)>,
}

impl Response {
    /// A success response for a served design record.
    pub fn success(
        id: Option<u64>,
        record: &DesignRecord,
        disposition: Disposition,
        wall_us: u64,
    ) -> Response {
        Response {
            id,
            ok: true,
            disposition: Some(disposition.as_str().to_string()),
            key: Some(format!("{:016x}", record.key)),
            fingerprint: Some(format!("{:016x}", record.fingerprint)),
            design: Some(record.summary),
            timings_us: record.timings_us.clone(),
            wall_us,
            error: None,
        }
    }

    /// A failure response.
    pub fn failure(id: Option<u64>, kind: ErrorKind, message: String, wall_us: u64) -> Response {
        Response {
            id,
            ok: false,
            disposition: None,
            key: None,
            fingerprint: None,
            design: None,
            timings_us: Vec::new(),
            wall_us,
            error: Some((kind, message)),
        }
    }

    /// Encode as one compact JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("id".to_string(), opt_num(self.id)),
            ("ok".to_string(), Json::Bool(self.ok)),
        ];
        if let Some(d) = &self.disposition {
            pairs.push(("disposition".to_string(), Json::Str(d.clone())));
        }
        if let Some(k) = &self.key {
            pairs.push(("key".to_string(), Json::Str(k.clone())));
        }
        if let Some(f) = &self.fingerprint {
            pairs.push(("fingerprint".to_string(), Json::Str(f.clone())));
        }
        if let Some(s) = &self.design {
            pairs.push((
                "design".to_string(),
                Json::Obj(vec![
                    ("inputs".to_string(), Json::Num(s.inputs as f64)),
                    ("outputs".to_string(), Json::Num(s.outputs as f64)),
                    (
                        "compute_stages".to_string(),
                        Json::Num(s.compute_stages as f64),
                    ),
                    ("dup_stages".to_string(), Json::Num(s.dup_stages as f64)),
                    ("streams".to_string(), Json::Num(s.streams as f64)),
                    (
                        "shift_buffers".to_string(),
                        Json::Num(s.shift_buffers as f64),
                    ),
                ]),
            ));
        }
        if !self.timings_us.is_empty() {
            pairs.push((
                "timings_us".to_string(),
                Json::Arr(
                    self.timings_us
                        .iter()
                        .map(|(name, us)| {
                            Json::Arr(vec![Json::Str(name.clone()), Json::Num(*us as f64)])
                        })
                        .collect(),
                ),
            ));
        }
        pairs.push(("wall_us".to_string(), Json::Num(self.wall_us as f64)));
        if let Some((kind, message)) = &self.error {
            pairs.push((
                "error".to_string(),
                Json::Obj(vec![
                    ("kind".to_string(), Json::Str(kind.as_str().to_string())),
                    ("message".to_string(), Json::Str(message.clone())),
                ]),
            ));
        }
        Json::Obj(pairs).compact()
    }

    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let doc = Json::parse(line).map_err(|e| e.to_string())?;
        if doc.as_obj().is_none() {
            return Err("response must be a JSON object".to_string());
        }
        let id = match doc.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("`id` must be an unsigned integer")?),
        };
        let ok = match doc.get("ok") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing boolean field `ok`".to_string()),
        };
        let get_str = |key: &str| doc.get(key).and_then(Json::as_str).map(str::to_string);
        let design = match doc.get("design") {
            None => None,
            Some(d) => {
                let field = |name: &str| -> Result<usize, String> {
                    d.get(name)
                        .and_then(Json::as_u64)
                        .map(|v| v as usize)
                        .ok_or_else(|| format!("design field `{name}` missing or not a count"))
                };
                Some(DesignSummary {
                    inputs: field("inputs")?,
                    outputs: field("outputs")?,
                    compute_stages: field("compute_stages")?,
                    dup_stages: field("dup_stages")?,
                    streams: field("streams")?,
                    shift_buffers: field("shift_buffers")?,
                })
            }
        };
        let mut timings_us = Vec::new();
        if let Some(ts) = doc.get("timings_us") {
            for t in ts.as_arr().ok_or("`timings_us` must be an array")? {
                let pair = t.as_arr().filter(|p| p.len() == 2);
                let (name, us) = match pair {
                    Some([name, us]) => (name.as_str(), us.as_u64()),
                    _ => (None, None),
                };
                match (name, us) {
                    (Some(name), Some(us)) => timings_us.push((name.to_string(), us)),
                    _ => return Err("`timings_us` entries must be [name, micros]".to_string()),
                }
            }
        }
        let wall_us = doc
            .get("wall_us")
            .and_then(Json::as_u64)
            .ok_or("missing numeric field `wall_us`")?;
        let error = match doc.get("error") {
            None => None,
            Some(e) => {
                let kind = e
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(ErrorKind::from_label)
                    .ok_or("error `kind` missing or unknown")?;
                let message = e
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("error `message` missing")?
                    .to_string();
                Some((kind, message))
            }
        };
        if !ok && error.is_none() {
            return Err("failure response missing `error`".to_string());
        }
        Ok(Response {
            id,
            ok,
            disposition: get_str("disposition"),
            key: get_str("key"),
            fingerprint: get_str("fingerprint"),
            design,
            timings_us,
            wall_us,
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: Some(7),
            source: "kernel k { grid(8, 8) halo 1 field a : input field b : output \
                     compute b { b = a[-1,0] + a[1,0] } }"
                .to_string(),
            options: RequestOptions {
                stream_depth: Some(16),
                unroll: Some(2),
                paths: Some("hls".to_string()),
                verify: Some(false),
                ..Default::default()
            },
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let line = req.encode();
        assert!(!line.contains('\n'));
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn request_options_resolve_against_defaults() {
        let co = sample_request().compile_options().unwrap();
        assert_eq!(co.hmls.stream_depth, 16);
        assert_eq!(co.hmls.unroll, 2);
        assert_eq!(co.paths, TargetPath::HlsOnly);
        assert!(!co.verify);
        assert!(co.time_passes, "timings are always collected");
        // Untouched fields keep their defaults.
        let defaults = CompileOptions::default();
        assert_eq!(co.hmls.ii, defaults.hmls.ii);
        assert_eq!(co.optimize, defaults.optimize);
    }

    #[test]
    fn request_parse_rejects_malformed_frames() {
        for (line, fragment) in [
            ("not json", "JSON error"),
            ("[1, 2]", "must be a JSON object"),
            (r#"{"id": 1}"#, "source"),
            (r#"{"source": "k", "id": -4}"#, "`id`"),
            (r#"{"source": "k", "options": {"paths": "gpu"}}"#, "paths"),
            (r#"{"source": "k", "options": {"ii": 1.5}}"#, "`ii`"),
            (r#"{"source": "k", "options": {"verify": 1}}"#, "`verify`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(fragment), "`{line}` → `{err}`");
        }
    }

    #[test]
    fn request_ignores_unknown_option_fields() {
        let req = Request::parse(r#"{"source": "k", "options": {"future_knob": 3}}"#).unwrap();
        assert_eq!(req.options, RequestOptions::default());
    }

    #[test]
    fn success_response_round_trips() {
        let record = DesignRecord {
            key: 0xfeed,
            fingerprint: 0xbeef,
            source_digest: 1,
            summary: DesignSummary {
                inputs: 1,
                outputs: 1,
                compute_stages: 1,
                dup_stages: 0,
                streams: 4,
                shift_buffers: 1,
            },
            timings_us: vec![("parse".to_string(), 12), ("total".to_string(), 340)],
        };
        let resp = Response::success(Some(7), &record, Disposition::DiskHit, 55);
        let line = resp.encode();
        assert!(!line.contains('\n'));
        let back = Response::parse(&line).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.disposition.as_deref(), Some("disk-hit"));
        assert_eq!(back.key.as_deref(), Some("000000000000feed"));
        assert_eq!(back.timings_us.len(), 2);
    }

    #[test]
    fn failure_response_round_trips() {
        let resp = Response::failure(
            None,
            ErrorKind::Compile,
            "unknown field `q`".to_string(),
            17,
        );
        let back = Response::parse(&resp.encode()).unwrap();
        assert_eq!(back, resp);
        assert!(!back.ok);
        assert_eq!(back.error.as_ref().unwrap().0, ErrorKind::Compile);
    }

    #[test]
    fn failure_without_error_object_is_rejected() {
        assert!(
            Response::parse(r#"{"id": null, "ok": false, "wall_us": 1}"#)
                .unwrap_err()
                .contains("error")
        );
    }
}
