//! End-to-end service tests: a real listener, real sockets, and the
//! loadgen gate — including the restart-with-persisted-cache scenario
//! the CI job replays.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use shmls_serve::loadgen::{self, LoadgenConfig};
use shmls_serve::protocol::{ErrorKind, Request, RequestOptions, Response};
use shmls_serve::server::{serve, ServerConfig};

/// A unique scratch directory per test invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "shmls-serve-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn send_line(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    Response::parse(reply.trim_end()).unwrap()
}

fn kernel_request(id: u64, key: usize) -> Request {
    Request {
        id: Some(id),
        source: loadgen::kernel_source(key),
        options: RequestOptions {
            paths: Some("hls".to_string()),
            ..Default::default()
        },
    }
}

#[test]
fn raw_socket_protocol_round_trip() {
    let handle = serve(ServerConfig::default()).unwrap();
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Malformed JSON → structured protocol error, connection survives.
    let r = send_line(&mut writer, &mut reader, "this is not json");
    assert!(!r.ok);
    assert_eq!(r.error.as_ref().unwrap().0, ErrorKind::Protocol);

    // Valid frame, broken kernel → compile error, connection survives.
    let r = send_line(
        &mut writer,
        &mut reader,
        r#"{"id": 1, "source": "kernel broken {"}"#,
    );
    assert!(!r.ok);
    assert_eq!(r.id, Some(1));
    assert_eq!(r.error.as_ref().unwrap().0, ErrorKind::Compile);

    // First real compile: a miss carrying the full design payload.
    let r = send_line(&mut writer, &mut reader, &kernel_request(2, 0).encode());
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.id, Some(2));
    assert_eq!(r.disposition.as_deref(), Some("miss"));
    let design = r.design.unwrap();
    assert_eq!(design.inputs, 1);
    assert_eq!(design.outputs, 1);
    assert_eq!(design.compute_stages, 1);
    assert!(r.timings_us.iter().any(|(name, _)| name == "total"));
    let fingerprint = r.fingerprint.clone().unwrap();
    let key = r.key.clone().unwrap();

    // Same kernel again: a hit, same key, same fingerprint, same
    // (original-compile) timings.
    let r = send_line(&mut writer, &mut reader, &kernel_request(3, 0).encode());
    assert!(r.ok);
    assert_eq!(r.disposition.as_deref(), Some("hit"));
    assert_eq!(r.fingerprint.as_deref(), Some(fingerprint.as_str()));
    assert_eq!(r.key.as_deref(), Some(key.as_str()));
    assert!(!r.timings_us.is_empty());

    // A different option set is a different content-addressed key.
    let mut tweaked = kernel_request(4, 0);
    tweaked.options.stream_depth = Some(32);
    let r = send_line(&mut writer, &mut reader, &tweaked.encode());
    assert!(r.ok);
    assert_eq!(r.disposition.as_deref(), Some("miss"));
    assert_ne!(r.key.as_deref(), Some(key.as_str()));

    handle.shutdown();
}

#[test]
fn loadgen_gate_passes_and_counts_exactly_once() {
    let handle = serve(ServerConfig::default()).unwrap();
    let report = loadgen::run(&LoadgenConfig {
        addr: handle.local_addr().to_string(),
        clients: 8,
        requests: 48,
        unique_keys: 6,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(report.gate_failures, Vec::<String>::new());
    assert!(report.passed());

    // Cold phase: every unique key compiled exactly once; hits and
    // coalesced followers account for every other response.
    assert_eq!(report.cold.errors, 0);
    assert_eq!(report.cold.misses, 6);
    assert_eq!(
        report.cold.memory_hits + report.cold.coalesced + report.cold.disk_hits,
        48 - 6
    );

    // Warm phase: everything from cache, nothing recompiled.
    assert_eq!(report.warm.errors, 0);
    assert_eq!(report.warm.misses, 0);
    assert_eq!(report.warm.hit_rate(), 1.0);

    // The server agrees with the client-side tally.
    let stats = handle.cache().stats();
    assert_eq!(stats.misses, 6);
    assert_eq!(stats.total(), 96);
    handle.shutdown();
}

#[test]
fn restarted_server_answers_from_persisted_cache() {
    let dir = scratch_dir("restart");
    let config = |addr: String| LoadgenConfig {
        addr,
        clients: 4,
        requests: 16,
        unique_keys: 4,
        ..Default::default()
    };

    // First server: compile the key set and persist it.
    let first = serve(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    let report = loadgen::run(&config(first.local_addr().to_string())).unwrap();
    assert!(report.passed(), "{:?}", report.gate_failures);
    assert_eq!(report.cold.misses, 4);
    first.shutdown();

    // Second server, same directory: the cold pass must already be warm
    // — zero compilations, all four keys answered from disk.
    let second = serve(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    let report = loadgen::run(&LoadgenConfig {
        min_cold_hit_rate: 0.9,
        ..config(second.local_addr().to_string())
    })
    .unwrap();
    assert!(report.passed(), "{:?}", report.gate_failures);
    assert_eq!(report.cold.misses, 0);
    assert_eq!(report.cold.disk_hits, 4, "one disk load per unique key");
    assert_eq!(report.cold.hit_rate(), 1.0);
    assert_eq!(second.cache().stats().misses, 0);
    second.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_persisted_entries_recompile_instead_of_failing() {
    let dir = scratch_dir("corrupt");

    let first = serve(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    let stream = TcpStream::connect(first.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let r = send_line(&mut writer, &mut reader, &kernel_request(1, 0).encode());
    assert_eq!(r.disposition.as_deref(), Some("miss"));
    let fingerprint = r.fingerprint.clone().unwrap();
    first.shutdown();

    // Truncate the single persisted entry.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "design"))
        .collect();
    assert_eq!(entries.len(), 1);
    let text = std::fs::read_to_string(entries[0].path()).unwrap();
    std::fs::write(entries[0].path(), &text[..text.len() / 2]).unwrap();

    // The restarted server treats it as absent: recompiles, same
    // fingerprint, and rewrites the entry intact.
    let second = serve(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    let stream = TcpStream::connect(second.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let r = send_line(&mut writer, &mut reader, &kernel_request(2, 0).encode());
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.disposition.as_deref(), Some("miss"));
    assert_eq!(r.fingerprint.as_deref(), Some(fingerprint.as_str()));
    second.shutdown();

    let rewritten = std::fs::read_to_string(entries[0].path()).unwrap();
    // The design lines are reproduced exactly; only the measured
    // timings (and thus the checksum) may differ between compiles.
    let stable = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| !l.starts_with("timing ") && !l.starts_with("checksum "))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(stable(&rewritten), stable(&text), "entry rewritten intact");
    std::fs::remove_dir_all(&dir).unwrap();
}
