//! Property test: the DSL printer/parser round-trip on randomly generated
//! kernels — `parse(print(k))` is `k` up to literal-sign normalisation
//! (the parser represents `-3.0` as `Neg(Num(3.0))`).

use proptest::prelude::*;
use shmls_frontend::ast::build;
use shmls_frontend::{
    kernel_to_source, parse_kernel, ComputeDef, ConstDecl, Expr, FieldDecl, FieldKind, Intrinsic,
    KernelDef, ParamDecl,
};

fn arb_expr(
    n_inputs: usize,
    rank: usize,
    has_param: bool,
    has_const: bool,
) -> impl Strategy<Value = Expr> {
    let leaf = {
        let mut options: Vec<BoxedStrategy<Expr>> = vec![
            (0i32..120).prop_map(|v| build::num(v as f64 / 4.0)).boxed(),
            (0..n_inputs, 0..rank, -1i64..2)
                .prop_map(move |(f, axis, off)| {
                    let mut offsets = vec![0i64; rank];
                    offsets[axis] = off;
                    build::field(&format!("in{f}"), &offsets)
                })
                .boxed(),
        ];
        if has_param {
            options.push((-1i64..2).prop_map(|o| build::param("coef", o)).boxed());
        }
        if has_const {
            options.push(Just(build::cst("alpha")).boxed());
        }
        prop::strategy::Union::new(options)
    };
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (0u8..4, inner.clone(), inner.clone()).prop_map(|(op, l, r)| match op {
                0 => build::add(l, r),
                1 => build::sub(l, r),
                2 => build::mul(l, r),
                _ => build::div(l, r),
            }),
            inner.clone().prop_map(build::neg),
            inner
                .clone()
                .prop_map(|a| build::call(Intrinsic::Abs, vec![a])),
            inner
                .clone()
                .prop_map(|a| build::call(Intrinsic::Sqrt, vec![a])),
            (0u8..3, inner.clone(), inner).prop_map(|(f, l, r)| {
                let intr = match f {
                    0 => Intrinsic::Min,
                    1 => Intrinsic::Max,
                    _ => Intrinsic::Sign,
                };
                build::call(intr, vec![l, r])
            }),
        ]
    })
}

fn arb_kernel() -> impl Strategy<Value = KernelDef> {
    (1usize..4, 1usize..3, any::<bool>(), any::<bool>()).prop_flat_map(
        |(rank, n_inputs, has_param, has_const)| {
            (
                prop::collection::vec(3i64..8, rank),
                prop::collection::vec(arb_expr(n_inputs, rank, has_param, has_const), 1..4),
            )
                .prop_map(move |(grid, exprs)| {
                    let mut fields: Vec<FieldDecl> = (0..n_inputs)
                        .map(|i| FieldDecl {
                            name: format!("in{i}"),
                            kind: FieldKind::Input,
                        })
                        .collect();
                    for (o, _) in exprs.iter().enumerate() {
                        fields.push(FieldDecl {
                            name: format!("out{o}"),
                            kind: FieldKind::Output,
                        });
                    }
                    let computes = exprs
                        .iter()
                        .enumerate()
                        .map(|(o, e)| ComputeDef {
                            target: format!("out{o}"),
                            expr: e.clone(),
                        })
                        .collect();
                    KernelDef {
                        name: "roundtrip".into(),
                        grid,
                        halo: 1,
                        fields,
                        params: if has_param {
                            vec![ParamDecl {
                                name: "coef".into(),
                                axis: rank - 1,
                            }]
                        } else {
                            vec![]
                        },
                        consts: if has_const {
                            vec![ConstDecl {
                                name: "alpha".into(),
                            }]
                        } else {
                            vec![]
                        },
                        computes,
                    }
                })
        },
    )
}

/// `-3.0` parses as `Neg(Num(3.0))`; normalise both sides for comparison.
fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::Neg(inner) => match normalize(inner) {
            Expr::Num(v) => Expr::Num(-v),
            other => build::neg(other),
        },
        Expr::Bin { op, lhs, rhs } => Expr::Bin {
            op: *op,
            lhs: Box::new(normalize(lhs)),
            rhs: Box::new(normalize(rhs)),
        },
        Expr::Call { f, args } => Expr::Call {
            f: *f,
            args: args.iter().map(normalize).collect(),
        },
        other => other.clone(),
    }
}

fn normalize_kernel(k: &KernelDef) -> KernelDef {
    let mut k = k.clone();
    for c in &mut k.computes {
        c.expr = normalize(&c.expr);
    }
    k
}

/// The round-trip property for one kernel, with panic-based assertions so
/// it can be shared between the proptest and the pinned regressions.
fn check_round_trip(kernel: &KernelDef) {
    let source = kernel_to_source(kernel);
    let reparsed =
        parse_kernel(&source).unwrap_or_else(|e| panic!("reparse failed: {e}\n{source}"));
    assert_eq!(
        normalize_kernel(&reparsed),
        normalize_kernel(kernel),
        "source:\n{source}"
    );
    // And printing again is a fixpoint.
    assert_eq!(kernel_to_source(&reparsed), source);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dsl_round_trip(kernel in arb_kernel()) {
        prop_assume!(kernel.validate().is_ok());
        check_round_trip(&kernel);
    }
}

/// The shrunk case from `proptest_dsl.proptest-regressions`, pinned as a
/// deterministic test: a nested right-associated add `0.0 + (0.0 + 0.0)`
/// must keep its parentheses through print → parse → print.
#[test]
fn pinned_nested_add_round_trips() {
    let kernel = KernelDef {
        name: "roundtrip".into(),
        grid: vec![3],
        halo: 1,
        fields: vec![
            FieldDecl {
                name: "in0".into(),
                kind: FieldKind::Input,
            },
            FieldDecl {
                name: "out0".into(),
                kind: FieldKind::Output,
            },
        ],
        params: vec![],
        consts: vec![],
        computes: vec![ComputeDef {
            target: "out0".into(),
            expr: build::add(
                build::num(0.0),
                build::add(build::num(0.0), build::num(0.0)),
            ),
        }],
    };
    kernel.validate().unwrap();
    check_round_trip(&kernel);
    // The printed form must parenthesise the right operand — flattening to
    // `0.0 + 0.0 + 0.0` would reparse left-associated and change the tree.
    assert!(
        kernel_to_source(&kernel).contains("0.0 + (0.0 + 0.0)"),
        "printer lost the nested-add grouping:\n{}",
        kernel_to_source(&kernel)
    );
}
