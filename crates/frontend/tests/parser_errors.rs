//! Negative-path coverage for the DSL parser and semantic checks: every
//! rejection must carry an actionable message.

use shmls_frontend::parse_kernel;

fn err(src: &str) -> String {
    parse_kernel(src).unwrap_err().to_string()
}

#[test]
fn missing_kernel_keyword() {
    assert!(err("module x {}").contains("expected `kernel`"));
}

#[test]
fn unterminated_block() {
    let e = err("kernel k {\n  grid(4)\n  halo 0\n");
    assert!(e.contains("end of input") || e.contains("expected"), "{e}");
}

#[test]
fn unknown_item() {
    assert!(err("kernel k {\n  gird(4)\n}").contains("unknown kernel item"));
}

#[test]
fn unknown_field_kind() {
    let e = err("kernel k {\n  grid(4)\n  field a : inputt\n}");
    assert!(e.contains("unknown field kind"), "{e}");
}

#[test]
fn unknown_axis() {
    let e = err("kernel k {\n  grid(4)\n  param p[w]\n}");
    assert!(e.contains("unknown axis"), "{e}");
}

#[test]
fn unknown_function() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = exp(a[0]) }\n}",
    );
    assert!(e.contains("unknown function `exp`"), "{e}");
}

#[test]
fn bad_character() {
    assert!(err("kernel k { grid(4) @ }").contains("unexpected character"));
}

#[test]
fn rank_zero_grid() {
    let e = err(
        "kernel k {\n  grid()\n  field a : input\n  field b : output\n  compute b { b = a[] }\n}",
    );
    assert!(e.contains("expected integer") || e.contains("rank"), "{e}");
}

#[test]
fn rank_four_rejected() {
    let e = err(
        "kernel k {\n  grid(2, 2, 2, 2)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = a[0,0,0,0] }\n}",
    );
    assert!(e.contains("rank must be 1–3"), "{e}");
}

#[test]
fn zero_extent_rejected() {
    let e = err(
        "kernel k {\n  grid(0)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = a[0] }\n}",
    );
    assert!(e.contains("extents must be positive"), "{e}");
}

#[test]
fn negative_halo_rejected() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo -1\n  field a : input\n  field b : output\n  compute b { b = a[0] }\n}",
    );
    assert!(e.contains("halo must be non-negative"), "{e}");
}

#[test]
fn unknown_constant_in_expression() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = missing * a[0] }\n}",
    );
    assert!(e.contains("unknown constant `missing`"), "{e}");
}

#[test]
fn unknown_compute_target() {
    let e = err("kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  compute z { z = a[0] }\n}");
    assert!(
        e.contains("unknown field `z`") || e.contains("targets unknown field"),
        "{e}"
    );
}

#[test]
fn param_axis_beyond_rank() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  param p[k]\n  compute b { b = a[0] + p[k] }\n}",
    );
    assert!(e.contains("spans axis"), "{e}");
}

#[test]
fn trailing_tokens_rejected() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = a[0] }\n} extra",
    );
    assert!(e.contains("trailing input"), "{e}");
}
