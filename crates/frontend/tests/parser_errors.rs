//! Negative-path coverage for the DSL parser and semantic checks: every
//! rejection must carry an actionable message.

use shmls_frontend::parse_kernel;

fn err(src: &str) -> String {
    parse_kernel(src).unwrap_err().to_string()
}

#[test]
fn missing_kernel_keyword() {
    assert!(err("module x {}").contains("expected `kernel`"));
}

#[test]
fn unterminated_block() {
    let e = err("kernel k {\n  grid(4)\n  halo 0\n");
    assert!(e.contains("end of input") || e.contains("expected"), "{e}");
}

#[test]
fn unknown_item() {
    assert!(err("kernel k {\n  gird(4)\n}").contains("unknown kernel item"));
}

#[test]
fn unknown_field_kind() {
    let e = err("kernel k {\n  grid(4)\n  field a : inputt\n}");
    assert!(e.contains("unknown field kind"), "{e}");
}

#[test]
fn unknown_axis() {
    let e = err("kernel k {\n  grid(4)\n  param p[w]\n}");
    assert!(e.contains("unknown axis"), "{e}");
}

#[test]
fn unknown_function() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = exp(a[0]) }\n}",
    );
    assert!(e.contains("unknown function `exp`"), "{e}");
}

#[test]
fn bad_character() {
    assert!(err("kernel k { grid(4) @ }").contains("unexpected character"));
}

#[test]
fn rank_zero_grid() {
    let e = err(
        "kernel k {\n  grid()\n  field a : input\n  field b : output\n  compute b { b = a[] }\n}",
    );
    assert!(e.contains("expected integer") || e.contains("rank"), "{e}");
}

#[test]
fn rank_four_rejected() {
    let e = err(
        "kernel k {\n  grid(2, 2, 2, 2)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = a[0,0,0,0] }\n}",
    );
    assert!(e.contains("rank must be 1–3"), "{e}");
}

#[test]
fn zero_extent_rejected() {
    let e = err(
        "kernel k {\n  grid(0)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = a[0] }\n}",
    );
    assert!(e.contains("extents must be positive"), "{e}");
}

#[test]
fn negative_halo_rejected() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo -1\n  field a : input\n  field b : output\n  compute b { b = a[0] }\n}",
    );
    assert!(e.contains("halo must be non-negative"), "{e}");
}

#[test]
fn unknown_constant_in_expression() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = missing * a[0] }\n}",
    );
    assert!(e.contains("unknown constant `missing`"), "{e}");
}

#[test]
fn unknown_compute_target() {
    let e = err("kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  compute z { z = a[0] }\n}");
    assert!(
        e.contains("unknown field `z`") || e.contains("targets unknown field"),
        "{e}"
    );
}

#[test]
fn param_axis_beyond_rank() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  param p[k]\n  compute b { b = a[0] + p[k] }\n}",
    );
    assert!(e.contains("spans axis"), "{e}");
}

#[test]
fn trailing_tokens_rejected() {
    let e = err(
        "kernel k {\n  grid(4)\n  halo 0\n  field a : input\n  field b : output\n  compute b { b = a[0] }\n} extra",
    );
    assert!(e.contains("trailing input"), "{e}");
}

/// Wrap an expression into an otherwise-valid kernel body.
fn kernel_with_expr(expr: &str) -> String {
    format!(
        "kernel p {{ grid(4) halo 0 field a : input field b : output \
         compute b {{ b = {expr} }} }}"
    )
}

// The fuzzer's shrinker feeds the parser arbitrary candidate text; an
// abort (stack overflow) instead of an `Err` would kill the whole run,
// so adversarially deep inputs get explicit coverage.

#[test]
fn deep_paren_nesting_is_an_error_not_a_stack_overflow() {
    let depth = 100_000;
    let expr = format!("{}a[0]{}", "(".repeat(depth), ")".repeat(depth));
    let e = err(&kernel_with_expr(&expr));
    assert!(e.contains("nests deeper"), "{e}");
}

#[test]
fn deep_unary_chains_are_an_error_not_a_stack_overflow() {
    let expr = format!("{}a[0]", "-".repeat(100_000));
    let e = err(&kernel_with_expr(&expr));
    assert!(e.contains("nests deeper"), "{e}");
}

#[test]
fn deep_call_nesting_is_an_error_not_a_stack_overflow() {
    let depth = 100_000;
    let expr = format!("{}a[0]{}", "abs(".repeat(depth), ")".repeat(depth));
    let e = err(&kernel_with_expr(&expr));
    assert!(e.contains("nests deeper"), "{e}");
}

#[test]
fn reasonable_nesting_still_parses() {
    let depth = 50;
    let expr = format!("{}a[0]{}", "(".repeat(depth), ")".repeat(depth));
    parse_kernel(&kernel_with_expr(&expr)).unwrap();
}

#[test]
fn oversized_integer_literal_is_an_error() {
    let e = err(&kernel_with_expr("99999999999999999999999"));
    assert!(e.contains("bad integer"), "{e}");
}

#[test]
fn malformed_float_exponent_is_an_error() {
    let e = err(&kernel_with_expr("1.0e"));
    assert!(e.contains("bad number"), "{e}");
}

#[test]
fn empty_compute_expression_is_an_error() {
    let e = err(&kernel_with_expr(""));
    assert!(e.contains("unexpected token"), "{e}");
}

#[test]
fn empty_input_is_an_error() {
    let e = err("");
    assert!(e.contains("expected identifier"), "{e}");
}
