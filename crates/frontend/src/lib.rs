//! # shmls-frontend — the stencil kernel DSL
//!
//! The PSyclone-equivalent of this reproduction: a small domain-specific
//! language for multi-field 3D stencil kernels that lowers to the stencil
//! dialect, from which Stencil-HMLS (and the CPU reference path) take over.
//!
//! Two entry points:
//!
//! - **Text syntax** — [`parser::parse_kernel`] parses the `kernel { … }`
//!   format (see [`ast`] for the grammar by example).
//! - **Builder API** — [`ast::build`] constructs the same AST
//!   programmatically.
//!
//! Either way, [`lower::lower_kernel`] emits a `func.func` whose body is
//! stencil-dialect IR, plus a [`lower::KernelSignature`] describing how to
//! bind runtime buffers to the generated function's arguments.
//!
//! ```
//! let kernel = shmls_frontend::parse_kernel(
//!     "kernel k { grid(4) halo 1 field a : input field b : output \
//!      compute b { b = a[-1] + a[1] } }",
//! )
//! .unwrap();
//! assert_eq!(kernel.rank(), 1);
//! assert_eq!(kernel.points(), 4);
//! // And it round-trips through the pretty-printer.
//! let text = shmls_frontend::kernel_to_source(&kernel);
//! assert_eq!(shmls_frontend::parse_kernel(&text).unwrap(), kernel);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod printer;

pub use ast::{ComputeDef, ConstDecl, Expr, FieldDecl, FieldKind, Intrinsic, KernelDef, ParamDecl};
pub use lower::{lower_kernel, KernelArg, KernelSignature, LoweredKernel};
pub use parser::parse_kernel;
pub use printer::{expr_to_source, kernel_to_source};
