//! Lowering from the kernel DSL AST to the stencil dialect.
//!
//! The generated function takes, in order:
//!
//! 1. one `!stencil.field<…>` argument per *external* field (declaration
//!    order; temps get no argument),
//! 2. one `memref<(n + 2·halo) x f64>` argument per small-data parameter
//!    (the array covers the halo so offset accesses stay in bounds),
//! 3. one `f64` argument per scalar constant.
//!
//! Each `compute` becomes one `stencil.apply`; computed fields feed later
//! computes through their temps (classic producer→consumer stencil
//! chaining), and every external output/inout receives a final
//! `stencil.store` over the interior.

use std::collections::BTreeMap;

use shmls_dialects::{arith, func, memref, stencil};
use shmls_ir::error::IrResult;
use shmls_ir::ir_error;
use shmls_ir::prelude::*;

use crate::ast::{BinOp, Expr, FieldKind, Intrinsic, KernelDef};

/// One argument of the generated kernel function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelArg {
    /// A stencil field argument (name, role).
    Field(String, FieldKind),
    /// A small-data parameter array (name, axis, logical extent incl. halo).
    Param(String, usize, i64),
    /// A scalar constant.
    Const(String),
}

/// The signature of a lowered kernel: maps runtime data to function args.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSignature {
    /// Kernel/function name.
    pub name: String,
    /// Grid extents.
    pub grid: Vec<i64>,
    /// Halo width.
    pub halo: i64,
    /// Arguments in order.
    pub args: Vec<KernelArg>,
}

impl KernelSignature {
    /// Number of external field arguments.
    pub fn num_fields(&self) -> usize {
        self.args
            .iter()
            .filter(|a| matches!(a, KernelArg::Field(..)))
            .count()
    }

    /// Index of the argument with the given name.
    pub fn arg_index(&self, name: &str) -> Option<usize> {
        self.args.iter().position(|a| match a {
            KernelArg::Field(n, _) | KernelArg::Param(n, _, _) | KernelArg::Const(n) => n == name,
        })
    }
}

/// Result of lowering: the function op and its signature description.
#[derive(Debug)]
pub struct LoweredKernel {
    /// The generated `func.func`.
    pub func: OpId,
    /// Argument layout.
    pub signature: KernelSignature,
}

/// Lower `kernel` into a `func.func` appended to `module_body`.
pub fn lower_kernel(
    ctx: &mut Context,
    module_body: BlockId,
    kernel: &KernelDef,
) -> IrResult<LoweredKernel> {
    kernel.validate()?;
    let rank = kernel.rank();
    let field_bounds = StencilBounds::from_extents(&kernel.grid).grown(kernel.halo);
    let interior = StencilBounds::from_extents(&kernel.grid);

    // Assemble the signature.
    let mut args = Vec::new();
    let mut input_types = Vec::new();
    for f in kernel.external_fields() {
        args.push(KernelArg::Field(f.name.clone(), f.kind));
        input_types.push(Type::stencil_field(field_bounds.clone(), Type::F64));
    }
    for p in &kernel.params {
        let extent = kernel.grid[p.axis] + 2 * kernel.halo;
        args.push(KernelArg::Param(p.name.clone(), p.axis, extent));
        input_types.push(Type::memref(vec![extent], Type::F64));
    }
    for c in &kernel.consts {
        args.push(KernelArg::Const(c.name.clone()));
        input_types.push(Type::F64);
    }
    let signature = KernelSignature {
        name: kernel.name.clone(),
        grid: kernel.grid.clone(),
        halo: kernel.halo,
        args,
    };

    let (f, entry) = func::create_func(ctx, module_body, &kernel.name, input_types, vec![]);
    let entry_args = ctx.block_args(entry).to_vec();

    // Name → function-argument value.
    let mut arg_values: BTreeMap<String, ValueId> = BTreeMap::new();
    for (a, &v) in signature.args.iter().zip(&entry_args) {
        let name = match a {
            KernelArg::Field(n, _) | KernelArg::Param(n, _, _) | KernelArg::Const(n) => n,
        };
        arg_values.insert(name.clone(), v);
    }

    // Field name → current temp value (inputs/inouts loaded up front).
    let mut temps: BTreeMap<String, ValueId> = BTreeMap::new();
    {
        let mut b = OpBuilder::at_block_end(ctx, entry);
        for fld in &kernel.fields {
            if matches!(fld.kind, FieldKind::Input | FieldKind::InOut) {
                let loaded = stencil::load(&mut b, arg_values[&fld.name]);
                temps.insert(fld.name.clone(), loaded);
            }
        }
    }

    // One stencil.apply per compute.
    for compute in &kernel.computes {
        // Collect the operands this compute actually reads.
        let mut field_names = std::collections::BTreeSet::new();
        KernelDef::referenced_fields(&compute.expr, &mut field_names);
        let mut param_names = std::collections::BTreeSet::new();
        let mut const_names = std::collections::BTreeSet::new();
        collect_params_consts(&compute.expr, &mut param_names, &mut const_names);

        let mut operands = Vec::new();
        // Map from name to position in the apply's block-arg list.
        let mut operand_index: BTreeMap<String, usize> = BTreeMap::new();
        for n in &field_names {
            operand_index.insert(n.clone(), operands.len());
            operands.push(
                *temps
                    .get(n)
                    .ok_or_else(|| ir_error!("field `{n}` has no temp (internal error)"))?,
            );
        }
        for n in &param_names {
            operand_index.insert(n.clone(), operands.len());
            operands.push(arg_values[n]);
        }
        for n in &const_names {
            operand_index.insert(n.clone(), operands.len());
            operands.push(arg_values[n]);
        }

        let result_ty = Type::stencil_temp(interior.clone(), Type::F64);
        let mut b = OpBuilder::at_block_end(ctx, entry);
        let (apply_op, body) = stencil::apply(&mut b, operands, vec![result_ty]);
        let body_args = ctx.block_args(body).to_vec();

        let mut eb = OpBuilder::at_block_end(ctx, body);
        let lowerer = ExprLowerer {
            kernel,
            operand_index: &operand_index,
            body_args: &body_args,
        };
        let value = lowerer.lower(&mut eb, &compute.expr)?;
        stencil::return_op(&mut eb, vec![value]);

        temps.insert(compute.target.clone(), ctx.result(apply_op, 0));
    }

    // Store all external results.
    let mut b = OpBuilder::at_block_end(ctx, entry);
    for fld in &kernel.fields {
        if matches!(fld.kind, FieldKind::Output | FieldKind::InOut) {
            let temp = temps[&fld.name];
            stencil::store(
                &mut b,
                temp,
                arg_values[&fld.name],
                &interior.lb,
                &interior.ub,
            );
        }
    }
    func::ret(&mut b, vec![]);
    let _ = rank;

    Ok(LoweredKernel { func: f, signature })
}

fn collect_params_consts(
    expr: &Expr,
    params: &mut std::collections::BTreeSet<String>,
    consts: &mut std::collections::BTreeSet<String>,
) {
    match expr {
        Expr::ParamRef { name, .. } => {
            params.insert(name.clone());
        }
        Expr::ConstRef(name) => {
            consts.insert(name.clone());
        }
        Expr::Neg(e) => collect_params_consts(e, params, consts),
        Expr::Bin { lhs, rhs, .. } => {
            collect_params_consts(lhs, params, consts);
            collect_params_consts(rhs, params, consts);
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_params_consts(a, params, consts);
            }
        }
        _ => {}
    }
}

struct ExprLowerer<'a> {
    kernel: &'a KernelDef,
    operand_index: &'a BTreeMap<String, usize>,
    body_args: &'a [ValueId],
}

impl ExprLowerer<'_> {
    fn arg(&self, name: &str) -> IrResult<ValueId> {
        self.operand_index
            .get(name)
            .map(|&i| self.body_args[i])
            .ok_or_else(|| ir_error!("`{name}` not an operand of this apply (internal error)"))
    }

    fn lower(&self, b: &mut OpBuilder<'_>, expr: &Expr) -> IrResult<ValueId> {
        match expr {
            Expr::Num(v) => Ok(arith::constant_f64(b, *v)),
            Expr::ConstRef(name) => self.arg(name),
            Expr::FieldRef { name, offsets } => {
                let temp = self.arg(name)?;
                Ok(stencil::access(b, temp, offsets))
            }
            Expr::ParamRef { name, offset } => {
                let param = self.kernel.param(name).expect("validated");
                let mem = self.arg(name)?;
                let idx = stencil::index(b, param.axis as i64);
                // Shift by halo so logical index -halo maps to storage 0.
                let shift = arith::constant_index(b, offset + self.kernel.halo);
                let shifted = arith::addi(b, idx, shift);
                Ok(memref::load(b, mem, vec![shifted]))
            }
            Expr::Neg(e) => {
                let v = self.lower(b, e)?;
                Ok(arith::negf(b, v))
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.lower(b, lhs)?;
                let r = self.lower(b, rhs)?;
                Ok(match op {
                    BinOp::Add => arith::addf(b, l, r),
                    BinOp::Sub => arith::subf(b, l, r),
                    BinOp::Mul => arith::mulf(b, l, r),
                    BinOp::Div => arith::divf(b, l, r),
                })
            }
            Expr::Call { f, args } => {
                let vals: Vec<ValueId> = args
                    .iter()
                    .map(|a| self.lower(b, a))
                    .collect::<IrResult<_>>()?;
                Ok(match f {
                    Intrinsic::Abs => b.build_value("math.absf", vec![vals[0]], Type::F64),
                    Intrinsic::Sqrt => b.build_value("math.sqrt", vec![vals[0]], Type::F64),
                    Intrinsic::Min => arith::minimumf(b, vals[0], vals[1]),
                    Intrinsic::Max => arith::maximumf(b, vals[0], vals[1]),
                    Intrinsic::Sign => {
                        // Fortran SIGN(a, b) = copysign(|a|, b).
                        let abs = b.build_value("math.absf", vec![vals[0]], Type::F64);
                        b.build_value("math.copysign", vec![abs, vals[1]], Type::F64)
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;
    use shmls_dialects::builtin::create_module;
    use shmls_ir::interp::{Buffer, Machine, NoExtern, RtValue};
    use shmls_ir::verifier::verify_with;

    const LAPLACE: &str = r#"
kernel laplace {
  grid(8, 8)
  halo 1
  field a : input
  field b : output
  const w
  compute b {
    b = w * (a[-1,0] + a[1,0] + a[0,-1] + a[0,1] - 4.0 * a[0,0])
  }
}
"#;

    #[test]
    fn laplace_lowers_and_verifies() {
        let k = parse_kernel(LAPLACE).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        assert_eq!(lowered.signature.num_fields(), 2);
        assert_eq!(lowered.signature.args.len(), 3);
        assert_eq!(ctx.find_ops(module, stencil::APPLY).len(), 1);
        assert_eq!(ctx.find_ops(module, stencil::STORE).len(), 1);
    }

    #[test]
    fn laplace_executes_correctly() {
        let k = parse_kernel(LAPLACE).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let _ = lower_kernel(&mut ctx, body, &k).unwrap();

        let mut no = NoExtern;
        let mut m = Machine::new(&ctx, module, &mut no);
        let mut a = Buffer::zeroed(vec![10, 10], vec![-1, -1]);
        for i in -1..9i64 {
            for j in -1..9i64 {
                a.store(&[i, j], (i * 10 + j) as f64).unwrap();
            }
        }
        let a_h = m.store.alloc(a.clone());
        let b_h = m.store.alloc(Buffer::zeroed(vec![10, 10], vec![-1, -1]));
        let w = 0.25;
        m.call(
            "laplace",
            &[RtValue::MemRef(a_h), RtValue::MemRef(b_h), RtValue::F64(w)],
        )
        .unwrap();
        for i in 0..8i64 {
            for j in 0..8i64 {
                let expect = w
                    * (a.load(&[i - 1, j]).unwrap()
                        + a.load(&[i + 1, j]).unwrap()
                        + a.load(&[i, j - 1]).unwrap()
                        + a.load(&[i, j + 1]).unwrap()
                        - 4.0 * a.load(&[i, j]).unwrap());
                let got = m.store.get(b_h).unwrap().load(&[i, j]).unwrap();
                assert!((got - expect).abs() < 1e-12, "({i},{j}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn chained_computes_use_temps() {
        let src = r#"
kernel chain {
  grid(6)
  halo 1
  field a : input
  field t : temp
  field b : output
  compute t { t = 2.0 * a[0] }
  compute b { b = t[0] + a[1] }
}
"#;
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let _ = lower_kernel(&mut ctx, body, &k).unwrap();
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        assert_eq!(ctx.find_ops(module, stencil::APPLY).len(), 2);
        // Only the external output is stored.
        assert_eq!(ctx.find_ops(module, stencil::STORE).len(), 1);

        let mut no = NoExtern;
        let mut m = Machine::new(&ctx, module, &mut no);
        let mut a = Buffer::zeroed(vec![8], vec![-1]);
        for i in -1..7i64 {
            a.store(&[i], i as f64).unwrap();
        }
        let a_h = m.store.alloc(a);
        let b_h = m.store.alloc(Buffer::zeroed(vec![8], vec![-1]));
        m.call("chain", &[RtValue::MemRef(a_h), RtValue::MemRef(b_h)])
            .unwrap();
        for i in 0..6i64 {
            let got = m.store.get(b_h).unwrap().load(&[i]).unwrap();
            assert_eq!(got, 2.0 * i as f64 + (i + 1) as f64, "i={i}");
        }
    }

    #[test]
    fn params_and_intrinsics_execute() {
        let src = r#"
kernel withparam {
  grid(4, 4, 4)
  halo 1
  field a : input
  field b : output
  param tz[k]
  compute b { b = sign(tz[k+1], a[0,0,0]) + max(a[0,0,-1], 0.0) }
}
"#;
        let k = parse_kernel(src).unwrap();
        let mut ctx = Context::new();
        let (module, body) = create_module(&mut ctx);
        let lowered = lower_kernel(&mut ctx, body, &k).unwrap();
        verify_with(&ctx, module, &shmls_dialects::registry()).unwrap();
        // Param array spans n + 2*halo.
        assert!(lowered
            .signature
            .args
            .iter()
            .any(|a| matches!(a, KernelArg::Param(n, 2, 6) if n == "tz")));

        let mut no = NoExtern;
        let mut m = Machine::new(&ctx, module, &mut no);
        let mut a = Buffer::zeroed(vec![6, 6, 6], vec![-1, -1, -1]);
        for p in shmls_ir::interp::iter_box(&[-1, -1, -1], &[5, 5, 5]) {
            a.store(&p, -1.5).unwrap();
        }
        let a_h = m.store.alloc(a);
        let b_h = m
            .store
            .alloc(Buffer::zeroed(vec![6, 6, 6], vec![-1, -1, -1]));
        let mut tz = Buffer::zeroed(vec![6], vec![0]);
        for i in 0..6i64 {
            tz.store(&[i], 3.0).unwrap();
        }
        let tz_h = m.store.alloc(tz);
        m.call(
            "withparam",
            &[
                RtValue::MemRef(a_h),
                RtValue::MemRef(b_h),
                RtValue::MemRef(tz_h),
            ],
        )
        .unwrap();
        let got = m.store.get(b_h).unwrap().load(&[0, 0, 0]).unwrap();
        // sign(3.0, -1.5) = -3.0; max(-1.5, 0) = 0.
        assert_eq!(got, -3.0);
    }
}
