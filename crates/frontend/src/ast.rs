//! Abstract syntax of the stencil kernel DSL.
//!
//! The DSL plays the role PSyclone plays in the paper: a high-level,
//! domain-scientist-facing description of a multi-field stencil kernel that
//! the frontend lowers into the stencil dialect. A kernel looks like:
//!
//! ```text
//! kernel pw_advection {
//!   grid(64, 64, 64)
//!   halo 1
//!
//!   field u  : input
//!   field su : output
//!   param tzc1[k]
//!   const tcx
//!
//!   compute su {
//!     su = tcx * (u[1,0,0] + u[-1,0,0]) + tzc1[k] * u[0,0,0]
//!   }
//! }
//! ```

use std::collections::BTreeSet;
use std::fmt;

use shmls_ir::error::IrResult;
use shmls_ir::{ir_bail, ir_ensure};

/// Role of a field in the kernel signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Read-only external input.
    Input,
    /// Write-only external output.
    Output,
    /// Read and written externally.
    InOut,
    /// Internal intermediate (never touches external memory).
    Temp,
}

impl fmt::Display for FieldKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldKind::Input => write!(f, "input"),
            FieldKind::Output => write!(f, "output"),
            FieldKind::InOut => write!(f, "inout"),
            FieldKind::Temp => write!(f, "temp"),
        }
    }
}

/// A grid field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Role.
    pub kind: FieldKind,
}

/// A small static 1D parameter array over one grid axis — the paper's
/// "small data" that the transformation copies into BRAM (step 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Axis the array spans (0 = i, 1 = j, 2 = k).
    pub axis: usize,
}

/// A runtime scalar constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDecl {
    /// Constant name.
    pub name: String,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Intrinsic functions available in compute expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `abs(x)`.
    Abs,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// Fortran `sign(a, b)` = `|a| * signum(b)` (with `sign(a, 0) = |a|`).
    Sign,
    /// `sqrt(x)`.
    Sqrt,
}

impl Intrinsic {
    /// Parse an intrinsic by name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "abs" => Some(Intrinsic::Abs),
            "min" => Some(Intrinsic::Min),
            "max" => Some(Intrinsic::Max),
            "sign" => Some(Intrinsic::Sign),
            "sqrt" => Some(Intrinsic::Sqrt),
            _ => None,
        }
    }

    /// Number of arguments the intrinsic takes.
    pub fn arity(&self) -> usize {
        match self {
            Intrinsic::Abs | Intrinsic::Sqrt => 1,
            Intrinsic::Min | Intrinsic::Max | Intrinsic::Sign => 2,
        }
    }
}

/// A compute expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating literal.
    Num(f64),
    /// Reference to a declared scalar constant.
    ConstRef(String),
    /// `field[o1, o2, …]` — neighbour access at a constant offset.
    FieldRef {
        /// Field name.
        name: String,
        /// Per-axis offsets.
        offsets: Vec<i64>,
    },
    /// `param[axis ± off]` — small-data access indexed by a grid axis.
    ParamRef {
        /// Parameter name.
        name: String,
        /// Offset from the axis index.
        offset: i64,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Intrinsic call.
    Call {
        /// The intrinsic.
        f: Intrinsic,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// One stencil computation: `target = expr` over the interior.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeDef {
    /// The field written.
    pub target: String,
    /// The per-point expression.
    pub expr: Expr,
}

/// A full kernel definition.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Kernel name (becomes the generated function's symbol).
    pub name: String,
    /// Grid extents per axis (rank 1–3).
    pub grid: Vec<i64>,
    /// Halo width (same in every direction of every axis).
    pub halo: i64,
    /// Field declarations, in order.
    pub fields: Vec<FieldDecl>,
    /// Small-data parameter arrays.
    pub params: Vec<ParamDecl>,
    /// Scalar constants.
    pub consts: Vec<ConstDecl>,
    /// Stencil computations, in program order.
    pub computes: Vec<ComputeDef>,
}

impl KernelDef {
    /// Grid rank.
    pub fn rank(&self) -> usize {
        self.grid.len()
    }

    /// Total interior points.
    pub fn points(&self) -> i64 {
        self.grid.iter().product()
    }

    /// Find a field declaration by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Find a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamDecl> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Fields of a given kind, in declaration order.
    pub fn fields_of(&self, kind: FieldKind) -> Vec<&FieldDecl> {
        self.fields.iter().filter(|f| f.kind == kind).collect()
    }

    /// Externally visible fields (everything but temps), in order.
    pub fn external_fields(&self) -> Vec<&FieldDecl> {
        self.fields
            .iter()
            .filter(|f| f.kind != FieldKind::Temp)
            .collect()
    }

    /// Semantic validation: names resolve, kinds make sense, offsets fit in
    /// the halo, every output is computed, reads-before-writes are sound.
    pub fn validate(&self) -> IrResult<()> {
        ir_ensure!(
            (1..=3).contains(&self.rank()),
            "kernel `{}`: rank must be 1–3, got {}",
            self.name,
            self.rank()
        );
        ir_ensure!(
            self.grid.iter().all(|&e| e > 0),
            "kernel `{}`: grid extents must be positive",
            self.name
        );
        ir_ensure!(
            self.halo >= 0,
            "kernel `{}`: halo must be non-negative",
            self.name
        );
        // Unique names across all declaration kinds.
        let mut seen = BTreeSet::new();
        for n in self
            .fields
            .iter()
            .map(|f| &f.name)
            .chain(self.params.iter().map(|p| &p.name))
            .chain(self.consts.iter().map(|c| &c.name))
        {
            ir_ensure!(
                seen.insert(n.clone()),
                "kernel `{}`: duplicate name `{n}`",
                self.name
            );
        }
        for p in &self.params {
            ir_ensure!(
                p.axis < self.rank(),
                "kernel `{}`: param `{}` spans axis {} but rank is {}",
                self.name,
                p.name,
                p.axis,
                self.rank()
            );
        }
        // Track which fields have been written so far.
        let mut written: BTreeSet<&str> = BTreeSet::new();
        let mut compute_targets: BTreeSet<&str> = BTreeSet::new();
        for c in &self.computes {
            let Some(target) = self.field(&c.target) else {
                ir_bail!(
                    "kernel `{}`: compute targets unknown field `{}`",
                    self.name,
                    c.target
                );
            };
            ir_ensure!(
                target.kind != FieldKind::Input,
                "kernel `{}`: compute writes input field `{}`",
                self.name,
                c.target
            );
            self.validate_expr(&c.expr, &written)?;
            written.insert(&c.target);
            compute_targets.insert(&c.target);
        }
        for f in &self.fields {
            if matches!(f.kind, FieldKind::Output | FieldKind::Temp) {
                ir_ensure!(
                    compute_targets.contains(f.name.as_str()),
                    "kernel `{}`: {} field `{}` is never computed",
                    self.name,
                    f.kind,
                    f.name
                );
            }
        }
        Ok(())
    }

    fn validate_expr(&self, expr: &Expr, written: &BTreeSet<&str>) -> IrResult<()> {
        match expr {
            Expr::Num(_) => Ok(()),
            Expr::ConstRef(name) => {
                ir_ensure!(
                    self.consts.iter().any(|c| &c.name == name),
                    "kernel `{}`: unknown constant `{name}`",
                    self.name
                );
                Ok(())
            }
            Expr::FieldRef { name, offsets } => {
                let Some(field) = self.field(name) else {
                    ir_bail!("kernel `{}`: unknown field `{name}`", self.name);
                };
                ir_ensure!(
                    offsets.len() == self.rank(),
                    "kernel `{}`: access to `{name}` has {} offsets, rank is {}",
                    self.name,
                    offsets.len(),
                    self.rank()
                );
                ir_ensure!(
                    offsets.iter().all(|o| o.abs() <= self.halo),
                    "kernel `{}`: access to `{name}` at {offsets:?} exceeds halo {}",
                    self.name,
                    self.halo
                );
                // Reading temps/outputs requires a prior compute; reading a
                // computed field at a non-zero offset requires halo data the
                // producer did not write, so restrict to centre accesses
                // unless the field is external input/inout.
                match field.kind {
                    FieldKind::Input => {}
                    FieldKind::InOut => {}
                    FieldKind::Output | FieldKind::Temp => {
                        ir_ensure!(
                            written.contains(name.as_str()),
                            "kernel `{}`: field `{name}` read before it is computed",
                            self.name
                        );
                    }
                }
                if written.contains(name.as_str()) {
                    ir_ensure!(
                        offsets.iter().all(|&o| o == 0),
                        "kernel `{}`: computed field `{name}` may only be read at offset 0 \
                         (its halo is never produced)",
                        self.name
                    );
                }
                Ok(())
            }
            Expr::ParamRef { name, offset } => {
                let Some(p) = self.param(name) else {
                    ir_bail!("kernel `{}`: unknown param `{name}`", self.name);
                };
                let extent = self.grid[p.axis];
                ir_ensure!(
                    offset.abs() <= self.halo,
                    "kernel `{}`: param `{name}` offset {offset} exceeds halo",
                    self.name
                );
                let _ = extent;
                Ok(())
            }
            Expr::Neg(e) => self.validate_expr(e, written),
            Expr::Bin { lhs, rhs, .. } => {
                self.validate_expr(lhs, written)?;
                self.validate_expr(rhs, written)
            }
            Expr::Call { f, args } => {
                ir_ensure!(
                    args.len() == f.arity(),
                    "kernel `{}`: {f:?} takes {} args, got {}",
                    self.name,
                    f.arity(),
                    args.len()
                );
                for a in args {
                    self.validate_expr(a, written)?;
                }
                Ok(())
            }
        }
    }

    /// Names of input fields read by compute `c` *before* any compute has
    /// written them (i.e. true external reads).
    pub fn referenced_fields(expr: &Expr, out: &mut BTreeSet<String>) {
        match expr {
            Expr::FieldRef { name, .. } => {
                out.insert(name.clone());
            }
            Expr::Neg(e) => Self::referenced_fields(e, out),
            Expr::Bin { lhs, rhs, .. } => {
                Self::referenced_fields(lhs, out);
                Self::referenced_fields(rhs, out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    Self::referenced_fields(a, out);
                }
            }
            _ => {}
        }
    }
}

/// Convenience constructors for building kernels programmatically (the
/// "builder API" counterpart to the text syntax).
pub mod build {
    use super::*;

    /// Literal.
    pub fn num(v: f64) -> Expr {
        Expr::Num(v)
    }

    /// Constant reference.
    pub fn cst(name: &str) -> Expr {
        Expr::ConstRef(name.to_string())
    }

    /// Field access.
    pub fn field(name: &str, offsets: &[i64]) -> Expr {
        Expr::FieldRef {
            name: name.to_string(),
            offsets: offsets.to_vec(),
        }
    }

    /// Param access at the axis index plus `offset`.
    pub fn param(name: &str, offset: i64) -> Expr {
        Expr::ParamRef {
            name: name.to_string(),
            offset,
        }
    }

    /// `lhs + rhs`.
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs - rhs`.
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op: BinOp::Sub,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs * rhs`.
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op: BinOp::Mul,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs / rhs`.
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op: BinOp::Div,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `-e`.
    pub fn neg(e: Expr) -> Expr {
        Expr::Neg(Box::new(e))
    }

    /// Intrinsic call.
    pub fn call(f: Intrinsic, args: Vec<Expr>) -> Expr {
        Expr::Call { f, args }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    fn simple_kernel() -> KernelDef {
        KernelDef {
            name: "lap".into(),
            grid: vec![8, 8],
            halo: 1,
            fields: vec![
                FieldDecl {
                    name: "a".into(),
                    kind: FieldKind::Input,
                },
                FieldDecl {
                    name: "b".into(),
                    kind: FieldKind::Output,
                },
            ],
            params: vec![],
            consts: vec![],
            computes: vec![ComputeDef {
                target: "b".into(),
                expr: add(field("a", &[-1, 0]), field("a", &[1, 0])),
            }],
        }
    }

    #[test]
    fn valid_kernel_passes() {
        simple_kernel().validate().unwrap();
    }

    #[test]
    fn offset_beyond_halo_rejected() {
        let mut k = simple_kernel();
        k.computes[0].expr = field("a", &[-2, 0]);
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("exceeds halo"), "{e}");
    }

    #[test]
    fn rank_mismatch_rejected() {
        let mut k = simple_kernel();
        k.computes[0].expr = field("a", &[-1]);
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("offsets, rank"), "{e}");
    }

    #[test]
    fn write_to_input_rejected() {
        let mut k = simple_kernel();
        k.computes[0].target = "a".into();
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("writes input"), "{e}");
    }

    #[test]
    fn read_before_compute_rejected() {
        let mut k = simple_kernel();
        k.fields.push(FieldDecl {
            name: "t".into(),
            kind: FieldKind::Temp,
        });
        k.computes.insert(
            0,
            ComputeDef {
                target: "b".into(),
                expr: field("t", &[0, 0]),
            },
        );
        k.computes.push(ComputeDef {
            target: "t".into(),
            expr: num(0.0),
        });
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("read before it is computed"), "{e}");
    }

    #[test]
    fn computed_field_offset_read_rejected() {
        let mut k = simple_kernel();
        k.fields.push(FieldDecl {
            name: "t".into(),
            kind: FieldKind::Temp,
        });
        k.computes.insert(
            0,
            ComputeDef {
                target: "t".into(),
                expr: field("a", &[0, 0]),
            },
        );
        k.computes[1].expr = field("t", &[1, 0]);
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("offset 0"), "{e}");
    }

    #[test]
    fn uncomputed_output_rejected() {
        let mut k = simple_kernel();
        k.fields.push(FieldDecl {
            name: "c".into(),
            kind: FieldKind::Output,
        });
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("never computed"), "{e}");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut k = simple_kernel();
        k.consts.push(ConstDecl { name: "a".into() });
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("duplicate name"), "{e}");
    }

    #[test]
    fn intrinsic_arity_checked() {
        let mut k = simple_kernel();
        k.computes[0].expr = call(Intrinsic::Min, vec![num(1.0)]);
        let e = k.validate().unwrap_err();
        assert!(e.to_string().contains("takes 2 args"), "{e}");
    }

    #[test]
    fn referenced_fields_collects() {
        let k = simple_kernel();
        let mut set = BTreeSet::new();
        KernelDef::referenced_fields(&k.computes[0].expr, &mut set);
        assert!(set.contains("a"));
        assert_eq!(set.len(), 1);
    }
}
