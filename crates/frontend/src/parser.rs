//! Text syntax for the kernel DSL: lexer and recursive-descent parser.

use shmls_ir::error::{IrError, IrResult};
use shmls_ir::{ir_bail, ir_ensure};

use crate::ast::{
    BinOp, ComputeDef, ConstDecl, Expr, FieldDecl, FieldKind, Intrinsic, KernelDef, ParamDecl,
};

/// Parse one kernel definition from DSL text and validate it.
pub fn parse_kernel(src: &str) -> IrResult<KernelDef> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let k = p.kernel()?;
    p.expect_eof()?;
    k.validate()?;
    Ok(k)
}

/// Deepest expression nesting the parser accepts. The descent recurses
/// once per level (`unary` → `primary` → `expr` for parens), so without a
/// bound an adversarial `((((…` input overflows the stack — an abort, not
/// an `Err`. 256 levels is far beyond any real kernel.
const MAX_EXPR_DEPTH: usize = 256;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Int(i64),
    Punct(char),
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(v) => write!(f, "`{v}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Punct(c) => write!(f, "`{c}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> IrResult<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Num(text.parse().map_err(|e| {
                        IrError::new(format!("line {line}: bad number `{text}`: {e}"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|e| {
                        IrError::new(format!("line {line}: bad integer `{text}`: {e}"))
                    })?)
                };
                out.push(Spanned { tok, line });
            }
            b'{' | b'}' | b'(' | b')' | b'[' | b']' | b',' | b':' | b'=' | b'+' | b'-' | b'*'
            | b'/' => {
                out.push(Spanned {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
            other => {
                ir_bail!("line {line}: unexpected character `{}`", other as char);
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> IrResult<()> {
        let line = self.line();
        match self.bump() {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(IrError::new(format!(
                "line {line}: expected `{c}`, found {other}"
            ))),
        }
    }

    fn expect_ident(&mut self) -> IrResult<String> {
        let line = self.line();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(IrError::new(format!(
                "line {line}: expected identifier, found {other}"
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> IrResult<()> {
        let line = self.line();
        let id = self.expect_ident()?;
        ir_ensure!(id == kw, "line {line}: expected `{kw}`, found `{id}`");
        Ok(())
    }

    fn expect_int(&mut self) -> IrResult<i64> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(v),
            Tok::Punct('-') => match self.bump() {
                Tok::Int(v) => Ok(-v),
                other => Err(IrError::new(format!(
                    "line {line}: expected integer, found {other}"
                ))),
            },
            other => Err(IrError::new(format!(
                "line {line}: expected integer, found {other}"
            ))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Tok::Punct(p) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_eof(&mut self) -> IrResult<()> {
        let line = self.line();
        match self.peek() {
            Tok::Eof => Ok(()),
            other => Err(IrError::new(format!(
                "line {line}: trailing input: {other}"
            ))),
        }
    }

    fn kernel(&mut self) -> IrResult<KernelDef> {
        self.expect_keyword("kernel")?;
        let name = self.expect_ident()?;
        self.expect_punct('{')?;
        let mut k = KernelDef {
            name,
            grid: Vec::new(),
            halo: 0,
            fields: Vec::new(),
            params: Vec::new(),
            consts: Vec::new(),
            computes: Vec::new(),
        };
        loop {
            if self.eat_punct('}') {
                break;
            }
            let line = self.line();
            let item = self.expect_ident()?;
            match item.as_str() {
                "grid" => {
                    self.expect_punct('(')?;
                    loop {
                        k.grid.push(self.expect_int()?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(')')?;
                }
                "halo" => {
                    k.halo = self.expect_int()?;
                }
                "field" => {
                    let fname = self.expect_ident()?;
                    self.expect_punct(':')?;
                    let kline = self.line();
                    let kind = match self.expect_ident()?.as_str() {
                        "input" => FieldKind::Input,
                        "output" => FieldKind::Output,
                        "inout" => FieldKind::InOut,
                        "temp" => FieldKind::Temp,
                        other => {
                            ir_bail!("line {kline}: unknown field kind `{other}`");
                        }
                    };
                    k.fields.push(FieldDecl { name: fname, kind });
                }
                "param" => {
                    let pname = self.expect_ident()?;
                    self.expect_punct('[')?;
                    let aline = self.line();
                    let axis_name = self.expect_ident()?;
                    let axis = axis_index(&axis_name).ok_or_else(|| {
                        IrError::new(format!("line {aline}: unknown axis `{axis_name}`"))
                    })?;
                    self.expect_punct(']')?;
                    k.params.push(ParamDecl { name: pname, axis });
                }
                "const" => {
                    let cname = self.expect_ident()?;
                    k.consts.push(ConstDecl { name: cname });
                }
                "compute" => {
                    let target = self.expect_ident()?;
                    self.expect_punct('{')?;
                    let lhs_line = self.line();
                    let lhs = self.expect_ident()?;
                    ir_ensure!(
                        lhs == target,
                        "line {lhs_line}: compute `{target}` assigns `{lhs}`"
                    );
                    self.expect_punct('=')?;
                    let expr = self.expr()?;
                    self.expect_punct('}')?;
                    k.computes.push(ComputeDef { target, expr });
                }
                other => {
                    ir_bail!("line {line}: unknown kernel item `{other}`");
                }
            }
        }
        Ok(k)
    }

    // expr := term (('+'|'-') term)*
    fn expr(&mut self) -> IrResult<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = if self.eat_punct('+') {
                BinOp::Add
            } else if self.eat_punct('-') {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.term()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    // term := unary (('*'|'/') unary)*
    fn term(&mut self) -> IrResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_punct('*') {
                BinOp::Mul
            } else if self.eat_punct('/') {
                BinOp::Div
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    // Every nesting construct (parenthesised exprs, call arguments, unary
    // chains) re-enters through `unary`, so this is the one place the
    // recursion depth needs guarding.
    fn unary(&mut self) -> IrResult<Expr> {
        self.depth += 1;
        let result = if self.depth > MAX_EXPR_DEPTH {
            Err(IrError::new(format!(
                "line {}: expression nests deeper than {MAX_EXPR_DEPTH} levels",
                self.line()
            )))
        } else if self.eat_punct('-') {
            self.unary().map(|e| Expr::Neg(Box::new(e)))
        } else {
            self.primary()
        };
        self.depth -= 1;
        result
    }

    fn primary(&mut self) -> IrResult<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::Num(v) => Ok(Expr::Num(v)),
            Tok::Int(v) => Ok(Expr::Num(v as f64)),
            Tok::Punct('(') => {
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct('(') {
                    let f = Intrinsic::from_name(&name).ok_or_else(|| {
                        IrError::new(format!("line {line}: unknown function `{name}`"))
                    })?;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::Punct(')')) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(',') {
                                break;
                            }
                        }
                    }
                    self.expect_punct(')')?;
                    return Ok(Expr::Call { f, args });
                }
                if self.eat_punct('[') {
                    // Param access `p[k]`/`p[k+1]`/`p[k-1]` or field access
                    // `f[-1, 0, 1]` — disambiguated by the first token.
                    if let Tok::Ident(axis_name) = self.peek().clone() {
                        let aline = self.line();
                        self.bump();
                        let _axis = axis_index(&axis_name).ok_or_else(|| {
                            IrError::new(format!("line {aline}: unknown axis `{axis_name}`"))
                        })?;
                        let offset = if self.eat_punct('+') {
                            self.expect_int()?
                        } else if self.eat_punct('-') {
                            -self.expect_int()?
                        } else {
                            0
                        };
                        self.expect_punct(']')?;
                        return Ok(Expr::ParamRef { name, offset });
                    }
                    let mut offsets = Vec::new();
                    loop {
                        offsets.push(self.expect_int()?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(']')?;
                    return Ok(Expr::FieldRef { name, offsets });
                }
                Ok(Expr::ConstRef(name))
            }
            other => Err(IrError::new(format!(
                "line {line}: unexpected token {other}"
            ))),
        }
    }
}

/// Map an axis name to its dimension index.
pub fn axis_index(name: &str) -> Option<usize> {
    match name {
        "i" | "x" => Some(0),
        "j" | "y" => Some(1),
        "k" | "z" => Some(2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build;

    const LAPLACE: &str = r#"
// 2D 5-point Laplace smoother.
kernel laplace {
  grid(16, 16)
  halo 1
  field a : input
  field b : output
  const w
  compute b {
    b = w * (a[-1,0] + a[1,0] + a[0,-1] + a[0,1] - 4.0 * a[0,0])
  }
}
"#;

    #[test]
    fn laplace_parses() {
        let k = parse_kernel(LAPLACE).unwrap();
        assert_eq!(k.name, "laplace");
        assert_eq!(k.grid, vec![16, 16]);
        assert_eq!(k.halo, 1);
        assert_eq!(k.fields.len(), 2);
        assert_eq!(k.consts.len(), 1);
        assert_eq!(k.computes.len(), 1);
    }

    #[test]
    fn precedence() {
        let src = r#"
kernel p {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { b = 1.0 + 2.0 * 3.0 - a[0] }
}
"#;
        let k = parse_kernel(src).unwrap();
        // (1 + (2*3)) - a[0]
        let expected = build::sub(
            build::add(
                build::num(1.0),
                build::mul(build::num(2.0), build::num(3.0)),
            ),
            build::field("a", &[0]),
        );
        assert_eq!(k.computes[0].expr, expected);
    }

    #[test]
    fn param_and_intrinsics() {
        let src = r#"
kernel p {
  grid(4, 4, 8)
  halo 1
  field a : input
  field b : output
  param tz[k]
  compute b { b = max(tz[k+1], abs(a[0,0,-1])) }
}
"#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.params[0].axis, 2);
        let Expr::Call {
            f: Intrinsic::Max,
            args,
        } = &k.computes[0].expr
        else {
            unreachable!("source literally spells `max(…)`: {:?}", k.computes[0].expr)
        };
        assert_eq!(args[0], build::param("tz", 1));
    }

    #[test]
    fn unary_minus_binds_tightly() {
        let src = r#"
kernel p {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { b = -a[0] * 2.0 }
}
"#;
        let k = parse_kernel(src).unwrap();
        let expected = build::mul(build::neg(build::field("a", &[0])), build::num(2.0));
        assert_eq!(k.computes[0].expr, expected);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "kernel p {\n  grid(4)\n  wibble 3\n}";
        let e = parse_kernel(src).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        assert!(e.to_string().contains("wibble"), "{e}");
    }

    #[test]
    fn semantic_errors_surface() {
        // Parses fine, fails validation (access beyond halo).
        let src = r#"
kernel p {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { b = a[1] }
}
"#;
        let e = parse_kernel(src).unwrap_err();
        assert!(e.to_string().contains("exceeds halo"), "{e}");
    }

    #[test]
    fn compute_target_must_match_lhs() {
        let src = r#"
kernel p {
  grid(4)
  halo 0
  field a : input
  field b : output
  compute b { a = 1.0 }
}
"#;
        let e = parse_kernel(src).unwrap_err();
        assert!(e.to_string().contains("assigns"), "{e}");
    }
}
