//! Pretty-printer: [`KernelDef`] back to DSL source text.
//!
//! Together with [`crate::parser::parse_kernel`] this gives the DSL a
//! round-trip property (tested in `tests/proptest_dsl.rs`), and lets tools
//! persist programmatically-built kernels in the human-readable format.

use std::fmt::Write;

use crate::ast::{BinOp, Expr, Intrinsic, KernelDef};

/// Render a kernel as DSL source text that re-parses to the same AST.
pub fn kernel_to_source(k: &KernelDef) -> String {
    let mut out = String::new();
    writeln!(out, "kernel {} {{", k.name).unwrap();
    let dims: Vec<String> = k.grid.iter().map(i64::to_string).collect();
    writeln!(out, "  grid({})", dims.join(", ")).unwrap();
    writeln!(out, "  halo {}", k.halo).unwrap();
    for f in &k.fields {
        writeln!(out, "  field {} : {}", f.name, f.kind).unwrap();
    }
    for p in &k.params {
        writeln!(out, "  param {}[{}]", p.name, axis_name(p.axis)).unwrap();
    }
    for c in &k.consts {
        writeln!(out, "  const {}", c.name).unwrap();
    }
    for c in &k.computes {
        writeln!(
            out,
            "  compute {} {{ {} = {} }}",
            c.target,
            c.target,
            expr_to_source(&c.expr)
        )
        .unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

fn axis_name(axis: usize) -> &'static str {
    match axis {
        0 => "i",
        1 => "j",
        _ => "k",
    }
}

/// Operator precedence for minimal parenthesisation.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Bin {
            op: BinOp::Add | BinOp::Sub,
            ..
        } => 1,
        Expr::Bin {
            op: BinOp::Mul | BinOp::Div,
            ..
        } => 2,
        Expr::Neg(_) => 3,
        _ => 4,
    }
}

/// Render an expression in DSL syntax.
pub fn expr_to_source(e: &Expr) -> String {
    match e {
        Expr::Num(v) => {
            // Always float-looking so the parser keeps it a literal.
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::ConstRef(name) => name.clone(),
        Expr::FieldRef { name, offsets } => {
            let o: Vec<String> = offsets.iter().map(i64::to_string).collect();
            format!("{name}[{}]", o.join(","))
        }
        Expr::ParamRef { name, offset } => {
            // The frontend only supports axis-indexed params; the axis
            // letter is irrelevant to the AST (it is fixed per param), so
            // `k` is used generically and re-resolves on parse.
            match offset.cmp(&0) {
                std::cmp::Ordering::Equal => format!("{name}[k]"),
                std::cmp::Ordering::Greater => format!("{name}[k+{offset}]"),
                std::cmp::Ordering::Less => format!("{name}[k-{}]", -offset),
            }
        }
        Expr::Neg(inner) => {
            let body = expr_to_source(inner);
            if precedence(inner) < 3 {
                format!("-({body})")
            } else {
                format!("-{body}")
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            let my_prec = precedence(e);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            let l = wrap(lhs, precedence(lhs) < my_prec);
            // The grammar is left-associative: a right child at the same
            // precedence level needs parentheses to keep the tree shape
            // (both for non-associative `-`/`/` semantics and for exact
            // AST round-tripping of `+`/`*`).
            let r = wrap(
                rhs,
                precedence(rhs) <= my_prec && matches!(rhs.as_ref(), Expr::Bin { .. }),
            );
            format!("{l} {sym} {r}")
        }
        Expr::Call { f, args } => {
            let name = match f {
                Intrinsic::Abs => "abs",
                Intrinsic::Min => "min",
                Intrinsic::Max => "max",
                Intrinsic::Sign => "sign",
                Intrinsic::Sqrt => "sqrt",
            };
            let rendered: Vec<String> = args.iter().map(expr_to_source).collect();
            format!("{name}({})", rendered.join(", "))
        }
    }
}

fn wrap(e: &Expr, needs: bool) -> String {
    let body = expr_to_source(e);
    if needs {
        format!("({body})")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::parser::parse_kernel;

    #[test]
    fn simple_kernel_round_trips() {
        let src = r#"
kernel k {
  grid(8, 8)
  halo 1
  field a : input
  field b : output
  param tz[j]
  const w
  compute b { b = w * (a[-1,0] + a[1,0]) - tz[j+1] * 2.0 }
}
"#;
        let k = parse_kernel(src).unwrap();
        let printed = kernel_to_source(&k);
        let reparsed = parse_kernel(&printed).unwrap();
        assert_eq!(k, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn subtraction_associativity_preserved() {
        // (a - b) - c  vs  a - (b - c) must print differently.
        let a = || num(1.0);
        let left = sub(sub(a(), num(2.0)), num(3.0));
        let right = sub(a(), sub(num(2.0), num(3.0)));
        assert_ne!(expr_to_source(&left), expr_to_source(&right));
        assert_eq!(expr_to_source(&left), "1.0 - 2.0 - 3.0");
        assert_eq!(expr_to_source(&right), "1.0 - (2.0 - 3.0)");
    }

    #[test]
    fn negation_parenthesised() {
        let e = mul(neg(add(num(1.0), num(2.0))), num(3.0));
        assert_eq!(expr_to_source(&e), "-(1.0 + 2.0) * 3.0");
    }

    #[test]
    fn whole_numbers_stay_floats() {
        assert_eq!(expr_to_source(&num(4.0)), "4.0");
        assert_eq!(expr_to_source(&num(0.25)), "0.25");
    }
}
