//! IR verification: structural invariants plus per-op dialect rules.
//!
//! Structural checks (always on):
//! - every operand refers to a live value and the use-lists agree,
//! - SSA dominance in the structured-control-flow sense: a use sees values
//!   defined earlier in its own block or in any enclosing region's scope,
//! - parent links (op→block→region→op) are mutually consistent.
//!
//! Dialect rules are registered per op name in an [`OpVerifiers`] registry by
//! the `shmls-dialects` crate (e.g. "`stencil.apply`'s terminator must be
//! `stencil.return`").

use std::collections::{HashMap, HashSet};

use crate::error::IrResult;
use crate::ir::{Context, OpId, ValueId};
use crate::{ir_bail, ir_ensure};

/// A per-op verification rule.
pub type OpVerifier = fn(&Context, OpId) -> IrResult<()>;

/// Registry mapping op names to dialect verification rules.
#[derive(Default)]
pub struct OpVerifiers {
    rules: HashMap<String, Vec<OpVerifier>>,
}

impl OpVerifiers {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a rule for `op_name`.
    pub fn register(&mut self, op_name: &str, rule: OpVerifier) {
        self.rules
            .entry(op_name.to_string())
            .or_default()
            .push(rule);
    }

    /// All rules for `op_name`.
    pub fn rules_for(&self, op_name: &str) -> &[OpVerifier] {
        self.rules.get(op_name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of registered op names.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Verify `root` and everything nested in it with structural checks only.
pub fn verify(ctx: &Context, root: OpId) -> IrResult<()> {
    verify_with(ctx, root, &OpVerifiers::default())
}

/// Verify `root` with structural checks plus the given dialect rules.
pub fn verify_with(ctx: &Context, root: OpId, verifiers: &OpVerifiers) -> IrResult<()> {
    let mut scope: HashSet<ValueId> = HashSet::new();
    verify_op(ctx, root, &mut scope, verifiers)
}

fn verify_op(
    ctx: &Context,
    op: OpId,
    scope: &mut HashSet<ValueId>,
    verifiers: &OpVerifiers,
) -> IrResult<()> {
    let name = ctx.op_name(op).to_string();
    // Operands must be visible here.
    for (i, &operand) in ctx.operands(op).iter().enumerate() {
        ir_ensure!(
            scope.contains(&operand),
            "op `{name}`: operand {i} does not dominate its use"
        );
        // Use-list consistency.
        let uses = ctx.value_uses(operand);
        ir_ensure!(
            uses.iter().any(|u| u.op == op && u.operand_index == i),
            "op `{name}`: use-list of operand {i} is out of sync"
        );
    }
    // Regions: each opens a child scope seeded with the current one.
    for &region in ctx.regions(op) {
        ir_ensure!(
            ctx.region_parent(region) == Some(op),
            "op `{name}`: region parent link broken"
        );
        let mut added: Vec<ValueId> = Vec::new();
        for &block in ctx.region_blocks(region) {
            ir_ensure!(
                ctx.block_parent(block) == Some(region),
                "op `{name}`: block parent link broken"
            );
            for &arg in ctx.block_args(block) {
                if scope.insert(arg) {
                    added.push(arg);
                }
            }
            for &inner in ctx.block_ops(block) {
                ir_ensure!(
                    ctx.parent_block(inner) == Some(block),
                    "op `{}`: op parent link broken",
                    ctx.op_name(inner)
                );
                verify_op(ctx, inner, scope, verifiers)?;
                for &r in ctx.results(inner) {
                    if scope.insert(r) {
                        added.push(r);
                    }
                }
            }
        }
        for v in added {
            scope.remove(&v);
        }
    }
    // Dialect rules last, so they can assume structure is sound.
    for rule in verifiers.rules_for(&name) {
        rule(ctx, op).map_err(|e| e.context(format!("op `{name}`")))?;
    }
    Ok(())
}

/// Check exact operand/result counts — call first in a dialect rule so
/// later indexing (`operands(op)[i]`, `result(op, i)`) cannot panic on
/// malformed IR.
pub fn expect_counts(ctx: &Context, op: OpId, operands: usize, results: usize) -> IrResult<()> {
    ir_ensure!(
        ctx.operands(op).len() == operands,
        "expected {operands} operand(s), found {}",
        ctx.operands(op).len()
    );
    ir_ensure!(
        ctx.results(op).len() == results,
        "expected {results} result(s), found {}",
        ctx.results(op).len()
    );
    Ok(())
}

/// Verify that `block`'s last op is named `expected` — a helper shared by
/// many dialect rules ("region must terminate with X").
pub fn check_terminator(ctx: &Context, op: OpId, expected: &str) -> IrResult<()> {
    let Some(block) = ctx.entry_block(op) else {
        ir_bail!("expected a region with one block");
    };
    match ctx.terminator(block) {
        Some(t) if ctx.op_name(t) == expected => Ok(()),
        Some(t) => ir_bail!(
            "expected terminator `{expected}`, found `{}`",
            ctx.op_name(t)
        ),
        None => ir_bail!("empty block, expected terminator `{expected}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OpBuilder;
    use crate::types::Type;
    use std::collections::BTreeMap;

    fn module(ctx: &mut Context) -> (OpId, crate::ir::BlockId) {
        let m = ctx.create_op("builtin.module", vec![], vec![], BTreeMap::new());
        let r = ctx.add_region(m);
        let b = ctx.add_block(r, vec![]);
        (m, b)
    }

    #[test]
    fn valid_ir_verifies() {
        let mut ctx = Context::new();
        let (m, block) = module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, block);
        let c = b.build_value("test.c", vec![], Type::F64);
        b.build("test.use", vec![c], vec![]);
        verify(&ctx, m).unwrap();
    }

    #[test]
    fn use_before_def_fails() {
        let mut ctx = Context::new();
        let (m, block) = module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, block);
        let c = b.build_value("test.c", vec![], Type::F64);
        let user = ctx.create_op("test.use", vec![c], vec![], BTreeMap::new());
        // Insert the user *before* the def.
        ctx.insert_op(block, 0, user);
        let e = verify(&ctx, m).unwrap_err();
        assert!(e.to_string().contains("dominate"), "{e}");
    }

    #[test]
    fn inner_region_sees_outer_values() {
        let mut ctx = Context::new();
        let (m, block) = module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, block);
        let c = b.build_value("test.c", vec![], Type::F64);
        let (_for_op, body) = b.build_with_region(
            "scf.for",
            vec![],
            vec![],
            BTreeMap::new(),
            vec![Type::Index],
        );
        let mut inner = OpBuilder::at_block_end(&mut ctx, body);
        inner.build("test.use", vec![c], vec![]);
        verify(&ctx, m).unwrap();
    }

    #[test]
    fn sibling_region_values_not_visible() {
        let mut ctx = Context::new();
        let (m, block) = module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, block);
        let (_op1, body1) = b.build_with_region("test.r1", vec![], vec![], BTreeMap::new(), vec![]);
        let mut inner1 = OpBuilder::at_block_end(&mut ctx, body1);
        let v = inner1.build_value("test.c", vec![], Type::F64);
        let mut b = OpBuilder::at_block_end(&mut ctx, block);
        let (_op2, body2) = b.build_with_region("test.r2", vec![], vec![], BTreeMap::new(), vec![]);
        let mut inner2 = OpBuilder::at_block_end(&mut ctx, body2);
        inner2.build("test.use", vec![v], vec![]);
        let e = verify(&ctx, m).unwrap_err();
        assert!(e.to_string().contains("dominate"), "{e}");
    }

    #[test]
    fn dialect_rule_runs() {
        let mut ctx = Context::new();
        let (m, block) = module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, block);
        b.build("test.needs_attr", vec![], vec![]);
        let mut reg = OpVerifiers::new();
        reg.register("test.needs_attr", |ctx, op| {
            ir_ensure!(ctx.attr(op, "x").is_some(), "missing attribute `x`");
            Ok(())
        });
        let e = verify_with(&ctx, m, &reg).unwrap_err();
        assert!(e.to_string().contains("missing attribute `x`"), "{e}");
    }

    #[test]
    fn check_terminator_helper() {
        let mut ctx = Context::new();
        let (_, block) = module(&mut ctx);
        let mut b = OpBuilder::at_block_end(&mut ctx, block);
        let (op, body) = b.build_with_region("test.loop", vec![], vec![], BTreeMap::new(), vec![]);
        assert!(check_terminator(&ctx, op, "test.yield").is_err());
        let mut inner = OpBuilder::at_block_end(&mut ctx, body);
        inner.build("test.yield", vec![], vec![]);
        check_terminator(&ctx, op, "test.yield").unwrap();
    }
}
